// The Fuzzy Hash Classifier — the paper's contribution.
//
// fit():      train hashes + labels -> reference TrainIndex (training
//             digests prepared once: run-normalized parts + presorted
//             7-gram arrays, bucketed by blocksize), leave-self-out
//             similarity feature matrix, balanced class weights, Random
//             Forest.
// predict():  hashes -> similarity features vs the index -> forest
//             probabilities -> argmax label, demoted to kUnknownLabel when
//             the winning probability is below the confidence threshold.
//
// The confidence threshold is a *deployment* knob: it trades unknown-
// detection recall against known-class accuracy (paper Figure 3); tune it
// with the pipeline's inner grid search, or set it manually for stricter
// screening (paper Section 5, "Confidence Threshold").
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/feature_matrix.hpp"
#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "ssdeep/compare.hpp"

namespace fhc::util {
class SectionedWriter;
}  // namespace fhc::util

namespace fhc::core {

/// First 8 bytes of a binary model file; distinct from any text model
/// (those start with the text magic line) so load_file can sniff the
/// format. v1 is the legacy monolithic blob (preamble + forest image;
/// loading rebuilds the TrainIndex), v2 the sectioned container
/// (util::SectionedView) whose TrainIndex pools attach zero-copy.
inline constexpr std::string_view kBinaryModelMagicV1 = "FHCMDLB1";
inline constexpr std::string_view kBinaryModelMagicV2 = "FHCMDLB2";

struct ClassifierConfig {
  ml::ForestParams forest;
  ssdeep::EditMetric metric = ssdeep::EditMetric::kDamerauOsa;
  double confidence_threshold = 0.50;
  bool balanced_class_weights = true;      // paper: inverse-frequency weights
  ChannelMask channels = kAllChannels;     // feature-ablation knob
  ChannelSet channel_set;                  // feature-channel roster (default:
                                           // the paper's static triple)
};

/// One prediction with its evidence.
struct Prediction {
  int label = ml::kUnknownLabel;  // model label or kUnknownLabel
  double confidence = 0.0;        // winning class probability
  std::vector<double> proba;      // full distribution over known classes
};

class FuzzyHashClassifier {
 public:
  /// `labels[i]` in 0..K-1 (known classes only); `class_names.size() == K`.
  void fit(const std::vector<FeatureHashes>& train_hashes,
           const std::vector<int>& labels, std::vector<std::string> class_names,
           const ClassifierConfig& config);

  bool fitted() const noexcept { return index_ != nullptr; }

  /// Predict one sample from its fuzzy hashes.
  Prediction predict(const FeatureHashes& sample) const;

  /// Forest pass over a prebuilt similarity row of row_width() floats —
  /// predict(s) == predict_from_row(fill_feature_row(index(), s, ...)).
  /// Lets callers that build rows themselves (the sharded classification
  /// service) reuse the exact threshold/argmax semantics of predict().
  Prediction predict_from_row(std::span<const float> row) const;

  /// Block forest pass over many prebuilt rows: one tree-major
  /// FlatForest pass per row block instead of a forest walk per row,
  /// bit-identical to predict_from_row on each row (same double
  /// accumulation order). `out.size()` must equal `rows.rows()`. When
  /// `pool` is given and there is more than one block, blocks fan out
  /// across it (disjoint output slots — still bit-identical).
  void predict_rows(const ml::Matrix& rows, std::span<Prediction> out,
                    util::ThreadPool* pool = nullptr) const;

  /// Width of one similarity feature row (n_channels * n_classes).
  std::size_t row_width() const;

  /// Batch prediction (parallel). Returns labels; `out_proba`, if given,
  /// receives the probability matrix (rows x K).
  std::vector<int> predict_batch(const std::vector<FeatureHashes>& samples,
                                 ml::Matrix* out_proba = nullptr) const;

  /// Labels from an existing probability matrix at a given threshold —
  /// lets threshold sweeps reuse one expensive predict_proba pass.
  std::vector<int> labels_from_proba(const ml::Matrix& proba, double threshold) const;

  /// Per-column forest importances (n_channels*K entries).
  std::vector<double> column_importances() const;

  /// Importances aggregated per feature channel and normalized — exactly
  /// Table 5 for a static-triple model; one extra entry per dynamic
  /// channel otherwise. Order matches index().channels().
  std::vector<double> channel_importance() const;

  const TrainIndex& index() const { return *index_; }
  const ml::RandomForest& forest() const noexcept { return forest_; }
  const ClassifierConfig& config() const noexcept { return config_; }
  const std::vector<std::string>& class_names() const;

  /// Adjust the deployment threshold without refitting.
  void set_confidence_threshold(double threshold) {
    config_.confidence_threshold = threshold;
  }

  /// Adjust the channel-ablation mask without refitting (disabled
  /// channels score constant 0 in the feature row — the trees trained on
  /// them lose their signal, which is the point of an ablation).
  void set_channel_mask(const ChannelMask& mask) { config_.channels = mask; }

  /// Serializes the fitted model (config, class names, reference digests,
  /// forest) as versioned text — train once on a login node, classify from
  /// a Slurm prolog without refitting. Digests are stored in the raw
  /// "bs:p1:p2" text form; load() rebuilds the prepared comparison index
  /// from them. Throws std::runtime_error on malformed or
  /// version-mismatched input.
  void save(std::ostream& out) const;
  void load(std::istream& in);
  void save_file(const std::string& path) const;

  /// Binary model format v2 ("FHCMDLB2"): a util::SectionedWriter
  /// container holding the text preamble (config, class names, reference
  /// digests — identical bytes to the text format's midsection), the
  /// TrainIndex's prepared-digest pools and CSR gram indexes
  /// (TrainIndex::serialize), and the forest's binary SoA image — every
  /// section 64-byte aligned and checksummed. save_binary -> load_binary
  /// -> save_binary round-trips byte-identically, and loading prepares no
  /// digest and builds no index: everything attaches in place.
  void save_binary(std::ostream& out) const;

  /// save_binary to `path` with the crash discipline a daemon mmap'ing
  /// the model needs: sibling temp file, fsync, rename, directory fsync
  /// (util::SectionedWriter::write_file).
  void save_binary_file(const std::string& path) const;

  /// The legacy v1 writer ("FHCMDLB1": magic, length-prefixed preamble,
  /// forest image) — kept so the version-sniffing loader and the
  /// attach-vs-rebuild bench have a v1 producer.
  void save_binary_v1(std::ostream& out) const;

  /// Loads either binary format from `bytes` without copying the forest
  /// sections — the compiled plan references them in place; a v2
  /// container additionally attaches the TrainIndex pools zero-copy
  /// (v1 rebuilds the index from the preamble digests). `keepalive`
  /// (e.g. the util::ModelMap the bytes come from) is retained for the
  /// model's lifetime; pass nullptr only when `bytes` outlives the model.
  void load_binary(std::span<const std::byte> bytes,
                   std::shared_ptr<const void> keepalive);

  /// True when `bytes` starts with either binary model magic.
  static bool is_binary_model(std::span<const std::byte> bytes);

  /// Loads either format: sniffs the magic, mmaps binary models
  /// (util::ModelMap) for a zero-copy forest load, falls back to the text
  /// parser otherwise.
  static FuzzyHashClassifier load_file(const std::string& path);

 private:
  void save_preamble(std::ostream& out) const;
  /// Fills `preamble`/`forest` and adds every v2 section to `writer`
  /// (referencing the two strings and the live index pools — all must
  /// outlive the final write).
  void build_v2_sections(util::SectionedWriter& writer, std::string& preamble,
                         std::string& forest) const;
  void load_binary_v1(std::span<const std::byte> bytes,
                      std::shared_ptr<const void> keepalive);
  void load_binary_v2(std::span<const std::byte> bytes,
                      std::shared_ptr<const void> keepalive);
  Prediction prediction_from_proba(std::vector<double> proba) const;

  std::unique_ptr<TrainIndex> index_;
  ml::RandomForest forest_;
  ClassifierConfig config_;
};

}  // namespace fhc::core
