// The Fuzzy Hash Classifier — the paper's contribution.
//
// fit():      train hashes + labels -> reference TrainIndex (training
//             digests prepared once: run-normalized parts + presorted
//             7-gram arrays, bucketed by blocksize), leave-self-out
//             similarity feature matrix, balanced class weights, Random
//             Forest.
// predict():  hashes -> similarity features vs the index -> forest
//             probabilities -> argmax label, demoted to kUnknownLabel when
//             the winning probability is below the confidence threshold.
//
// The confidence threshold is a *deployment* knob: it trades unknown-
// detection recall against known-class accuracy (paper Figure 3); tune it
// with the pipeline's inner grid search, or set it manually for stricter
// screening (paper Section 5, "Confidence Threshold").
//
// Open-set rejection (paper Table 3's 19-class unknown pool) adds a
// *calibrated* floor on top: fit() with calibrate_rejection holds out known
// samples, scores them with a calibration forest, and records the
// target-FPR quantile of their max probabilities in the model. Predictions
// below the effective threshold come back as is_unknown / kUnknownLabel
// instead of a force-label.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/feature_matrix.hpp"
#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "ssdeep/compare.hpp"

namespace fhc::util {
class SectionedWriter;
}  // namespace fhc::util

namespace fhc::core {

/// First 8 bytes of a binary model file; distinct from any text model
/// (those start with the text magic line) so load_file can sniff the
/// format. v1 is the legacy monolithic blob (preamble + forest image;
/// loading rebuilds the TrainIndex), v2 the sectioned container
/// (util::SectionedView) whose TrainIndex pools attach zero-copy.
inline constexpr std::string_view kBinaryModelMagicV1 = "FHCMDLB1";
inline constexpr std::string_view kBinaryModelMagicV2 = "FHCMDLB2";

struct ClassifierConfig {
  ml::ForestParams forest;
  ssdeep::EditMetric metric = ssdeep::EditMetric::kDamerauOsa;
  double confidence_threshold = 0.50;
  bool balanced_class_weights = true;      // paper: inverse-frequency weights
  ChannelMask channels = kAllChannels;     // feature-ablation knob
  ChannelSet channel_set;                  // feature-channel roster (default:
                                           // the paper's static triple)
  // Open-set calibration (fit-time only; the *result* is what a model file
  // carries). When enabled, fit() holds out a stratified known-class slice,
  // trains a calibration forest on the rest, and picks the rejection
  // threshold as the calibration_target_fpr-quantile of the held-out
  // max-probability scores — so at most that fraction of known samples is
  // rejected as "unknown" (paper Table 3's open-set pool, Figure 3's
  // threshold trade-off).
  bool calibrate_rejection = false;
  double calibration_target_fpr = 0.05;
  double calibration_holdout_fraction = 0.25;
  std::uint64_t calibration_seed = 42;
};

/// The calibrated unknown-rejection decision a fitted/loaded model carries.
/// Disabled (the default, and what every pre-calibration model file loads
/// as) means "never reject beyond the deployment confidence threshold" —
/// exactly the legacy behavior.
struct RejectionCalibration {
  bool enabled = false;
  double threshold = 0.0;       // reject when max-probability < threshold
  double target_fpr = 0.0;      // known-class rejection budget it was fit to
  std::uint32_t holdout_count = 0;  // held-out scores behind the quantile
};

/// One prediction with its evidence.
struct Prediction {
  int label = ml::kUnknownLabel;  // model label or kUnknownLabel
  double confidence = 0.0;        // winning class probability
  bool is_unknown = false;        // label was demoted to kUnknownLabel
  std::vector<double> proba;      // full distribution over known classes
};

class FuzzyHashClassifier {
 public:
  /// `labels[i]` in 0..K-1 (known classes only); `class_names.size() == K`.
  void fit(const std::vector<FeatureHashes>& train_hashes,
           const std::vector<int>& labels, std::vector<std::string> class_names,
           const ClassifierConfig& config);

  bool fitted() const noexcept { return index_ != nullptr; }

  /// Predict one sample from its fuzzy hashes.
  Prediction predict(const FeatureHashes& sample) const;

  /// Forest pass over a prebuilt similarity row of row_width() floats —
  /// predict(s) == predict_from_row(fill_feature_row(index(), s, ...)).
  /// Lets callers that build rows themselves (the sharded classification
  /// service) reuse the exact threshold/argmax semantics of predict().
  Prediction predict_from_row(std::span<const float> row) const;

  /// Block forest pass over many prebuilt rows: one tree-major
  /// FlatForest pass per row block instead of a forest walk per row,
  /// bit-identical to predict_from_row on each row (same double
  /// accumulation order). `out.size()` must equal `rows.rows()`. When
  /// `pool` is given and there is more than one block, blocks fan out
  /// across it (disjoint output slots — still bit-identical).
  void predict_rows(const ml::Matrix& rows, std::span<Prediction> out,
                    util::ThreadPool* pool = nullptr) const;

  /// Width of one similarity feature row (n_channels * n_classes).
  std::size_t row_width() const;

  /// Batch prediction (parallel). Returns labels; `out_proba`, if given,
  /// receives the probability matrix (rows x K).
  std::vector<int> predict_batch(const std::vector<FeatureHashes>& samples,
                                 ml::Matrix* out_proba = nullptr) const;

  /// Labels from an existing probability matrix at a given threshold —
  /// lets threshold sweeps reuse one expensive predict_proba pass.
  std::vector<int> labels_from_proba(const ml::Matrix& proba, double threshold) const;

  /// Per-column forest importances (n_channels*K entries).
  std::vector<double> column_importances() const;

  /// Importances aggregated per feature channel and normalized — exactly
  /// Table 5 for a static-triple model; one extra entry per dynamic
  /// channel otherwise. Order matches index().channels().
  std::vector<double> channel_importance() const;

  const TrainIndex& index() const { return *index_; }
  const ml::RandomForest& forest() const noexcept { return forest_; }
  const ClassifierConfig& config() const noexcept { return config_; }
  const RejectionCalibration& calibration() const noexcept { return calibration_; }
  const std::vector<std::string>& class_names() const;

  /// Adjust the deployment threshold without refitting.
  void set_confidence_threshold(double threshold) {
    config_.confidence_threshold = threshold;
  }

  /// Deployment override for the unknown-rejection threshold: enables
  /// rejection at exactly `threshold` without refitting (replaces any
  /// fit-time calibration). Saved models carry the override.
  void set_unknown_threshold(double threshold) {
    calibration_.enabled = true;
    calibration_.threshold = threshold;
  }

  /// The max-probability floor predictions must clear to keep their argmax
  /// label: the deployment confidence threshold, raised to the calibrated
  /// rejection threshold when calibration is enabled.
  double effective_reject_threshold() const noexcept {
    return calibration_.enabled
               ? std::max(config_.confidence_threshold, calibration_.threshold)
               : config_.confidence_threshold;
  }

  /// Adjust the channel-ablation mask without refitting (disabled
  /// channels score constant 0 in the feature row — the trees trained on
  /// them lose their signal, which is the point of an ablation).
  void set_channel_mask(const ChannelMask& mask) { config_.channels = mask; }

  /// Serializes the fitted model (config, class names, reference digests,
  /// forest) as versioned text — train once on a login node, classify from
  /// a Slurm prolog without refitting. Digests are stored in the raw
  /// "bs:p1:p2" text form; load() rebuilds the prepared comparison index
  /// from them. Throws std::runtime_error on malformed or
  /// version-mismatched input.
  void save(std::ostream& out) const;
  void load(std::istream& in);
  void save_file(const std::string& path) const;

  /// Binary model format v2 ("FHCMDLB2"): a util::SectionedWriter
  /// container holding the text preamble (config, class names, reference
  /// digests — identical bytes to the text format's midsection), the
  /// TrainIndex's prepared-digest pools and CSR gram indexes
  /// (TrainIndex::serialize), and the forest's binary SoA image — every
  /// section 64-byte aligned and checksummed. save_binary -> load_binary
  /// -> save_binary round-trips byte-identically, and loading prepares no
  /// digest and builds no index: everything attaches in place.
  void save_binary(std::ostream& out) const;

  /// save_binary to `path` with the crash discipline a daemon mmap'ing
  /// the model needs: sibling temp file, fsync, rename, directory fsync
  /// (util::SectionedWriter::write_file).
  void save_binary_file(const std::string& path) const;

  /// The legacy v1 writer ("FHCMDLB1": magic, length-prefixed preamble,
  /// forest image) — kept so the version-sniffing loader and the
  /// attach-vs-rebuild bench have a v1 producer.
  void save_binary_v1(std::ostream& out) const;

  /// Loads either binary format from `bytes` without copying the forest
  /// sections — the compiled plan references them in place; a v2
  /// container additionally attaches the TrainIndex pools zero-copy
  /// (v1 rebuilds the index from the preamble digests). `keepalive`
  /// (e.g. the util::ModelMap the bytes come from) is retained for the
  /// model's lifetime; pass nullptr only when `bytes` outlives the model.
  void load_binary(std::span<const std::byte> bytes,
                   std::shared_ptr<const void> keepalive);

  /// True when `bytes` starts with either binary model magic.
  static bool is_binary_model(std::span<const std::byte> bytes);

  /// Loads either format: sniffs the magic, mmaps binary models
  /// (util::ModelMap) for a zero-copy forest load, falls back to the text
  /// parser otherwise.
  static FuzzyHashClassifier load_file(const std::string& path);

 private:
  /// Stratified holdout -> calibration fit -> target-FPR quantile of the
  /// held-out max-probability scores. Deterministic in config.calibration_seed.
  static RejectionCalibration run_calibration(
      const std::vector<FeatureHashes>& train_hashes,
      const std::vector<int>& labels,
      const std::vector<std::string>& class_names,
      const ClassifierConfig& config);
  void save_preamble(std::ostream& out) const;
  /// Fills `preamble`/`forest` and adds every v2 section to `writer`
  /// (referencing the two strings and the live index pools — all must
  /// outlive the final write).
  void build_v2_sections(util::SectionedWriter& writer, std::string& preamble,
                         std::string& forest) const;
  void load_binary_v1(std::span<const std::byte> bytes,
                      std::shared_ptr<const void> keepalive);
  void load_binary_v2(std::span<const std::byte> bytes,
                      std::shared_ptr<const void> keepalive);
  Prediction prediction_from_proba(std::vector<double> proba) const;

  std::unique_ptr<TrainIndex> index_;
  ml::RandomForest forest_;
  ClassifierConfig config_;
  RejectionCalibration calibration_;
};

}  // namespace fhc::core
