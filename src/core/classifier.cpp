#include "core/classifier.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ml/class_weight.hpp"
#include "util/model_map.hpp"
#include "util/thread_pool.hpp"

namespace fhc::core {

void FuzzyHashClassifier::fit(const std::vector<FeatureHashes>& train_hashes,
                              const std::vector<int>& labels,
                              std::vector<std::string> class_names,
                              const ClassifierConfig& config) {
  if (train_hashes.empty()) throw std::invalid_argument("fit: empty training set");
  if (train_hashes.size() != labels.size()) {
    throw std::invalid_argument("fit: hashes/labels size mismatch");
  }
  config_ = config;
  index_ = std::make_unique<TrainIndex>(train_hashes, labels, std::move(class_names));

  // Leave-self-out featurization of the training rows: sample i's own
  // digests are excluded from the class maxima so no column degenerates to
  // the constant 100.
  std::vector<int> exclude_ids(train_hashes.size());
  std::iota(exclude_ids.begin(), exclude_ids.end(), 0);
  const ml::Matrix x = build_feature_matrix(*index_, train_hashes, config_.metric,
                                            exclude_ids, config_.channels);

  std::vector<double> weights;
  if (config_.balanced_class_weights) {
    weights = ml::balanced_sample_weights(labels);
  }
  forest_.fit(x, labels, index_->n_classes(), weights, config_.forest);
}

Prediction FuzzyHashClassifier::predict(const FeatureHashes& sample) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  std::vector<float> row(row_width());
  fill_feature_row(*index_, sample, config_.metric, /*exclude_id=*/-1, row,
                   config_.channels);
  return predict_from_row(row);
}

Prediction FuzzyHashClassifier::predict_from_row(std::span<const float> row) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  if (row.size() != row_width()) {
    throw std::invalid_argument("predict_from_row: bad row width");
  }
  return prediction_from_proba(forest_.predict_proba(row));
}

Prediction FuzzyHashClassifier::prediction_from_proba(std::vector<double> proba) const {
  Prediction out;
  out.proba = std::move(proba);
  const auto best = std::max_element(out.proba.begin(), out.proba.end());
  out.confidence = *best;
  const int argmax = static_cast<int>(best - out.proba.begin());
  out.label = out.confidence >= config_.confidence_threshold ? argmax
                                                             : ml::kUnknownLabel;
  return out;
}

void FuzzyHashClassifier::predict_rows(const ml::Matrix& rows,
                                       std::span<Prediction> out,
                                       util::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  if (rows.cols() != row_width() || out.size() != rows.rows()) {
    throw std::invalid_argument("predict_rows: bad shape");
  }
  const ml::FlatForest& plan = forest_.plan();
  const auto k = static_cast<std::size_t>(forest_.n_classes());
  const double inv = 1.0 / static_cast<double>(forest_.tree_count());
  constexpr std::size_t kBlockRows = 64;
  const auto score_block = [&](std::size_t begin, std::size_t end,
                               std::span<double> acc) {
    plan.accumulate_block(rows, begin, end, acc);
    for (std::size_t r = begin; r < end; ++r) {
      std::vector<double> proba(k);
      const double* const sums = acc.data() + (r - begin) * k;
      // Same value sequence as the serial path's in-place `p *= inv`.
      for (std::size_t c = 0; c < k; ++c) proba[c] = sums[c] * inv;
      out[r] = prediction_from_proba(std::move(proba));
    }
  };
  if (pool != nullptr && rows.rows() > kBlockRows) {
    // Blocks write disjoint out slots, so fanning them across the pool
    // keeps the result bit-identical to the serial loop below.
    const std::size_t blocks = (rows.rows() + kBlockRows - 1) / kBlockRows;
    util::parallel_for(*pool, 0, blocks, /*grain=*/1, [&](std::size_t b) {
      const std::size_t begin = b * kBlockRows;
      const std::size_t end = std::min(begin + kBlockRows, rows.rows());
      std::vector<double> acc((end - begin) * k);
      score_block(begin, end, acc);
    });
    return;
  }
  std::vector<double> acc(std::min(kBlockRows, rows.rows()) * k);
  for (std::size_t begin = 0; begin < rows.rows(); begin += kBlockRows) {
    const std::size_t end = std::min(begin + kBlockRows, rows.rows());
    score_block(begin, end, {acc.data(), (end - begin) * k});
  }
}

std::size_t FuzzyHashClassifier::row_width() const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  return static_cast<std::size_t>(kFeatureTypeCount * index_->n_classes());
}

std::vector<int> FuzzyHashClassifier::predict_batch(
    const std::vector<FeatureHashes>& samples, ml::Matrix* out_proba) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  const ml::Matrix x =
      build_feature_matrix(*index_, samples, config_.metric, {}, config_.channels);
  ml::Matrix proba = forest_.predict_proba_matrix(x);
  std::vector<int> labels = labels_from_proba(proba, config_.confidence_threshold);
  if (out_proba != nullptr) *out_proba = std::move(proba);
  return labels;
}

std::vector<int> FuzzyHashClassifier::labels_from_proba(const ml::Matrix& proba,
                                                        double threshold) const {
  std::vector<int> labels(proba.rows());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const auto row = proba.row(i);
    const auto best = std::max_element(row.begin(), row.end());
    labels[i] = *best >= threshold
                    ? static_cast<int>(best - row.begin())
                    : ml::kUnknownLabel;
  }
  return labels;
}

std::vector<double> FuzzyHashClassifier::column_importances() const {
  return forest_.feature_importances();
}

std::array<double, kFeatureTypeCount> FuzzyHashClassifier::feature_type_importance()
    const {
  const std::vector<double> columns = column_importances();
  const auto k = static_cast<std::size_t>(index_->n_classes());
  std::array<double, kFeatureTypeCount> grouped{};
  for (std::size_t f = 0; f < kFeatureTypeCount; ++f) {
    for (std::size_t c = 0; c < k; ++c) grouped[f] += columns[f * k + c];
  }
  const double total = grouped[0] + grouped[1] + grouped[2];
  if (total > 0.0) {
    for (double& g : grouped) g /= total;
  }
  return grouped;
}

const std::vector<std::string>& FuzzyHashClassifier::class_names() const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  return index_->class_names();
}

namespace {
constexpr const char* kModelMagic = "fhc-fuzzy-hash-classifier-v1";
// First 8 bytes of a binary model file; distinct from any text model
// (those start with kModelMagic) so load_file can sniff the format.
constexpr char kBinaryModelMagic[8] = {'F', 'H', 'C', 'M', 'D', 'L', 'B', '1'};

}  // namespace

void FuzzyHashClassifier::save(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("save: not fitted");
  out << kModelMagic << '\n';
  save_preamble(out);
  forest_.save(out);
}

void FuzzyHashClassifier::save_preamble(std::ostream& out) const {
  out << "metric " << static_cast<int>(config_.metric) << '\n';
  out << "threshold " << config_.confidence_threshold << '\n';
  out << "balanced " << (config_.balanced_class_weights ? 1 : 0) << '\n';
  out << "channels " << config_.channels[0] << ' ' << config_.channels[1] << ' '
      << config_.channels[2] << '\n';

  const int k = index_->n_classes();
  out << "classes " << k << '\n';
  // Class names may contain spaces ("Celera Assembler"): one per line.
  for (const std::string& name : index_->class_names()) out << name << '\n';

  // Reference digests, reconstructed in original training order so a
  // load/save roundtrip is byte-stable. Digest text is space-free.
  out << "train " << index_->train_size() << '\n';
  std::vector<std::string> rows(index_->train_size());
  for (int c = 0; c < k; ++c) {
    const auto& ids = index_->train_ids(c);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      std::ostringstream row;
      row << c;
      for (int f = 0; f < kFeatureTypeCount; ++f) {
        row << ' ' << index_->digests(static_cast<FeatureType>(f), c)[j].to_string();
      }
      rows[static_cast<std::size_t>(ids[j])] = row.str();
    }
  }
  for (const std::string& row : rows) out << row << '\n';
}

namespace {

/// Everything a model file carries besides the forest — shared between
/// the text and binary loaders (the binary format embeds the same bytes).
struct Preamble {
  ClassifierConfig config;
  std::vector<std::string> names;
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
  int k = 0;
};

Preamble load_preamble(std::istream& in) {
  Preamble out;
  std::string tag;
  int metric = 0;
  int balanced = 0;
  if (!(in >> tag >> metric) || tag != "metric" ||
      !(in >> tag >> out.config.confidence_threshold) || tag != "threshold" ||
      !(in >> tag >> balanced) || tag != "balanced") {
    throw std::runtime_error("FuzzyHashClassifier::load: bad config block");
  }
  out.config.metric = static_cast<ssdeep::EditMetric>(metric);
  out.config.balanced_class_weights = balanced != 0;
  if (!(in >> tag) || tag != "channels") {
    throw std::runtime_error("FuzzyHashClassifier::load: bad channels");
  }
  for (auto& channel : out.config.channels) {
    int value = 0;
    if (!(in >> value)) throw std::runtime_error("load: bad channel flag");
    channel = value != 0;
  }

  if (!(in >> tag >> out.k) || tag != "classes" || out.k <= 0) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad class count");
  }
  in.ignore();  // consume newline before getline
  out.names.resize(static_cast<std::size_t>(out.k));
  for (std::string& name : out.names) {
    if (!std::getline(in, name) || name.empty()) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad class name");
    }
  }

  std::size_t n_train = 0;
  if (!(in >> tag >> n_train) || tag != "train" || n_train == 0) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad train block");
  }
  out.hashes.resize(n_train);
  out.labels.resize(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    std::string file_text;
    std::string strings_text;
    std::string symbols_text;
    if (!(in >> out.labels[i] >> file_text >> strings_text >> symbols_text)) {
      throw std::runtime_error("FuzzyHashClassifier::load: truncated digests");
    }
    const auto file = ssdeep::parse_digest(file_text);
    const auto strings = ssdeep::parse_digest(strings_text);
    const auto symbols = ssdeep::parse_digest(symbols_text);
    if (!file || !strings || !symbols) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad digest");
    }
    out.hashes[i].file = *file;
    out.hashes[i].strings = *strings;
    out.hashes[i].symbols = *symbols;
    out.hashes[i].has_symbols = !symbols->part1.empty();
  }
  return out;
}

}  // namespace

void FuzzyHashClassifier::load(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic) || magic != kModelMagic) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad magic/version");
  }
  Preamble preamble = load_preamble(in);
  forest_.load(in);
  if (forest_.n_classes() != preamble.k) {
    throw std::runtime_error("FuzzyHashClassifier::load: forest/class mismatch");
  }
  // predict builds rows of exactly kFeatureTypeCount * k floats; a forest
  // claiming any other width would read past them (its trees are only
  // validated against its OWN n_features header).
  if (forest_.n_features() != static_cast<std::size_t>(kFeatureTypeCount) *
                                  static_cast<std::size_t>(preamble.k)) {
    throw std::runtime_error("FuzzyHashClassifier::load: forest/row-width mismatch");
  }
  // Rebuilding the index re-prepares every reference digest (normalized
  // parts + gram arrays) from the raw text loaded above.
  index_ = std::make_unique<TrainIndex>(preamble.hashes, preamble.labels,
                                        std::move(preamble.names));
  config_ = preamble.config;
}

void FuzzyHashClassifier::save_binary(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("save: not fitted");
  std::ostringstream preamble_stream;
  save_preamble(preamble_stream);
  const std::string preamble = preamble_stream.str();
  out.write(kBinaryModelMagic, sizeof kBinaryModelMagic);
  const std::uint64_t preamble_size = preamble.size();
  out.write(reinterpret_cast<const char*>(&preamble_size), sizeof preamble_size);
  out.write(preamble.data(), static_cast<std::streamsize>(preamble.size()));
  // Pad so the forest image lands 8-byte aligned in the file — that is
  // what lets FlatForest attach directly to an mmap of it.
  const std::size_t written = 16 + preamble.size();
  static constexpr char kZeros[8] = {};
  out.write(kZeros, static_cast<std::streamsize>(
                ml::FlatForest::align8(written) - written));
  forest_.save_binary(out);
  if (!out) throw std::runtime_error("save_binary: write failed");
}

bool FuzzyHashClassifier::is_binary_model(std::span<const std::byte> bytes) {
  return bytes.size() >= sizeof kBinaryModelMagic &&
         std::memcmp(bytes.data(), kBinaryModelMagic, sizeof kBinaryModelMagic) == 0;
}

void FuzzyHashClassifier::load_binary(std::span<const std::byte> bytes,
                                      std::shared_ptr<const void> keepalive) {
  if (!is_binary_model(bytes)) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: bad magic");
  }
  std::uint64_t preamble_size = 0;
  if (bytes.size() < 16) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: truncated header");
  }
  std::memcpy(&preamble_size, bytes.data() + 8, sizeof preamble_size);
  if (preamble_size > bytes.size() - 16) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: truncated preamble");
  }
  std::istringstream preamble_stream(
      std::string(reinterpret_cast<const char*>(bytes.data()) + 16,
                  static_cast<std::size_t>(preamble_size)));
  Preamble preamble = load_preamble(preamble_stream);

  const std::size_t forest_offset =
      ml::FlatForest::align8(16 + static_cast<std::size_t>(preamble_size));
  if (forest_offset > bytes.size()) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: truncated model");
  }
  forest_.load_binary(bytes.subspan(forest_offset), std::move(keepalive));
  if (forest_.n_classes() != preamble.k) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: forest/class mismatch");
  }
  if (forest_.n_features() != static_cast<std::size_t>(kFeatureTypeCount) *
                                  static_cast<std::size_t>(preamble.k)) {
    throw std::runtime_error(
        "FuzzyHashClassifier::load_binary: forest/row-width mismatch");
  }
  index_ = std::make_unique<TrainIndex>(preamble.hashes, preamble.labels,
                                        std::move(preamble.names));
  config_ = preamble.config;
}

void FuzzyHashClassifier::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_file: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("save_file: write failed for " + path);
}

void FuzzyHashClassifier::save_binary_file(const std::string& path) const {
  // Binary models get mmap'd by resident daemons; truncating the live
  // inode in place would SIGBUS any process still mapping it. Write a
  // sibling temp file and rename over the target — readers keep their old
  // mapping, new loads see the new model.
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw std::runtime_error("save_binary_file: cannot open " + tmp);
    save_binary(out);
    if (!out) throw std::runtime_error("save_binary_file: write failed for " + tmp);
  } catch (...) {
    // A failed write (e.g. disk full) must not strand a partial .tmp
    // beside the model.
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::error_code error;
  std::filesystem::rename(tmp, path, error);
  if (error) {
    std::filesystem::remove(tmp, error);
    throw std::runtime_error("save_binary_file: cannot replace " + path);
  }
}

FuzzyHashClassifier FuzzyHashClassifier::load_file(const std::string& path) {
  // Sniff the first bytes to pick the format: binary models are mmap'd
  // and attached in place; text models stream through the parser (no
  // in-memory copy of the file).
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_file: cannot open " + path);
  char head[sizeof kBinaryModelMagic] = {};
  in.read(head, sizeof head);
  FuzzyHashClassifier clf;
  if (in.gcount() == sizeof head &&
      std::memcmp(head, kBinaryModelMagic, sizeof head) == 0) {
    in.close();
    auto map = std::make_shared<util::ModelMap>(path);
    clf.load_binary(map->bytes(), map);
    return clf;
  }
  in.clear();  // short files leave eof/fail set; rewind for the text parser
  in.seekg(0);
  clf.load(in);
  return clf;
}

}  // namespace fhc::core
