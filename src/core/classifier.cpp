#include "core/classifier.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ml/class_weight.hpp"
#include "util/model_map.hpp"
#include "util/rng.hpp"
#include "util/sectioned.hpp"
#include "util/thread_pool.hpp"

namespace fhc::core {

void FuzzyHashClassifier::fit(const std::vector<FeatureHashes>& train_hashes,
                              const std::vector<int>& labels,
                              std::vector<std::string> class_names,
                              const ClassifierConfig& config) {
  if (train_hashes.empty()) throw std::invalid_argument("fit: empty training set");
  if (train_hashes.size() != labels.size()) {
    throw std::invalid_argument("fit: hashes/labels size mismatch");
  }
  calibration_ = RejectionCalibration{};
  if (config.calibrate_rejection) {
    calibration_ = run_calibration(train_hashes, labels, class_names, config);
  }
  config_ = config;
  index_ = std::make_unique<TrainIndex>(train_hashes, labels,
                                        std::move(class_names),
                                        config_.channel_set);

  // Leave-self-out featurization of the training rows: sample i's own
  // digests are excluded from the class maxima so no column degenerates to
  // the constant 100.
  std::vector<int> exclude_ids(train_hashes.size());
  std::iota(exclude_ids.begin(), exclude_ids.end(), 0);
  const ml::Matrix x = build_feature_matrix(*index_, train_hashes, config_.metric,
                                            exclude_ids, config_.channels);

  std::vector<double> weights;
  if (config_.balanced_class_weights) {
    weights = ml::balanced_sample_weights(labels);
  }
  forest_.fit(x, labels, index_->n_classes(), weights, config_.forest);
}

RejectionCalibration FuzzyHashClassifier::run_calibration(
    const std::vector<FeatureHashes>& train_hashes, const std::vector<int>& labels,
    const std::vector<std::string>& class_names, const ClassifierConfig& config) {
  // Per-class index buckets, shuffled deterministically. Every class with
  // >= 2 samples donates at least one holdout sample and keeps at least one
  // in the calibration split, so the split preserves all K classes (fit
  // requires contiguous 0..K-1 labels). Singleton classes stay in train.
  const auto k = class_names.size();
  std::vector<std::vector<std::size_t>> buckets(k);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || static_cast<std::size_t>(labels[i]) >= k) {
      throw std::invalid_argument("fit: label out of range");
    }
    buckets[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  util::Rng rng(config.calibration_seed);
  const double fraction = std::clamp(config.calibration_holdout_fraction, 0.0, 0.5);
  std::vector<std::size_t> holdout;
  std::vector<char> held(labels.size(), 0);
  for (auto& bucket : buckets) {
    if (bucket.size() < 2) continue;
    rng.shuffle(bucket);
    const auto want = static_cast<std::size_t>(fraction *
                                               static_cast<double>(bucket.size()));
    const std::size_t h = std::clamp<std::size_t>(want, 1, bucket.size() - 1);
    for (std::size_t j = 0; j < h; ++j) {
      holdout.push_back(bucket[j]);
      held[bucket[j]] = 1;
    }
  }
  if (holdout.empty()) {
    throw std::invalid_argument(
        "fit: rejection calibration needs a class with >= 2 samples");
  }
  std::sort(holdout.begin(), holdout.end());

  std::vector<FeatureHashes> cal_hashes;
  std::vector<int> cal_labels;
  cal_hashes.reserve(labels.size() - holdout.size());
  cal_labels.reserve(labels.size() - holdout.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (held[i] == 0) {
      cal_hashes.push_back(train_hashes[i]);
      cal_labels.push_back(labels[i]);
    }
  }
  ClassifierConfig cal_config = config;
  cal_config.calibrate_rejection = false;
  FuzzyHashClassifier cal;
  cal.fit(cal_hashes, cal_labels, class_names, cal_config);

  std::vector<FeatureHashes> held_hashes;
  held_hashes.reserve(holdout.size());
  for (const std::size_t i : holdout) held_hashes.push_back(train_hashes[i]);
  ml::Matrix proba;
  cal.predict_batch(held_hashes, &proba);
  std::vector<double> scores(proba.rows());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const auto row = proba.row(i);
    scores[i] = *std::max_element(row.begin(), row.end());
  }
  std::sort(scores.begin(), scores.end());
  // Rejection is `confidence < threshold`, so picking the floor(fpr*n)-th
  // ascending score bounds the held-out rejection count by fpr*n.
  const double fpr = std::clamp(config.calibration_target_fpr, 0.0, 1.0);
  const auto idx = std::min(
      static_cast<std::size_t>(fpr * static_cast<double>(scores.size())),
      scores.size() - 1);
  RejectionCalibration out;
  out.enabled = true;
  out.threshold = scores[idx];
  out.target_fpr = fpr;
  out.holdout_count = static_cast<std::uint32_t>(scores.size());
  return out;
}

Prediction FuzzyHashClassifier::predict(const FeatureHashes& sample) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  std::vector<float> row(row_width());
  fill_feature_row(*index_, sample, config_.metric, /*exclude_id=*/-1, row,
                   config_.channels);
  return predict_from_row(row);
}

Prediction FuzzyHashClassifier::predict_from_row(std::span<const float> row) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  if (row.size() != row_width()) {
    throw std::invalid_argument("predict_from_row: bad row width");
  }
  return prediction_from_proba(forest_.predict_proba(row));
}

Prediction FuzzyHashClassifier::prediction_from_proba(std::vector<double> proba) const {
  Prediction out;
  out.proba = std::move(proba);
  const auto best = std::max_element(out.proba.begin(), out.proba.end());
  out.confidence = *best;
  const int argmax = static_cast<int>(best - out.proba.begin());
  // With calibration disabled the effective threshold IS the confidence
  // threshold, so legacy models keep their exact pre-calibration labels.
  out.label = out.confidence >= effective_reject_threshold() ? argmax
                                                             : ml::kUnknownLabel;
  out.is_unknown = out.label == ml::kUnknownLabel;
  return out;
}

void FuzzyHashClassifier::predict_rows(const ml::Matrix& rows,
                                       std::span<Prediction> out,
                                       util::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  if (rows.cols() != row_width() || out.size() != rows.rows()) {
    throw std::invalid_argument("predict_rows: bad shape");
  }
  const ml::FlatForest& plan = forest_.plan();
  const auto k = static_cast<std::size_t>(forest_.n_classes());
  const double inv = 1.0 / static_cast<double>(forest_.tree_count());
  constexpr std::size_t kBlockRows = 64;
  const auto score_block = [&](std::size_t begin, std::size_t end,
                               std::span<double> acc) {
    plan.accumulate_block(rows, begin, end, acc);
    for (std::size_t r = begin; r < end; ++r) {
      std::vector<double> proba(k);
      const double* const sums = acc.data() + (r - begin) * k;
      // Same value sequence as the serial path's in-place `p *= inv`.
      for (std::size_t c = 0; c < k; ++c) proba[c] = sums[c] * inv;
      out[r] = prediction_from_proba(std::move(proba));
    }
  };
  if (pool != nullptr && rows.rows() > kBlockRows) {
    // Blocks write disjoint out slots, so fanning them across the pool
    // keeps the result bit-identical to the serial loop below.
    const std::size_t blocks = (rows.rows() + kBlockRows - 1) / kBlockRows;
    util::parallel_for(*pool, 0, blocks, /*grain=*/1, [&](std::size_t b) {
      const std::size_t begin = b * kBlockRows;
      const std::size_t end = std::min(begin + kBlockRows, rows.rows());
      std::vector<double> acc((end - begin) * k);
      score_block(begin, end, acc);
    });
    return;
  }
  std::vector<double> acc(std::min(kBlockRows, rows.rows()) * k);
  for (std::size_t begin = 0; begin < rows.rows(); begin += kBlockRows) {
    const std::size_t end = std::min(begin + kBlockRows, rows.rows());
    score_block(begin, end, {acc.data(), (end - begin) * k});
  }
}

std::size_t FuzzyHashClassifier::row_width() const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  return index_->n_channels() * static_cast<std::size_t>(index_->n_classes());
}

std::vector<int> FuzzyHashClassifier::predict_batch(
    const std::vector<FeatureHashes>& samples, ml::Matrix* out_proba) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  const ml::Matrix x =
      build_feature_matrix(*index_, samples, config_.metric, {}, config_.channels);
  ml::Matrix proba = forest_.predict_proba_matrix(x);
  std::vector<int> labels = labels_from_proba(proba, effective_reject_threshold());
  if (out_proba != nullptr) *out_proba = std::move(proba);
  return labels;
}

std::vector<int> FuzzyHashClassifier::labels_from_proba(const ml::Matrix& proba,
                                                        double threshold) const {
  std::vector<int> labels(proba.rows());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const auto row = proba.row(i);
    const auto best = std::max_element(row.begin(), row.end());
    labels[i] = *best >= threshold
                    ? static_cast<int>(best - row.begin())
                    : ml::kUnknownLabel;
  }
  return labels;
}

std::vector<double> FuzzyHashClassifier::column_importances() const {
  return forest_.feature_importances();
}

std::vector<double> FuzzyHashClassifier::channel_importance() const {
  const std::vector<double> columns = column_importances();
  const auto k = static_cast<std::size_t>(index_->n_classes());
  std::vector<double> grouped(index_->n_channels(), 0.0);
  for (std::size_t f = 0; f < grouped.size(); ++f) {
    for (std::size_t c = 0; c < k; ++c) grouped[f] += columns[f * k + c];
  }
  double total = 0.0;
  for (const double g : grouped) total += g;
  if (total > 0.0) {
    for (double& g : grouped) g /= total;
  }
  return grouped;
}

const std::vector<std::string>& FuzzyHashClassifier::class_names() const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  return index_->class_names();
}

namespace {
constexpr const char* kModelMagic = "fhc-fuzzy-hash-classifier-v1";

bool starts_with_magic(std::span<const std::byte> bytes, std::string_view magic) {
  return bytes.size() >= magic.size() &&
         std::memcmp(bytes.data(), magic.data(), magic.size()) == 0;
}

/// Round-trip-exact decimal for a calibrated threshold: 17 significant
/// digits guarantee parse(print(x)) == x, so save -> load -> save is
/// byte-stable even for data-derived doubles.
std::string format_exact(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

}  // namespace

void FuzzyHashClassifier::save(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("save: not fitted");
  out << kModelMagic << '\n';
  save_preamble(out);
  forest_.save(out);
}

void FuzzyHashClassifier::save_preamble(std::ostream& out) const {
  const ChannelSet& channels = index_->channels();
  const std::size_t n = channels.size();
  // The channelset block exists only for non-default rosters, so a
  // static-triple model's preamble is byte-identical to the pre-registry
  // format (and old parsers reject extended models at the first tag
  // instead of misreading them).
  if (!channels.is_static_triple()) {
    out << "channelset " << n << '\n';
    for (const ChannelDesc& channel : channels) {
      out << channel.name << ' ' << static_cast<int>(channel.kind) << '\n';
    }
  }
  out << "metric " << static_cast<int>(config_.metric) << '\n';
  out << "threshold " << config_.confidence_threshold << '\n';
  out << "balanced " << (config_.balanced_class_weights ? 1 : 0) << '\n';
  // Like the channelset block: written only when rejection calibration is
  // enabled, so uncalibrated models keep the legacy byte layout and old
  // parsers reject calibrated models at the tag instead of misreading them.
  if (calibration_.enabled) {
    out << "calibration " << format_exact(calibration_.threshold) << ' '
        << format_exact(calibration_.target_fpr) << ' '
        << calibration_.holdout_count << '\n';
  }
  out << "channels";
  for (std::size_t f = 0; f < n; ++f) {
    out << ' ' << (config_.channels.enabled(f) ? 1 : 0);
  }
  out << '\n';

  const int k = index_->n_classes();
  out << "classes " << k << '\n';
  // Class names may contain spaces ("Celera Assembler"): one per line.
  for (const std::string& name : index_->class_names()) out << name << '\n';

  // Reference digests, reconstructed in original training order so a
  // load/save roundtrip is byte-stable. Digest text is space-free.
  out << "train " << index_->train_size() << '\n';
  std::vector<std::string> rows(index_->train_size());
  for (int c = 0; c < k; ++c) {
    const auto& ids = index_->train_ids(c);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      std::ostringstream row;
      row << c;
      for (std::size_t f = 0; f < n; ++f) {
        row << ' ' << index_->digests(f, c)[j].to_string();
      }
      rows[static_cast<std::size_t>(ids[j])] = row.str();
    }
  }
  for (const std::string& row : rows) out << row << '\n';
}

namespace {

/// The preamble's header: everything before the digest rows. The v2
/// loader parses only this eagerly — the rows stay as mapped text until
/// something actually needs raw digests (save, inspection).
struct PreambleHeader {
  ClassifierConfig config;
  RejectionCalibration calibration;  // absent line -> disabled ("never reject")
  std::vector<std::string> names;
  int k = 0;
  std::size_t n_train = 0;
};

/// How many classes/rows a model file may claim before the parser calls it
/// hostile. Real corpora are two orders of magnitude below both caps; a
/// crafted header like "classes 2000000000" must fail fast instead of
/// driving a multi-gigabyte resize (found by fuzz_model_load).
constexpr int kMaxModelClasses = 1 << 20;
constexpr std::size_t kMaxModelTrainRows = std::size_t{1} << 24;

/// Everything a model file carries besides the forest — shared between
/// the text and binary loaders (the binary formats embed the same bytes).
struct Preamble {
  PreambleHeader header;
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
};

PreambleHeader load_preamble_header(std::istream& in) {
  PreambleHeader out;
  std::string tag;
  int metric = 0;
  int balanced = 0;
  if (!(in >> tag)) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad config block");
  }
  // Optional leading channelset block (extended rosters only); its
  // absence means the legacy static triple, which ClassifierConfig
  // already defaults to.
  if (tag == "channelset") {
    std::size_t n = 0;
    if (!(in >> n) || n == 0 || n > kMaxChannels) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad channel count");
    }
    std::vector<ChannelDesc> descs;
    descs.reserve(n);
    for (std::size_t f = 0; f < n; ++f) {
      std::string name;
      int kind = -1;
      if (!(in >> name >> kind) || (kind != 0 && kind != 1)) {
        throw std::runtime_error("FuzzyHashClassifier::load: bad channel line");
      }
      descs.push_back(ChannelDesc{std::move(name), static_cast<ChannelKind>(kind)});
    }
    out.config.channel_set = ChannelSet(std::move(descs));
    if (!(in >> tag)) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad config block");
    }
  }
  if (tag != "metric" || !(in >> metric) ||
      !(in >> tag >> out.config.confidence_threshold) || tag != "threshold" ||
      !(in >> tag >> balanced) || tag != "balanced") {
    throw std::runtime_error("FuzzyHashClassifier::load: bad config block");
  }
  out.config.metric = static_cast<ssdeep::EditMetric>(metric);
  out.config.balanced_class_weights = balanced != 0;
  if (!(in >> tag)) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad channels");
  }
  // Optional calibration line (rejection-enabled models only); its absence
  // means the legacy "never reject" default.
  if (tag == "calibration") {
    double threshold = 0.0;
    double target_fpr = 0.0;
    std::uint32_t holdout = 0;
    if (!(in >> threshold >> target_fpr >> holdout) || threshold < 0.0 ||
        threshold > 1.0 || target_fpr < 0.0 || target_fpr > 1.0) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad calibration");
    }
    out.calibration.enabled = true;
    out.calibration.threshold = threshold;
    out.calibration.target_fpr = target_fpr;
    out.calibration.holdout_count = holdout;
    if (!(in >> tag)) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad channels");
    }
  }
  if (tag != "channels") {
    throw std::runtime_error("FuzzyHashClassifier::load: bad channels");
  }
  for (std::size_t f = 0; f < out.config.channel_set.size(); ++f) {
    int value = 0;
    if (!(in >> value)) throw std::runtime_error("load: bad channel flag");
    out.config.channels.set(f, value != 0);
  }

  if (!(in >> tag >> out.k) || tag != "classes" || out.k <= 0 ||
      out.k > kMaxModelClasses) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad class count");
  }
  in.ignore();  // consume newline before getline
  out.names.resize(static_cast<std::size_t>(out.k));
  for (std::string& name : out.names) {
    if (!std::getline(in, name) || name.empty()) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad class name");
    }
  }

  if (!(in >> tag >> out.n_train) || tag != "train" || out.n_train == 0 ||
      out.n_train > kMaxModelTrainRows) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad train block");
  }
  return out;
}

std::pair<std::vector<FeatureHashes>, std::vector<int>> load_digest_rows(
    std::istream& in, std::size_t n_train, std::size_t n_channels) {
  std::vector<FeatureHashes> hashes(n_train);
  std::vector<int> labels(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    if (!(in >> labels[i])) {
      throw std::runtime_error("FuzzyHashClassifier::load: truncated digests");
    }
    for (std::size_t f = 0; f < n_channels; ++f) {
      std::string text;
      if (!(in >> text)) {
        throw std::runtime_error("FuzzyHashClassifier::load: truncated digests");
      }
      const auto digest = ssdeep::parse_digest(text);
      if (!digest) {
        throw std::runtime_error("FuzzyHashClassifier::load: bad digest");
      }
      hashes[i].set_channel(f, *digest);
    }
    if (n_channels >= 3) {
      hashes[i].has_symbols = !hashes[i].symbols.part1.empty();
    }
  }
  return {std::move(hashes), std::move(labels)};
}

Preamble load_preamble(std::istream& in) {
  Preamble out;
  out.header = load_preamble_header(in);
  std::tie(out.hashes, out.labels) =
      load_digest_rows(in, out.header.n_train, out.header.config.channel_set.size());
  return out;
}

/// Splits the preamble text at the end of its header (the newline closing
/// the "train N" line) without parsing the digest rows: the optional
/// channelset block, 3 config lines, the optional calibration line, the
/// channels line, the "classes K" line, K name lines, and the train line.
/// Returns the header byte count.
std::size_t preamble_header_bytes(std::string_view text) {
  std::size_t pos = 0;
  int k = 0;
  const auto next_line = [&]() -> std::string_view {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      throw std::runtime_error("FuzzyHashClassifier::load: truncated preamble");
    }
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  if (text.starts_with("channelset ")) {
    std::size_t n = 0;
    {
      std::istringstream channelset_line{std::string(next_line())};
      std::string tag;
      if (!(channelset_line >> tag >> n) || n == 0 || n > kMaxChannels) {
        throw std::runtime_error("FuzzyHashClassifier::load: bad channel count");
      }
    }
    for (std::size_t i = 0; i < n; ++i) next_line();  // channel lines
  }
  for (int i = 0; i < 3; ++i) next_line();  // metric/threshold/balanced
  if (text.substr(pos).starts_with("calibration ")) next_line();
  next_line();  // channels
  {
    std::istringstream classes_line{std::string(next_line())};
    std::string tag;
    if (!(classes_line >> tag >> k) || tag != "classes" || k <= 0 ||
        k > kMaxModelClasses) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad class count");
    }
  }
  for (int i = 0; i < k; ++i) next_line();  // class names
  next_line();                              // "train N"
  return pos;
}

}  // namespace

namespace {

/// predict builds rows of exactly n_channels * k floats; a forest
/// claiming any other shape would read past them (its trees are only
/// validated against its OWN n_features header).
void check_forest_shape(const ml::RandomForest& forest, int k,
                        std::size_t n_channels) {
  if (forest.n_classes() != k) {
    throw std::runtime_error("FuzzyHashClassifier::load: forest/class mismatch");
  }
  if (forest.n_features() != n_channels * static_cast<std::size_t>(k)) {
    throw std::runtime_error("FuzzyHashClassifier::load: forest/row-width mismatch");
  }
}

}  // namespace

void FuzzyHashClassifier::load(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic) || magic != kModelMagic) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad magic/version");
  }
  Preamble preamble = load_preamble(in);
  forest_.load(in);
  check_forest_shape(forest_, preamble.header.k,
                     preamble.header.config.channel_set.size());
  // Rebuilding the index re-prepares every reference digest (normalized
  // parts + gram arrays) from the raw text loaded above.
  index_ = std::make_unique<TrainIndex>(preamble.hashes, preamble.labels,
                                        std::move(preamble.header.names),
                                        preamble.header.config.channel_set);
  config_ = preamble.header.config;
  calibration_ = preamble.header.calibration;
}

void FuzzyHashClassifier::build_v2_sections(util::SectionedWriter& writer,
                                            std::string& preamble,
                                            std::string& forest) const {
  std::ostringstream preamble_stream;
  save_preamble(preamble_stream);
  preamble = preamble_stream.str();
  std::ostringstream forest_stream;
  forest_.save_binary(forest_stream);
  forest = forest_stream.str();
  writer.add("preamble", std::as_bytes(std::span<const char>(preamble)));
  index_->serialize(writer);
  // The forest image carries its own 64-byte FHCFRST1 header, so inside a
  // 64-byte-aligned section the SoA payload keeps its 8-byte alignment.
  writer.add("forest", std::as_bytes(std::span<const char>(forest)));
}

void FuzzyHashClassifier::save_binary(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("save: not fitted");
  util::SectionedWriter writer(kBinaryModelMagicV2);
  std::string preamble;
  std::string forest;
  build_v2_sections(writer, preamble, forest);
  writer.write_to(out);
  if (!out) throw std::runtime_error("save_binary: write failed");
}

void FuzzyHashClassifier::save_binary_v1(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("save: not fitted");
  std::ostringstream preamble_stream;
  save_preamble(preamble_stream);
  const std::string preamble = preamble_stream.str();
  out.write(kBinaryModelMagicV1.data(),
            static_cast<std::streamsize>(kBinaryModelMagicV1.size()));
  const std::uint64_t preamble_size = preamble.size();
  out.write(reinterpret_cast<const char*>(&preamble_size), sizeof preamble_size);
  out.write(preamble.data(), static_cast<std::streamsize>(preamble.size()));
  // Pad so the forest image lands 8-byte aligned in the file — that is
  // what lets FlatForest attach directly to an mmap of it.
  const std::size_t written = 16 + preamble.size();
  static constexpr char kZeros[8] = {};
  out.write(kZeros, static_cast<std::streamsize>(
                ml::FlatForest::align8(written) - written));
  forest_.save_binary(out);
  if (!out) throw std::runtime_error("save_binary_v1: write failed");
}

bool FuzzyHashClassifier::is_binary_model(std::span<const std::byte> bytes) {
  return starts_with_magic(bytes, kBinaryModelMagicV1) ||
         starts_with_magic(bytes, kBinaryModelMagicV2);
}

void FuzzyHashClassifier::load_binary(std::span<const std::byte> bytes,
                                      std::shared_ptr<const void> keepalive) {
  if (starts_with_magic(bytes, kBinaryModelMagicV2)) {
    load_binary_v2(bytes, std::move(keepalive));
  } else if (starts_with_magic(bytes, kBinaryModelMagicV1)) {
    load_binary_v1(bytes, std::move(keepalive));
  } else {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: bad magic");
  }
}

void FuzzyHashClassifier::load_binary_v1(std::span<const std::byte> bytes,
                                         std::shared_ptr<const void> keepalive) {
  std::uint64_t preamble_size = 0;
  if (bytes.size() < 16) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: truncated header");
  }
  std::memcpy(&preamble_size, bytes.data() + 8, sizeof preamble_size);
  if (preamble_size > bytes.size() - 16) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: truncated preamble");
  }
  std::istringstream preamble_stream(
      std::string(reinterpret_cast<const char*>(bytes.data()) + 16,
                  static_cast<std::size_t>(preamble_size)));
  Preamble preamble = load_preamble(preamble_stream);

  const std::size_t forest_offset =
      ml::FlatForest::align8(16 + static_cast<std::size_t>(preamble_size));
  if (forest_offset > bytes.size()) {
    throw std::runtime_error("FuzzyHashClassifier::load_binary: truncated model");
  }
  forest_.load_binary(bytes.subspan(forest_offset), std::move(keepalive));
  check_forest_shape(forest_, preamble.header.k,
                     preamble.header.config.channel_set.size());
  // v1 carries no prepared pools: rebuild the index (re-preparing every
  // digest) from the preamble text, exactly like the text loader.
  index_ = std::make_unique<TrainIndex>(preamble.hashes, preamble.labels,
                                        std::move(preamble.header.names),
                                        preamble.header.config.channel_set);
  config_ = preamble.header.config;
  calibration_ = preamble.header.calibration;
}

void FuzzyHashClassifier::load_binary_v2(std::span<const std::byte> bytes,
                                         std::shared_ptr<const void> keepalive) {
  const util::SectionedView container =
      util::SectionedView::attach(bytes, kBinaryModelMagicV2);
  // One streaming pass over the payload bytes — the only O(model-size)
  // work on this path, and still orders of magnitude cheaper than
  // re-preparing digests or rebuilding CSR indexes.
  container.verify_checksums();

  const std::span<const std::byte> preamble_bytes = container.section("preamble");
  const std::string_view preamble_text(
      reinterpret_cast<const char*>(preamble_bytes.data()), preamble_bytes.size());
  const std::size_t header_bytes = preamble_header_bytes(preamble_text);
  std::istringstream header_stream{
      std::string(preamble_text.substr(0, header_bytes))};
  PreambleHeader header = load_preamble_header(header_stream);

  forest_.load_binary(container.section("forest"), keepalive);
  check_forest_shape(forest_, header.k, header.config.channel_set.size());

  // The digest rows stay as mapped text; the loader below parses them
  // only if something asks for raw digests (save, inspection). The
  // keepalive copy in the lambda pins the mapping for the view's sake.
  const std::string_view rows_text = preamble_text.substr(header_bytes);
  const std::size_t n_train = header.n_train;
  const std::size_t n_channels = header.config.channel_set.size();
  TrainIndex::RawDigestLoader raw_loader = [rows_text, n_train, n_channels,
                                            keepalive]() {
    std::istringstream rows_stream{std::string(rows_text)};
    return load_digest_rows(rows_stream, n_train, n_channels);
  };
  index_ = TrainIndex::attach(container, std::move(header.names),
                              header.config.channel_set, header.n_train,
                              std::move(raw_loader), keepalive);
  config_ = header.config;
  calibration_ = header.calibration;
}

void FuzzyHashClassifier::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_file: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("save_file: write failed for " + path);
}

void FuzzyHashClassifier::save_binary_file(const std::string& path) const {
  // Binary models get mmap'd by resident daemons; truncating the live
  // inode in place would SIGBUS any process still mapping it, and a crash
  // mid-rewrite must never leave a torn model at `path`. write_file
  // handles both: sibling temp file, fsync, rename, directory fsync.
  if (!fitted()) throw std::logic_error("save: not fitted");
  util::SectionedWriter writer(kBinaryModelMagicV2);
  std::string preamble;
  std::string forest;
  build_v2_sections(writer, preamble, forest);
  writer.write_file(path);
}

FuzzyHashClassifier FuzzyHashClassifier::load_file(const std::string& path) {
  // Sniff the first bytes to pick the format: binary models are mmap'd
  // and attached in place; text models stream through the parser (no
  // in-memory copy of the file).
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_file: cannot open " + path);
  std::array<std::byte, 8> head{};
  in.read(reinterpret_cast<char*>(head.data()), head.size());
  FuzzyHashClassifier clf;
  if (in.gcount() == static_cast<std::streamsize>(head.size()) &&
      is_binary_model(head)) {
    in.close();
    auto map = std::make_shared<util::ModelMap>(path);
    clf.load_binary(map->bytes(), map);
    return clf;
  }
  in.clear();  // short files leave eof/fail set; rewind for the text parser
  in.seekg(0);
  clf.load(in);
  return clf;
}

}  // namespace fhc::core
