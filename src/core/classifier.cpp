#include "core/classifier.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ml/class_weight.hpp"
#include "util/thread_pool.hpp"

namespace fhc::core {

void FuzzyHashClassifier::fit(const std::vector<FeatureHashes>& train_hashes,
                              const std::vector<int>& labels,
                              std::vector<std::string> class_names,
                              const ClassifierConfig& config) {
  if (train_hashes.empty()) throw std::invalid_argument("fit: empty training set");
  if (train_hashes.size() != labels.size()) {
    throw std::invalid_argument("fit: hashes/labels size mismatch");
  }
  config_ = config;
  index_ = std::make_unique<TrainIndex>(train_hashes, labels, std::move(class_names));

  // Leave-self-out featurization of the training rows: sample i's own
  // digests are excluded from the class maxima so no column degenerates to
  // the constant 100.
  std::vector<int> exclude_ids(train_hashes.size());
  std::iota(exclude_ids.begin(), exclude_ids.end(), 0);
  const ml::Matrix x = build_feature_matrix(*index_, train_hashes, config_.metric,
                                            exclude_ids, config_.channels);

  std::vector<double> weights;
  if (config_.balanced_class_weights) {
    weights = ml::balanced_sample_weights(labels);
  }
  forest_.fit(x, labels, index_->n_classes(), weights, config_.forest);
}

Prediction FuzzyHashClassifier::predict(const FeatureHashes& sample) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  std::vector<float> row(row_width());
  fill_feature_row(*index_, sample, config_.metric, /*exclude_id=*/-1, row,
                   config_.channels);
  return predict_from_row(row);
}

Prediction FuzzyHashClassifier::predict_from_row(std::span<const float> row) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  if (row.size() != row_width()) {
    throw std::invalid_argument("predict_from_row: bad row width");
  }
  Prediction out;
  out.proba = forest_.predict_proba(row);
  const auto best = std::max_element(out.proba.begin(), out.proba.end());
  out.confidence = *best;
  const int argmax = static_cast<int>(best - out.proba.begin());
  out.label = out.confidence >= config_.confidence_threshold ? argmax
                                                             : ml::kUnknownLabel;
  return out;
}

std::size_t FuzzyHashClassifier::row_width() const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  return static_cast<std::size_t>(kFeatureTypeCount * index_->n_classes());
}

std::vector<int> FuzzyHashClassifier::predict_batch(
    const std::vector<FeatureHashes>& samples, ml::Matrix* out_proba) const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  const ml::Matrix x =
      build_feature_matrix(*index_, samples, config_.metric, {}, config_.channels);
  ml::Matrix proba = forest_.predict_proba_matrix(x);
  std::vector<int> labels = labels_from_proba(proba, config_.confidence_threshold);
  if (out_proba != nullptr) *out_proba = std::move(proba);
  return labels;
}

std::vector<int> FuzzyHashClassifier::labels_from_proba(const ml::Matrix& proba,
                                                        double threshold) const {
  std::vector<int> labels(proba.rows());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const auto row = proba.row(i);
    const auto best = std::max_element(row.begin(), row.end());
    labels[i] = *best >= threshold
                    ? static_cast<int>(best - row.begin())
                    : ml::kUnknownLabel;
  }
  return labels;
}

std::vector<double> FuzzyHashClassifier::column_importances() const {
  return forest_.feature_importances();
}

std::array<double, kFeatureTypeCount> FuzzyHashClassifier::feature_type_importance()
    const {
  const std::vector<double> columns = column_importances();
  const auto k = static_cast<std::size_t>(index_->n_classes());
  std::array<double, kFeatureTypeCount> grouped{};
  for (std::size_t f = 0; f < kFeatureTypeCount; ++f) {
    for (std::size_t c = 0; c < k; ++c) grouped[f] += columns[f * k + c];
  }
  const double total = grouped[0] + grouped[1] + grouped[2];
  if (total > 0.0) {
    for (double& g : grouped) g /= total;
  }
  return grouped;
}

const std::vector<std::string>& FuzzyHashClassifier::class_names() const {
  if (!fitted()) throw std::logic_error("FuzzyHashClassifier: not fitted");
  return index_->class_names();
}

namespace {
constexpr const char* kModelMagic = "fhc-fuzzy-hash-classifier-v1";
}  // namespace

void FuzzyHashClassifier::save(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("save: not fitted");
  out << kModelMagic << '\n';
  out << "metric " << static_cast<int>(config_.metric) << '\n';
  out << "threshold " << config_.confidence_threshold << '\n';
  out << "balanced " << (config_.balanced_class_weights ? 1 : 0) << '\n';
  out << "channels " << config_.channels[0] << ' ' << config_.channels[1] << ' '
      << config_.channels[2] << '\n';

  const int k = index_->n_classes();
  out << "classes " << k << '\n';
  // Class names may contain spaces ("Celera Assembler"): one per line.
  for (const std::string& name : index_->class_names()) out << name << '\n';

  // Reference digests, reconstructed in original training order so a
  // load/save roundtrip is byte-stable. Digest text is space-free.
  out << "train " << index_->train_size() << '\n';
  std::vector<std::string> rows(index_->train_size());
  for (int c = 0; c < k; ++c) {
    const auto& ids = index_->train_ids(c);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      std::ostringstream row;
      row << c;
      for (int f = 0; f < kFeatureTypeCount; ++f) {
        row << ' ' << index_->digests(static_cast<FeatureType>(f), c)[j].to_string();
      }
      rows[static_cast<std::size_t>(ids[j])] = row.str();
    }
  }
  for (const std::string& row : rows) out << row << '\n';

  forest_.save(out);
}

void FuzzyHashClassifier::load(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic) || magic != kModelMagic) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad magic/version");
  }
  std::string tag;
  int metric = 0;
  int balanced = 0;
  ClassifierConfig config;
  if (!(in >> tag >> metric) || tag != "metric" ||
      !(in >> tag >> config.confidence_threshold) || tag != "threshold" ||
      !(in >> tag >> balanced) || tag != "balanced") {
    throw std::runtime_error("FuzzyHashClassifier::load: bad config block");
  }
  config.metric = static_cast<ssdeep::EditMetric>(metric);
  config.balanced_class_weights = balanced != 0;
  if (!(in >> tag) || tag != "channels") {
    throw std::runtime_error("FuzzyHashClassifier::load: bad channels");
  }
  for (auto& channel : config.channels) {
    int value = 0;
    if (!(in >> value)) throw std::runtime_error("load: bad channel flag");
    channel = value != 0;
  }

  int k = 0;
  if (!(in >> tag >> k) || tag != "classes" || k <= 0) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad class count");
  }
  in.ignore();  // consume newline before getline
  std::vector<std::string> names(static_cast<std::size_t>(k));
  for (std::string& name : names) {
    if (!std::getline(in, name) || name.empty()) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad class name");
    }
  }

  std::size_t n_train = 0;
  if (!(in >> tag >> n_train) || tag != "train" || n_train == 0) {
    throw std::runtime_error("FuzzyHashClassifier::load: bad train block");
  }
  std::vector<FeatureHashes> hashes(n_train);
  std::vector<int> labels(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    std::string file_text;
    std::string strings_text;
    std::string symbols_text;
    if (!(in >> labels[i] >> file_text >> strings_text >> symbols_text)) {
      throw std::runtime_error("FuzzyHashClassifier::load: truncated digests");
    }
    const auto file = ssdeep::parse_digest(file_text);
    const auto strings = ssdeep::parse_digest(strings_text);
    const auto symbols = ssdeep::parse_digest(symbols_text);
    if (!file || !strings || !symbols) {
      throw std::runtime_error("FuzzyHashClassifier::load: bad digest");
    }
    hashes[i].file = *file;
    hashes[i].strings = *strings;
    hashes[i].symbols = *symbols;
    hashes[i].has_symbols = !symbols->part1.empty();
  }

  forest_.load(in);
  if (forest_.n_classes() != k) {
    throw std::runtime_error("FuzzyHashClassifier::load: forest/class mismatch");
  }
  // Rebuilding the index re-prepares every reference digest (normalized
  // parts + gram arrays) from the raw text loaded above.
  index_ = std::make_unique<TrainIndex>(hashes, labels, std::move(names));
  config_ = config;
}

void FuzzyHashClassifier::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_file: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("save_file: write failed for " + path);
}

FuzzyHashClassifier FuzzyHashClassifier::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_file: cannot open " + path);
  FuzzyHashClassifier clf;
  clf.load(in);
  return clf;
}

}  // namespace fhc::core
