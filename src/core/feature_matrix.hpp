// Similarity feature matrix: fuzzy hashes -> fixed-width numeric features.
//
// The classifier needs a fixed-dimensional representation of "how similar
// is this sample to what we know". Column (f, c) of the matrix is the
// maximum SSDeep similarity between the sample's channel-f digest and the
// channel-f digests of the *training* samples of known class c:
//
//     x[i, f*K + c] = max_{j in train, y_j = c} sim(h_f(i), h_f(j))
//
// giving n_channels*K columns for K known classes. The channel roster is
// a runtime core::ChannelSet carried by the TrainIndex (default: the
// paper's static triple; the runtime execution-fingerprint channel is the
// first extension). Channel-type importances (Table 5) are recovered by
// summing forest importances over each f-group.
//
// The pairwise comparisons dominate end-to-end runtime, so the builder
// parallelizes over samples, prepares every training digest exactly once
// (PreparedDigest: run-normalized parts + presorted 7-gram arrays), and
// fills rows candidate-driven: each channel's inverted 7-gram index
// (ssdeep::GramIndexView, one per blocksize bucket) is probed with the
// query's own grams, yielding the exact set of training digests that can
// score > 0 — a comparison passes the merge-scan gate only when a 7-gram
// is shared, so every non-candidate is provably score 0 and is never
// touched. The all-pairs scan (whole-bucket blocksize gate + per-digest
// merge-scan gate) is kept as the reference oracle
// (fill_feature_row_slice_all_pairs); the indexed fill is bit-identical
// to it (property tests in tests/core/test_feature_matrix.cpp).
//
// Storage vs view: everything the row fill reads — normalized part text,
// gram arrays, prepared-digest records, CSR posting lists, entry tables —
// lives in flat pools, and the structures the fill walks (PreparedBucket,
// ChannelGramIndex) are spans into them. The pools are either owned
// vectors, laid out in canonical serialization order by the training
// constructor, or sections of a memory-mapped v2 model container
// (TrainIndex::attach), in which case RELOAD does no digest
// re-preparation and no gram-index rebuild: serialize() dumps the pools
// verbatim and attach() wires spans back over them after structural
// validation. The attached index is bit-identical to a text-load rebuild
// on row fills and gate stats (property tests in
// tests/core/test_serialization.cpp).
//
// Serialization of the channel roster is conditional: a static-triple
// index emits the exact pre-registry bytes (48-byte version-1 Meta, no
// channel-names section), so every old model file attaches unchanged;
// any other ChannelSet emits a version-2 counts header plus a
// channel-names section ("channels" tag).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/features.hpp"
#include "ml/matrix.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/gram_index.hpp"
#include "ssdeep/prepared.hpp"

namespace fhc::util {
class SectionedView;
class SectionedWriter;
}  // namespace fhc::util

namespace fhc::core {

/// Section tags of the TrainIndex payload inside a v2 model container
/// (core/classifier.cpp adds "preamble" and "forest" around them;
/// tools/fhc_inspect.cpp pretty-prints the lot).
namespace model_section {
inline constexpr std::string_view kMeta = "tidxmeta";        // counts header
inline constexpr std::string_view kChannels = "channels";    // ChannelSet text
inline constexpr std::string_view kCellBuckets = "cellbkts";  // u32 per (f, c)
inline constexpr std::string_view kBuckets = "buckets";       // BucketMeta each
inline constexpr std::string_view kRecords = "preprecs";      // PreparedRec each
inline constexpr std::string_view kTextPool = "textpool";     // char pool
inline constexpr std::string_view kGramPool = "grampool";     // u64 gram pool
inline constexpr std::string_view kBucketIds = "bktids";      // i32 per digest
inline constexpr std::string_view kClassIds = "clsids";       // i32 per sample
inline constexpr std::string_view kEntries = "gentries";      // GramEntry each
inline constexpr std::string_view kGramDir = "gramdir";       // GramDirEntry each
inline constexpr std::string_view kGramKeys = "gramkeys";     // u64 CSR keys
inline constexpr std::string_view kGramOffsets = "gramoffs";  // u32 CSR offsets
inline constexpr std::string_view kPostings = "gpost";        // u32 CSR postings
}  // namespace model_section

/// ChannelSet <-> the text stored in the "channels" section and the
/// preamble's channelset block: one "name kind" line per channel.
std::string channel_set_to_text(const ChannelSet& channels);
ChannelSet channel_set_from_text(std::string_view text);

/// The reference index: per known class, per channel, the training
/// digests to compare against.
class TrainIndex {
 public:
  /// One prepared training digest as offsets into the shared text/gram
  /// pools: normalized part text and sorted packed 7-gram array for each
  /// of the two parts. Fixed-layout POD — serialized verbatim as the
  /// "preprecs" section.
  struct PreparedRec {
    std::uint64_t t1_off = 0;  // part1 text offset in the char pool
    std::uint64_t g1_off = 0;  // part1 gram offset in the u64 pool
    std::uint64_t t2_off = 0;
    std::uint64_t g2_off = 0;
    std::uint32_t t1_len = 0;
    std::uint32_t g1_len = 0;
    std::uint32_t t2_len = 0;
    std::uint32_t g2_len = 0;
  };
  static_assert(sizeof(PreparedRec) == 48);

  /// Training digests of one (channel, class) cell that share a blocksize.
  /// `ids` holds the original train-sample id of each digest (for
  /// exclude-self lookups), parallel to `recs`. A query skips whole
  /// buckets whose blocksize cannot pair with its own (equal, double, or
  /// half). Spans point into the index's pools (owned or mapped);
  /// view_of() materializes a digest view from a (bucket, pos) address.
  struct PreparedBucket {
    std::uint32_t blocksize = 0;
    std::span<const PreparedRec> recs;
    std::span<const std::int32_t> ids;  // parallel to recs
    std::size_t size() const noexcept { return recs.size(); }
  };

  /// Serialized shape of one bucket ("buckets" section): buckets are
  /// stored cell-major, `count` digests each, so the bucket's recs/ids
  /// are the next `count` entries of their pools.
  struct BucketMeta {
    std::uint32_t blocksize = 0;
    std::uint32_t count = 0;
  };
  static_assert(sizeof(BucketMeta) == 8);

  /// One prepared training digest of a channel, addressed by the gram
  /// index: its class, the blocksize bucket it sits in (index into
  /// prepared(f, cls)), and its position inside that bucket. Entry ids
  /// are assigned in (cls, bucket, pos) order, so a sorted candidate
  /// list is grouped by class, classes ascending.
  struct GramEntry {
    std::int32_t cls = 0;
    std::int32_t bucket = 0;
    std::int32_t pos = 0;
  };
  static_assert(sizeof(GramEntry) == 12);

  /// Serialized shape of one per-blocksize CSR pair ("gramdir" section):
  /// key/offset/posting array lengths, carved cumulatively from the CSR
  /// pools in directory order (part1 then part2; each offsets array has
  /// keys + 1 entries).
  struct GramDirEntry {
    std::uint32_t blocksize = 0;
    std::uint32_t p1_keys = 0;
    std::uint32_t p2_keys = 0;
    std::uint32_t p1_postings = 0;
    std::uint32_t p2_postings = 0;
  };
  static_assert(sizeof(GramDirEntry) == 20);

  /// The legacy fixed-shape counts header — the exact 48-byte "tidxmeta"
  /// section every static-triple model carries (version 1). Non-default
  /// channel sets serialize the version-2 layout instead: the same first
  /// 16 bytes, then u32 n_channels + u32 reserved + per-channel
  /// entry_counts[n] + dir_counts[n]. parse_meta reads either.
  struct Meta {
    std::uint32_t version = 1;
    std::uint32_t n_classes = 0;
    std::uint64_t train_count = 0;
    std::array<std::uint32_t, kFeatureTypeCount> entry_counts{};  // per channel
    std::array<std::uint32_t, kFeatureTypeCount> dir_counts{};    // per channel
    std::uint32_t reserved0 = 0;
    std::uint32_t reserved1 = 0;
  };
  static_assert(sizeof(Meta) == 48);

  /// The parsed counts header, channel-count-agnostic.
  struct MetaInfo {
    std::uint32_t version = 1;  // 1 = static triple, 2 = channel registry
    std::uint32_t n_classes = 0;
    std::uint64_t train_count = 0;
    std::vector<std::uint32_t> entry_counts;  // one per channel
    std::vector<std::uint32_t> dir_counts;    // one per channel
  };

  /// Parses a "tidxmeta" section of either version (48-byte version-1
  /// POD or the version-2 dynamic layout). Throws std::runtime_error on
  /// any shape mismatch. Shared by attach() and tools/fhc_inspect.
  static MetaInfo parse_meta(std::span<const std::byte> bytes);

  /// The inverted 7-gram view of one channel across ALL classes: per
  /// blocksize bucket, a part1 and a part2 CSR index whose postings are
  /// GramEntry ids. A query probes the (at most three) buckets its own
  /// blocksize can pair with — part1 vs part1 and part2 vs part2 at the
  /// equal blocksize, crosswise at double/half (matching the part
  /// pairing compare_prepared scores) — and gets the exact set of
  /// training digests that can score > 0.
  struct ChannelGramIndex {
    struct BlocksizeIndex {
      std::uint32_t blocksize = 0;
      ssdeep::GramIndexView part1;  // postings: entries whose part1 holds the gram
      ssdeep::GramIndexView part2;
    };
    std::span<const GramEntry> entries;
    std::vector<BlocksizeIndex> by_blocksize;
  };

  /// Produces the raw training rows (hashes in original train order plus
  /// their labels) for an attached index — called at most once, only when
  /// digests() or save paths need the raw text. Keeps attach itself
  /// O(metadata).
  using RawDigestLoader =
      std::function<std::pair<std::vector<FeatureHashes>, std::vector<int>>()>;

  /// `labels[i]` in 0..n_classes-1; `class_names.size() == n_classes`.
  /// Prepares every digest of every channel of `channels` and builds the
  /// gram indexes (the owned path). Samples carrying fewer channels than
  /// the set contribute empty digests on the missing ones.
  TrainIndex(const std::vector<FeatureHashes>& train_hashes,
             const std::vector<int>& labels, std::vector<std::string> class_names,
             ChannelSet channels = ChannelSet::static_triple());

  /// Wires a TrainIndex over the sections of a v2 model container without
  /// preparing a single digest or building any index: the pools are used
  /// in place after structural validation (offsets in range, CSR shapes
  /// consistent, entries addressable). `channels` is the roster the model
  /// preamble declared; it is cross-checked against the container's
  /// counts header (and channel-names section, when present). `keepalive`
  /// (e.g. the util::ModelMap the container is a view of) is retained for
  /// the index's lifetime. Throws std::runtime_error on any
  /// inconsistency. Returns by unique_ptr: the index self-references its
  /// pools and holds a std::once_flag, so it is neither copyable nor
  /// movable.
  static std::unique_ptr<TrainIndex> attach(const util::SectionedView& container,
                                            std::vector<std::string> class_names,
                                            ChannelSet channels,
                                            std::size_t train_count,
                                            RawDigestLoader raw_loader,
                                            std::shared_ptr<const void> keepalive);

  /// Adds the index's sections to `writer`. The emitted bytes reference
  /// the live pools (zero-copy), so the writer must be written out while
  /// this index is alive. serialize() of an attach()ed index reproduces
  /// the original sections byte for byte. Static-triple indexes emit the
  /// legacy version-1 counts header and no channel-names section.
  void serialize(util::SectionedWriter& writer) const;

  /// True when this index borrows mapped pools (attach path) rather than
  /// owning them — the construction-path test hook.
  bool attached() const noexcept { return attached_; }

  int n_classes() const noexcept { return static_cast<int>(class_names_.size()); }
  const std::vector<std::string>& class_names() const noexcept { return class_names_; }
  std::size_t train_size() const noexcept { return train_sample_count_; }

  /// The channel roster; position f everywhere below refers to
  /// channels()[f].
  const ChannelSet& channels() const noexcept { return channels_; }
  std::size_t n_channels() const noexcept { return channels_.size(); }

  /// Raw digests of channel `f` for class `c`, parallel to train_ids(c) —
  /// the serialization/inspection view (save() writes these verbatim).
  /// On an attached index the rows are materialized lazily from the
  /// retained preamble on first use.
  const std::vector<ssdeep::FuzzyDigest>& digests(std::size_t f, int c) const;
  const std::vector<ssdeep::FuzzyDigest>& digests(FeatureType f, int c) const {
    return digests(static_cast<std::size_t>(f), c);
  }

  /// Prepared digests of channel `f` for class `c`, bucketed by blocksize —
  /// the comparison view used by fill_feature_row.
  std::span<const PreparedBucket> prepared(std::size_t f, int c) const;
  std::span<const PreparedBucket> prepared(FeatureType f, int c) const {
    return prepared(static_cast<std::size_t>(f), c);
  }

  /// The prepared-digest view at (bucket, pos) — pure pointer arithmetic
  /// into the pools, no allocation.
  ssdeep::PreparedDigestView view_of(const PreparedBucket& bucket,
                                     std::size_t pos) const noexcept {
    const PreparedRec& rec = bucket.recs[pos];
    return {bucket.blocksize,
            {std::string_view(text_pool_.data() + rec.t1_off, rec.t1_len),
             gram_pool_.subspan(rec.g1_off, rec.g1_len)},
            {std::string_view(text_pool_.data() + rec.t2_off, rec.t2_len),
             gram_pool_.subspan(rec.g2_off, rec.g2_len)}};
  }

  /// Original train-sample ids for class c (for exclude-self lookups).
  std::span<const std::int32_t> train_ids(int c) const;

  /// The inverted 7-gram candidate index of channel `f` — the view the
  /// indexed row fill probes instead of scanning every prepared digest.
  const ChannelGramIndex& gram_index(std::size_t f) const;
  const ChannelGramIndex& gram_index(FeatureType f) const {
    return gram_index(static_cast<std::size_t>(f));
  }

  /// Column labels: "<channel-name>:<Class>" (n_channels*K entries).
  std::vector<std::string> feature_names() const;

 private:
  TrainIndex() = default;

  /// Builds the derived wiring (buckets, channel views, id offsets) from
  /// the pool spans and validates every cross-reference. Shared by the
  /// owned constructor and attach().
  void wire();
  void materialize_raw() const;

  std::vector<std::string> class_names_;
  ChannelSet channels_;
  std::size_t train_sample_count_ = 0;
  bool attached_ = false;
  std::shared_ptr<const void> keepalive_;
  MetaInfo meta_{};

  // Owned storage, laid out in canonical serialization order (empty on
  // the attach path — there the spans below point into the container).
  std::vector<std::uint32_t> cell_bucket_counts_store_;
  std::vector<BucketMeta> bucket_meta_store_;
  std::vector<PreparedRec> recs_store_;
  std::vector<char> text_store_;
  std::vector<std::uint64_t> gram_store_;
  std::vector<std::int32_t> bucket_ids_store_;
  std::vector<std::int32_t> class_ids_store_;
  std::vector<GramEntry> entries_store_;
  std::vector<GramDirEntry> gram_dir_store_;
  std::vector<std::uint64_t> gram_keys_store_;
  std::vector<std::uint32_t> gram_offsets_store_;
  std::vector<std::uint32_t> gram_postings_store_;

  // Pool views — over the owned vectors or the mapped sections.
  std::span<const std::uint32_t> cell_bucket_counts_;
  std::span<const BucketMeta> bucket_meta_;
  std::span<const PreparedRec> recs_;
  std::span<const char> text_pool_;
  std::span<const std::uint64_t> gram_pool_;
  std::span<const std::int32_t> bucket_ids_;
  std::span<const std::int32_t> class_ids_;
  std::span<const GramEntry> entries_;
  std::span<const GramDirEntry> gram_dir_;
  std::span<const std::uint64_t> gram_keys_;
  std::span<const std::uint32_t> gram_offsets_;
  std::span<const std::uint32_t> gram_postings_;

  // Derived wiring built by wire().
  std::vector<PreparedBucket> buckets_;        // cell-major, all cells
  std::vector<std::size_t> cell_offsets_;      // n_channels*k + 1 entries
  std::vector<std::size_t> class_id_offsets_;  // k + 1 entries into class_ids_
  std::vector<ChannelGramIndex> gram_index_;   // one per channel

  // Raw digests: eager on the owned path, lazily materialized from
  // `raw_loader_` on the attach path (serialization/inspection only —
  // never touched by row fills).
  RawDigestLoader raw_loader_;
  mutable std::once_flag raw_once_;
  // [feature][class] -> digests in original train order
  mutable std::vector<std::vector<std::vector<ssdeep::FuzzyDigest>>> digests_;
};

/// Which feature channels participate. Default-constructed (or
/// kAllChannels) enables every channel of whatever set it meets; a mask
/// built from explicit flags pins exactly those positions (channels past
/// its end are disabled — "static-only" against a runtime-channel model
/// is ChannelMask{true, true, true}). Disabled channels produce
/// constant-zero columns, which the trees never split on. Used by the
/// feature-ablation bench and the --channels tool flag.
class ChannelMask {
 public:
  constexpr ChannelMask() = default;  // unrestricted: every channel enabled

  constexpr ChannelMask(std::initializer_list<bool> bits) {
    if (bits.size() > kMaxChannels) {
      throw std::invalid_argument("ChannelMask: too many channels");
    }
    for (const bool bit : bits) bits_[count_++] = bit;
  }

  constexpr bool enabled(std::size_t i) const noexcept {
    return count_ == 0 || (i < count_ && bits_[i]);
  }

  /// Pins position i (extending the mask with enabled positions up to it).
  constexpr void set(std::size_t i, bool value) {
    if (i >= kMaxChannels) {
      throw std::invalid_argument("ChannelMask: channel out of range");
    }
    while (count_ <= i) bits_[count_++] = true;
    bits_[i] = value;
  }

  /// 0 = unrestricted; otherwise the number of pinned positions.
  constexpr std::size_t size() const noexcept { return count_; }

  constexpr bool operator==(const ChannelMask& other) const noexcept {
    if (count_ != other.count_) return false;
    for (std::size_t i = 0; i < count_; ++i) {
      if (bits_[i] != other.bits_[i]) return false;
    }
    return true;
  }

 private:
  std::array<bool, kMaxChannels> bits_{};
  std::size_t count_ = 0;
};

inline constexpr ChannelMask kAllChannels{};

/// A query's channels prepared once, so repeated or sliced scoring against
/// the index never re-normalizes the sample side. Channels disabled by the
/// mask stay default-constructed (they are never compared); channel()
/// hands out an empty prepared digest past the sample's own channel count
/// (it pairs with nothing and scores 0, like a stripped symbols channel).
struct PreparedQuery {
  std::vector<ssdeep::PreparedDigest> channels;

  PreparedQuery() = default;
  explicit PreparedQuery(const FeatureHashes& sample,
                         const ChannelMask& mask = kAllChannels);

  const ssdeep::PreparedDigest& channel(std::size_t f) const noexcept {
    static const ssdeep::PreparedDigest kEmpty{};
    return f < channels.size() ? channels[f] : kEmpty;
  }
};

/// One query's candidate sets against one TrainIndex: the per-channel
/// GramIndex probe results (sorted, class-grouped entry ids), computed
/// once. Slice fills over any class partition share one probe — without
/// this, a service scoring a row in S parallel slices would repeat the
/// identical probe S times per channel.
class QueryCandidates {
 public:
  QueryCandidates() = default;
  QueryCandidates(const TrainIndex& index, const PreparedQuery& query,
                  const ChannelMask& channels = kAllChannels);

  /// Sorted candidate entry ids of channel `f` (empty for disabled
  /// channels), indices into index.gram_index(f).entries.
  const std::vector<std::uint32_t>& of(std::size_t f) const noexcept {
    return per_channel_[f];
  }

 private:
  std::vector<std::vector<std::uint32_t>> per_channel_;
};

/// What the candidate index saved on one (or more, when accumulated) row
/// fills: of the digests an all-pairs scan would have visited (those in
/// blocksize-pairable buckets of enabled channels within the class
/// range), how many were actually scored with compare_prepared versus
/// never touched — pruned by the GramIndex probe, skipped as the
/// excluded self, or cut by a class's score-100 early exit.
struct RowFillStats {
  std::uint64_t candidates_scored = 0;
  std::uint64_t index_skipped = 0;
};

/// Feature row for one sample. `exclude_id >= 0` skips the training sample
/// with that id (leave-self-out when featurizing training rows). `stats`,
/// when given, accumulates the candidate-index gate counters.
void fill_feature_row(const TrainIndex& index, const FeatureHashes& sample,
                      ssdeep::EditMetric metric, int exclude_id,
                      std::span<float> out_row,
                      const ChannelMask& channels = kAllChannels,
                      RowFillStats* stats = nullptr);

/// Columns (f, c) for every channel f and classes c in
/// [class_begin, class_end) of one feature row — the shard view the
/// classification service uses to compute one query's similarity row in
/// parallel slices. `out_row` is the full-width row; only the slice's
/// columns are written. Covering [0, n_classes) in any partition is
/// bit-identical to fill_feature_row on the same sample.
void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row,
                            const ChannelMask& channels = kAllChannels,
                            RowFillStats* stats = nullptr);

/// Slice fill over a precomputed probe: identical output to the overload
/// above, but the GramIndex probe is not repeated — `candidates` must
/// have been built from the same (index, query, channels).
void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            const QueryCandidates& candidates,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row,
                            const ChannelMask& channels = kAllChannels,
                            RowFillStats* stats = nullptr);

/// The pre-GramIndex all-pairs scan: every prepared digest of every
/// blocksize-pairable bucket in the slice is run through
/// compare_prepared. Kept as the property-test oracle and bench baseline
/// for the indexed fill, which must reproduce it bit for bit.
void fill_feature_row_slice_all_pairs(const TrainIndex& index,
                                      const PreparedQuery& query,
                                      ssdeep::EditMetric metric, int exclude_id,
                                      int class_begin, int class_end,
                                      std::span<float> out_row,
                                      const ChannelMask& channels = kAllChannels);

/// Full-row convenience over fill_feature_row_slice_all_pairs.
void fill_feature_row_all_pairs(const TrainIndex& index,
                                const FeatureHashes& sample,
                                ssdeep::EditMetric metric, int exclude_id,
                                std::span<float> out_row,
                                const ChannelMask& channels = kAllChannels);

/// Full matrix for `samples` (parallel). `exclude_ids` is either empty or
/// one id per sample (-1 = none).
ml::Matrix build_feature_matrix(const TrainIndex& index,
                                const std::vector<FeatureHashes>& samples,
                                ssdeep::EditMetric metric,
                                const std::vector<int>& exclude_ids = {},
                                const ChannelMask& channels = kAllChannels);

}  // namespace fhc::core
