// Similarity feature matrix: fuzzy hashes -> fixed-width numeric features.
//
// The classifier needs a fixed-dimensional representation of "how similar
// is this sample to what we know". Column (f, c) of the matrix is the
// maximum SSDeep similarity between the sample's channel-f digest and the
// channel-f digests of the *training* samples of known class c:
//
//     x[i, f*K + c] = max_{j in train, y_j = c} sim(h_f(i), h_f(j))
//
// giving 3*K columns for K known classes. Feature-type importances
// (Table 5) are recovered by summing forest importances over each f-group.
//
// The pairwise comparisons dominate end-to-end runtime, so the builder
// parallelizes over samples, prepares every training digest exactly once
// (PreparedDigest: run-normalized parts + presorted 7-gram arrays, built
// at index-construction time — including after model load), and fills
// rows candidate-driven: each channel's inverted 7-gram index
// (ssdeep::GramIndex, one per blocksize bucket) is probed with the
// query's own grams, yielding the exact set of training digests that can
// score > 0 — a comparison passes the merge-scan gate only when a 7-gram
// is shared, so every non-candidate is provably score 0 and is never
// touched. The all-pairs scan (whole-bucket blocksize gate + per-digest
// merge-scan gate) is kept as the reference oracle
// (fill_feature_row_slice_all_pairs); the indexed fill is bit-identical
// to it (property tests in tests/core/test_feature_matrix.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "ml/matrix.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/gram_index.hpp"
#include "ssdeep/prepared.hpp"

namespace fhc::core {

/// The reference index: per known class, per channel, the training
/// digests to compare against.
class TrainIndex {
 public:
  /// Training digests of one (channel, class) cell that share a blocksize,
  /// prepared once at index-build time. `ids` holds the original
  /// train-sample id of each digest (for exclude-self lookups). A query
  /// skips whole buckets whose blocksize cannot pair with its own
  /// (equal, double, or half).
  struct PreparedBucket {
    std::uint32_t blocksize = 0;
    std::vector<ssdeep::PreparedDigest> digests;
    std::vector<int> ids;  // parallel to digests
  };

  /// One prepared training digest of a channel, addressed by the gram
  /// index: its class, the blocksize bucket it sits in (index into
  /// prepared(f, cls)), and its position inside that bucket. Entry ids
  /// are assigned in (cls, bucket, pos) order, so a sorted candidate
  /// list is grouped by class, classes ascending.
  struct GramEntry {
    std::int32_t cls = 0;
    std::int32_t bucket = 0;
    std::int32_t pos = 0;
  };

  /// The inverted 7-gram view of one channel across ALL classes: per
  /// blocksize bucket, a part1 and a part2 GramIndex whose postings are
  /// GramEntry ids. A query probes the (at most three) buckets its own
  /// blocksize can pair with — part1 vs part1 and part2 vs part2 at the
  /// equal blocksize, crosswise at double/half (matching the part
  /// pairing compare_prepared scores) — and gets the exact set of
  /// training digests that can score > 0.
  struct ChannelGramIndex {
    struct BlocksizeIndex {
      std::uint32_t blocksize = 0;
      ssdeep::GramIndex part1;  // postings: entries whose part1 holds the gram
      ssdeep::GramIndex part2;
    };
    std::vector<GramEntry> entries;
    std::vector<BlocksizeIndex> by_blocksize;
  };

  /// `labels[i]` in 0..n_classes-1; `class_names.size() == n_classes`.
  TrainIndex(const std::vector<FeatureHashes>& train_hashes,
             const std::vector<int>& labels, std::vector<std::string> class_names);

  int n_classes() const noexcept { return static_cast<int>(class_names_.size()); }
  const std::vector<std::string>& class_names() const noexcept { return class_names_; }
  std::size_t train_size() const noexcept { return train_sample_count_; }

  /// Raw digests of channel `f` for class `c`, parallel to train_ids(c) —
  /// the serialization/inspection view (save() writes these verbatim).
  const std::vector<ssdeep::FuzzyDigest>& digests(FeatureType f, int c) const;

  /// Prepared digests of channel `f` for class `c`, bucketed by blocksize —
  /// the comparison view used by fill_feature_row.
  const std::vector<PreparedBucket>& prepared(FeatureType f, int c) const;

  /// Original train-sample ids for class c (for exclude-self lookups).
  const std::vector<int>& train_ids(int c) const;

  /// The inverted 7-gram candidate index of channel `f` — the view the
  /// indexed row fill probes instead of scanning every prepared digest.
  const ChannelGramIndex& gram_index(FeatureType f) const;

  /// Column labels: "ssdeep-file:<Class>", ... (3*K entries).
  std::vector<std::string> feature_names() const;

 private:
  std::vector<std::string> class_names_;
  // [feature][class] -> digests / original ids
  std::vector<std::vector<std::vector<ssdeep::FuzzyDigest>>> digests_;
  // [feature][class] -> blocksize buckets of prepared digests
  std::vector<std::vector<std::vector<PreparedBucket>>> prepared_;
  std::vector<std::vector<int>> ids_;
  // [feature] -> inverted 7-gram candidate index over every class
  std::vector<ChannelGramIndex> gram_index_;
  std::size_t train_sample_count_ = 0;
};

/// Which feature channels participate (all three by default); disabled
/// channels produce constant-zero columns, which the trees never split on.
/// Used by the feature-ablation bench.
using ChannelMask = std::array<bool, kFeatureTypeCount>;
inline constexpr ChannelMask kAllChannels = {true, true, true};

/// A query's channels prepared once, so repeated or sliced scoring against
/// the index never re-normalizes the sample side. Channels disabled by the
/// mask stay default-constructed (they are never compared).
struct PreparedQuery {
  std::array<ssdeep::PreparedDigest, kFeatureTypeCount> channels;

  PreparedQuery() = default;
  explicit PreparedQuery(const FeatureHashes& sample,
                         const ChannelMask& mask = kAllChannels);
};

/// One query's candidate sets against one TrainIndex: the per-channel
/// GramIndex probe results (sorted, class-grouped entry ids), computed
/// once. Slice fills over any class partition share one probe — without
/// this, a service scoring a row in S parallel slices would repeat the
/// identical probe S times per channel.
class QueryCandidates {
 public:
  QueryCandidates() = default;
  QueryCandidates(const TrainIndex& index, const PreparedQuery& query,
                  const ChannelMask& channels = kAllChannels);

  /// Sorted candidate entry ids of channel `f` (empty for disabled
  /// channels), indices into index.gram_index(f).entries.
  const std::vector<std::uint32_t>& of(FeatureType f) const noexcept {
    return per_channel_[static_cast<std::size_t>(f)];
  }

 private:
  std::array<std::vector<std::uint32_t>, kFeatureTypeCount> per_channel_;
};

/// What the candidate index saved on one (or more, when accumulated) row
/// fills: of the digests an all-pairs scan would have visited (those in
/// blocksize-pairable buckets of enabled channels within the class
/// range), how many were actually scored with compare_prepared versus
/// never touched — pruned by the GramIndex probe, skipped as the
/// excluded self, or cut by a class's score-100 early exit.
struct RowFillStats {
  std::uint64_t candidates_scored = 0;
  std::uint64_t index_skipped = 0;
};

/// Feature row for one sample. `exclude_id >= 0` skips the training sample
/// with that id (leave-self-out when featurizing training rows). `stats`,
/// when given, accumulates the candidate-index gate counters.
void fill_feature_row(const TrainIndex& index, const FeatureHashes& sample,
                      ssdeep::EditMetric metric, int exclude_id,
                      std::span<float> out_row,
                      const ChannelMask& channels = kAllChannels,
                      RowFillStats* stats = nullptr);

/// Columns (f, c) for every channel f and classes c in
/// [class_begin, class_end) of one feature row — the shard view the
/// classification service uses to compute one query's similarity row in
/// parallel slices. `out_row` is the full-width row; only the slice's
/// columns are written. Covering [0, n_classes) in any partition is
/// bit-identical to fill_feature_row on the same sample.
void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row,
                            const ChannelMask& channels = kAllChannels,
                            RowFillStats* stats = nullptr);

/// Slice fill over a precomputed probe: identical output to the overload
/// above, but the GramIndex probe is not repeated — `candidates` must
/// have been built from the same (index, query, channels).
void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            const QueryCandidates& candidates,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row,
                            const ChannelMask& channels = kAllChannels,
                            RowFillStats* stats = nullptr);

/// The pre-GramIndex all-pairs scan: every prepared digest of every
/// blocksize-pairable bucket in the slice is run through
/// compare_prepared. Kept as the property-test oracle and bench baseline
/// for the indexed fill, which must reproduce it bit for bit.
void fill_feature_row_slice_all_pairs(const TrainIndex& index,
                                      const PreparedQuery& query,
                                      ssdeep::EditMetric metric, int exclude_id,
                                      int class_begin, int class_end,
                                      std::span<float> out_row,
                                      const ChannelMask& channels = kAllChannels);

/// Full-row convenience over fill_feature_row_slice_all_pairs.
void fill_feature_row_all_pairs(const TrainIndex& index,
                                const FeatureHashes& sample,
                                ssdeep::EditMetric metric, int exclude_id,
                                std::span<float> out_row,
                                const ChannelMask& channels = kAllChannels);

/// Full matrix for `samples` (parallel). `exclude_ids` is either empty or
/// one id per sample (-1 = none).
ml::Matrix build_feature_matrix(const TrainIndex& index,
                                const std::vector<FeatureHashes>& samples,
                                ssdeep::EditMetric metric,
                                const std::vector<int>& exclude_ids = {},
                                const ChannelMask& channels = kAllChannels);

}  // namespace fhc::core
