// Similarity feature matrix: fuzzy hashes -> fixed-width numeric features.
//
// The classifier needs a fixed-dimensional representation of "how similar
// is this sample to what we know". Column (f, c) of the matrix is the
// maximum SSDeep similarity between the sample's channel-f digest and the
// channel-f digests of the *training* samples of known class c:
//
//     x[i, f*K + c] = max_{j in train, y_j = c} sim(h_f(i), h_f(j))
//
// giving 3*K columns for K known classes. Feature-type importances
// (Table 5) are recovered by summing forest importances over each f-group.
//
// The pairwise comparisons dominate end-to-end runtime, so the builder
// parallelizes over samples, prepares every training digest exactly once
// (PreparedDigest: run-normalized parts + presorted 7-gram arrays, built
// at index-construction time — including after model load), and relies on
// the comparison fast path (whole-bucket blocksize gate + merge-scan
// 7-gram gate) to reject most cross-class pairs before the DP edit
// distance runs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "ml/matrix.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/prepared.hpp"

namespace fhc::core {

/// The reference index: per known class, per channel, the training
/// digests to compare against.
class TrainIndex {
 public:
  /// Training digests of one (channel, class) cell that share a blocksize,
  /// prepared once at index-build time. `ids` holds the original
  /// train-sample id of each digest (for exclude-self lookups). A query
  /// skips whole buckets whose blocksize cannot pair with its own
  /// (equal, double, or half).
  struct PreparedBucket {
    std::uint32_t blocksize = 0;
    std::vector<ssdeep::PreparedDigest> digests;
    std::vector<int> ids;  // parallel to digests
  };

  /// `labels[i]` in 0..n_classes-1; `class_names.size() == n_classes`.
  TrainIndex(const std::vector<FeatureHashes>& train_hashes,
             const std::vector<int>& labels, std::vector<std::string> class_names);

  int n_classes() const noexcept { return static_cast<int>(class_names_.size()); }
  const std::vector<std::string>& class_names() const noexcept { return class_names_; }
  std::size_t train_size() const noexcept { return train_sample_count_; }

  /// Raw digests of channel `f` for class `c`, parallel to train_ids(c) —
  /// the serialization/inspection view (save() writes these verbatim).
  const std::vector<ssdeep::FuzzyDigest>& digests(FeatureType f, int c) const;

  /// Prepared digests of channel `f` for class `c`, bucketed by blocksize —
  /// the comparison view used by fill_feature_row.
  const std::vector<PreparedBucket>& prepared(FeatureType f, int c) const;

  /// Original train-sample ids for class c (for exclude-self lookups).
  const std::vector<int>& train_ids(int c) const;

  /// Column labels: "ssdeep-file:<Class>", ... (3*K entries).
  std::vector<std::string> feature_names() const;

 private:
  std::vector<std::string> class_names_;
  // [feature][class] -> digests / original ids
  std::vector<std::vector<std::vector<ssdeep::FuzzyDigest>>> digests_;
  // [feature][class] -> blocksize buckets of prepared digests
  std::vector<std::vector<std::vector<PreparedBucket>>> prepared_;
  std::vector<std::vector<int>> ids_;
  std::size_t train_sample_count_ = 0;
};

/// Which feature channels participate (all three by default); disabled
/// channels produce constant-zero columns, which the trees never split on.
/// Used by the feature-ablation bench.
using ChannelMask = std::array<bool, kFeatureTypeCount>;
inline constexpr ChannelMask kAllChannels = {true, true, true};

/// A query's channels prepared once, so repeated or sliced scoring against
/// the index never re-normalizes the sample side. Channels disabled by the
/// mask stay default-constructed (they are never compared).
struct PreparedQuery {
  std::array<ssdeep::PreparedDigest, kFeatureTypeCount> channels;

  PreparedQuery() = default;
  explicit PreparedQuery(const FeatureHashes& sample,
                         const ChannelMask& mask = kAllChannels);
};

/// Feature row for one sample. `exclude_id >= 0` skips the training sample
/// with that id (leave-self-out when featurizing training rows).
void fill_feature_row(const TrainIndex& index, const FeatureHashes& sample,
                      ssdeep::EditMetric metric, int exclude_id,
                      std::span<float> out_row,
                      const ChannelMask& channels = kAllChannels);

/// Columns (f, c) for every channel f and classes c in
/// [class_begin, class_end) of one feature row — the shard view the
/// classification service uses to compute one query's similarity row in
/// parallel slices. `out_row` is the full-width row; only the slice's
/// columns are written. Covering [0, n_classes) in any partition is
/// bit-identical to fill_feature_row on the same sample.
void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row,
                            const ChannelMask& channels = kAllChannels);

/// Full matrix for `samples` (parallel). `exclude_ids` is either empty or
/// one id per sample (-1 = none).
ml::Matrix build_feature_matrix(const TrainIndex& index,
                                const std::vector<FeatureHashes>& samples,
                                ssdeep::EditMetric metric,
                                const std::vector<int>& exclude_ids = {},
                                const ChannelMask& channels = kAllChannels);

}  // namespace fhc::core
