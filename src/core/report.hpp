// Rendering helpers for the bench harness: each function produces the
// textual equivalent of one paper table/figure from experiment artifacts.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/pipeline.hpp"
#include "corpus/corpus.hpp"

namespace fhc::core {

/// Table 1: versions and executables of one application class.
std::string render_class_inventory(const corpus::Corpus& corpus,
                                   const std::string& class_name);

/// Table 2-style row: two samples' digests for one channel + similarity.
struct SimilarityExample {
  std::string class_name;
  std::string version_a;
  std::string version_b;
  std::string digest_a;
  std::string digest_b;
  int similarity = 0;
};
SimilarityExample make_similarity_example(const corpus::Corpus& corpus,
                                          const std::string& class_name,
                                          FeatureType channel,
                                          ssdeep::EditMetric metric);
std::string render_similarity_example(const SimilarityExample& example);

/// Table 3: the unknown-pool classes with sample counts (descending).
std::string render_unknown_classes(const ExperimentData& data);

/// Figure 2: per-class sample counts with a log-scaled ASCII bar.
std::string render_class_sizes(const std::vector<corpus::AppClassSpec>& specs);

/// Table 5: normalized feature importances, labelled by channel name
/// (one row per channel of `channels`; sizes must match).
std::string render_feature_importance(
    const std::vector<double>& imp,
    const ChannelSet& channels = ChannelSet::static_triple());

/// Figure 3: the threshold sweep as a series table.
std::string render_threshold_curve(const std::vector<ThresholdPoint>& curve,
                                   double chosen);

}  // namespace fhc::core
