// TrainIndex <-> sectioned-container I/O: the v2 model format's
// zero-copy half.
//
// serialize() dumps the canonical pools verbatim — the same spans the
// live index reads — so writing is a sequence of raw section emissions
// with no per-digest work. attach() is the inverse: it reinterprets the
// mapped sections as the pools, runs the structural validation shared
// with the owned constructor (wire()), and the index is live without
// preparing a digest or building a gram index. Because serialize() reads
// the views (owned or mapped alike), save -> attach -> save round-trips
// byte-identically.
//
// The counts header is conditional on the channel roster: a static-triple
// index emits the legacy 48-byte version-1 Meta (so pre-registry model
// files and new static-triple saves are the same bytes) and no
// channel-names section; any other ChannelSet emits the version-2
// dynamic layout plus a "channels" section holding the roster text.
#include <cstring>

#include "core/feature_matrix.hpp"
#include "util/sectioned.hpp"

namespace fhc::core {

namespace {

template <class T>
std::span<const std::byte> bytes_of(std::span<const T> items) {
  return std::as_bytes(items);
}

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

}  // namespace

void TrainIndex::serialize(util::SectionedWriter& writer) const {
  if (channels_.is_static_triple()) {
    Meta meta;
    meta.version = 1;
    meta.n_classes = meta_.n_classes;
    meta.train_count = meta_.train_count;
    std::copy(meta_.entry_counts.begin(), meta_.entry_counts.end(),
              meta.entry_counts.begin());
    std::copy(meta_.dir_counts.begin(), meta_.dir_counts.end(),
              meta.dir_counts.begin());
    writer.add_copy(model_section::kMeta,
                    std::as_bytes(std::span<const Meta>(&meta, 1)));
  } else {
    std::vector<std::byte> meta;
    meta.reserve(24 + 8 * n_channels());
    append_u32(meta, 2);  // version
    append_u32(meta, meta_.n_classes);
    const std::uint64_t train_count = meta_.train_count;
    const auto* p = reinterpret_cast<const std::byte*>(&train_count);
    meta.insert(meta.end(), p, p + sizeof train_count);
    append_u32(meta, static_cast<std::uint32_t>(n_channels()));
    append_u32(meta, 0);  // reserved
    for (const std::uint32_t c : meta_.entry_counts) append_u32(meta, c);
    for (const std::uint32_t c : meta_.dir_counts) append_u32(meta, c);
    writer.add_copy(model_section::kMeta, meta);

    const std::string roster = channel_set_to_text(channels_);
    writer.add_copy(model_section::kChannels,
                    std::as_bytes(std::span<const char>(roster)));
  }
  writer.add(model_section::kCellBuckets, bytes_of(cell_bucket_counts_));
  writer.add(model_section::kBuckets, bytes_of(bucket_meta_));
  writer.add(model_section::kRecords, bytes_of(recs_));
  writer.add(model_section::kTextPool, bytes_of(text_pool_));
  writer.add(model_section::kGramPool, bytes_of(gram_pool_));
  writer.add(model_section::kBucketIds, bytes_of(bucket_ids_));
  writer.add(model_section::kClassIds, bytes_of(class_ids_));
  writer.add(model_section::kEntries, bytes_of(entries_));
  writer.add(model_section::kGramDir, bytes_of(gram_dir_));
  writer.add(model_section::kGramKeys, bytes_of(gram_keys_));
  writer.add(model_section::kGramOffsets, bytes_of(gram_offsets_));
  writer.add(model_section::kPostings, bytes_of(gram_postings_));
}

std::unique_ptr<TrainIndex> TrainIndex::attach(
    const util::SectionedView& container, std::vector<std::string> class_names,
    ChannelSet channels, std::size_t train_count, RawDigestLoader raw_loader,
    std::shared_ptr<const void> keepalive) {
  std::unique_ptr<TrainIndex> index(new TrainIndex());
  index->class_names_ = std::move(class_names);
  index->channels_ = std::move(channels);
  index->train_sample_count_ = train_count;
  index->attached_ = true;
  index->keepalive_ = std::move(keepalive);
  index->raw_loader_ = std::move(raw_loader);

  std::span<const std::byte> meta_bytes;
  if (!container.find(model_section::kMeta, meta_bytes)) {
    throw std::runtime_error("TrainIndex: missing meta section");
  }
  index->meta_ = parse_meta(meta_bytes);
  if (index->meta_.version == 1) {
    // A version-1 container is always a static-triple model; the preamble
    // the caller parsed must agree.
    if (!index->channels_.is_static_triple()) {
      throw std::runtime_error(
          "TrainIndex: version-1 container with non-default channel set");
    }
  } else {
    if (index->meta_.entry_counts.size() != index->n_channels()) {
      throw std::runtime_error("TrainIndex: meta channel count mismatch");
    }
    // The roster section must match the set declared by the preamble —
    // a consistency check for hand-edited or truncated containers.
    std::span<const std::byte> roster_bytes;
    if (!container.find(model_section::kChannels, roster_bytes)) {
      throw std::runtime_error("TrainIndex: missing channel-names section");
    }
    const ChannelSet roster = channel_set_from_text(std::string_view(
        reinterpret_cast<const char*>(roster_bytes.data()), roster_bytes.size()));
    if (!(roster == index->channels_)) {
      throw std::runtime_error("TrainIndex: channel-names section mismatch");
    }
  }

  index->cell_bucket_counts_ =
      util::section_as<std::uint32_t>(container, model_section::kCellBuckets);
  index->bucket_meta_ =
      util::section_as<BucketMeta>(container, model_section::kBuckets);
  index->recs_ = util::section_as<PreparedRec>(container, model_section::kRecords);
  index->text_pool_ = util::section_as<char>(container, model_section::kTextPool);
  index->gram_pool_ =
      util::section_as<std::uint64_t>(container, model_section::kGramPool);
  index->bucket_ids_ =
      util::section_as<std::int32_t>(container, model_section::kBucketIds);
  index->class_ids_ =
      util::section_as<std::int32_t>(container, model_section::kClassIds);
  index->entries_ = util::section_as<GramEntry>(container, model_section::kEntries);
  index->gram_dir_ =
      util::section_as<GramDirEntry>(container, model_section::kGramDir);
  index->gram_keys_ =
      util::section_as<std::uint64_t>(container, model_section::kGramKeys);
  index->gram_offsets_ =
      util::section_as<std::uint32_t>(container, model_section::kGramOffsets);
  index->gram_postings_ =
      util::section_as<std::uint32_t>(container, model_section::kPostings);

  index->wire();
  return index;
}

void TrainIndex::materialize_raw() const {
  // Owned indexes filled digests_ eagerly; attached ones parse the
  // retained preamble rows exactly once, on the first serialization or
  // inspection request — never on the classify path.
  if (!raw_loader_) return;
  std::call_once(raw_once_, [this] {
    auto [hashes, labels] = raw_loader_();
    const int k = n_classes();
    if (hashes.size() != train_sample_count_ || labels.size() != hashes.size()) {
      throw std::runtime_error("TrainIndex: raw digest loader size mismatch");
    }
    digests_.assign(n_channels(), std::vector<std::vector<ssdeep::FuzzyDigest>>(
                                      static_cast<std::size_t>(k)));
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      const int label = labels[i];
      if (label < 0 || label >= k) {
        throw std::runtime_error("TrainIndex: raw digest loader label out of range");
      }
      for (std::size_t f = 0; f < n_channels(); ++f) {
        digests_[f][static_cast<std::size_t>(label)].push_back(
            hashes[i].channel(f));
      }
    }
  });
}

}  // namespace fhc::core
