// TrainIndex <-> sectioned-container I/O: the v2 model format's
// zero-copy half.
//
// serialize() dumps the canonical pools verbatim — the same spans the
// live index reads — so writing is a sequence of raw section emissions
// with no per-digest work. attach() is the inverse: it reinterprets the
// mapped sections as the pools, runs the structural validation shared
// with the owned constructor (wire()), and the index is live without
// preparing a digest or building a gram index. Because serialize() reads
// the views (owned or mapped alike), save -> attach -> save round-trips
// byte-identically.
#include <cstring>

#include "core/feature_matrix.hpp"
#include "util/sectioned.hpp"

namespace fhc::core {

namespace {

template <class T>
std::span<const std::byte> bytes_of(std::span<const T> items) {
  return std::as_bytes(items);
}

}  // namespace

void TrainIndex::serialize(util::SectionedWriter& writer) const {
  const Meta meta = meta_;
  writer.add_copy(model_section::kMeta,
                  std::as_bytes(std::span<const Meta>(&meta, 1)));
  writer.add(model_section::kCellBuckets, bytes_of(cell_bucket_counts_));
  writer.add(model_section::kBuckets, bytes_of(bucket_meta_));
  writer.add(model_section::kRecords, bytes_of(recs_));
  writer.add(model_section::kTextPool, bytes_of(text_pool_));
  writer.add(model_section::kGramPool, bytes_of(gram_pool_));
  writer.add(model_section::kBucketIds, bytes_of(bucket_ids_));
  writer.add(model_section::kClassIds, bytes_of(class_ids_));
  writer.add(model_section::kEntries, bytes_of(entries_));
  writer.add(model_section::kGramDir, bytes_of(gram_dir_));
  writer.add(model_section::kGramKeys, bytes_of(gram_keys_));
  writer.add(model_section::kGramOffsets, bytes_of(gram_offsets_));
  writer.add(model_section::kPostings, bytes_of(gram_postings_));
}

std::unique_ptr<TrainIndex> TrainIndex::attach(
    const util::SectionedView& container, std::vector<std::string> class_names,
    std::size_t train_count, RawDigestLoader raw_loader,
    std::shared_ptr<const void> keepalive) {
  std::unique_ptr<TrainIndex> index(new TrainIndex());
  index->class_names_ = std::move(class_names);
  index->train_sample_count_ = train_count;
  index->attached_ = true;
  index->keepalive_ = std::move(keepalive);
  index->raw_loader_ = std::move(raw_loader);

  const auto meta_span = util::section_as<Meta>(container, model_section::kMeta);
  if (meta_span.size() != 1) {
    throw std::runtime_error("TrainIndex: bad meta section");
  }
  index->meta_ = meta_span[0];
  if (index->meta_.version != Meta{}.version) {
    throw std::runtime_error("TrainIndex: unsupported index version");
  }

  index->cell_bucket_counts_ =
      util::section_as<std::uint32_t>(container, model_section::kCellBuckets);
  index->bucket_meta_ =
      util::section_as<BucketMeta>(container, model_section::kBuckets);
  index->recs_ = util::section_as<PreparedRec>(container, model_section::kRecords);
  index->text_pool_ = util::section_as<char>(container, model_section::kTextPool);
  index->gram_pool_ =
      util::section_as<std::uint64_t>(container, model_section::kGramPool);
  index->bucket_ids_ =
      util::section_as<std::int32_t>(container, model_section::kBucketIds);
  index->class_ids_ =
      util::section_as<std::int32_t>(container, model_section::kClassIds);
  index->entries_ = util::section_as<GramEntry>(container, model_section::kEntries);
  index->gram_dir_ =
      util::section_as<GramDirEntry>(container, model_section::kGramDir);
  index->gram_keys_ =
      util::section_as<std::uint64_t>(container, model_section::kGramKeys);
  index->gram_offsets_ =
      util::section_as<std::uint32_t>(container, model_section::kGramOffsets);
  index->gram_postings_ =
      util::section_as<std::uint32_t>(container, model_section::kPostings);

  index->wire();
  return index;
}

void TrainIndex::materialize_raw() const {
  // Owned indexes filled digests_ eagerly; attached ones parse the
  // retained preamble rows exactly once, on the first serialization or
  // inspection request — never on the classify path.
  if (!raw_loader_) return;
  std::call_once(raw_once_, [this] {
    auto [hashes, labels] = raw_loader_();
    const int k = n_classes();
    if (hashes.size() != train_sample_count_ || labels.size() != hashes.size()) {
      throw std::runtime_error("TrainIndex: raw digest loader size mismatch");
    }
    digests_.assign(kFeatureTypeCount,
                    std::vector<std::vector<ssdeep::FuzzyDigest>>(
                        static_cast<std::size_t>(k)));
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      const int label = labels[i];
      if (label < 0 || label >= k) {
        throw std::runtime_error("TrainIndex: raw digest loader label out of range");
      }
      for (int f = 0; f < kFeatureTypeCount; ++f) {
        digests_[static_cast<std::size_t>(f)][static_cast<std::size_t>(label)]
            .push_back(hashes[i].of(static_cast<FeatureType>(f)));
      }
    }
  });
}

}  // namespace fhc::core
