#include "core/feature_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fhc::core {

TrainIndex::TrainIndex(const std::vector<FeatureHashes>& train_hashes,
                       const std::vector<int>& labels,
                       std::vector<std::string> class_names)
    : class_names_(std::move(class_names)) {
  if (train_hashes.size() != labels.size()) {
    throw std::invalid_argument("TrainIndex: size mismatch");
  }
  const int k = n_classes();
  digests_.assign(kFeatureTypeCount,
                  std::vector<std::vector<ssdeep::FuzzyDigest>>(
                      static_cast<std::size_t>(k)));
  prepared_.assign(kFeatureTypeCount, std::vector<std::vector<PreparedBucket>>(
                                          static_cast<std::size_t>(k)));
  ids_.assign(static_cast<std::size_t>(k), {});
  train_sample_count_ = train_hashes.size();

  for (std::size_t i = 0; i < train_hashes.size(); ++i) {
    const int label = labels[i];
    if (label < 0 || label >= k) {
      throw std::invalid_argument("TrainIndex: label out of range");
    }
    const auto c = static_cast<std::size_t>(label);
    for (int f = 0; f < kFeatureTypeCount; ++f) {
      const ssdeep::FuzzyDigest& digest =
          train_hashes[i].of(static_cast<FeatureType>(f));
      digests_[static_cast<std::size_t>(f)][c].push_back(digest);

      // Normalize once here, into the bucket of this blocksize (at most
      // kNumBlockhashes buckets per cell — a linear scan stays cheap).
      auto& buckets = prepared_[static_cast<std::size_t>(f)][c];
      auto it = std::find_if(buckets.begin(), buckets.end(),
                             [&](const PreparedBucket& bucket) {
                               return bucket.blocksize == digest.blocksize;
                             });
      if (it == buckets.end()) {
        buckets.push_back(PreparedBucket{digest.blocksize, {}, {}});
        it = buckets.end() - 1;
      }
      it->digests.emplace_back(digest);
      it->ids.push_back(static_cast<int>(i));
    }
    ids_[c].push_back(static_cast<int>(i));
  }

  // Second pass: invert the prepared buckets into the per-channel 7-gram
  // candidate index. Entry ids are handed out in (cls, bucket, pos)
  // iteration order — the property a sorted candidate list's class
  // grouping relies on.
  gram_index_.resize(kFeatureTypeCount);
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    ChannelGramIndex& channel = gram_index_[static_cast<std::size_t>(f)];
    for (int c = 0; c < k; ++c) {
      const auto& buckets = prepared_[static_cast<std::size_t>(f)][static_cast<std::size_t>(c)];
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        const PreparedBucket& bucket = buckets[b];
        auto bs_it = std::find_if(
            channel.by_blocksize.begin(), channel.by_blocksize.end(),
            [&](const ChannelGramIndex::BlocksizeIndex& bsi) {
              return bsi.blocksize == bucket.blocksize;
            });
        if (bs_it == channel.by_blocksize.end()) {
          channel.by_blocksize.push_back({bucket.blocksize, {}, {}});
          bs_it = channel.by_blocksize.end() - 1;
        }
        for (std::size_t p = 0; p < bucket.digests.size(); ++p) {
          const auto entry = static_cast<std::uint32_t>(channel.entries.size());
          channel.entries.push_back(GramEntry{c, static_cast<std::int32_t>(b),
                                              static_cast<std::int32_t>(p)});
          bs_it->part1.add(entry, bucket.digests[p].part1().grams);
          bs_it->part2.add(entry, bucket.digests[p].part2().grams);
        }
      }
    }
    for (ChannelGramIndex::BlocksizeIndex& bsi : channel.by_blocksize) {
      bsi.part1.finalize();
      bsi.part2.finalize();
    }
  }
}

const std::vector<ssdeep::FuzzyDigest>& TrainIndex::digests(FeatureType f,
                                                            int c) const {
  return digests_.at(static_cast<std::size_t>(f)).at(static_cast<std::size_t>(c));
}

const std::vector<TrainIndex::PreparedBucket>& TrainIndex::prepared(FeatureType f,
                                                                    int c) const {
  return prepared_.at(static_cast<std::size_t>(f)).at(static_cast<std::size_t>(c));
}

const std::vector<int>& TrainIndex::train_ids(int c) const {
  return ids_.at(static_cast<std::size_t>(c));
}

const TrainIndex::ChannelGramIndex& TrainIndex::gram_index(FeatureType f) const {
  return gram_index_.at(static_cast<std::size_t>(f));
}

std::vector<std::string> TrainIndex::feature_names() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(kFeatureTypeCount * n_classes()));
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    for (const std::string& cls : class_names_) {
      names.push_back(std::string(feature_type_name(static_cast<FeatureType>(f))) +
                      ":" + cls);
    }
  }
  return names;
}

PreparedQuery::PreparedQuery(const FeatureHashes& sample, const ChannelMask& mask) {
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    if (!mask[static_cast<std::size_t>(f)]) continue;
    channels[static_cast<std::size_t>(f)] =
        ssdeep::PreparedDigest(sample.of(static_cast<FeatureType>(f)));
  }
}

namespace {

void validate_slice(const TrainIndex& index, int class_begin, int class_end,
                    std::span<float> out_row) {
  const int k = index.n_classes();
  if (out_row.size() != static_cast<std::size_t>(kFeatureTypeCount * k)) {
    throw std::invalid_argument("fill_feature_row_slice: bad row width");
  }
  if (class_begin < 0 || class_end > k || class_begin > class_end) {
    throw std::invalid_argument("fill_feature_row_slice: bad class range");
  }
}

/// Digests an all-pairs scan would visit for this (channel, slice):
/// everything in a blocksize-pairable bucket — the denominator of the
/// gate counters.
std::uint64_t pairable_digests(const TrainIndex& index, FeatureType type,
                               std::uint32_t own_blocksize, int class_begin,
                               int class_end) {
  std::uint64_t total = 0;
  for (int c = class_begin; c < class_end; ++c) {
    for (const TrainIndex::PreparedBucket& bucket : index.prepared(type, c)) {
      if (ssdeep::blocksizes_can_pair(own_blocksize, bucket.blocksize)) {
        total += bucket.digests.size();
      }
    }
  }
  return total;
}

}  // namespace

void fill_feature_row(const TrainIndex& index, const FeatureHashes& sample,
                      ssdeep::EditMetric metric, int exclude_id,
                      std::span<float> out_row, const ChannelMask& channels,
                      RowFillStats* stats) {
  // Normalize the query once per feature type; the train side was prepared
  // when the index was built.
  const PreparedQuery query(sample, channels);
  fill_feature_row_slice(index, query, metric, exclude_id, 0, index.n_classes(),
                         out_row, channels, stats);
}

QueryCandidates::QueryCandidates(const TrainIndex& index,
                                 const PreparedQuery& query,
                                 const ChannelMask& channels) {
  // Probe scratch: reused across channels and calls on this thread —
  // steady-state probes allocate only the retained id vectors.
  thread_local ssdeep::CandidateSet scratch;
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    if (!channels[static_cast<std::size_t>(f)]) continue;
    const ssdeep::PreparedDigest& own = query.channels[static_cast<std::size_t>(f)];
    const TrainIndex::ChannelGramIndex& grams =
        index.gram_index(static_cast<FeatureType>(f));

    // One probe per pairable blocksize bucket (at most three), matching
    // the part pairing compare_prepared scores at that blocksize
    // relation: part1/part2 against their own kind when equal, crosswise
    // when one side's blocksize doubles the other's.
    scratch.reset(grams.entries.size());
    for (const TrainIndex::ChannelGramIndex::BlocksizeIndex& bsi :
         grams.by_blocksize) {
      if (!ssdeep::blocksizes_can_pair(own.blocksize(), bsi.blocksize)) continue;
      if (bsi.blocksize == own.blocksize()) {
        bsi.part1.collect(own.part1().grams, scratch);
        bsi.part2.collect(own.part2().grams, scratch);
      } else if (own.blocksize() == std::uint64_t{bsi.blocksize} * 2) {
        // The query's part1 lives at the bucket's part2 blocksize.
        bsi.part2.collect(own.part1().grams, scratch);
      } else {
        bsi.part1.collect(own.part2().grams, scratch);
      }
    }
    // Entry ids ascend in (class, bucket, pos) order, so sorting groups
    // the candidates by class with classes ascending.
    scratch.sort();
    per_channel_[static_cast<std::size_t>(f)].assign(scratch.ids().begin(),
                                                     scratch.ids().end());
  }
}

void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row, const ChannelMask& channels,
                            RowFillStats* stats) {
  const QueryCandidates candidates(index, query, channels);
  fill_feature_row_slice(index, query, candidates, metric, exclude_id,
                         class_begin, class_end, out_row, channels, stats);
}

void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            const QueryCandidates& candidates,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row, const ChannelMask& channels,
                            RowFillStats* stats) {
  const int k = index.n_classes();
  validate_slice(index, class_begin, class_end, out_row);
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    for (int c = class_begin; c < class_end; ++c) {
      out_row[static_cast<std::size_t>(f * k + c)] = 0.0f;
    }
    if (!channels[static_cast<std::size_t>(f)]) continue;
    const ssdeep::PreparedDigest& own = query.channels[static_cast<std::size_t>(f)];
    const auto type = static_cast<FeatureType>(f);
    const TrainIndex::ChannelGramIndex& grams = index.gram_index(type);
    const std::vector<std::uint32_t>& hits = candidates.of(type);

    // The list is class-grouped, so the slice's share is one contiguous
    // run — binary-search its start instead of stepping over every
    // candidate of the classes before class_begin.
    std::uint64_t scored = 0;
    std::size_t i = static_cast<std::size_t>(
        std::partition_point(hits.begin(), hits.end(),
                             [&](std::uint32_t id) {
                               return grams.entries[id].cls < class_begin;
                             }) -
        hits.begin());
    while (i < hits.size()) {
      const int c = grams.entries[hits[i]].cls;
      if (c >= class_end) break;
      int best = 0;
      while (i < hits.size()) {
        const TrainIndex::GramEntry& entry = grams.entries[hits[i]];
        if (entry.cls != c) break;
        ++i;
        if (best == 100) continue;  // cannot improve; drain the class group
        const TrainIndex::PreparedBucket& bucket =
            index.prepared(type, c)[static_cast<std::size_t>(entry.bucket)];
        const auto pos = static_cast<std::size_t>(entry.pos);
        if (exclude_id >= 0 && bucket.ids[pos] == exclude_id) continue;
        const int score = ssdeep::compare_prepared(own, bucket.digests[pos], metric);
        ++scored;
        if (score > best) best = score;
      }
      out_row[static_cast<std::size_t>(f * k + c)] = static_cast<float>(best);
    }
    if (stats != nullptr) {
      stats->candidates_scored += scored;
      stats->index_skipped +=
          pairable_digests(index, type, own.blocksize(), class_begin, class_end) -
          scored;
    }
  }
}

void fill_feature_row_slice_all_pairs(const TrainIndex& index,
                                      const PreparedQuery& query,
                                      ssdeep::EditMetric metric, int exclude_id,
                                      int class_begin, int class_end,
                                      std::span<float> out_row,
                                      const ChannelMask& channels) {
  const int k = index.n_classes();
  validate_slice(index, class_begin, class_end, out_row);
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    if (!channels[static_cast<std::size_t>(f)]) {
      for (int c = class_begin; c < class_end; ++c) {
        out_row[static_cast<std::size_t>(f * k + c)] = 0.0f;
      }
      continue;
    }
    const ssdeep::PreparedDigest& own = query.channels[static_cast<std::size_t>(f)];
    const auto type = static_cast<FeatureType>(f);
    for (int c = class_begin; c < class_end; ++c) {
      int best = 0;
      for (const TrainIndex::PreparedBucket& bucket : index.prepared(type, c)) {
        if (!ssdeep::blocksizes_can_pair(own.blocksize(), bucket.blocksize)) {
          continue;  // nothing in this bucket can score > 0
        }
        for (std::size_t j = 0; j < bucket.digests.size(); ++j) {
          if (exclude_id >= 0 && bucket.ids[j] == exclude_id) continue;
          const int score = ssdeep::compare_prepared(own, bucket.digests[j], metric);
          if (score > best) {
            best = score;
            if (best == 100) break;  // cannot improve
          }
        }
        if (best == 100) break;
      }
      out_row[static_cast<std::size_t>(f * k + c)] = static_cast<float>(best);
    }
  }
}

void fill_feature_row_all_pairs(const TrainIndex& index,
                                const FeatureHashes& sample,
                                ssdeep::EditMetric metric, int exclude_id,
                                std::span<float> out_row,
                                const ChannelMask& channels) {
  const PreparedQuery query(sample, channels);
  fill_feature_row_slice_all_pairs(index, query, metric, exclude_id, 0,
                                   index.n_classes(), out_row, channels);
}

ml::Matrix build_feature_matrix(const TrainIndex& index,
                                const std::vector<FeatureHashes>& samples,
                                ssdeep::EditMetric metric,
                                const std::vector<int>& exclude_ids,
                                const ChannelMask& channels) {
  if (!exclude_ids.empty() && exclude_ids.size() != samples.size()) {
    throw std::invalid_argument("build_feature_matrix: exclude_ids size mismatch");
  }
  ml::Matrix x(samples.size(),
               static_cast<std::size_t>(kFeatureTypeCount * index.n_classes()));
  fhc::util::parallel_for(samples.size(), [&](std::size_t i) {
    const int exclude = exclude_ids.empty() ? -1 : exclude_ids[i];
    fill_feature_row(index, samples[i], metric, exclude, x.row(i), channels);
  });
  return x;
}

}  // namespace fhc::core
