#include "core/feature_matrix.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fhc::core {

namespace {

[[noreturn]] void bad_index(const std::string& what) {
  throw std::runtime_error("TrainIndex: " + what);
}

/// Structural validation of one CSR index against the pools it was carved
/// from: monotonic offsets bracketing the posting array, strictly
/// ascending keys, postings addressing real entries. Runs on both the
/// owned and attach paths (linear, memory-bandwidth cheap) so a corrupt
/// or adversarial model can never index out of bounds.
void validate_csr(std::span<const std::uint64_t> keys,
                  std::span<const std::uint32_t> offsets,
                  std::span<const std::uint32_t> postings, std::size_t universe) {
  if (offsets.size() != keys.size() + 1) bad_index("CSR offsets size");
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<std::uint32_t>(postings.size())) {
    bad_index("CSR offsets bracket");
  }
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) bad_index("CSR offsets not monotonic");
  }
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] >= keys[i]) bad_index("CSR keys not strictly ascending");
  }
  for (const std::uint32_t p : postings) {
    if (p >= universe) bad_index("CSR posting out of range");
  }
}

}  // namespace

std::string channel_set_to_text(const ChannelSet& channels) {
  std::string out;
  for (const ChannelDesc& channel : channels) {
    out += channel.name;
    out += ' ';
    out += std::to_string(static_cast<int>(channel.kind));
    out += '\n';
  }
  return out;
}

ChannelSet channel_set_from_text(std::string_view text) {
  std::vector<ChannelDesc> descs;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos || space == 0) {
      throw std::runtime_error("channel set: malformed line");
    }
    const std::string_view kind_text = line.substr(space + 1);
    int kind = -1;
    const auto [end, ec] = std::from_chars(
        kind_text.data(), kind_text.data() + kind_text.size(), kind);
    if (ec != std::errc{} || end != kind_text.data() + kind_text.size() ||
        (kind != 0 && kind != 1)) {
      throw std::runtime_error("channel set: bad channel kind");
    }
    descs.push_back(ChannelDesc{std::string(line.substr(0, space)),
                                static_cast<ChannelKind>(kind)});
  }
  return ChannelSet(std::move(descs));
}

TrainIndex::MetaInfo TrainIndex::parse_meta(std::span<const std::byte> bytes) {
  const auto read_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    std::memcpy(&v, bytes.data() + off, sizeof v);
    return v;
  };
  if (bytes.size() < 16) bad_index("meta section too small");
  MetaInfo info;
  info.version = read_u32(0);
  info.n_classes = read_u32(4);
  std::memcpy(&info.train_count, bytes.data() + 8, sizeof info.train_count);
  if (info.version == 1) {
    if (bytes.size() != sizeof(Meta)) bad_index("meta section size");
    Meta meta;
    std::memcpy(&meta, bytes.data(), sizeof meta);
    info.entry_counts.assign(meta.entry_counts.begin(), meta.entry_counts.end());
    info.dir_counts.assign(meta.dir_counts.begin(), meta.dir_counts.end());
  } else if (info.version == 2) {
    if (bytes.size() < 24) bad_index("meta section too small");
    const std::uint32_t n = read_u32(16);
    if (n < 1 || n > kMaxChannels) bad_index("meta channel count");
    if (bytes.size() != 24 + 8 * static_cast<std::size_t>(n)) {
      bad_index("meta section size");
    }
    info.entry_counts.reserve(n);
    info.dir_counts.reserve(n);
    for (std::uint32_t f = 0; f < n; ++f) {
      info.entry_counts.push_back(read_u32(24 + 4 * static_cast<std::size_t>(f)));
    }
    for (std::uint32_t f = 0; f < n; ++f) {
      info.dir_counts.push_back(
          read_u32(24 + 4 * static_cast<std::size_t>(n) +
                   4 * static_cast<std::size_t>(f)));
    }
  } else {
    bad_index("unsupported index version");
  }
  return info;
}

TrainIndex::TrainIndex(const std::vector<FeatureHashes>& train_hashes,
                       const std::vector<int>& labels,
                       std::vector<std::string> class_names, ChannelSet channels)
    : class_names_(std::move(class_names)), channels_(std::move(channels)) {
  if (train_hashes.size() != labels.size()) {
    throw std::invalid_argument("TrainIndex: size mismatch");
  }
  const int k = n_classes();
  const std::size_t n = n_channels();
  const std::size_t cells = n * static_cast<std::size_t>(k);
  train_sample_count_ = train_hashes.size();

  // Pass 1: prepare every digest once (run-normalized parts + presorted
  // gram arrays) into temporary per-(channel, class, blocksize) buckets,
  // and fill the eager raw-digest view. Samples carrying fewer channels
  // than the set contribute the empty digest on the missing ones.
  struct TempBucket {
    std::uint32_t blocksize = 0;
    std::vector<ssdeep::PreparedDigest> digests;
    std::vector<std::int32_t> ids;
  };
  std::vector<std::vector<TempBucket>> temp(cells);
  std::vector<std::vector<std::int32_t>> per_class_ids(static_cast<std::size_t>(k));
  digests_.assign(n, std::vector<std::vector<ssdeep::FuzzyDigest>>(
                         static_cast<std::size_t>(k)));

  for (std::size_t i = 0; i < train_hashes.size(); ++i) {
    const int label = labels[i];
    if (label < 0 || label >= k) {
      throw std::invalid_argument("TrainIndex: label out of range");
    }
    const auto c = static_cast<std::size_t>(label);
    for (std::size_t f = 0; f < n; ++f) {
      const ssdeep::FuzzyDigest& digest = train_hashes[i].channel(f);
      digests_[f][c].push_back(digest);

      // Normalize once here, into the bucket of this blocksize (at most
      // kNumBlockhashes buckets per cell — a linear scan stays cheap).
      auto& buckets = temp[f * static_cast<std::size_t>(k) + c];
      auto it = std::find_if(buckets.begin(), buckets.end(),
                             [&](const TempBucket& bucket) {
                               return bucket.blocksize == digest.blocksize;
                             });
      if (it == buckets.end()) {
        buckets.push_back(TempBucket{digest.blocksize, {}, {}});
        it = buckets.end() - 1;
      }
      it->digests.emplace_back(digest);
      it->ids.push_back(static_cast<std::int32_t>(i));
    }
    per_class_ids[c].push_back(static_cast<std::int32_t>(i));
  }

  // Pass 2: flatten the buckets into the canonical pools — exactly the
  // byte layout serialize() emits, so the same spans serve both the live
  // index and the writer, and save -> attach -> save is byte-stable.
  cell_bucket_counts_store_.reserve(cells);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    cell_bucket_counts_store_.push_back(
        static_cast<std::uint32_t>(temp[cell].size()));
    for (const TempBucket& bucket : temp[cell]) {
      bucket_meta_store_.push_back(
          BucketMeta{bucket.blocksize, static_cast<std::uint32_t>(bucket.digests.size())});
      for (std::size_t p = 0; p < bucket.digests.size(); ++p) {
        const ssdeep::PreparedDigest& digest = bucket.digests[p];
        PreparedRec rec;
        rec.t1_off = text_store_.size();
        rec.t1_len = static_cast<std::uint32_t>(digest.part1().text.size());
        text_store_.insert(text_store_.end(), digest.part1().text.begin(),
                           digest.part1().text.end());
        rec.g1_off = gram_store_.size();
        rec.g1_len = static_cast<std::uint32_t>(digest.part1().grams.size());
        gram_store_.insert(gram_store_.end(), digest.part1().grams.begin(),
                           digest.part1().grams.end());
        rec.t2_off = text_store_.size();
        rec.t2_len = static_cast<std::uint32_t>(digest.part2().text.size());
        text_store_.insert(text_store_.end(), digest.part2().text.begin(),
                           digest.part2().text.end());
        rec.g2_off = gram_store_.size();
        rec.g2_len = static_cast<std::uint32_t>(digest.part2().grams.size());
        gram_store_.insert(gram_store_.end(), digest.part2().grams.begin(),
                           digest.part2().grams.end());
        recs_store_.push_back(rec);
        bucket_ids_store_.push_back(bucket.ids[p]);
      }
    }
  }
  for (const auto& ids : per_class_ids) {
    class_ids_store_.insert(class_ids_store_.end(), ids.begin(), ids.end());
  }

  // Pass 3: invert each channel's buckets into the 7-gram candidate
  // index. Entry ids are handed out in (cls, bucket, pos) iteration
  // order — the property a sorted candidate list's class grouping relies
  // on — and the sealed CSR arrays are flattened into the pools in
  // directory order (blocksizes by first occurrence, part1 then part2).
  meta_.version = channels_.is_static_triple() ? 1 : 2;
  meta_.entry_counts.assign(n, 0);
  meta_.dir_counts.assign(n, 0);
  for (std::size_t f = 0; f < n; ++f) {
    struct Builder {
      std::uint32_t blocksize = 0;
      ssdeep::GramIndex part1;
      ssdeep::GramIndex part2;
    };
    std::vector<Builder> builders;
    std::uint32_t entry_count = 0;
    for (int c = 0; c < k; ++c) {
      const std::size_t cell =
          f * static_cast<std::size_t>(k) + static_cast<std::size_t>(c);
      for (std::size_t b = 0; b < temp[cell].size(); ++b) {
        const TempBucket& bucket = temp[cell][b];
        auto bs_it = std::find_if(builders.begin(), builders.end(),
                                  [&](const Builder& builder) {
                                    return builder.blocksize == bucket.blocksize;
                                  });
        if (bs_it == builders.end()) {
          builders.push_back(Builder{bucket.blocksize, {}, {}});
          bs_it = builders.end() - 1;
        }
        for (std::size_t p = 0; p < bucket.digests.size(); ++p) {
          const std::uint32_t entry = entry_count++;
          entries_store_.push_back(GramEntry{c, static_cast<std::int32_t>(b),
                                             static_cast<std::int32_t>(p)});
          bs_it->part1.add(entry, bucket.digests[p].part1().grams);
          bs_it->part2.add(entry, bucket.digests[p].part2().grams);
        }
      }
    }
    meta_.entry_counts[f] = entry_count;
    meta_.dir_counts[f] = static_cast<std::uint32_t>(builders.size());
    for (Builder& builder : builders) {
      builder.part1.finalize();
      builder.part2.finalize();
      const ssdeep::GramIndexView v1 = builder.part1.view();
      const ssdeep::GramIndexView v2 = builder.part2.view();
      gram_dir_store_.push_back(GramDirEntry{
          builder.blocksize, static_cast<std::uint32_t>(v1.gram_count()),
          static_cast<std::uint32_t>(v2.gram_count()),
          static_cast<std::uint32_t>(v1.posting_count()),
          static_cast<std::uint32_t>(v2.posting_count())});
      for (const ssdeep::GramIndexView& v : {v1, v2}) {
        gram_keys_store_.insert(gram_keys_store_.end(), v.keys().begin(),
                                v.keys().end());
        gram_offsets_store_.insert(gram_offsets_store_.end(), v.offsets().begin(),
                                   v.offsets().end());
        gram_postings_store_.insert(gram_postings_store_.end(),
                                    v.postings().begin(), v.postings().end());
      }
    }
  }

  meta_.n_classes = static_cast<std::uint32_t>(k);
  meta_.train_count = train_sample_count_;

  cell_bucket_counts_ = cell_bucket_counts_store_;
  bucket_meta_ = bucket_meta_store_;
  recs_ = recs_store_;
  text_pool_ = text_store_;
  gram_pool_ = gram_store_;
  bucket_ids_ = bucket_ids_store_;
  class_ids_ = class_ids_store_;
  entries_ = entries_store_;
  gram_dir_ = gram_dir_store_;
  gram_keys_ = gram_keys_store_;
  gram_offsets_ = gram_offsets_store_;
  gram_postings_ = gram_postings_store_;
  wire();
}

void TrainIndex::wire() {
  const int k = n_classes();
  if (k <= 0) bad_index("no classes");
  const std::size_t n = n_channels();
  const std::size_t cells = n * static_cast<std::size_t>(k);
  if (meta_.n_classes != static_cast<std::uint32_t>(k)) bad_index("meta class count");
  if (meta_.train_count != train_sample_count_) bad_index("meta train count");
  if (meta_.entry_counts.size() != n || meta_.dir_counts.size() != n) {
    bad_index("meta channel count");
  }
  if (cell_bucket_counts_.size() != cells) bad_index("cell table size");
  if (bucket_ids_.size() != recs_.size()) bad_index("bucket id pool size");

  // Buckets: carve each cell's recs/ids out of the pools in table order.
  std::size_t total_buckets = 0;
  for (const std::uint32_t c : cell_bucket_counts_) total_buckets += c;
  if (bucket_meta_.size() != total_buckets) bad_index("bucket table size");
  buckets_.clear();
  buckets_.reserve(total_buckets);
  cell_offsets_.assign(cells + 1, 0);
  std::size_t rec_at = 0;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    cell_offsets_[cell] = buckets_.size();
    for (std::uint32_t b = 0; b < cell_bucket_counts_[cell]; ++b) {
      const BucketMeta& meta = bucket_meta_[buckets_.size()];
      if (meta.count > recs_.size() - rec_at) bad_index("bucket overruns rec pool");
      buckets_.push_back(PreparedBucket{meta.blocksize,
                                        recs_.subspan(rec_at, meta.count),
                                        bucket_ids_.subspan(rec_at, meta.count)});
      rec_at += meta.count;
    }
  }
  cell_offsets_[cells] = buckets_.size();
  if (rec_at != recs_.size()) bad_index("rec pool size");

  // Every record's text/gram slices must land inside the pools — after
  // this loop view_of() is branch-free by construction.
  for (const PreparedRec& rec : recs_) {
    if (rec.t1_off > text_pool_.size() || rec.t1_len > text_pool_.size() - rec.t1_off ||
        rec.t2_off > text_pool_.size() || rec.t2_len > text_pool_.size() - rec.t2_off) {
      bad_index("record text slice out of range");
    }
    if (rec.g1_off > gram_pool_.size() || rec.g1_len > gram_pool_.size() - rec.g1_off ||
        rec.g2_off > gram_pool_.size() || rec.g2_len > gram_pool_.size() - rec.g2_off) {
      bad_index("record gram slice out of range");
    }
  }
  for (const std::int32_t id : bucket_ids_) {
    if (id < 0 || static_cast<std::size_t>(id) >= train_sample_count_) {
      bad_index("bucket train id out of range");
    }
  }

  // Per-channel digest counts: each training sample contributes exactly
  // one digest per channel.
  for (std::size_t f = 0; f < n; ++f) {
    std::size_t channel_digests = 0;
    for (std::size_t cell = f * static_cast<std::size_t>(k);
         cell < (f + 1) * static_cast<std::size_t>(k); ++cell) {
      for (std::size_t b = cell_offsets_[cell]; b < cell_offsets_[cell + 1]; ++b) {
        channel_digests += buckets_[b].recs.size();
      }
    }
    if (channel_digests != train_sample_count_ ||
        meta_.entry_counts[f] != channel_digests) {
      bad_index("channel digest count");
    }
  }

  // Class id table: class c owns as many ids as channel 0 holds digests
  // for it.
  if (class_ids_.size() != train_sample_count_) bad_index("class id pool size");
  class_id_offsets_.assign(static_cast<std::size_t>(k) + 1, 0);
  std::size_t id_at = 0;
  for (int c = 0; c < k; ++c) {
    class_id_offsets_[static_cast<std::size_t>(c)] = id_at;
    const auto cell = static_cast<std::size_t>(c);
    for (std::size_t b = cell_offsets_[cell]; b < cell_offsets_[cell + 1]; ++b) {
      id_at += buckets_[b].recs.size();
    }
  }
  class_id_offsets_[static_cast<std::size_t>(k)] = id_at;
  if (id_at != class_ids_.size()) bad_index("class id partition");
  for (const std::int32_t id : class_ids_) {
    if (id < 0 || static_cast<std::size_t>(id) >= train_sample_count_) {
      bad_index("class train id out of range");
    }
  }

  // Channel gram indexes: carve each directory entry's CSR arrays from
  // the pools cumulatively and validate their internal shape.
  gram_index_.assign(n, ChannelGramIndex{});
  std::size_t entry_at = 0;
  std::size_t dir_at = 0;
  std::size_t key_at = 0;
  std::size_t off_at = 0;
  std::size_t post_at = 0;
  for (std::size_t f = 0; f < n; ++f) {
    ChannelGramIndex& channel = gram_index_[f];
    const std::uint32_t n_entries = meta_.entry_counts[f];
    if (n_entries > entries_.size() - entry_at) bad_index("entry pool size");
    channel.entries = entries_.subspan(entry_at, n_entries);
    entry_at += n_entries;

    const std::uint32_t n_dir = meta_.dir_counts[f];
    if (n_dir > gram_dir_.size() - dir_at) bad_index("gram directory size");
    channel.by_blocksize.reserve(n_dir);
    for (std::uint32_t d = 0; d < n_dir; ++d) {
      const GramDirEntry& dir = gram_dir_[dir_at + d];
      ChannelGramIndex::BlocksizeIndex bsi;
      bsi.blocksize = dir.blocksize;
      const auto carve = [&](std::uint32_t n_keys, std::uint32_t n_postings) {
        if (n_keys > gram_keys_.size() - key_at ||
            gram_offsets_.size() - off_at < std::size_t{n_keys} + 1 ||
            n_postings > gram_postings_.size() - post_at) {
          bad_index("CSR overruns gram pools");
        }
        const ssdeep::GramIndexView view(
            gram_keys_.subspan(key_at, n_keys),
            gram_offsets_.subspan(off_at, std::size_t{n_keys} + 1),
            gram_postings_.subspan(post_at, n_postings));
        key_at += n_keys;
        off_at += std::size_t{n_keys} + 1;
        post_at += n_postings;
        validate_csr(view.keys(), view.offsets(), view.postings(), n_entries);
        return view;
      };
      bsi.part1 = carve(dir.p1_keys, dir.p1_postings);
      bsi.part2 = carve(dir.p2_keys, dir.p2_postings);
      channel.by_blocksize.push_back(bsi);
    }
    dir_at += n_dir;
  }
  if (entry_at != entries_.size() || dir_at != gram_dir_.size() ||
      key_at != gram_keys_.size() || off_at != gram_offsets_.size() ||
      post_at != gram_postings_.size()) {
    bad_index("gram pool sizes");
  }

  // Every gram entry must address a real (cell, bucket, pos) digest.
  for (std::size_t f = 0; f < n; ++f) {
    for (const GramEntry& entry : gram_index_[f].entries) {
      if (entry.cls < 0 || entry.cls >= k || entry.bucket < 0 || entry.pos < 0) {
        bad_index("gram entry out of range");
      }
      const std::size_t cell =
          f * static_cast<std::size_t>(k) + static_cast<std::size_t>(entry.cls);
      const std::size_t n_buckets = cell_offsets_[cell + 1] - cell_offsets_[cell];
      if (static_cast<std::size_t>(entry.bucket) >= n_buckets) {
        bad_index("gram entry bucket out of range");
      }
      const PreparedBucket& bucket =
          buckets_[cell_offsets_[cell] + static_cast<std::size_t>(entry.bucket)];
      if (static_cast<std::size_t>(entry.pos) >= bucket.recs.size()) {
        bad_index("gram entry position out of range");
      }
    }
  }
}

const std::vector<ssdeep::FuzzyDigest>& TrainIndex::digests(std::size_t f,
                                                            int c) const {
  materialize_raw();
  return digests_.at(f).at(static_cast<std::size_t>(c));
}

std::span<const TrainIndex::PreparedBucket> TrainIndex::prepared(std::size_t f,
                                                                 int c) const {
  if (f >= n_channels()) throw std::out_of_range("TrainIndex::prepared");
  if (c < 0 || c >= n_classes()) throw std::out_of_range("TrainIndex::prepared");
  const std::size_t cell = f * static_cast<std::size_t>(n_classes()) +
                           static_cast<std::size_t>(c);
  return std::span<const PreparedBucket>(buckets_).subspan(
      cell_offsets_[cell], cell_offsets_[cell + 1] - cell_offsets_[cell]);
}

std::span<const std::int32_t> TrainIndex::train_ids(int c) const {
  if (c < 0 || c >= n_classes()) throw std::out_of_range("TrainIndex::train_ids");
  const auto i = static_cast<std::size_t>(c);
  return class_ids_.subspan(class_id_offsets_[i],
                            class_id_offsets_[i + 1] - class_id_offsets_[i]);
}

const TrainIndex::ChannelGramIndex& TrainIndex::gram_index(std::size_t f) const {
  return gram_index_.at(f);
}

std::vector<std::string> TrainIndex::feature_names() const {
  std::vector<std::string> names;
  names.reserve(n_channels() * static_cast<std::size_t>(n_classes()));
  for (const ChannelDesc& channel : channels_) {
    for (const std::string& cls : class_names_) {
      names.push_back(channel.name + ":" + cls);
    }
  }
  return names;
}

PreparedQuery::PreparedQuery(const FeatureHashes& sample, const ChannelMask& mask)
    : channels(sample.channel_count()) {
  for (std::size_t f = 0; f < channels.size(); ++f) {
    if (!mask.enabled(f)) continue;
    channels[f] = ssdeep::PreparedDigest(sample.channel(f));
  }
}

namespace {

void validate_slice(const TrainIndex& index, int class_begin, int class_end,
                    std::span<float> out_row) {
  const int k = index.n_classes();
  if (out_row.size() != index.n_channels() * static_cast<std::size_t>(k)) {
    throw std::invalid_argument("fill_feature_row_slice: bad row width");
  }
  if (class_begin < 0 || class_end > k || class_begin > class_end) {
    throw std::invalid_argument("fill_feature_row_slice: bad class range");
  }
}

/// Digests an all-pairs scan would visit for this (channel, slice):
/// everything in a blocksize-pairable bucket — the denominator of the
/// gate counters.
std::uint64_t pairable_digests(const TrainIndex& index, std::size_t f,
                               std::uint32_t own_blocksize, int class_begin,
                               int class_end) {
  std::uint64_t total = 0;
  for (int c = class_begin; c < class_end; ++c) {
    for (const TrainIndex::PreparedBucket& bucket : index.prepared(f, c)) {
      if (ssdeep::blocksizes_can_pair(own_blocksize, bucket.blocksize)) {
        total += bucket.recs.size();
      }
    }
  }
  return total;
}

}  // namespace

void fill_feature_row(const TrainIndex& index, const FeatureHashes& sample,
                      ssdeep::EditMetric metric, int exclude_id,
                      std::span<float> out_row, const ChannelMask& channels,
                      RowFillStats* stats) {
  // Normalize the query once per channel; the train side was prepared
  // when the index was built.
  const PreparedQuery query(sample, channels);
  fill_feature_row_slice(index, query, metric, exclude_id, 0, index.n_classes(),
                         out_row, channels, stats);
}

QueryCandidates::QueryCandidates(const TrainIndex& index,
                                 const PreparedQuery& query,
                                 const ChannelMask& channels)
    : per_channel_(index.n_channels()) {
  // Probe scratch: reused across channels and calls on this thread —
  // steady-state probes allocate only the retained id vectors.
  thread_local ssdeep::CandidateSet scratch;
  for (std::size_t f = 0; f < index.n_channels(); ++f) {
    if (!channels.enabled(f)) continue;
    const ssdeep::PreparedDigest& own = query.channel(f);
    const TrainIndex::ChannelGramIndex& grams = index.gram_index(f);

    // One probe per pairable blocksize bucket (at most three), matching
    // the part pairing compare_prepared scores at that blocksize
    // relation: part1/part2 against their own kind when equal, crosswise
    // when one side's blocksize doubles the other's.
    scratch.reset(grams.entries.size());
    for (const TrainIndex::ChannelGramIndex::BlocksizeIndex& bsi :
         grams.by_blocksize) {
      if (!ssdeep::blocksizes_can_pair(own.blocksize(), bsi.blocksize)) continue;
      if (bsi.blocksize == own.blocksize()) {
        bsi.part1.collect(own.part1().grams, scratch);
        bsi.part2.collect(own.part2().grams, scratch);
      } else if (own.blocksize() == std::uint64_t{bsi.blocksize} * 2) {
        // The query's part1 lives at the bucket's part2 blocksize.
        bsi.part2.collect(own.part1().grams, scratch);
      } else {
        bsi.part1.collect(own.part2().grams, scratch);
      }
    }
    // Entry ids ascend in (class, bucket, pos) order, so sorting groups
    // the candidates by class with classes ascending.
    scratch.sort();
    per_channel_[f].assign(scratch.ids().begin(), scratch.ids().end());
  }
}

void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row, const ChannelMask& channels,
                            RowFillStats* stats) {
  const QueryCandidates candidates(index, query, channels);
  fill_feature_row_slice(index, query, candidates, metric, exclude_id,
                         class_begin, class_end, out_row, channels, stats);
}

void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            const QueryCandidates& candidates,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row, const ChannelMask& channels,
                            RowFillStats* stats) {
  const int k = index.n_classes();
  validate_slice(index, class_begin, class_end, out_row);
  for (std::size_t f = 0; f < index.n_channels(); ++f) {
    for (int c = class_begin; c < class_end; ++c) {
      out_row[f * static_cast<std::size_t>(k) + static_cast<std::size_t>(c)] = 0.0f;
    }
    if (!channels.enabled(f)) continue;
    const ssdeep::PreparedDigest& own = query.channel(f);
    const ssdeep::PreparedDigestView own_view = own.view();
    const TrainIndex::ChannelGramIndex& grams = index.gram_index(f);
    const std::vector<std::uint32_t>& hits = candidates.of(f);

    // The list is class-grouped, so the slice's share is one contiguous
    // run — binary-search its start instead of stepping over every
    // candidate of the classes before class_begin.
    std::uint64_t scored = 0;
    std::size_t i = static_cast<std::size_t>(
        std::partition_point(hits.begin(), hits.end(),
                             [&](std::uint32_t id) {
                               return grams.entries[id].cls < class_begin;
                             }) -
        hits.begin());
    while (i < hits.size()) {
      const int c = grams.entries[hits[i]].cls;
      if (c >= class_end) break;
      int best = 0;
      while (i < hits.size()) {
        const TrainIndex::GramEntry& entry = grams.entries[hits[i]];
        if (entry.cls != c) break;
        ++i;
        if (best == 100) continue;  // cannot improve; drain the class group
        const TrainIndex::PreparedBucket& bucket =
            index.prepared(f, c)[static_cast<std::size_t>(entry.bucket)];
        const auto pos = static_cast<std::size_t>(entry.pos);
        if (exclude_id >= 0 && bucket.ids[pos] == exclude_id) continue;
        const int score =
            ssdeep::compare_prepared(own_view, index.view_of(bucket, pos), metric);
        ++scored;
        if (score > best) best = score;
      }
      out_row[f * static_cast<std::size_t>(k) + static_cast<std::size_t>(c)] =
          static_cast<float>(best);
    }
    if (stats != nullptr) {
      stats->candidates_scored += scored;
      stats->index_skipped +=
          pairable_digests(index, f, own.blocksize(), class_begin, class_end) -
          scored;
    }
  }
}

void fill_feature_row_slice_all_pairs(const TrainIndex& index,
                                      const PreparedQuery& query,
                                      ssdeep::EditMetric metric, int exclude_id,
                                      int class_begin, int class_end,
                                      std::span<float> out_row,
                                      const ChannelMask& channels) {
  const int k = index.n_classes();
  validate_slice(index, class_begin, class_end, out_row);
  for (std::size_t f = 0; f < index.n_channels(); ++f) {
    if (!channels.enabled(f)) {
      for (int c = class_begin; c < class_end; ++c) {
        out_row[f * static_cast<std::size_t>(k) + static_cast<std::size_t>(c)] = 0.0f;
      }
      continue;
    }
    const ssdeep::PreparedDigest& own = query.channel(f);
    const ssdeep::PreparedDigestView own_view = own.view();
    for (int c = class_begin; c < class_end; ++c) {
      int best = 0;
      for (const TrainIndex::PreparedBucket& bucket : index.prepared(f, c)) {
        if (!ssdeep::blocksizes_can_pair(own.blocksize(), bucket.blocksize)) {
          continue;  // nothing in this bucket can score > 0
        }
        for (std::size_t j = 0; j < bucket.recs.size(); ++j) {
          if (exclude_id >= 0 && bucket.ids[j] == exclude_id) continue;
          const int score =
              ssdeep::compare_prepared(own_view, index.view_of(bucket, j), metric);
          if (score > best) {
            best = score;
            if (best == 100) break;  // cannot improve
          }
        }
        if (best == 100) break;
      }
      out_row[f * static_cast<std::size_t>(k) + static_cast<std::size_t>(c)] =
          static_cast<float>(best);
    }
  }
}

void fill_feature_row_all_pairs(const TrainIndex& index,
                                const FeatureHashes& sample,
                                ssdeep::EditMetric metric, int exclude_id,
                                std::span<float> out_row,
                                const ChannelMask& channels) {
  const PreparedQuery query(sample, channels);
  fill_feature_row_slice_all_pairs(index, query, metric, exclude_id, 0,
                                   index.n_classes(), out_row, channels);
}

ml::Matrix build_feature_matrix(const TrainIndex& index,
                                const std::vector<FeatureHashes>& samples,
                                ssdeep::EditMetric metric,
                                const std::vector<int>& exclude_ids,
                                const ChannelMask& channels) {
  if (!exclude_ids.empty() && exclude_ids.size() != samples.size()) {
    throw std::invalid_argument("build_feature_matrix: exclude_ids size mismatch");
  }
  ml::Matrix x(samples.size(),
               index.n_channels() * static_cast<std::size_t>(index.n_classes()));
  fhc::util::parallel_for(samples.size(), [&](std::size_t i) {
    const int exclude = exclude_ids.empty() ? -1 : exclude_ids[i];
    fill_feature_row(index, samples[i], metric, exclude, x.row(i), channels);
  });
  return x;
}

}  // namespace fhc::core
