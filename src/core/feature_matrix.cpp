#include "core/feature_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fhc::core {

TrainIndex::TrainIndex(const std::vector<FeatureHashes>& train_hashes,
                       const std::vector<int>& labels,
                       std::vector<std::string> class_names)
    : class_names_(std::move(class_names)) {
  if (train_hashes.size() != labels.size()) {
    throw std::invalid_argument("TrainIndex: size mismatch");
  }
  const int k = n_classes();
  digests_.assign(kFeatureTypeCount,
                  std::vector<std::vector<ssdeep::FuzzyDigest>>(
                      static_cast<std::size_t>(k)));
  prepared_.assign(kFeatureTypeCount, std::vector<std::vector<PreparedBucket>>(
                                          static_cast<std::size_t>(k)));
  ids_.assign(static_cast<std::size_t>(k), {});
  train_sample_count_ = train_hashes.size();

  for (std::size_t i = 0; i < train_hashes.size(); ++i) {
    const int label = labels[i];
    if (label < 0 || label >= k) {
      throw std::invalid_argument("TrainIndex: label out of range");
    }
    const auto c = static_cast<std::size_t>(label);
    for (int f = 0; f < kFeatureTypeCount; ++f) {
      const ssdeep::FuzzyDigest& digest =
          train_hashes[i].of(static_cast<FeatureType>(f));
      digests_[static_cast<std::size_t>(f)][c].push_back(digest);

      // Normalize once here, into the bucket of this blocksize (at most
      // kNumBlockhashes buckets per cell — a linear scan stays cheap).
      auto& buckets = prepared_[static_cast<std::size_t>(f)][c];
      auto it = std::find_if(buckets.begin(), buckets.end(),
                             [&](const PreparedBucket& bucket) {
                               return bucket.blocksize == digest.blocksize;
                             });
      if (it == buckets.end()) {
        buckets.push_back(PreparedBucket{digest.blocksize, {}, {}});
        it = buckets.end() - 1;
      }
      it->digests.emplace_back(digest);
      it->ids.push_back(static_cast<int>(i));
    }
    ids_[c].push_back(static_cast<int>(i));
  }
}

const std::vector<ssdeep::FuzzyDigest>& TrainIndex::digests(FeatureType f,
                                                            int c) const {
  return digests_.at(static_cast<std::size_t>(f)).at(static_cast<std::size_t>(c));
}

const std::vector<TrainIndex::PreparedBucket>& TrainIndex::prepared(FeatureType f,
                                                                    int c) const {
  return prepared_.at(static_cast<std::size_t>(f)).at(static_cast<std::size_t>(c));
}

const std::vector<int>& TrainIndex::train_ids(int c) const {
  return ids_.at(static_cast<std::size_t>(c));
}

std::vector<std::string> TrainIndex::feature_names() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(kFeatureTypeCount * n_classes()));
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    for (const std::string& cls : class_names_) {
      names.push_back(std::string(feature_type_name(static_cast<FeatureType>(f))) +
                      ":" + cls);
    }
  }
  return names;
}

PreparedQuery::PreparedQuery(const FeatureHashes& sample, const ChannelMask& mask) {
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    if (!mask[static_cast<std::size_t>(f)]) continue;
    channels[static_cast<std::size_t>(f)] =
        ssdeep::PreparedDigest(sample.of(static_cast<FeatureType>(f)));
  }
}

void fill_feature_row(const TrainIndex& index, const FeatureHashes& sample,
                      ssdeep::EditMetric metric, int exclude_id,
                      std::span<float> out_row, const ChannelMask& channels) {
  // Normalize the query once per feature type; the train side was prepared
  // when the index was built.
  const PreparedQuery query(sample, channels);
  fill_feature_row_slice(index, query, metric, exclude_id, 0, index.n_classes(),
                         out_row, channels);
}

void fill_feature_row_slice(const TrainIndex& index, const PreparedQuery& query,
                            ssdeep::EditMetric metric, int exclude_id,
                            int class_begin, int class_end,
                            std::span<float> out_row, const ChannelMask& channels) {
  const int k = index.n_classes();
  if (out_row.size() != static_cast<std::size_t>(kFeatureTypeCount * k)) {
    throw std::invalid_argument("fill_feature_row_slice: bad row width");
  }
  if (class_begin < 0 || class_end > k || class_begin > class_end) {
    throw std::invalid_argument("fill_feature_row_slice: bad class range");
  }
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    if (!channels[static_cast<std::size_t>(f)]) {
      for (int c = class_begin; c < class_end; ++c) {
        out_row[static_cast<std::size_t>(f * k + c)] = 0.0f;
      }
      continue;
    }
    const ssdeep::PreparedDigest& own = query.channels[static_cast<std::size_t>(f)];
    const auto type = static_cast<FeatureType>(f);
    for (int c = class_begin; c < class_end; ++c) {
      int best = 0;
      for (const TrainIndex::PreparedBucket& bucket : index.prepared(type, c)) {
        if (!ssdeep::blocksizes_can_pair(own.blocksize(), bucket.blocksize)) {
          continue;  // nothing in this bucket can score > 0
        }
        for (std::size_t j = 0; j < bucket.digests.size(); ++j) {
          if (exclude_id >= 0 && bucket.ids[j] == exclude_id) continue;
          const int score = ssdeep::compare_prepared(own, bucket.digests[j], metric);
          if (score > best) {
            best = score;
            if (best == 100) break;  // cannot improve
          }
        }
        if (best == 100) break;
      }
      out_row[static_cast<std::size_t>(f * k + c)] = static_cast<float>(best);
    }
  }
}

ml::Matrix build_feature_matrix(const TrainIndex& index,
                                const std::vector<FeatureHashes>& samples,
                                ssdeep::EditMetric metric,
                                const std::vector<int>& exclude_ids,
                                const ChannelMask& channels) {
  if (!exclude_ids.empty() && exclude_ids.size() != samples.size()) {
    throw std::invalid_argument("build_feature_matrix: exclude_ids size mismatch");
  }
  ml::Matrix x(samples.size(),
               static_cast<std::size_t>(kFeatureTypeCount * index.n_classes()));
  fhc::util::parallel_for(samples.size(), [&](std::size_t i) {
    const int exclude = exclude_ids.empty() ? -1 : exclude_ids[i];
    fill_feature_row(index, samples[i], metric, exclude, x.row(i), channels);
  });
  return x;
}

}  // namespace fhc::core
