// Feature extraction and the feature-channel registry.
//
// The paper's feature set (Section 3) is three static SSDeep channels:
//   ssdeep-file    — fuzzy hash of the raw binary content,
//   ssdeep-strings — fuzzy hash of the `strings` output,
//   ssdeep-symbols — fuzzy hash of the `nm` global text symbols.
//
// That triple used to be a compile-time constant (kFeatureTypeCount
// arrays everywhere). It is now the *default* value of a runtime
// ChannelSet: an ordered list of channel descriptors (name + kind)
// carried by TrainIndex/FuzzyHashClassifier and recorded in the model
// file, so new channels — the first being the runtime
// execution-fingerprint channel in src/runtime/ — fuse into the same
// feature matrix, masks, and serialization machinery without another
// layer-by-layer refactor. Channel order is the column-group order of
// the feature matrix; the first three positions of the default set keep
// the paper's Table 5 order.
//
// Stripped binaries (no .symtab) yield an empty symbols channel; the
// digest of the empty text compares as 0 to everything, so such samples
// lean entirely on the other channels — mirroring the limitation the
// paper discusses. A sample that carries fewer channels than the model
// (e.g. a static-only sample against a model with the runtime channel)
// degrades the same way: the missing channels score 0.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ssdeep/fuzzy_hash.hpp"

namespace fhc::core {

/// Index of each static feature channel; also the column-group order in
/// the feature matrix and the row order of Table 5.
enum class FeatureType : int { kFile = 0, kStrings = 1, kSymbols = 2 };

/// Number of channels in the paper's static triple (the default
/// ChannelSet) — NOT the channel count of an arbitrary model; use
/// ChannelSet::size() / TrainIndex::n_channels() for that.
inline constexpr int kFeatureTypeCount = 3;

/// Hard cap on channels per model — also the inline capacity of
/// ChannelMask. Eight is far above any current set (static triple +
/// runtime = 4) while keeping masks trivially copyable.
inline constexpr std::size_t kMaxChannels = 8;

/// Paper's feature names ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols").
std::string_view feature_type_name(FeatureType type) noexcept;

/// What a channel's digests are computed over: the binary at rest or a
/// trace of it running. Kind is descriptive metadata (surfaced by
/// fhc_inspect and reports); the scoring machinery treats every channel
/// identically.
enum class ChannelKind : int { kStatic = 0, kRuntime = 1 };

std::string_view channel_kind_name(ChannelKind kind) noexcept;

/// One feature channel: a space-free name (it is serialized on a
/// space-delimited preamble line) and its kind.
struct ChannelDesc {
  std::string name;
  ChannelKind kind = ChannelKind::kStatic;

  bool operator==(const ChannelDesc&) const = default;
};

/// The ordered channel registry of one model. Position i of every
/// FeatureHashes, ChannelMask, feature row column group, and serialized
/// digest row refers to channel i of this set. Default-constructed =
/// the paper's static triple, and a static-triple model serializes
/// byte-identically to the pre-registry formats (no channelset block,
/// legacy index Meta) so old models stay readable bit for bit.
class ChannelSet {
 public:
  /// The static triple (file, strings, symbols).
  ChannelSet();

  /// Validates: 1..kMaxChannels channels, names non-empty, space-free,
  /// and unique. Throws std::invalid_argument otherwise.
  explicit ChannelSet(std::vector<ChannelDesc> channels);

  static const ChannelSet& static_triple();

  /// The static triple plus one appended channel — the common extension
  /// shape (runtime::runtime_channel_set() uses it).
  static ChannelSet static_plus(std::string name,
                                ChannelKind kind = ChannelKind::kRuntime);

  std::size_t size() const noexcept { return channels_.size(); }
  const ChannelDesc& operator[](std::size_t i) const { return channels_.at(i); }
  auto begin() const noexcept { return channels_.begin(); }
  auto end() const noexcept { return channels_.end(); }

  /// True for the exact default triple — the legacy-serialization gate.
  bool is_static_triple() const noexcept;

  /// Index of the channel named `name`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(std::string_view name) const noexcept;

  bool operator==(const ChannelSet&) const = default;

 private:
  std::vector<ChannelDesc> channels_;
};

/// The fuzzy hashes of one sample, positional against a ChannelSet:
/// channel(0..2) are the named static members, channel(3+) live in
/// `extra`. Samples may carry fewer channels than the model they are
/// scored against — channel() returns an empty digest (scores 0) past
/// the end, exactly like a stripped binary's empty symbols channel.
struct FeatureHashes {
  ssdeep::FuzzyDigest file;
  ssdeep::FuzzyDigest strings;
  ssdeep::FuzzyDigest symbols;
  bool has_symbols = true;  // false for stripped/non-ELF inputs
  std::vector<ssdeep::FuzzyDigest> extra;  // channels 3..n-1

  const ssdeep::FuzzyDigest& of(FeatureType type) const noexcept {
    switch (type) {
      case FeatureType::kFile: return file;
      case FeatureType::kStrings: return strings;
      case FeatureType::kSymbols: return symbols;
    }
    return file;  // unreachable
  }

  /// Channels this sample actually carries (>= the static triple).
  std::size_t channel_count() const noexcept { return 3 + extra.size(); }

  /// Digest of channel `i`; an empty digest past channel_count().
  const ssdeep::FuzzyDigest& channel(std::size_t i) const noexcept;

  /// Sets channel `i` (growing `extra` with empty digests as needed).
  void set_channel(std::size_t i, ssdeep::FuzzyDigest digest);
};

/// Extracts the three static channels from an executable image.
FeatureHashes extract_feature_hashes(std::span<const std::uint8_t> image);

}  // namespace fhc::core
