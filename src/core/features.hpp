// Feature extraction: one executable image -> three SSDeep fuzzy hashes.
//
// The paper's feature set (Section 3):
//   ssdeep-file    — fuzzy hash of the raw binary content,
//   ssdeep-strings — fuzzy hash of the `strings` output,
//   ssdeep-symbols — fuzzy hash of the `nm` global text symbols.
//
// Stripped binaries (no .symtab) yield an empty symbols channel; the
// digest of the empty text compares as 0 to everything, so such samples
// lean entirely on the other two channels — mirroring the limitation the
// paper discusses.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ssdeep/fuzzy_hash.hpp"

namespace fhc::core {

/// Index of each feature channel; also the column-group order in the
/// feature matrix and the row order of Table 5.
enum class FeatureType : int { kFile = 0, kStrings = 1, kSymbols = 2 };

inline constexpr int kFeatureTypeCount = 3;

/// Paper's feature names ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols").
std::string_view feature_type_name(FeatureType type) noexcept;

/// The three fuzzy hashes of one sample.
struct FeatureHashes {
  ssdeep::FuzzyDigest file;
  ssdeep::FuzzyDigest strings;
  ssdeep::FuzzyDigest symbols;
  bool has_symbols = true;  // false for stripped/non-ELF inputs

  const ssdeep::FuzzyDigest& of(FeatureType type) const noexcept {
    switch (type) {
      case FeatureType::kFile: return file;
      case FeatureType::kStrings: return strings;
      case FeatureType::kSymbols: return symbols;
    }
    return file;  // unreachable
  }
};

/// Extracts all three channels from an executable image.
FeatureHashes extract_feature_hashes(std::span<const std::uint8_t> image);

}  // namespace fhc::core
