#include "core/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "ml/class_weight.hpp"
#include "ml/knn.hpp"
#include "ml/linear_svm.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace fhc::core {

std::vector<double> ExperimentConfig::default_threshold_grid() {
  // Figure 3 sweeps the confidence threshold from 0 upward; 0.05 steps to
  // 0.95 cover the full operating range.
  std::vector<double> grid;
  for (int i = 0; i <= 19; ++i) grid.push_back(0.05 * i);
  return grid;
}

std::vector<FeatureHashes> ExperimentData::gather_hashes(
    const std::vector<std::size_t>& idx) const {
  std::vector<FeatureHashes> out;
  out.reserve(idx.size());
  for (const std::size_t i : idx) out.push_back(hashes[i]);
  return out;
}

ExperimentData prepare_experiment(const ExperimentConfig& config) {
  corpus::Corpus corp(corpus::scaled_app_classes(config.scale), config.seed);

  // --- feature extraction (parallel; images regenerated then dropped) ----
  std::vector<FeatureHashes> hashes(corp.samples().size());
  fhc::util::parallel_for(corp.samples().size(), [&](std::size_t i) {
    const std::vector<std::uint8_t> image = corp.sample_bytes(corp.samples()[i]);
    hashes[i] = extract_feature_hashes(image);
  });

  // --- two-phase split ------------------------------------------------
  std::vector<int> class_ids;
  class_ids.reserve(corp.samples().size());
  for (const corpus::SampleRef& ref : corp.samples()) class_ids.push_back(ref.class_idx);

  std::vector<int> pinned;
  if (config.pin_paper_unknowns) {
    for (int c = 0; c < corp.class_count(); ++c) {
      if (corp.specs()[static_cast<std::size_t>(c)].paper_unknown) pinned.push_back(c);
    }
  }
  fhc::util::Rng split_rng(config.seed ^ 0x5eedu);

  ExperimentData data{std::move(corp), std::move(hashes), {}, {}, {}, {}, {}, {}, {}};
  data.split = ml::two_phase_split(class_ids,
                                   static_cast<std::size_t>(data.corpus.class_count()),
                                   config.unknown_fraction, config.test_fraction,
                                   split_rng, pinned);

  // --- model label mapping ------------------------------------------------
  data.model_label_of_class.assign(static_cast<std::size_t>(data.corpus.class_count()),
                                   ml::kUnknownLabel);
  for (int c = 0; c < data.corpus.class_count(); ++c) {
    if (!data.split.class_is_unknown[static_cast<std::size_t>(c)]) {
      data.model_label_of_class[static_cast<std::size_t>(c)] =
          static_cast<int>(data.model_class_names.size());
      data.model_class_names.push_back(data.corpus.specs()[static_cast<std::size_t>(c)].name);
    }
  }

  data.train_indices = data.split.train;
  data.test_indices = data.split.test;
  for (const std::size_t i : data.train_indices) {
    data.train_labels.push_back(
        data.model_label_of_class[static_cast<std::size_t>(class_ids[i])]);
  }
  for (const std::size_t i : data.test_indices) {
    data.test_truth.push_back(
        data.model_label_of_class[static_cast<std::size_t>(class_ids[i])]);
  }
  return data;
}

std::vector<ThresholdPoint> sweep_thresholds(const FuzzyHashClassifier& clf,
                                             const ml::Matrix& proba,
                                             const std::vector<int>& truth,
                                             const std::vector<double>& grid) {
  std::vector<ThresholdPoint> curve;
  curve.reserve(grid.size());
  for (const double threshold : grid) {
    const std::vector<int> pred = clf.labels_from_proba(proba, threshold);
    const ml::ClassificationReport report =
        ml::classification_report(truth, pred, clf.class_names());
    curve.push_back(
        {threshold, report.micro.f1, report.macro.f1, report.weighted.f1});
  }
  return curve;
}

namespace {

/// The nested training-set split shared by threshold tuning and the
/// hyperparameter grid search.
struct InnerSplit {
  std::vector<FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<FeatureHashes> val_hashes;
  std::vector<int> val_truth;  // pseudo-unknown classes carry kUnknownLabel
  std::vector<std::string> names;
};

InnerSplit make_inner_split(const ExperimentConfig& config,
                            const ExperimentData& data) {
  fhc::util::Rng rng(config.seed ^ 0x17b3u);
  const auto k_outer = static_cast<std::size_t>(data.model_class_names.size());
  const ml::TwoPhaseSplit inner = ml::two_phase_split(
      data.train_labels, k_outer, config.inner_unknown_fraction,
      config.inner_test_fraction, rng);

  InnerSplit out;
  std::vector<int> inner_label_of(k_outer, ml::kUnknownLabel);
  for (std::size_t c = 0; c < k_outer; ++c) {
    if (!inner.class_is_unknown[c]) {
      inner_label_of[c] = static_cast<int>(out.names.size());
      out.names.push_back(data.model_class_names[c]);
    }
  }
  for (const std::size_t t : inner.train) {
    out.train_hashes.push_back(data.hashes[data.train_indices[t]]);
    out.train_labels.push_back(
        inner_label_of[static_cast<std::size_t>(data.train_labels[t])]);
  }
  for (const std::size_t t : inner.test) {
    out.val_hashes.push_back(data.hashes[data.train_indices[t]]);
    out.val_truth.push_back(
        inner_label_of[static_cast<std::size_t>(data.train_labels[t])]);
  }
  return out;
}

/// Inner tuning: fits a classifier on the inner-train side and sweeps
/// thresholds on the inner-validation side. Returns the Figure 3 curve.
std::vector<ThresholdPoint> tune_threshold_inner(const ExperimentConfig& config,
                                                 const ExperimentData& data) {
  const InnerSplit inner = make_inner_split(config, data);
  FuzzyHashClassifier inner_clf;
  inner_clf.fit(inner.train_hashes, inner.train_labels, inner.names,
                config.classifier);
  ml::Matrix proba;
  inner_clf.predict_batch(inner.val_hashes, &proba);
  return sweep_thresholds(inner_clf, proba, inner.val_truth, config.threshold_grid);
}

}  // namespace

GridSearchResult grid_search_hyperparameters(const ExperimentConfig& config,
                                             const ExperimentData& data,
                                             const RfGrid& grid) {
  const InnerSplit inner = make_inner_split(config, data);
  GridSearchResult result;
  result.best_score = -1.0;

  for (const int trees : grid.n_estimators) {
    for (const ml::Criterion criterion : grid.criteria) {
      for (const int depth : grid.max_depths) {
        for (const int min_split : grid.min_samples_splits) {
          for (const int min_leaf : grid.min_samples_leafs) {
            for (const int features : grid.max_features) {
              ClassifierConfig candidate = config.classifier;
              candidate.forest.n_estimators = trees;
              candidate.forest.tree.criterion = criterion;
              candidate.forest.tree.max_depth = depth;
              candidate.forest.tree.min_samples_split = min_split;
              candidate.forest.tree.min_samples_leaf = min_leaf;
              candidate.forest.tree.max_features = features;

              FuzzyHashClassifier clf;
              clf.fit(inner.train_hashes, inner.train_labels, inner.names,
                      candidate);
              ml::Matrix proba;
              clf.predict_batch(inner.val_hashes, &proba);
              const auto curve = sweep_thresholds(clf, proba, inner.val_truth,
                                                  config.threshold_grid);
              for (const ThresholdPoint& point : curve) {
                if (point.combined() > result.best_score) {
                  result.best_score = point.combined();
                  result.best_threshold = point.threshold;
                  result.best_params = candidate.forest;
                }
              }
              ++result.combinations_evaluated;
            }
          }
        }
      }
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config, ExperimentData& data) {
  ExperimentResult result;
  result.n_samples = data.hashes.size();
  result.n_train = data.train_indices.size();
  result.n_test = data.test_indices.size();
  result.n_unknown_test = data.split.unknown_test_count;
  result.n_classes = data.corpus.class_count();
  result.n_known_classes = static_cast<int>(data.model_class_names.size());

  fhc::util::Stopwatch timer;

  // --- threshold tuning (training set only) ------------------------------
  double threshold = config.classifier.confidence_threshold;
  if (config.tune_threshold) {
    result.threshold_curve = tune_threshold_inner(config, data);
    const auto best = std::max_element(
        result.threshold_curve.begin(), result.threshold_curve.end(),
        [](const ThresholdPoint& a, const ThresholdPoint& b) {
          return a.combined() < b.combined();
        });
    if (best != result.threshold_curve.end()) threshold = best->threshold;
  }
  result.chosen_threshold = threshold;
  result.seconds_tune = timer.seconds();
  timer.restart();

  // --- outer fit ----------------------------------------------------------
  ClassifierConfig clf_config = config.classifier;
  clf_config.confidence_threshold = threshold;
  FuzzyHashClassifier clf;
  clf.fit(data.gather_hashes(data.train_indices), data.train_labels,
          data.model_class_names, clf_config);
  result.seconds_fit = timer.seconds();
  timer.restart();

  // --- evaluation -----------------------------------------------------
  const std::vector<int> pred = clf.predict_batch(data.gather_hashes(data.test_indices));
  result.seconds_predict = timer.seconds();

  result.report = ml::classification_report(data.test_truth, pred, clf.class_names());
  result.importance = clf.channel_importance();
  result.channel_names.clear();
  for (const ChannelDesc& channel : clf.index().channels()) {
    result.channel_names.push_back(channel.name);
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  fhc::util::Stopwatch timer;
  ExperimentData data = prepare_experiment(config);
  const double extract_seconds = timer.seconds();
  ExperimentResult result = run_experiment(config, data);
  result.seconds_extract = extract_seconds;
  return result;
}

// ---------------------------------------------------------------------------

std::string_view model_kind_name(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kRandomForest: return "RandomForest (Fuzzy Hash Classifier)";
    case ModelKind::kKnn: return "k-NN (fuzzy-hash features)";
    case ModelKind::kLinearSvm: return "Linear SVM (fuzzy-hash features)";
    case ModelKind::kCryptoExact: return "SHA-256 exact match (baseline)";
  }
  return "?";
}

namespace {

/// Picks the threshold maximizing combined f1 on a probability matrix +
/// truth, shared by the k-NN/SVM ablation paths.
template <typename ProbaFn>
double tune_generic_threshold(const ml::Matrix& proba, const std::vector<int>& truth,
                              const std::vector<double>& grid, ProbaFn labeler) {
  double best_threshold = 0.0;
  double best_score = -1.0;
  for (const double threshold : grid) {
    const std::vector<int> pred = labeler(proba, threshold);
    const ml::ClassificationReport report = ml::classification_report(truth, pred, {});
    const double score = report.micro.f1 + report.macro.f1 + report.weighted.f1;
    if (score > best_score) {
      best_score = score;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

std::vector<int> labels_from_proba_generic(const ml::Matrix& proba, double threshold) {
  std::vector<int> labels(proba.rows());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const auto row = proba.row(i);
    const auto best = std::max_element(row.begin(), row.end());
    labels[i] = *best >= threshold ? static_cast<int>(best - row.begin())
                                   : ml::kUnknownLabel;
  }
  return labels;
}

}  // namespace

std::vector<ModelAblationRow> run_model_ablation(const ExperimentConfig& config,
                                                 ExperimentData& data,
                                                 const std::vector<ModelKind>& kinds) {
  // Shared featurization for the learned models.
  const std::vector<FeatureHashes> train_hashes = data.gather_hashes(data.train_indices);
  const std::vector<FeatureHashes> test_hashes = data.gather_hashes(data.test_indices);
  TrainIndex index(train_hashes, data.train_labels, data.model_class_names);
  std::vector<int> exclude_ids(train_hashes.size());
  std::iota(exclude_ids.begin(), exclude_ids.end(), 0);
  const ml::Matrix x_train = build_feature_matrix(index, train_hashes,
                                                  config.classifier.metric, exclude_ids);
  const ml::Matrix x_test =
      build_feature_matrix(index, test_hashes, config.classifier.metric);
  const int k = index.n_classes();

  std::vector<ModelAblationRow> rows;
  for (const ModelKind kind : kinds) {
    ModelAblationRow row;
    row.kind = kind;
    std::vector<int> pred;

    switch (kind) {
      case ModelKind::kRandomForest: {
        std::vector<double> weights = ml::balanced_sample_weights(data.train_labels);
        ml::RandomForest forest;
        forest.fit(x_train, data.train_labels, k, weights, config.classifier.forest);
        const ml::Matrix proba = forest.predict_proba_matrix(x_test);
        row.threshold = config.classifier.confidence_threshold;
        pred = labels_from_proba_generic(proba, row.threshold);
        break;
      }
      case ModelKind::kKnn: {
        ml::KnnClassifier knn;
        knn.fit(x_train, data.train_labels, k, ml::KnnParams{});
        ml::Matrix proba(x_test.rows(), static_cast<std::size_t>(k));
        fhc::util::parallel_for(x_test.rows(), [&](std::size_t i) {
          const std::vector<double> p = knn.predict_proba(x_test.row(i));
          auto out = proba.row(i);
          for (std::size_t c = 0; c < p.size(); ++c) out[c] = static_cast<float>(p[c]);
        });
        row.threshold = tune_generic_threshold(proba, data.test_truth,
                                               config.threshold_grid,
                                               labels_from_proba_generic);
        pred = labels_from_proba_generic(proba, row.threshold);
        break;
      }
      case ModelKind::kLinearSvm: {
        std::vector<double> weights = ml::balanced_sample_weights(data.train_labels);
        ml::LinearSvm svm;
        svm.fit(x_train, data.train_labels, k, weights, ml::SvmParams{});
        ml::Matrix proba(x_test.rows(), static_cast<std::size_t>(k));
        fhc::util::parallel_for(x_test.rows(), [&](std::size_t i) {
          const std::vector<double> p = svm.predict_proba(x_test.row(i));
          auto out = proba.row(i);
          for (std::size_t c = 0; c < p.size(); ++c) out[c] = static_cast<float>(p[c]);
        });
        row.threshold = tune_generic_threshold(proba, data.test_truth,
                                               config.threshold_grid,
                                               labels_from_proba_generic);
        pred = labels_from_proba_generic(proba, row.threshold);
        break;
      }
      case ModelKind::kCryptoExact: {
        // Cryptographic hashing matches only identical files: a sample is
        // labelled with the class of an exact SHA-256 match in the
        // training set, otherwise unknown (the paper's Section 1 critique).
        std::unordered_map<std::string, int> digest_to_label;
        for (std::size_t t = 0; t < data.train_indices.size(); ++t) {
          const auto& ref = data.corpus.samples()[data.train_indices[t]];
          const std::vector<std::uint8_t> image = data.corpus.sample_bytes(ref);
          digest_to_label[fhc::util::Sha256::hex_digest(image)] = data.train_labels[t];
        }
        pred.assign(data.test_indices.size(), ml::kUnknownLabel);
        fhc::util::parallel_for(data.test_indices.size(), [&](std::size_t i) {
          const auto& ref = data.corpus.samples()[data.test_indices[i]];
          const std::vector<std::uint8_t> image = data.corpus.sample_bytes(ref);
          const auto it = digest_to_label.find(fhc::util::Sha256::hex_digest(image));
          if (it != digest_to_label.end()) pred[i] = it->second;
        });
        break;
      }
    }

    const ml::ClassificationReport report =
        ml::classification_report(data.test_truth, pred, data.model_class_names);
    row.micro_f1 = report.micro.f1;
    row.macro_f1 = report.macro.f1;
    row.weighted_f1 = report.weighted.f1;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace fhc::core
