#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace fhc::core {

using fhc::util::Align;
using fhc::util::TextTable;
using fhc::util::fixed;

std::string render_class_inventory(const corpus::Corpus& corpus,
                                   const std::string& class_name) {
  int class_idx = -1;
  for (int c = 0; c < corpus.class_count(); ++c) {
    if (corpus.specs()[static_cast<std::size_t>(c)].name == class_name) {
      class_idx = c;
      break;
    }
  }
  if (class_idx < 0) {
    throw std::invalid_argument("render_class_inventory: unknown class " + class_name);
  }
  const auto& synth = corpus.synthesizer(class_idx);

  TextTable table({"Class", "Application Version", "Samples"});
  const auto& versions = synth.versions();
  const auto& per_version = synth.samples_per_version();
  for (std::size_t v = 0; v < versions.size(); ++v) {
    std::vector<std::string> execs;
    for (int e = 0; e < per_version[v]; ++e) execs.push_back(synth.exec_name(e));
    table.add_row({v == 0 ? class_name : "", versions[v].dir_name,
                   fhc::util::join(execs, ", ")});
  }
  return table.render();
}

SimilarityExample make_similarity_example(const corpus::Corpus& corpus,
                                          const std::string& class_name,
                                          FeatureType channel,
                                          ssdeep::EditMetric metric) {
  const std::vector<int> ids = [&] {
    for (int c = 0; c < corpus.class_count(); ++c) {
      if (corpus.specs()[static_cast<std::size_t>(c)].name == class_name) {
        return corpus.samples_of_class(c);
      }
    }
    throw std::invalid_argument("make_similarity_example: unknown class " + class_name);
  }();
  if (ids.size() < 2) throw std::invalid_argument("need >= 2 samples");

  // First sample of the first two distinct versions.
  const corpus::SampleRef* a = nullptr;
  const corpus::SampleRef* b = nullptr;
  for (const int id : ids) {
    const corpus::SampleRef& ref = corpus.samples()[static_cast<std::size_t>(id)];
    if (a == nullptr) {
      a = &ref;
    } else if (ref.version_idx != a->version_idx) {
      b = &ref;
      break;
    }
  }
  if (b == nullptr) {  // single-version class: fall back to two execs
    a = &corpus.samples()[static_cast<std::size_t>(ids[0])];
    b = &corpus.samples()[static_cast<std::size_t>(ids[1])];
  }

  const FeatureHashes ha = extract_feature_hashes(corpus.sample_bytes(*a));
  const FeatureHashes hb = extract_feature_hashes(corpus.sample_bytes(*b));

  SimilarityExample example;
  example.class_name = class_name;
  example.version_a = a->version_dir;
  example.version_b = b->version_dir;
  example.digest_a = ha.of(channel).to_string();
  example.digest_b = hb.of(channel).to_string();
  example.similarity = ssdeep::compare_digests(ha.of(channel), hb.of(channel), metric);
  return example;
}

std::string render_similarity_example(const SimilarityExample& example) {
  TextTable table({"Class", "Version", "Fuzzy Hash of Symbols"});
  table.add_row({example.class_name, example.version_a, example.digest_a});
  table.add_row({example.class_name, example.version_b, example.digest_b});
  std::string out = table.render();
  out += "Similarity: " + std::to_string(example.similarity) + "\n";
  return out;
}

std::string render_unknown_classes(const ExperimentData& data) {
  struct Row {
    std::string name;
    int count = 0;
  };
  std::vector<Row> rows;
  for (int c = 0; c < data.corpus.class_count(); ++c) {
    if (!data.split.class_is_unknown[static_cast<std::size_t>(c)]) continue;
    const auto& spec = data.corpus.specs()[static_cast<std::size_t>(c)];
    rows.push_back({spec.name, spec.total_samples});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.name < b.name;
  });

  TextTable table({"Application Class", "Sample Count"}, {Align::Left, Align::Right});
  int total = 0;
  for (const Row& row : rows) {
    table.add_row({row.name, std::to_string(row.count)});
    total += row.count;
  }
  table.add_rule();
  table.add_row({"total", std::to_string(total)});
  return table.render();
}

std::string render_class_sizes(const std::vector<corpus::AppClassSpec>& specs) {
  std::vector<const corpus::AppClassSpec*> sorted;
  sorted.reserve(specs.size());
  for (const auto& spec : specs) sorted.push_back(&spec);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->total_samples > b->total_samples; });

  TextTable table({"Application Class", "Samples", "log-scale"},
                  {Align::Left, Align::Right, Align::Left});
  for (const auto* spec : sorted) {
    const int bar_len = static_cast<int>(
        std::round(8.0 * std::log10(static_cast<double>(std::max(1, spec->total_samples)))));
    table.add_row({spec->name, std::to_string(spec->total_samples),
                   std::string(static_cast<std::size_t>(std::max(1, bar_len)), '#')});
  }
  return table.render();
}

std::string render_feature_importance(const std::vector<double>& imp,
                                      const ChannelSet& channels) {
  if (imp.size() != channels.size()) {
    throw std::invalid_argument(
        "render_feature_importance: importance/channel count mismatch");
  }
  TextTable table({"Features", "Importance"}, {Align::Left, Align::Right});
  for (std::size_t f = 0; f < channels.size(); ++f) {
    table.add_row({channels[f].name, fixed(imp[f], 4)});
  }
  return table.render();
}

std::string render_threshold_curve(const std::vector<ThresholdPoint>& curve,
                                   double chosen) {
  TextTable table({"Threshold", "micro f1", "macro f1", "weighted f1", ""},
                  {Align::Right, Align::Right, Align::Right, Align::Right, Align::Left});
  for (const ThresholdPoint& point : curve) {
    table.add_row({fixed(point.threshold, 2), fixed(point.micro_f1, 3),
                   fixed(point.macro_f1, 3), fixed(point.weighted_f1, 3),
                   std::abs(point.threshold - chosen) < 1e-9 ? "<- chosen" : ""});
  }
  return table.render();
}

}  // namespace fhc::core
