#include "core/features.hpp"

#include "elf/strings_extract.hpp"
#include "elf/symbols_extract.hpp"

namespace fhc::core {

std::string_view feature_type_name(FeatureType type) noexcept {
  switch (type) {
    case FeatureType::kFile: return "ssdeep-file";
    case FeatureType::kStrings: return "ssdeep-strings";
    case FeatureType::kSymbols: return "ssdeep-symbols";
  }
  return "ssdeep-file";
}

FeatureHashes extract_feature_hashes(std::span<const std::uint8_t> image) {
  FeatureHashes hashes;
  hashes.file = ssdeep::fuzzy_hash(image);
  hashes.strings = ssdeep::fuzzy_hash(elf::strings_text(image));
  const std::string symbols = elf::global_text_symbols_text(image);
  hashes.has_symbols = !symbols.empty();
  hashes.symbols = ssdeep::fuzzy_hash(symbols);
  return hashes;
}

}  // namespace fhc::core
