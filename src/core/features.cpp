#include "core/features.hpp"

#include <algorithm>
#include <stdexcept>

#include "elf/strings_extract.hpp"
#include "elf/symbols_extract.hpp"

namespace fhc::core {

std::string_view feature_type_name(FeatureType type) noexcept {
  switch (type) {
    case FeatureType::kFile: return "ssdeep-file";
    case FeatureType::kStrings: return "ssdeep-strings";
    case FeatureType::kSymbols: return "ssdeep-symbols";
  }
  return "ssdeep-file";
}

std::string_view channel_kind_name(ChannelKind kind) noexcept {
  switch (kind) {
    case ChannelKind::kStatic: return "static";
    case ChannelKind::kRuntime: return "runtime";
  }
  return "static";
}

ChannelSet::ChannelSet()
    : channels_{{std::string(feature_type_name(FeatureType::kFile)),
                 ChannelKind::kStatic},
                {std::string(feature_type_name(FeatureType::kStrings)),
                 ChannelKind::kStatic},
                {std::string(feature_type_name(FeatureType::kSymbols)),
                 ChannelKind::kStatic}} {}

ChannelSet::ChannelSet(std::vector<ChannelDesc> channels)
    : channels_(std::move(channels)) {
  if (channels_.empty() || channels_.size() > kMaxChannels) {
    throw std::invalid_argument("ChannelSet: channel count out of range");
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const std::string& name = channels_[i].name;
    if (name.empty() || name.find_first_of(" \t\r\n") != std::string::npos) {
      throw std::invalid_argument(
          "ChannelSet: channel names must be non-empty and space-free");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (channels_[j].name == name) {
        throw std::invalid_argument("ChannelSet: duplicate channel name '" +
                                    name + "'");
      }
    }
  }
}

const ChannelSet& ChannelSet::static_triple() {
  static const ChannelSet triple;
  return triple;
}

ChannelSet ChannelSet::static_plus(std::string name, ChannelKind kind) {
  std::vector<ChannelDesc> channels(static_triple().begin(),
                                    static_triple().end());
  channels.push_back(ChannelDesc{std::move(name), kind});
  return ChannelSet(std::move(channels));
}

bool ChannelSet::is_static_triple() const noexcept {
  return *this == static_triple();
}

std::size_t ChannelSet::index_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].name == name) return i;
  }
  return npos;
}

const ssdeep::FuzzyDigest& FeatureHashes::channel(std::size_t i) const noexcept {
  static const ssdeep::FuzzyDigest kEmpty{};
  switch (i) {
    case 0: return file;
    case 1: return strings;
    case 2: return symbols;
    default:
      return i - 3 < extra.size() ? extra[i - 3] : kEmpty;
  }
}

void FeatureHashes::set_channel(std::size_t i, ssdeep::FuzzyDigest digest) {
  switch (i) {
    case 0: file = std::move(digest); return;
    case 1: strings = std::move(digest); return;
    case 2: symbols = std::move(digest); return;
    default:
      if (i - 3 >= extra.size()) extra.resize(i - 2);
      extra[i - 3] = std::move(digest);
  }
}

FeatureHashes extract_feature_hashes(std::span<const std::uint8_t> image) {
  FeatureHashes hashes;
  hashes.file = ssdeep::fuzzy_hash(image);
  hashes.strings = ssdeep::fuzzy_hash(elf::strings_text(image));
  const std::string symbols = elf::global_text_symbols_text(image);
  hashes.has_symbols = !symbols.empty();
  hashes.symbols = ssdeep::fuzzy_hash(symbols);
  return hashes;
}

}  // namespace fhc::core
