// End-to-end experiment pipeline reproducing the paper's protocol:
//
//   1. synthesize the corpus (92 classes / 5333 samples at scale 1.0);
//   2. extract the three fuzzy-hash channels per sample (parallel);
//   3. two-phase split — 19 whole classes to the unknown pool (pinned to
//      Table 3 in replication mode), stratified 60/40 on the rest;
//   4. inner threshold tuning *inside the training set only*: a nested
//      class-level split creates pseudo-unknown classes, one probability
//      pass is swept over the threshold grid (Figure 3's curves), and the
//      threshold maximizing micro+macro+weighted f1 wins;
//   5. fit the Fuzzy Hash Classifier on the full training set and evaluate
//      on the untouched test set -> classification report (Table 4),
//      feature-type importances (Table 5).
//
// The pipeline also powers the ablation benches: feature-channel masks and
// alternative models (k-NN, linear SVM, crypto-hash exact matching) reuse
// the same prepared data so comparisons are apples-to-apples.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "corpus/corpus.hpp"
#include "ml/metrics.hpp"
#include "ml/splits.hpp"

namespace fhc::core {

struct ExperimentConfig {
  std::uint64_t seed = 42;
  double scale = 1.0;  // corpus scale; 1.0 = the paper's 5333 samples

  // Split protocol.
  bool pin_paper_unknowns = true;  // use Table 3's unknown classes
  double unknown_fraction = 0.2;   // phase 1 (when not pinned)
  double test_fraction = 0.4;      // phase 2

  // Model.
  ClassifierConfig classifier;

  // Confidence-threshold tuning (inner split, training set only).
  bool tune_threshold = true;
  std::vector<double> threshold_grid = default_threshold_grid();
  double inner_unknown_fraction = 0.2;
  double inner_test_fraction = 0.4;

  static std::vector<double> default_threshold_grid();
};

/// One point of the Figure 3 sweep.
struct ThresholdPoint {
  double threshold = 0.0;
  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  double weighted_f1 = 0.0;

  double combined() const noexcept { return micro_f1 + macro_f1 + weighted_f1; }
};

/// Corpus + features + split, reusable across model variants.
struct ExperimentData {
  corpus::Corpus corpus;
  std::vector<FeatureHashes> hashes;  // per corpus sample
  ml::TwoPhaseSplit split;

  // Known-class model labels: corpus class idx -> 0..K-1, or -1 (unknown pool).
  std::vector<int> model_label_of_class;
  std::vector<std::string> model_class_names;  // size K

  // Convenience views.
  std::vector<std::size_t> train_indices;  // == split.train
  std::vector<int> train_labels;           // model labels (0..K-1)
  std::vector<std::size_t> test_indices;   // == split.test
  std::vector<int> test_truth;             // model labels; -1 for unknown pool

  std::vector<FeatureHashes> gather_hashes(const std::vector<std::size_t>& idx) const;
};

struct ExperimentResult {
  ml::ClassificationReport report;              // Table 4
  std::vector<double> importance;               // Table 5, one per channel
  std::vector<std::string> channel_names;       // parallel to importance
  std::vector<ThresholdPoint> threshold_curve;  // Figure 3
  double chosen_threshold = 0.0;

  std::size_t n_samples = 0;
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  std::size_t n_unknown_test = 0;
  int n_classes = 0;
  int n_known_classes = 0;

  double seconds_extract = 0.0;
  double seconds_tune = 0.0;
  double seconds_fit = 0.0;
  double seconds_predict = 0.0;
};

/// Steps 1-3: corpus synthesis, feature extraction, two-phase split.
ExperimentData prepare_experiment(const ExperimentConfig& config);

/// Steps 4-5 on prepared data.
ExperimentResult run_experiment(const ExperimentConfig& config, ExperimentData& data);

/// Full pipeline (prepare + run).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Threshold sweep: labels-from-probabilities at each grid point against
/// `truth` (may contain kUnknownLabel). Reuses one probability matrix.
std::vector<ThresholdPoint> sweep_thresholds(const FuzzyHashClassifier& clf,
                                             const ml::Matrix& proba,
                                             const std::vector<int>& truth,
                                             const std::vector<double>& grid);

// ---------------------------------------------------------------------------
// Hyperparameter grid search (paper Section 3: "hyperparameter tuning
// through grid search only within the training set", over n_estimators,
// criterion, max_depth, min_samples_split, min_samples_leaf, max_features
// and the confidence threshold).

struct RfGrid {
  std::vector<int> n_estimators = {100, 200};
  std::vector<ml::Criterion> criteria = {ml::Criterion::kGini};
  std::vector<int> max_depths = {0};           // 0 = unlimited
  std::vector<int> min_samples_splits = {2};
  std::vector<int> min_samples_leafs = {1};
  std::vector<int> max_features = {-1};        // -1 = sqrt

  std::size_t combination_count() const noexcept {
    return n_estimators.size() * criteria.size() * max_depths.size() *
           min_samples_splits.size() * min_samples_leafs.size() *
           max_features.size();
  }
};

struct GridSearchResult {
  ml::ForestParams best_params;
  double best_threshold = 0.0;
  double best_score = 0.0;  // combined micro+macro+weighted f1, inner split
  std::size_t combinations_evaluated = 0;
};

/// Evaluates every grid combination on the nested training-set split
/// (pseudo-unknown classes + threshold sweep per combination) and returns
/// the best forest parameters and threshold. Uses only `data`'s training
/// side — the outer test set is never touched.
GridSearchResult grid_search_hyperparameters(const ExperimentConfig& config,
                                             const ExperimentData& data,
                                             const RfGrid& grid);

// ---------------------------------------------------------------------------
// Model ablation (paper Section 6 comparators + the crypto-hash strawman).

enum class ModelKind { kRandomForest, kKnn, kLinearSvm, kCryptoExact };

std::string_view model_kind_name(ModelKind kind) noexcept;

struct ModelAblationRow {
  ModelKind kind = ModelKind::kRandomForest;
  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  double weighted_f1 = 0.0;
  double threshold = 0.0;  // tuned per model (n/a for crypto)
};

/// Evaluates each model on the same prepared data. k-NN and the SVM
/// consume the same similarity features; the crypto baseline matches
/// SHA-256 digests of the raw images (exact-duplicate detection only).
std::vector<ModelAblationRow> run_model_ablation(const ExperimentConfig& config,
                                                 ExperimentData& data,
                                                 const std::vector<ModelKind>& kinds);

}  // namespace fhc::core
