#include "core/version.hpp"

namespace fhc::core {

const char* version() noexcept { return FHC_VERSION; }

int version_major() noexcept { return FHC_VERSION_MAJOR; }
int version_minor() noexcept { return FHC_VERSION_MINOR; }
int version_patch() noexcept { return FHC_VERSION_PATCH; }

}  // namespace fhc::core
