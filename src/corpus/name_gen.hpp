// Deterministic generation of realistic symbol names and embedded strings.
//
// Every name derives from seeds, never from global state, so the corpus is
// reproducible and any single sample can be regenerated in isolation. The
// generated material mimics what `nm`/`strings` report on real scientific
// executables: C identifiers, Itanium-mangled C++ names, usage/error/log
// format strings, version banners and build paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/app_spec.hpp"
#include "util/rng.hpp"

namespace fhc::corpus {

/// Styles of generated symbol names.
enum class NameStyle {
  kCSnake,      // velvet_hash_kmer_table
  kCCamel,      // velvetHashKmerTable
  kCxxMangled,  // _ZN6velvet9KmerTable6insertEmm
};

class NameGenerator {
 public:
  /// `lineage_seed` scopes the vocabulary to one application lineage;
  /// `domain` mixes in a domain-specific root pool shared across classes
  /// of the same field (realistic cross-class similarity).
  NameGenerator(std::uint64_t lineage_seed, Domain domain, std::string prefix);

  /// A fresh function-symbol name; `salt` distinguishes call sites.
  std::string function_name(std::uint64_t salt) const;

  /// A fresh global-object-symbol name.
  std::string object_name(std::uint64_t salt) const;

  /// An embedded string: log/error/usage/format text.
  std::string message_string(std::uint64_t salt) const;

  /// A plausible alternative for `message` after a code change (bug fix,
  /// reworded diagnostic); deterministic in (message salt, change salt).
  std::string mutated_message(std::uint64_t salt, std::uint64_t change_salt) const;

  /// Version banner, e.g. "OpenMalaria version 46.0 (built with foss-2021a)".
  static std::string version_banner(const std::string& app, const std::string& version,
                                    const std::string& toolchain);

  /// Symbols every executable carries regardless of class (runtime/CRT
  /// noise: _start, _init, __bss_start, ...).
  static const std::vector<std::string>& runtime_symbols();

  /// Strings every executable carries (libc/libstdc++ diagnostics, license
  /// boilerplate, locale names); cross-class noise for the strings channel.
  static const std::vector<std::string>& runtime_strings();

  /// EasyBuild-style install-prefix/build-flag strings — per-version churn
  /// for the strings channel (sciCORE embeds these in real binaries).
  static std::vector<std::string> build_environment_strings(
      const std::string& app, const std::string& version_dir,
      const std::string& toolchain);

  /// Statically-linked scientific-library symbols shared by all classes of
  /// one domain (BLAS/HDF5-style). A class links a seeded subset; unknown-
  /// pool classes thus partially resemble known classes of the same field,
  /// which is what makes unknown detection non-trivial.
  static std::vector<std::string> domain_library_symbols(Domain domain);

  /// Library diagnostics shared within a domain (strings channel analog).
  static std::vector<std::string> domain_library_strings(Domain domain);

  /// Shared vocabulary of a related-project family (see AppClassSpec::family).
  static std::vector<std::string> family_symbols(const std::string& family,
                                                 std::uint64_t corpus_seed);
  static std::vector<std::string> family_strings(const std::string& family,
                                                 std::uint64_t corpus_seed);

 private:
  std::string pick_root(fhc::util::Rng& rng) const;
  std::string identifier(fhc::util::Rng& rng, NameStyle style) const;

  std::uint64_t lineage_seed_;
  Domain domain_;
  std::string prefix_;  // short class tag, e.g. "velvet"
};

/// Itanium-style mangling of a namespace + method pair (subset: nested
/// names with simple integer/pointer params). Good enough to look like
/// `nm` output on a C++ binary; not a full mangler.
std::string mangle_cxx(const std::string& ns, const std::string& cls,
                       const std::string& method, int arity);

/// Uppercased alphanumeric tag of a class name ("Cell-Ranger" -> "CELLRANGER").
std::string class_prefix_upper(const std::string& name);

}  // namespace fhc::corpus
