#include "corpus/app_spec.hpp"

#include <algorithm>
#include <cmath>

#include "util/string_util.hpp"

namespace fhc::corpus {

namespace {

AppClassSpec known(std::string name, int total, int support,
                   Domain domain = Domain::kBioinformatics) {
  AppClassSpec spec;
  spec.lineage = fhc::util::to_lower(name);
  spec.name = std::move(name);
  spec.total_samples = total;
  spec.paper_unknown = false;
  spec.paper_test_support = support;
  spec.domain = domain;
  return spec;
}

AppClassSpec unknown(std::string name, int total,
                     Domain domain = Domain::kBioinformatics) {
  AppClassSpec spec;
  spec.lineage = fhc::util::to_lower(name);
  spec.name = std::move(name);
  spec.total_samples = total;
  spec.paper_unknown = true;
  spec.paper_test_support = 0;
  spec.domain = domain;
  return spec;
}

std::vector<AppClassSpec> build_paper_table() {
  using enum Domain;
  std::vector<AppClassSpec> specs;
  specs.reserve(92);

  // --- 73 known classes (Table 4). total_samples are reconstructed so the
  // stratified 60/40 split reproduces the paper's test supports exactly
  // (sum 4481; train 2688, known-test 1793).
  specs.push_back(known("Augustus", 25, 10));
  specs.push_back(known("BCFtools", 10, 4));
  specs.push_back(known("BEDTools", 7, 3));
  specs.push_back(known("BLAT", 12, 5));
  specs.push_back(known("BWA", 12, 5));
  specs.push_back(known("BamTools", 5, 2));
  specs.push_back(known("BigDFT", 70, 28, kChemistry));
  specs.push_back(known("CAD-score", 7, 3));
  specs.push_back(known("CD-HIT", 30, 12));
  specs.push_back(known("CapnProto", 3, 1, kMath));
  specs.push_back(known("Cas-OFFinder", 3, 1));
  specs.push_back(known("Celera Assembler", 252, 101));
  specs.push_back(known("Cell-Ranger", 70, 28));
  specs.push_back(known("CellRanger", 50, 20));
  specs.push_back(known("Cufflinks", 15, 6));
  specs.push_back(known("DIAMOND", 5, 2));
  specs.push_back(known("Exonerate", 107, 43));
  specs.push_back(known("FSL", 878, 351, kImaging));
  specs.push_back(known("FastTree", 5, 2));
  specs.push_back(known("GMAP-GSNAP", 95, 38));
  specs.push_back(known("HH-suite", 65, 26));
  specs.push_back(known("HMMER", 85, 34));
  specs.push_back(known("HTSlib", 15, 6));
  specs.push_back(known("Infernal", 17, 7));
  specs.push_back(known("InterProScan", 255, 102));
  specs.push_back(known("JAGS", 3, 1, kMath));
  specs.push_back(known("Jellyfish", 5, 2));
  specs.push_back(known("Kraken2", 15, 6));
  specs.push_back(known("MAGMA", 3, 1));
  specs.push_back(known("MATLAB", 35, 14, kMath));
  specs.push_back(known("MMseqs2", 3, 1));
  specs.push_back(known("MUMmer", 65, 26));
  specs.push_back(known("Mash", 3, 1));
  specs.push_back(known("MolScript", 7, 3, kImaging));
  specs.push_back(known("MrBayes", 3, 1));
  specs.push_back(known("OpenBabel", 20, 8, kChemistry));
  specs.push_back(known("OpenMM", 5, 2, kChemistry));
  specs.push_back(known("OpenStructure", 140, 56, kImaging));
  specs.push_back(known("PLUMED", 7, 3, kChemistry));
  specs.push_back(known("PRANK", 5, 2));
  specs.push_back(known("PSIPRED", 17, 7));
  specs.push_back(known("PhyML", 5, 2));
  specs.push_back(known("RECON", 15, 6));
  specs.push_back(known("RSEM", 52, 21));
  specs.push_back(known("Racon", 5, 2));
  specs.push_back(known("Raster3D", 32, 13, kImaging));
  specs.push_back(known("RepeatScout", 5, 2));
  specs.push_back(known("Rosetta", 286, 114, kChemistry));
  specs.push_back(known("SMRT-Link", 7, 3));
  specs.push_back(known("SOAPdenovo2", 5, 2));
  specs.push_back(known("STAR", 25, 10));
  specs.push_back(known("Salmon", 7, 3));
  specs.push_back(known("SeqPrep", 7, 3));
  specs.push_back(known("Stacks", 172, 69));
  specs.push_back(known("StringTie", 5, 2));
  specs.push_back(known("Subread", 52, 21));
  specs.push_back(known("TopHat", 47, 19));
  specs.push_back(known("Trinity", 102, 41));
  specs.push_back(known("VCFtools", 5, 2));
  specs.push_back(known("VSEARCH", 3, 1));
  specs.push_back(known("Velvet", 6, 2));
  specs.push_back(known("ViennaRNA", 72, 29, kChemistry));
  specs.push_back(known("XDS", 85, 34, kImaging));
  specs.push_back(known("breseq", 10, 4));
  specs.push_back(known("canu", 127, 51));
  specs.push_back(known("cdbfasta", 5, 2));
  specs.push_back(known("fastQValidator", 5, 2));
  specs.push_back(known("fastp", 3, 1));
  specs.push_back(known("fineRADstructure", 5, 2));
  specs.push_back(known("kallisto", 5, 2));
  specs.push_back(known("kentUtils", 881, 352));
  specs.push_back(known("prodigal", 3, 1));
  specs.push_back(known("segemehl", 3, 1));

  // --- 19 unknown-pool classes (Table 3; counts are full class sizes,
  // sum 852).
  specs.push_back(unknown("Schrodinger", 195, kChemistry));
  specs.push_back(unknown("QuantumESPRESSO", 178, kPhysics));
  specs.push_back(unknown("SAMtools", 108));
  specs.push_back(unknown("MCL", 52, kMath));
  specs.push_back(unknown("BLAST", 52));
  specs.push_back(unknown("FASTA", 48));
  specs.push_back(unknown("MolProbity", 39, kImaging));
  specs.push_back(unknown("AUGUSTUS", 36));
  specs.push_back(unknown("HISAT2", 30));
  specs.push_back(unknown("OpenMalaria", 25, kMath));
  specs.push_back(unknown("Gurobi", 20, kMath));
  specs.push_back(unknown("Kraken", 18));
  specs.push_back(unknown("METIS", 18, kMath));
  specs.push_back(unknown("CCP4", 9, kImaging));
  specs.push_back(unknown("TM-align", 9));
  specs.push_back(unknown("ClustalW2", 4));
  specs.push_back(unknown("dssp", 4));
  specs.push_back(unknown("libxc", 4, kChemistry));
  specs.push_back(unknown("CHARMM", 3, kChemistry));

  // --- related-project families -------------------------------------------
  // Real tools that share library code (htslib, the Tuxedo RNA-seq suite,
  // Kraken 1/2, Celera/canu). Family members draw part of their symbol and
  // string vocabulary from a shared pool, reproducing the cross-class
  // confusion visible in the paper's Table 4 (HTSlib P=0.40, TopHat P=0.66,
  // StringTie R=0.50, ...).
  const auto set_family = [&specs](const char* family,
                                   std::initializer_list<const char*> members) {
    for (const char* member : members) {
      for (AppClassSpec& spec : specs) {
        if (spec.name == member) spec.family = family;
      }
    }
  };
  set_family("htslib", {"HTSlib", "SAMtools", "BCFtools", "VCFtools"});
  set_family("tuxedo", {"TopHat", "Cufflinks", "HISAT2", "StringTie", "Salmon",
                        "kallisto"});
  set_family("kraken", {"Kraken", "Kraken2"});
  set_family("wgs-assembler", {"Celera Assembler", "canu"});
  set_family("aligner-kent", {"BLAT", "kentUtils"});
  set_family("rosetta-suite", {"Rosetta", "Schrodinger"});

  // --- paper-documented quirks ------------------------------------------
  // CellRanger vs Cell-Ranger: the same application installed under two
  // roots with disjoint version ranges (paper Section 5).
  for (AppClassSpec& spec : specs) {
    if (spec.name == "Cell-Ranger") {
      spec.lineage = "cellranger";
      spec.version_names = {"2.1.1", "3.0.0", "3.1.0"};
    } else if (spec.name == "CellRanger") {
      spec.lineage = "cellranger";
      spec.version_names = {"4.0.0", "5.0.0", "6.0.1", "6.1.2", "7.1.0"};
    } else if (spec.name == "AUGUSTUS") {
      // Augustus vs AUGUSTUS: one class split across the known and unknown
      // pools because of two install locations (paper Section 5).
      spec.lineage = "augustus";
    } else if (spec.name == "Velvet") {
      // Table 1: 3 versions x {velveth, velvetg}.
      spec.version_names = {"1.2.10-GCC-10.3.0-mt-kmer_191", "1.2.10-goolf-1.4.10",
                            "1.2.10-goolf-1.7.20"};
      spec.exec_names = {"velveth", "velvetg"};
    } else if (spec.name == "OpenMalaria") {
      // Table 2's hash-similarity example uses these two versions.
      spec.version_names = {"46.0-iomkl-2019.01", "43.1-foss-2021a",
                            "44.0-foss-2019b", "45.0-foss-2020a", "47.0-foss-2021b"};
      spec.exec_names = {"openmalaria"};
    }
  }
  return specs;
}

}  // namespace

const std::vector<AppClassSpec>& paper_app_classes() {
  static const std::vector<AppClassSpec> table = build_paper_table();
  return table;
}

std::vector<AppClassSpec> scaled_app_classes(double scale) {
  std::vector<AppClassSpec> specs = paper_app_classes();
  if (scale >= 1.0) return specs;
  for (AppClassSpec& spec : specs) {
    spec.total_samples =
        std::max(3, static_cast<int>(std::floor(spec.total_samples * scale)));
  }
  return specs;
}

int total_sample_count(const std::vector<AppClassSpec>& specs) {
  int total = 0;
  for (const AppClassSpec& spec : specs) total += spec.total_samples;
  return total;
}

const AppClassSpec* find_class(const std::vector<AppClassSpec>& specs,
                               const std::string& name) {
  const auto it = std::find_if(specs.begin(), specs.end(),
                               [&](const AppClassSpec& s) { return s.name == name; });
  return it != specs.end() ? &*it : nullptr;
}

}  // namespace fhc::corpus
