// Application-sample synthesis: one class = one "genome", one sample =
// genome ⊕ version mutation ⊕ executable selection, emitted as ELF64.
//
// Mutation model (calibrated to the paper's Section 5 observations):
//
//  channel        across versions of one class            across classes
//  -------------  --------------------------------------  --------------
//  symbols (nm)   ~97% of core symbols stable; a few per-  disjoint
//                 version additions/renames                vocabularies
//                                                          (+ shared CRT
//                                                          noise + domain
//                                                          pool overlap)
//  strings        ~15% of messages reworded per version;   mostly distinct
//                 version banner/toolchain lines always
//                 change
//  raw file       code bytes regenerate per toolchain      distinct
//                 ("recompilation"); ~8% of functions
//                 change even within a toolchain; rodata
//                 and the symbol table remain similar
//
// This yields exactly the channel stability ordering the paper reports
// (symbols most stable, strings intermediate, raw content least), which is
// what drives Table 5's feature importances.
//
// Everything is a pure function of (corpus seed, class spec, version
// index, exec index): any sample can be regenerated in isolation, so the
// corpus never needs to hold all 5333 images in memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/app_spec.hpp"
#include "corpus/name_gen.hpp"
#include "elf/elf_writer.hpp"

namespace fhc::corpus {

/// One version directory of a class, e.g. "46.0-iomkl-2019.01".
struct VersionInfo {
  std::string version;    // "46.0"
  std::string toolchain;  // "iomkl-2019.01"
  std::string dir_name;   // "46.0-iomkl-2019.01"
};

class SampleSynthesizer {
 public:
  SampleSynthesizer(AppClassSpec spec, std::uint64_t corpus_seed);

  const AppClassSpec& spec() const noexcept { return spec_; }

  /// Version directories, oldest first. Count derives from the sample
  /// total unless the spec pins explicit version names.
  const std::vector<VersionInfo>& versions() const noexcept { return versions_; }

  /// Number of samples (executables) in each version; sums to
  /// spec.total_samples. Later versions may gain tools when the total is
  /// not divisible by the version count.
  const std::vector<int>& samples_per_version() const noexcept {
    return samples_per_version_;
  }

  /// Stable executable name for slot `exec_idx` (same slot = same tool in
  /// every version that has it).
  std::string exec_name(int exec_idx) const;

  /// Builds the ELF spec for (version, exec). `stripped` produces the
  /// symbol-table-free variant (the paper's stated failure mode).
  elf::ElfSpec build_spec(int version_idx, int exec_idx, bool stripped = false) const;

  /// Convenience: build_spec + write_elf.
  std::vector<std::uint8_t> build(int version_idx, int exec_idx,
                                  bool stripped = false) const;

  /// Per-class mutation intensities. Most classes are stable; a random
  /// ~15% are "volatile" (heavier per-version churn), reproducing the
  /// paper's observation that some applications (BigDFT, MUMmer) change
  /// drastically between versions and classify inconsistently.
  struct Volatility {
    double symbol_keep = 0.97;    // P(core symbol survives a version)
    double string_reword = 0.30;  // P(message reworded in a version)
    double string_drop = 0.08;    // P(message removed in a version)
    double code_change = 0.08;    // P(function recompiled differently)
  };
  const Volatility& volatility() const noexcept { return volatility_; }

 private:
  struct Genome {
    std::vector<std::string> core_symbols;  // shared library core of the app
    std::vector<std::string> core_strings;
    std::vector<std::uint64_t> core_symbol_salts;   // code-generation seeds
    std::vector<std::uint64_t> core_string_salts;
  };

  void build_versions();
  void build_genome();
  std::vector<std::string> exec_symbols(int exec_idx) const;
  std::vector<std::string> exec_strings(int exec_idx) const;
  std::vector<std::uint8_t> function_body(std::uint64_t func_salt,
                                          const VersionInfo& version) const;

  AppClassSpec spec_;
  std::uint64_t corpus_seed_;
  std::uint64_t lineage_seed_;  // shared by classes with the same lineage
  std::uint64_t class_seed_;    // distinct even for shared lineages
  std::string prefix_;
  NameGenerator namegen_;
  Genome genome_;
  Volatility volatility_;
  std::vector<VersionInfo> versions_;
  std::vector<int> samples_per_version_;
};

/// Short identifier tag from a class name: "Celera Assembler" -> "celeraassembler".
std::string class_prefix(const std::string& lineage);

}  // namespace fhc::corpus
