#include "corpus/name_gen.hpp"

#include <array>
#include <cctype>
#include <span>

#include "corpus/synth_app.hpp"  // class_prefix()

namespace fhc::corpus {

namespace {

using fhc::util::Rng;

// Generic systems-programming roots every application draws from.
constexpr std::array<const char*, 48> kCommonRoots = {
    "init",  "parse",  "read",   "write",  "open",   "close",  "alloc",
    "free",  "hash",   "index",  "table",  "buffer", "stream", "file",
    "load",  "store",  "merge",  "split",  "sort",   "scan",   "map",
    "queue", "stack",  "node",   "edge",   "graph",  "tree",   "list",
    "count", "filter", "update", "insert", "delete", "lookup", "flush",
    "sync",  "thread", "worker", "task",   "batch",  "chunk",  "block",
    "cache", "config", "option", "error",  "check",  "util"};

// Domain pools: classes in one domain share these, creating the moderate
// cross-class symbol overlap seen between real tools of the same field.
constexpr std::array<const char*, 24> kBioRoots = {
    "seq",    "fasta",  "fastq", "kmer",   "align",  "assembl", "contig",
    "read",   "genome", "exon",  "intron", "codon",  "protein", "dna",
    "rna",    "variant", "snp",  "allele", "locus",  "scaffold", "basecall",
    "primer", "motif",  "coverage"};
constexpr std::array<const char*, 20> kChemRoots = {
    "atom",   "bond",    "mol",     "energy",  "force",   "dipole", "orbital",
    "basis",  "lattice", "cell",    "density", "grad",    "minimiz", "dynamics",
    "charge", "spin",    "coupling", "solvent", "ligand",  "torsion"};
constexpr std::array<const char*, 16> kPhysRoots = {
    "wave",  "field",  "mesh",   "grid",   "fft",    "kpoint", "pseudo",
    "pot",   "scf",    "diag",   "tensor", "lapack", "eigen",  "hamil",
    "relax", "phonon"};
constexpr std::array<const char*, 16> kMathRoots = {
    "matrix", "vector", "solve",  "factor", "pivot",  "sparse", "dense",
    "norm",   "rank",   "lp",     "qp",     "simplex", "branch", "bound",
    "objective", "constraint"};
constexpr std::array<const char*, 16> kImagingRoots = {
    "voxel", "image",  "volume", "slice",  "render", "pixel",  "mask",
    "region", "surface", "mesh",  "warp",  "registr", "segment", "intensity",
    "contrast", "kernel"};

constexpr std::array<const char*, 14> kMessageTemplates = {
    "failed to open %s: %s",
    "unable to allocate %zu bytes for %s",
    "processing %s (%d of %d)",
    "warning: %s is deprecated, use %s instead",
    "error: invalid %s in line %d",
    "writing output to %s",
    "loaded %d records from %s",
    "usage: %s [options] <input> <output>",
    "elapsed time: %.2f seconds",
    "threads: %d, memory limit: %s",
    "unexpected end of file in %s",
    "skipping malformed entry at offset %ld",
    "checkpoint saved to %s",
    "parameter %s out of range [%g, %g]",
};

std::span<const char* const> domain_pool(Domain domain) {
  switch (domain) {
    case Domain::kBioinformatics: return {kBioRoots.data(), kBioRoots.size()};
    case Domain::kChemistry: return {kChemRoots.data(), kChemRoots.size()};
    case Domain::kPhysics: return {kPhysRoots.data(), kPhysRoots.size()};
    case Domain::kMath: return {kMathRoots.data(), kMathRoots.size()};
    case Domain::kImaging: return {kImagingRoots.data(), kImagingRoots.size()};
  }
  return {kBioRoots.data(), kBioRoots.size()};
}

std::string camel(const std::string& word) {
  std::string out = word;
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

}  // namespace

std::string mangle_cxx(const std::string& ns, const std::string& cls,
                       const std::string& method, int arity) {
  std::string out = "_ZN";
  out += std::to_string(ns.size());
  out += ns;
  out += std::to_string(cls.size());
  out += cls;
  out += std::to_string(method.size());
  out += method;
  out += 'E';
  if (arity <= 0) {
    out += 'v';
  } else {
    static constexpr std::array<const char*, 4> kParams = {"m", "i", "PKc", "d"};
    for (int i = 0; i < arity && i < 4; ++i) out += kParams[static_cast<std::size_t>(i)];
  }
  return out;
}

NameGenerator::NameGenerator(std::uint64_t lineage_seed, Domain domain, std::string prefix)
    : lineage_seed_(lineage_seed), domain_(domain), prefix_(std::move(prefix)) {}

std::string NameGenerator::pick_root(Rng& rng) const {
  // 55% generic, 45% domain-specific: measured against real `nm` output
  // this keeps class vocabularies distinct yet plausibly overlapping.
  if (rng.bernoulli(0.55)) {
    return kCommonRoots[static_cast<std::size_t>(rng.next_below(kCommonRoots.size()))];
  }
  const auto pool = domain_pool(domain_);
  return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
}

std::string NameGenerator::identifier(Rng& rng, NameStyle style) const {
  const int words = static_cast<int>(rng.uniform_int(2, 3));
  switch (style) {
    case NameStyle::kCSnake: {
      std::string out = prefix_;
      for (int w = 0; w < words; ++w) {
        out += '_';
        out += pick_root(rng);
      }
      if (rng.bernoulli(0.2)) out += std::to_string(rng.uniform_int(2, 64));
      return out;
    }
    case NameStyle::kCCamel: {
      std::string out = prefix_;
      for (int w = 0; w < words; ++w) out += camel(pick_root(rng));
      return out;
    }
    case NameStyle::kCxxMangled: {
      const std::string cls = camel(pick_root(rng)) + camel(pick_root(rng));
      const std::string method = pick_root(rng);
      return mangle_cxx(prefix_, cls, method, static_cast<int>(rng.uniform_int(0, 3)));
    }
  }
  return prefix_;
}

namespace {

/// Derives a child seed from (base, salt) without mutating either.
std::uint64_t derive(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t s = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  return fhc::util::splitmix64(s);
}

}  // namespace

std::string NameGenerator::function_name(std::uint64_t salt) const {
  Rng rng(derive(lineage_seed_, salt * 2 + 1));
  const double pick = rng.uniform();
  const NameStyle style = pick < 0.50   ? NameStyle::kCSnake
                          : pick < 0.75 ? NameStyle::kCCamel
                                        : NameStyle::kCxxMangled;
  return identifier(rng, style);
}

std::string NameGenerator::object_name(std::uint64_t salt) const {
  Rng rng(derive(lineage_seed_, salt * 2));
  std::string out = prefix_;
  out += '_';
  out += pick_root(rng);
  out += rng.bernoulli(0.5) ? "_table" : "_defaults";
  return out;
}

std::string NameGenerator::message_string(std::uint64_t salt) const {
  Rng rng(derive(lineage_seed_ ^ 0x5741u, salt));
  std::string out(kMessageTemplates[static_cast<std::size_t>(
      rng.next_below(kMessageTemplates.size()))]);
  // Tie roughly half the messages to the application vocabulary so the
  // strings channel carries class identity, not just libc templates.
  if (rng.bernoulli(0.5)) {
    out += " [";
    out += prefix_;
    out += '.';
    out += pick_root(rng);
    out += ']';
  }
  return out;
}

std::string NameGenerator::mutated_message(std::uint64_t salt,
                                           std::uint64_t change_salt) const {
  Rng rng(derive(lineage_seed_ ^ 0x6d75u, salt ^ change_salt * 0x2545f491ULL));
  std::string base = message_string(salt);
  // Reword: append/replace a fragment the way a bug-fix release would.
  switch (rng.next_below(3)) {
    case 0: base += " (retrying)"; break;
    case 1: base.insert(0, "fatal: "); break;
    default: base += "; see --help"; break;
  }
  return base;
}

std::string NameGenerator::version_banner(const std::string& app,
                                          const std::string& version,
                                          const std::string& toolchain) {
  return app + " version " + version + " (built with " + toolchain + ")";
}

const std::vector<std::string>& NameGenerator::runtime_symbols() {
  static const std::vector<std::string> symbols = {
      "_start",         "_init",          "_fini",          "main",
      "__bss_start",    "_edata",         "_end",           "__data_start",
      "__libc_csu_init", "__libc_csu_fini", "frame_dummy",   "register_tm_clones",
      "deregister_tm_clones", "__do_global_dtors_aux", "_IO_stdin_used",
      "__gmon_start__", "abort_handler",  "atexit_wrapper", "env_lookup",
      "arena_alloc",    "arena_free",     "log_emit",       "log_level_set",
      "opt_parse_long", "opt_usage"};
  return symbols;
}

const std::vector<std::string>& NameGenerator::runtime_strings() {
  // Deliberately large: `strings` output of real executables is dominated
  // by toolchain/runtime boilerplate shared across unrelated applications,
  // which is what keeps the strings channel less class-discriminative than
  // the symbol table (paper Table 5).
  static const std::vector<std::string> strings = {
      "/lib64/ld-linux-x86-64.so.2",
      "GLIBC_2.2.5",
      "GLIBC_2.17",
      "GLIBCXX_3.4.29",
      "CXXABI_1.3.13",
      "libc.so.6",
      "libm.so.6",
      "libpthread.so.0",
      "libgcc_s.so.1",
      "libstdc++.so.6",
      "libgomp.so.1",
      "libz.so.1",
      "out of memory",
      "Segmentation fault handler installed",
      "invalid option -- '%c'",
      "%s: option requires an argument -- '%c'",
      "POSIX",
      "C.UTF-8",
      "en_US.UTF-8",
      "TMPDIR",
      "HOME",
      "PATH",
      "LD_LIBRARY_PATH",
      "OMP_NUM_THREADS",
      "basic_string::_M_construct null not valid",
      "terminate called after throwing an instance of",
      "St9bad_alloc",
      "St12out_of_range",
      "St16invalid_argument",
      "pure virtual method called",
      "vector::_M_range_check: __n (which is %zu) >= this->size()",
      "This program is free software; you can redistribute it and/or modify",
      "it under the terms of the GNU General Public License as published by",
      "the Free Software Foundation; either version 2 of the License, or",
      "(at your option) any later version.",
      "This program is distributed in the hope that it will be useful,",
      "but WITHOUT ANY WARRANTY; without even the implied warranty of",
      "MERCHANTABILITY or FITNESS FOR A PARTICULAR PURPOSE.  See the",
      "GNU General Public License for more details.",
      "Copyright (C) Free Software Foundation, Inc.",
      "deflate 1.2.11 Copyright 1995-2017 Jean-loup Gailly and Mark Adler",
      "inflate 1.2.11 Copyright 1995-2017 Mark Adler",
      "assertion \"%s\" failed: file \"%s\", line %d",
      "Unknown error %d",
      "Success",
      "No such file or directory",
      "Permission denied",
      "Cannot allocate memory",
      "%Y-%m-%d %H:%M:%S",
      "nan",
      "inf",
      "-inf"};
  return strings;
}

std::vector<std::string> NameGenerator::build_environment_strings(
    const std::string& app, const std::string& version_dir,
    const std::string& toolchain) {
  // EasyBuild-style install prefixes and build metadata: always present in
  // real sciCORE binaries and always different between versions — a major
  // source of per-version churn in the strings channel.
  return {
      "/scicore/soft/apps/" + app + "/" + version_dir + "/bin",
      "/scicore/soft/apps/" + app + "/" + version_dir + "/lib",
      "/scicore/soft/easybuild/build/" + app + "/" + version_dir + "/easybuild_obj",
      "-O2 -ftree-vectorize -march=native -fno-math-errno (" + toolchain + ")",
      "EBROOT" + class_prefix_upper(app) + "=" + "/scicore/soft/apps/" + app + "/" +
          version_dir,
  };
}

std::string class_prefix_upper(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

namespace {

const char* domain_tag(Domain domain) {
  switch (domain) {
    case Domain::kBioinformatics: return "bioseq";
    case Domain::kChemistry: return "chemlib";
    case Domain::kPhysics: return "physlib";
    case Domain::kMath: return "numlib";
    case Domain::kImaging: return "imglib";
  }
  return "lib";
}

}  // namespace

std::vector<std::string> NameGenerator::domain_library_symbols(Domain domain) {
  // Deterministic per domain (independent of the corpus seed): these model
  // released third-party libraries whose symbols are what they are.
  NameGenerator lib(fhc::util::hash_string_seed(domain_tag(domain)) ^ 0xd011ab,
                    domain, domain_tag(domain));
  std::vector<std::string> out;
  out.reserve(48);
  for (std::uint64_t i = 0; i < 48; ++i) out.push_back(lib.function_name(i + 7'000));
  return out;
}

std::vector<std::string> NameGenerator::domain_library_strings(Domain domain) {
  NameGenerator lib(fhc::util::hash_string_seed(domain_tag(domain)) ^ 0xd05711,
                    domain, domain_tag(domain));
  std::vector<std::string> out;
  out.reserve(18);
  for (std::uint64_t i = 0; i < 18; ++i) out.push_back(lib.message_string(i + 9'000));
  return out;
}

std::vector<std::string> NameGenerator::family_symbols(const std::string& family,
                                                       std::uint64_t corpus_seed) {
  NameGenerator lib(derive(corpus_seed ^ 0xfa417, fhc::util::hash_string_seed(family)),
                    Domain::kBioinformatics, class_prefix(family));
  std::vector<std::string> out;
  out.reserve(40);
  for (std::uint64_t i = 0; i < 40; ++i) out.push_back(lib.function_name(i + 11'000));
  return out;
}

std::vector<std::string> NameGenerator::family_strings(const std::string& family,
                                                       std::uint64_t corpus_seed) {
  NameGenerator lib(derive(corpus_seed ^ 0xfa575, fhc::util::hash_string_seed(family)),
                    Domain::kBioinformatics, class_prefix(family));
  std::vector<std::string> out;
  out.reserve(16);
  for (std::uint64_t i = 0; i < 16; ++i) out.push_back(lib.message_string(i + 13'000));
  return out;
}

}  // namespace fhc::corpus
