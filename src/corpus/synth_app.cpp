#include "corpus/synth_app.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <numeric>

#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace fhc::corpus {

namespace {

using fhc::util::Rng;
using fhc::util::hash_string_seed;
using fhc::util::splitmix64;

std::uint64_t derive(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t s = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

constexpr std::array<const char*, 8> kToolchains = {
    "GCC-10.3.0", "foss-2021a",  "foss-2018b", "iomkl-2019.01",
    "goolf-1.7.20", "intel-2020a", "GCC-8.3.0",  "foss-2016b"};

/// Compiler banner stored in .comment, derived from the toolchain name.
std::string toolchain_comment(const std::string& toolchain) {
  if (toolchain.find("intel") != std::string::npos ||
      toolchain.find("iomkl") != std::string::npos) {
    return "Intel(R) C++ Compiler Classic for " + toolchain;
  }
  if (toolchain.find("GCC-") == 0) {
    return "GCC: (GNU) " + toolchain.substr(4);
  }
  return "GCC: (GNU) via EasyBuild toolchain " + toolchain;
}

/// Tool-name suffixes for generated executable names of multi-tool suites.
constexpr std::array<const char*, 20> kToolSuffixes = {
    "index", "stats", "merge", "view",  "sort",   "call",  "plot",
    "conv",  "filter", "query", "build", "dump",   "scan",  "pack",
    "check", "info",  "split", "join",  "extract", "bench"};

}  // namespace

std::string class_prefix(const std::string& lineage) {
  std::string prefix;
  for (const char c : lineage) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      prefix += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  if (prefix.empty()) prefix = "app";
  if (prefix.size() > 12) prefix.resize(12);
  return prefix;
}

SampleSynthesizer::SampleSynthesizer(AppClassSpec spec, std::uint64_t corpus_seed)
    : spec_(std::move(spec)),
      corpus_seed_(corpus_seed),
      lineage_seed_(derive(corpus_seed, hash_string_seed(spec_.lineage))),
      class_seed_(derive(corpus_seed, hash_string_seed(spec_.name))),
      prefix_(class_prefix(spec_.lineage)),
      namegen_(lineage_seed_, spec_.domain, prefix_) {
  // ~15% of classes are volatile (heavier churn between versions).
  Rng vol_rng(derive(class_seed_, 0x701a));
  if (vol_rng.bernoulli(0.18)) {
    volatility_.symbol_keep = vol_rng.uniform_real(0.84, 0.91);
    volatility_.string_reword = vol_rng.uniform_real(0.35, 0.50);
    volatility_.string_drop = 0.08;
    volatility_.code_change = 0.25;
  }
  build_versions();
  build_genome();
}

void SampleSynthesizer::build_versions() {
  Rng rng(derive(class_seed_, 0xfe15));

  int version_count;
  if (!spec_.version_names.empty()) {
    version_count = static_cast<int>(spec_.version_names.size());
  } else {
    // 3..8 versions, but never more versions than samples (paper rule:
    // >= 3 versions per collected class).
    version_count = static_cast<int>(rng.uniform_int(3, 8));
    version_count = std::min(version_count, spec_.total_samples);
    version_count = std::max(version_count, 3);
  }

  // Semantic version stream: major.minor with occasional major bumps.
  int major = static_cast<int>(rng.uniform_int(1, 7));
  int minor = static_cast<int>(rng.uniform_int(0, 9));
  versions_.reserve(static_cast<std::size_t>(version_count));
  for (int v = 0; v < version_count; ++v) {
    VersionInfo info;
    if (!spec_.version_names.empty()) {
      // Explicit names may already embed a toolchain ("1.2.10-goolf-1.4.10").
      info.dir_name = spec_.version_names[static_cast<std::size_t>(v)];
      const std::size_t dash = info.dir_name.find('-');
      info.version = info.dir_name.substr(0, dash);
      info.toolchain = dash == std::string::npos
                           ? std::string(kToolchains[static_cast<std::size_t>(
                                 rng.next_below(kToolchains.size()))])
                           : info.dir_name.substr(dash + 1);
    } else {
      info.version = std::to_string(major) + "." + std::to_string(minor);
      info.toolchain = kToolchains[static_cast<std::size_t>(rng.next_below(kToolchains.size()))];
      info.dir_name = info.version + "-" + info.toolchain;
      if (rng.bernoulli(0.2)) {
        ++major;
        minor = 0;
      } else {
        minor += static_cast<int>(rng.uniform_int(1, 3));
      }
    }
    versions_.push_back(std::move(info));
  }

  // Distribute samples over versions: equal base share, remainder goes to
  // the newest versions (suites gain tools over time).
  const int nv = version_count;
  const int base = spec_.total_samples / nv;
  const int rem = spec_.total_samples % nv;
  samples_per_version_.assign(static_cast<std::size_t>(nv), base);
  for (int v = nv - rem; v < nv; ++v) samples_per_version_[static_cast<std::size_t>(v)] += 1;
}

void SampleSynthesizer::build_genome() {
  Rng rng(derive(lineage_seed_, 0x6e03));
  const int core_symbol_count = static_cast<int>(rng.uniform_int(50, 130));
  // Class-specific strings are deliberately few relative to the shared
  // boilerplate: the strings channel should carry weaker class identity
  // than the symbol table (Table 5's ordering).
  const int core_string_count = static_cast<int>(rng.uniform_int(25, 50));

  genome_.core_symbols.reserve(static_cast<std::size_t>(core_symbol_count));
  genome_.core_symbol_salts.reserve(static_cast<std::size_t>(core_symbol_count));
  for (int i = 0; i < core_symbol_count; ++i) {
    const auto salt = static_cast<std::uint64_t>(i) + 1000;
    genome_.core_symbols.push_back(namegen_.function_name(salt));
    genome_.core_symbol_salts.push_back(salt);
  }
  genome_.core_strings.reserve(static_cast<std::size_t>(core_string_count));
  genome_.core_string_salts.reserve(static_cast<std::size_t>(core_string_count));
  for (int i = 0; i < core_string_count; ++i) {
    const auto salt = static_cast<std::uint64_t>(i) + 5000;
    genome_.core_strings.push_back(namegen_.message_string(salt));
    genome_.core_string_salts.push_back(salt);
  }

  // Statically-linked shared code: a seeded subset of the domain library
  // and (when set) the related-project family pool. These enter the genome
  // like the class's own symbols — stable across versions — but are shared
  // with other classes, including unknown-pool ones.
  const auto absorb = [&](const std::vector<std::string>& pool, double take_p,
                          std::uint64_t tag) {
    Rng take_rng(derive(lineage_seed_ ^ tag, 0x7a6e));
    for (const std::string& name : pool) {
      if (take_rng.bernoulli(take_p)) {
        genome_.core_symbols.push_back(name);
        genome_.core_symbol_salts.push_back(hash_string_seed(name));
      }
    }
  };
  absorb(NameGenerator::domain_library_symbols(spec_.domain), 0.50, 0xd0);
  if (!spec_.family.empty()) {
    absorb(NameGenerator::family_symbols(spec_.family, corpus_seed_), 0.60, 0xfa);
  }

  const auto absorb_strings = [&](const std::vector<std::string>& pool, double take_p,
                                  std::uint64_t tag) {
    Rng take_rng(derive(lineage_seed_ ^ tag, 0x57a6));
    std::uint64_t salt = 50'000 + tag * 1000;
    for (const std::string& text : pool) {
      if (take_rng.bernoulli(take_p)) {
        genome_.core_strings.push_back(text);
        genome_.core_string_salts.push_back(salt);
      }
      ++salt;
    }
  };
  absorb_strings(NameGenerator::domain_library_strings(spec_.domain), 0.40, 0xd1);
  if (!spec_.family.empty()) {
    absorb_strings(NameGenerator::family_strings(spec_.family, corpus_seed_), 0.55, 0xfb);
  }
}

std::string SampleSynthesizer::exec_name(int exec_idx) const {
  if (exec_idx < static_cast<int>(spec_.exec_names.size())) {
    return spec_.exec_names[static_cast<std::size_t>(exec_idx)];
  }
  if (exec_idx == static_cast<int>(spec_.exec_names.size()) && exec_idx == 0) {
    // First tool of a suite without explicit names: the bare prefix, like
    // most single-binary applications (e.g. "openmalaria").
    return prefix_;
  }
  // Deterministic unique assignment: walk a per-class shuffled suffix
  // order, then add a numeric generation once the pool is exhausted.
  Rng rng(derive(class_seed_ ^ 0xe8ec, 0));
  std::vector<std::size_t> order(kToolSuffixes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const int base = std::max(1, static_cast<int>(spec_.exec_names.size()));
  const auto slot = static_cast<std::size_t>(exec_idx - base);
  std::string name = prefix_;
  name += kToolSuffixes[order[slot % kToolSuffixes.size()]];
  if (slot >= kToolSuffixes.size()) {
    name += std::to_string(slot / kToolSuffixes.size() + 1);
  }
  return name;
}

std::vector<std::string> SampleSynthesizer::exec_symbols(int exec_idx) const {
  Rng rng(derive(lineage_seed_ ^ 0xe5b0, static_cast<std::uint64_t>(exec_idx)));
  const int count = static_cast<int>(rng.uniform_int(18, 45));
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(namegen_.function_name(
        derive(0xabcd, static_cast<std::uint64_t>(exec_idx) * 1000 + static_cast<std::uint64_t>(i))));
  }
  return out;
}

std::vector<std::string> SampleSynthesizer::exec_strings(int exec_idx) const {
  Rng rng(derive(lineage_seed_ ^ 0x57a7, static_cast<std::uint64_t>(exec_idx)));
  const int count = static_cast<int>(rng.uniform_int(8, 18));
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(count) + 1);
  out.push_back("Usage: " + exec_name(exec_idx) + " [options] <input>");
  for (int i = 0; i < count; ++i) {
    out.push_back(namegen_.message_string(
        derive(0x5172, static_cast<std::uint64_t>(exec_idx) * 1000 + static_cast<std::uint64_t>(i))));
  }
  return out;
}

std::vector<std::uint8_t> SampleSynthesizer::function_body(
    std::uint64_t func_salt, const VersionInfo& version) const {
  // Code bytes are a pure function of (lineage, function, toolchain) plus
  // a per-version perturbation for ~8% of functions: recompiling with the
  // same toolchain keeps most bytes identical, switching toolchains
  // regenerates everything — the raw-content churn the paper describes.
  const std::uint64_t toolchain_seed = hash_string_seed(version.toolchain);
  std::uint64_t code_seed = derive(lineage_seed_ ^ 0xc0de, func_salt ^ toolchain_seed);

  Rng change_rng(derive(code_seed, hash_string_seed(version.version)));
  if (change_rng.bernoulli(volatility_.code_change)) {
    code_seed = derive(code_seed, hash_string_seed(version.version) | 1);
  }

  Rng rng(code_seed);
  const auto length = static_cast<std::size_t>(rng.uniform_int(64, 768));
  std::vector<std::uint8_t> body;
  body.reserve(length + 16);
  // x86-64-flavoured byte soup: prologue, REX-heavy stream, RET + padding.
  body.push_back(0x55);        // push rbp
  body.push_back(0x48);        // mov rbp, rsp
  body.push_back(0x89);
  body.push_back(0xe5);
  while (body.size() < length) {
    body.push_back(static_cast<std::uint8_t>(rng() & 0xff));
  }
  body.push_back(0x5d);  // pop rbp
  body.push_back(0xc3);  // ret
  while (body.size() % 16 != 0) body.push_back(0x90);  // NOP alignment

  // Suppress accidental printable runs (>= 4 chars) so the strings channel
  // reflects the string pool, not compiler-noise artifacts: real code
  // sections contain far fewer printable runs than uniform random bytes.
  std::size_t run = 0;
  for (std::size_t i = 4; i + 2 < body.size(); ++i) {  // keep prologue/ret intact
    if (fhc::util::is_printable_ascii(body[i])) {
      if (++run == 4) {
        body[i] |= 0x80;
        run = 0;
      }
    } else {
      run = 0;
    }
  }
  return body;
}

elf::ElfSpec SampleSynthesizer::build_spec(int version_idx, int exec_idx,
                                           bool stripped) const {
  const auto& version = versions_.at(static_cast<std::size_t>(version_idx));
  const std::uint64_t version_key = hash_string_seed(version.dir_name);

  elf::ElfSpec spec;
  spec.stripped = stripped;
  spec.comment = toolchain_comment(version.toolchain);

  // --- select this version's symbol set ---------------------------------
  struct Func {
    std::string name;
    std::uint64_t salt;
  };
  std::vector<Func> funcs;

  // Core symbols: each kept with p = 0.97 per version (independent,
  // deterministic), so any two versions share ~94% of the core.
  for (std::size_t i = 0; i < genome_.core_symbols.size(); ++i) {
    Rng keep_rng(derive(lineage_seed_ ^ 0xcafe, genome_.core_symbol_salts[i] ^ version_key));
    if (keep_rng.bernoulli(volatility_.symbol_keep)) {
      funcs.push_back({genome_.core_symbols[i], genome_.core_symbol_salts[i]});
    }
  }
  // Version-specific additions (new features): ~2% of core size.
  {
    const auto additions = std::max<std::size_t>(1, genome_.core_symbols.size() / 50);
    for (std::size_t i = 0; i < additions; ++i) {
      const std::uint64_t salt = derive(version_key, 0xadd0 + i);
      funcs.push_back({namegen_.function_name(salt), salt});
    }
  }
  // Executable-specific symbols: stable across versions.
  for (const std::string& name : exec_symbols(exec_idx)) {
    funcs.push_back({name, hash_string_seed(name)});
  }
  // Runtime/CRT noise shared by every binary on the system.
  for (const std::string& name : NameGenerator::runtime_symbols()) {
    funcs.push_back({name, hash_string_seed(name)});
  }

  // Deterministic layout order (independent of selection order).
  std::sort(funcs.begin(), funcs.end(),
            [](const Func& a, const Func& b) { return a.name < b.name; });
  funcs.erase(std::unique(funcs.begin(), funcs.end(),
                          [](const Func& a, const Func& b) { return a.name == b.name; }),
              funcs.end());

  // --- .text + FUNC symbols ---------------------------------------------
  for (const Func& func : funcs) {
    const std::vector<std::uint8_t> body = function_body(func.salt, version);
    elf::SymbolSpec sym;
    sym.name = func.name;
    sym.section = elf::SymbolSection::kText;
    sym.bind = elf::kStbGlobal;
    sym.type = elf::kSttFunc;
    sym.value = spec.text.size();
    sym.size = body.size();
    spec.symbols.push_back(std::move(sym));
    spec.text.insert(spec.text.end(), body.begin(), body.end());
  }

  // --- string pool -> .rodata ---------------------------------------------
  std::vector<std::string> strings;
  strings.push_back(NameGenerator::version_banner(spec_.name, version.version,
                                                  version.toolchain));
  strings.push_back("build: " + version.dir_name + " " + exec_name(exec_idx));
  for (const std::string& s : NameGenerator::build_environment_strings(
           spec_.name, version.dir_name, version.toolchain)) {
    strings.push_back(s);
  }
  for (std::size_t i = 0; i < genome_.core_strings.size(); ++i) {
    Rng string_rng(derive(lineage_seed_ ^ 0x5717, genome_.core_string_salts[i] ^ version_key));
    const double roll = string_rng.uniform();
    if (roll < volatility_.string_drop) continue;  // removed in this version
    if (roll < volatility_.string_drop + volatility_.string_reword) {
      // Reworded in this version (bug fix / diagnostics cleanup).
      strings.push_back(
          namegen_.mutated_message(genome_.core_string_salts[i], version_key));
    } else {
      strings.push_back(genome_.core_strings[i]);
    }
  }
  for (const std::string& s : exec_strings(exec_idx)) strings.push_back(s);
  for (const std::string& s : NameGenerator::runtime_strings()) strings.push_back(s);

  // Build-volatile data strings: table dumps, embedded constants, debug
  // artifacts. They differ between versions AND between executables, so
  // they dilute the stable part of the `strings` output (boilerplate +
  // symbol names in .strtab) — the raw-content-style churn that keeps the
  // strings channel less reliable than the symbol table (paper Table 5).
  {
    Rng data_rng(derive(class_seed_ ^ 0xda7a5,
                        version_key ^ (static_cast<std::uint64_t>(exec_idx) << 32)));
    const int volatile_count = static_cast<int>(data_rng.uniform_int(170, 260));
    static constexpr std::array<const char*, 6> kDataPrefixes = {
        "tbl", "coef", "grid", "dump", "dbg", "cfg"};
    for (int i = 0; i < volatile_count; ++i) {
      std::string s(kDataPrefixes[static_cast<std::size_t>(
          data_rng.next_below(kDataPrefixes.size()))]);
      s += '_';
      for (int c = 0; c < 8; ++c) {
        s += static_cast<char>('a' + data_rng.next_below(26));
      }
      s += " = ";
      s += std::to_string(data_rng.uniform_real(-1000.0, 1000.0));
      strings.push_back(std::move(s));
    }
  }

  std::vector<std::string> object_names;
  for (std::size_t i = 0; i < 6; ++i) {
    object_names.push_back(namegen_.object_name(derive(0x0b1e, i)));
  }

  // .rodata layout: NUL-separated strings, then global object blobs.
  for (const std::string& s : strings) {
    spec.rodata.insert(spec.rodata.end(), s.begin(), s.end());
    spec.rodata.push_back('\0');
  }
  {
    Rng rodata_rng(derive(class_seed_ ^ 0xda7a, version_key));
    for (const std::string& name : object_names) {
      elf::SymbolSpec sym;
      sym.name = name;
      sym.section = elf::SymbolSection::kRodata;
      sym.bind = elf::kStbGlobal;
      sym.type = elf::kSttObject;
      sym.value = spec.rodata.size();
      const auto blob = static_cast<std::size_t>(rodata_rng.uniform_int(32, 256));
      sym.size = blob;
      spec.symbols.push_back(std::move(sym));
      for (std::size_t i = 0; i < blob; ++i) {
        // Low-entropy table data (common in scientific binaries).
        spec.rodata.push_back(static_cast<std::uint8_t>(rodata_rng.next_below(16)));
      }
    }
  }

  // A few local (static) functions: present in .symtab but not in the
  // nm -g view — exercises the extractor's binding filter.
  {
    Rng local_rng(derive(class_seed_ ^ 0x10ca1, version_key));
    const int locals = static_cast<int>(local_rng.uniform_int(3, 8));
    for (int i = 0; i < locals; ++i) {
      elf::SymbolSpec sym;
      sym.name = "static_helper_" + std::to_string(i) + "_" + prefix_;
      sym.section = elf::SymbolSection::kText;
      sym.bind = elf::kStbLocal;
      sym.type = elf::kSttFunc;
      sym.value = 0;
      sym.size = 16;
      spec.symbols.push_back(std::move(sym));
    }
  }

  return spec;
}

std::vector<std::uint8_t> SampleSynthesizer::build(int version_idx, int exec_idx,
                                                   bool stripped) const {
  return elf::write_elf(build_spec(version_idx, exec_idx, stripped));
}

}  // namespace fhc::corpus
