#include "corpus/corpus.hpp"

#include "util/io_util.hpp"
#include "util/thread_pool.hpp"

namespace fhc::corpus {

std::string SampleRef::rel_path() const {
  return class_name + "/" + version_dir + "/" + exec_name;
}

Corpus::Corpus(std::vector<AppClassSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  synths_.reserve(specs_.size());
  for (const AppClassSpec& spec : specs_) {
    synths_.push_back(std::make_unique<SampleSynthesizer>(spec, seed_));
  }

  int global = 0;
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    const SampleSynthesizer& synth = *synths_[c];
    const auto& versions = synth.versions();
    const auto& per_version = synth.samples_per_version();
    for (std::size_t v = 0; v < versions.size(); ++v) {
      for (int e = 0; e < per_version[v]; ++e) {
        SampleRef ref;
        ref.class_idx = static_cast<int>(c);
        ref.version_idx = static_cast<int>(v);
        ref.exec_idx = e;
        ref.sample_idx = global++;
        ref.class_name = specs_[c].name;
        ref.version_dir = versions[v].dir_name;
        ref.exec_name = synth.exec_name(e);
        samples_.push_back(std::move(ref));
      }
    }
  }
}

std::vector<std::uint8_t> Corpus::sample_bytes(const SampleRef& ref,
                                               bool stripped) const {
  return synths_.at(static_cast<std::size_t>(ref.class_idx))
      ->build(ref.version_idx, ref.exec_idx, stripped);
}

std::vector<int> Corpus::samples_of_class(int class_idx) const {
  std::vector<int> out;
  for (const SampleRef& ref : samples_) {
    if (ref.class_idx == class_idx) out.push_back(ref.sample_idx);
  }
  return out;
}

std::size_t Corpus::materialize(const std::filesystem::path& root) const {
  // Parallel over samples; each file path is unique so writes are disjoint.
  fhc::util::parallel_for(samples_.size(), [&](std::size_t i) {
    const SampleRef& ref = samples_[i];
    fhc::util::write_file(root / ref.rel_path(),
                          std::span<const std::uint8_t>(sample_bytes(ref)));
  });
  return samples_.size();
}

}  // namespace fhc::corpus
