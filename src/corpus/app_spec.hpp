// The application-class table of the reproduction dataset.
//
// The paper's corpus is 5333 pre-installed executables in 92 application
// classes scraped from the sciCORE cluster. The raw dataset is not public,
// so we reconstruct its *composition* exactly from the paper's tables:
//
//  * the 73 known-class names and their test supports (Table 4),
//  * the 19 unknown-pool class names and their full counts (Table 3),
//  * per-known-class totals chosen such that the paper's stratified 60/40
//    sample split reproduces the reported test supports and the global
//    counts: 4481 known + 852 unknown = 5333 samples, split 2688 train /
//    2645 test.
//
// Content (symbols/strings/code) is synthesized per class by the corpus
// generator; see synth_app.hpp for the mutation model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fhc::corpus {

/// Coarse scientific domain; classes within a domain share a small library
/// vocabulary, creating realistic cross-class similarity.
enum class Domain { kBioinformatics, kChemistry, kPhysics, kMath, kImaging };

struct AppClassSpec {
  std::string name;            // directory name, e.g. "OpenMalaria"
  std::string lineage;         // genome key; shared by renamed installs
  std::string family;          // related-project group sharing library code
                               // (e.g. "htslib": HTSlib/SAMtools/BCFtools);
                               // empty = standalone
  int total_samples = 3;       // full-scale sample count (all versions)
  bool paper_unknown = false;  // in Table 3's unknown pool
  int paper_test_support = 0;  // Table 4 support (0 for unknown classes)
  Domain domain = Domain::kBioinformatics;
  std::vector<std::string> version_names;  // optional explicit versions
  std::vector<std::string> exec_names;     // optional leading exec names
};

/// The full 92-class table at paper scale (5333 samples).
const std::vector<AppClassSpec>& paper_app_classes();

/// Scales every class's sample count by `scale` (floor, min 3 — the
/// paper's minimum versions-per-class rule). scale = 1 returns the table
/// unchanged.
std::vector<AppClassSpec> scaled_app_classes(double scale);

/// Number of samples summed over `specs`.
int total_sample_count(const std::vector<AppClassSpec>& specs);

/// Finds a class by name (nullptr when absent).
const AppClassSpec* find_class(const std::vector<AppClassSpec>& specs,
                               const std::string& name);

}  // namespace fhc::corpus
