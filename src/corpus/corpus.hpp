// The corpus: enumerates every sample of every class and regenerates any
// sample's ELF image on demand.
//
// Samples are *not* stored — each is a pure function of (corpus seed,
// class, version, exec), so the corpus holds only lightweight metadata
// (~100 bytes/sample) while the feature-extraction pass streams images
// through the hashers in parallel and drops them immediately. The optional
// materialize() writes the sciCORE-style directory layout
// `<root>/<Class>/<version-toolchain>/<exec>` for the examples and for
// inspection with real binutils.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "corpus/app_spec.hpp"
#include "corpus/synth_app.hpp"

namespace fhc::corpus {

/// Identity of one sample within a Corpus.
struct SampleRef {
  int class_idx = 0;    // index into Corpus::specs()
  int version_idx = 0;  // index into the class's versions
  int exec_idx = 0;     // executable slot within the version
  int sample_idx = 0;   // global index within Corpus::samples()

  std::string class_name;
  std::string version_dir;  // e.g. "46.0-iomkl-2019.01"
  std::string exec_name;    // e.g. "openmalaria"

  /// "Class/version-toolchain/exec" (the labelling path of the paper).
  std::string rel_path() const;
};

class Corpus {
 public:
  /// Builds synthesizers for all classes and enumerates samples.
  Corpus(std::vector<AppClassSpec> specs, std::uint64_t seed);

  const std::vector<AppClassSpec>& specs() const noexcept { return specs_; }
  const std::vector<SampleRef>& samples() const noexcept { return samples_; }
  std::uint64_t seed() const noexcept { return seed_; }
  int class_count() const noexcept { return static_cast<int>(specs_.size()); }

  const SampleSynthesizer& synthesizer(int class_idx) const {
    return *synths_.at(static_cast<std::size_t>(class_idx));
  }

  /// Regenerates the ELF image of `ref` (deterministic).
  std::vector<std::uint8_t> sample_bytes(const SampleRef& ref,
                                         bool stripped = false) const;

  /// Global indices of all samples of one class.
  std::vector<int> samples_of_class(int class_idx) const;

  /// Writes every sample under `root` in the sciCORE layout. Returns the
  /// number of files written.
  std::size_t materialize(const std::filesystem::path& root) const;

 private:
  std::vector<AppClassSpec> specs_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<SampleSynthesizer>> synths_;
  std::vector<SampleRef> samples_;
};

}  // namespace fhc::corpus
