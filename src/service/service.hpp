// fhc::service — the always-on classification layer over a trained model.
//
// The paper's deployment story (Section 5) is continuous screening of
// every job that lands on a cluster: a Slurm prolog asks "what is this
// binary?" for each submission, which at fleet scale is sustained
// classification traffic, not one-shot CLI calls that reload the model
// per invocation. ClassificationService keeps one FuzzyHashClassifier
// resident and turns throughput into the first-class metric with four
// layers, outermost first:
//
//   1. a sharded LRU result cache keyed by the sample's digest text —
//      repeat binaries (the common prolog case) skip scoring entirely;
//   2. a micro-batching queue: submit() enqueues and returns a future,
//      a dispatcher thread flushes when `max_batch` requests are pending
//      or the oldest has waited `max_delay`;
//   3. in-batch deduplication: identical samples inside one flush are
//      scored once and fanned out;
//   4. class-sharded row scoring: one query's similarity row (the
//      dominant cost) is computed in parallel slices over the TrainIndex
//      class range (fill_feature_row_slice) and reduced before the
//      forest pass.
//
// Predictions are bit-identical to serial FuzzyHashClassifier::predict
// on the same inputs: slicing partitions independent columns, dedup and
// caching return the result of the exact same computation, and the
// forest pass goes through predict_rows, whose FlatForest block
// accumulation is bit-identical to per-row predict_from_row (same
// double-accumulation order per row).
//
// reload() swaps the model atomically (shared_ptr snapshot per flush):
// in-flight batches finish on the model they started with, later
// flushes use the new one, and the cache is cleared because its entries
// are stale. The destructor drains the queue — every future obtained
// from submit() is eventually fulfilled.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "service/lru_cache.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace fhc::service {

struct ServiceConfig {
  std::size_t max_batch = 32;                  // flush at this many pending
  std::chrono::milliseconds max_delay{2};      // ... or when the oldest waited this
  std::size_t shards = 0;                      // row slices per batch; 0 = pool size
  std::size_t cache_capacity = 4096;           // total entries; 0 disables the cache
  std::size_t cache_shards = 8;
  std::size_t latency_window = 4096;           // ring of recent latencies (percentiles)
  // Admission bound enforced by try_submit(): a sample arriving while
  // this many requests already wait for the dispatcher is rejected
  // instead of queued (0 = unbounded; submit() always queues). Cache
  // hits never queue, so they are always admitted.
  std::size_t max_queue = 0;
  // Load shedding by age: a request that waited in the queue longer than
  // this is answered DeadlineExceeded at flush time instead of scored —
  // under overload, work the client has likely given up on stops
  // consuming scoring capacity (0 = off). Per-request deadlines passed
  // to submit() shed the same way and compose with this bound.
  std::chrono::milliseconds max_queue_delay{0};
};

/// Thrown through a request's future when its deadline (or the service's
/// max_queue_delay) expired before scoring started. Front-ends map it to
/// the DEADLINE_EXCEEDED wire reply — distinct from BUSY (admission) and
/// ERROR (the request itself failed).
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One consistent snapshot of the service counters.
struct ServiceStats {
  std::uint64_t requests = 0;       // samples submitted
  std::uint64_t completed = 0;      // futures fulfilled (hits + scored + failed)
  std::uint64_t batches = 0;        // dispatcher flushes
  std::uint64_t scored = 0;         // unique rows that went through scoring
  std::uint64_t cache_hits = 0;     // answered from the LRU at submit()
  std::uint64_t dedup_hits = 0;     // answered by an identical in-batch sample
  std::uint64_t reloads = 0;
  std::uint64_t largest_batch = 0;
  // Completed requests whose prediction came back is_unknown (open-set
  // rejection / below the confidence threshold) — cache hits included,
  // since a hit fans out the same flagged prediction.
  std::uint64_t unknown_flagged = 0;
  // Requests shed before scoring because their deadline or the queue-age
  // bound expired (DeadlineExceeded through the future). Counted in
  // completed as well; never in scored/candidates_scored — an expired
  // request costs no scoring work.
  std::uint64_t deadline_expired = 0;
  // Connections evicted by the socket server's idle / read-progress
  // timeouts (slow-loris protection).
  std::uint64_t connections_timed_out = 0;

  // Candidate-index gate counters, summed over every row slice scored:
  // of the training digests an all-pairs row fill would have visited,
  // how many were actually compared vs. pruned by the TrainIndex's
  // inverted 7-gram candidate index (core::RowFillStats).
  std::uint64_t candidates_scored = 0;
  std::uint64_t index_skipped = 0;

  // Admission control and front-end connection accounting (the socket
  // server in fhc::net drives these; the stdio front-end leaves the
  // connection counters at zero).
  std::uint64_t connections_opened = 0;    // accepted since start
  std::uint64_t connections_active = 0;    // currently open
  std::uint64_t connections_rejected = 0;  // refused at the accept gate
  std::uint64_t requests_rejected = 0;     // try_submit refusals (queue full)
  std::uint64_t queue_depth = 0;           // pending (unflushed) at snapshot time

  double index_skip_rate() const {
    const std::uint64_t visited = candidates_scored + index_skipped;
    return visited > 0 ? static_cast<double>(index_skipped) / static_cast<double>(visited)
                       : 0.0;
  }

  double cache_hit_rate() const {
    return requests > 0 ? static_cast<double>(cache_hits) / static_cast<double>(requests)
                        : 0.0;
  }

  // Request latency (submit -> future fulfilled) over the recent window.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Stable cache/dedup identity of a sample: its exact digest text across
/// all channels (samples with equal keys produce equal feature rows).
std::string sample_key(const core::FeatureHashes& sample);

class ClassificationService {
 public:
  /// Takes ownership of a fitted model. `pool` is where batch scoring
  /// runs (nullptr = the process-wide shared pool).
  explicit ClassificationService(core::FuzzyHashClassifier model,
                                 ServiceConfig config = {},
                                 util::ThreadPool* pool = nullptr);

  /// Drains every pending request, then stops the dispatcher.
  ~ClassificationService();

  ClassificationService(const ClassificationService&) = delete;
  ClassificationService& operator=(const ClassificationService&) = delete;

  /// Enqueues one sample. The future is fulfilled by the dispatcher (or
  /// immediately on a cache hit) and carries any scoring exception.
  /// `deadline` is the request's time budget from now: if it expires
  /// before scoring starts, the future carries DeadlineExceeded and the
  /// sample is never scored (a cache hit still answers — it is free).
  std::future<core::Prediction> submit(
      core::FeatureHashes sample,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// Bounded admission: like submit(), but refuses the sample (returning
  /// false, counting requests_rejected, leaving `out` untouched) when
  /// config().max_queue > 0 and that many requests already wait for the
  /// dispatcher. Cache hits bypass the queue and are always admitted.
  /// Front-ends turn a refusal into an explicit BUSY reply instead of
  /// queueing without bound.
  bool try_submit(core::FeatureHashes sample, std::future<core::Prediction>& out,
                  std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// Asks the dispatcher to flush the pending queue now instead of
  /// waiting out max_delay — graceful-shutdown and drain paths use this
  /// so queued requests resolve promptly under idle traffic.
  void flush();

  /// Front-end connection accounting (surfaced through stats()).
  void record_connection_opened();
  void record_connection_closed();
  void record_connection_rejected();
  void record_connection_timed_out();

  /// Blocking convenience: submits every sample and waits for all
  /// results, in order. Equivalent to serial predict() on each.
  std::vector<core::Prediction> classify_batch(
      const std::vector<core::FeatureHashes>& samples);

  /// Swaps in a new fitted model without dropping in-flight requests
  /// and clears the result cache. Throws std::invalid_argument if
  /// `model` is not fitted (the current model stays active).
  void reload(core::FuzzyHashClassifier model);

  /// The currently active model (in-flight batches may still reference a
  /// predecessor).
  std::shared_ptr<const core::FuzzyHashClassifier> model() const;

  ServiceStats stats() const;
  const ServiceConfig& config() const noexcept { return config_; }

 private:
  struct Request {
    core::FeatureHashes sample;
    std::string key;
    std::promise<core::Prediction> promise;
    util::Stopwatch watch;  // started at submit; read when fulfilled
    // Absolute expiry computed at enqueue (steady clock); checked by the
    // dispatcher before any scoring work starts.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  void dispatcher_loop();
  void score_batch(std::vector<Request> batch);
  /// Splits off and answers the batch's expired requests (DeadlineExceeded,
  /// counted before the promises resolve). Returns the live remainder.
  std::vector<Request> shed_expired(std::vector<Request> batch);
  void record_latency_locked(double ms);
  std::future<core::Prediction> enqueue(
      core::FeatureHashes sample, bool bounded, bool* rejected,
      std::optional<std::chrono::milliseconds> deadline);

  ServiceConfig config_;
  util::ThreadPool* pool_;  // never null after construction

  mutable std::mutex model_mutex_;
  std::shared_ptr<const core::FuzzyHashClassifier> model_;
  std::uint64_t model_generation_ = 0;  // bumped by reload(); guards cache puts

  ShardedLruCache cache_;

  mutable std::mutex queue_mutex_;  // stats() reads the depth
  std::condition_variable queue_cv_;
  std::deque<Request> pending_;
  bool stopping_ = false;
  bool flush_requested_ = false;  // flush(): dispatch pending now

  mutable std::mutex stats_mutex_;
  ServiceStats counters_;               // percentile fields unused here
  std::vector<double> latency_ring_;    // most recent latency_window samples
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;
  double latency_max_ = 0.0;

  std::thread dispatcher_;  // last member: joins before the rest tears down
};

}  // namespace fhc::service
