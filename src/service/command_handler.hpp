// service::CommandHandler — the front-end-neutral command core of the
// classification daemon.
//
// fhc_serve grew a second front-end (the fhc::net socket server) next to
// the original stdin/stdout line protocol. Both speak the same four
// commands — CLASSIFY, STATS, RELOAD, QUIT — and both must keep the
// service invariants (one model snapshot per reply set, bit-identical
// predictions, admission accounting). This class is the single
// implementation both wrap, so the wire surfaces cannot drift:
//
//   * submit_path() / submit_sample(): one CLASSIFY item — feature
//     extraction (path mode reads the file, an `exe@trace` spec attaches
//     the perf-stat trace) and submission, optionally through the
//     bounded try_submit() admission gate;
//   * format_prediction(): the canonical "<label>\t<confidence>" text;
//   * stats_line(): the canonical key=value STATS reply;
//   * reload(): model load + service reload with error capture;
//   * handle_line(): the whole stdio line protocol (fhc_serve --stdio
//     and the FIFO recipe), built from the pieces above.
#pragma once

#include <chrono>
#include <future>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/classifier.hpp"
#include "service/service.hpp"

namespace fhc::service {

class CommandHandler {
 public:
  explicit CommandHandler(ClassificationService& svc) : svc_(svc) {}

  CommandHandler(const CommandHandler&) = delete;
  CommandHandler& operator=(const CommandHandler&) = delete;

  /// One CLASSIFY item in flight. Exactly one of the three states holds:
  /// `error` non-empty (extraction/read failed, future invalid),
  /// `rejected` (bounded admission refused — the front-end owes the
  /// client a BUSY reply), or `future` valid.
  struct Submission {
    std::future<core::Prediction> future;
    std::string error;
    bool rejected = false;
  };

  /// Reads `path` (or "exe@trace": the trace is fingerprinted into the
  /// runtime channel), extracts feature hashes, and submits. Never
  /// throws — failures land in Submission::error. `deadline` is the
  /// request's time budget; expired work resolves the future with
  /// service::DeadlineExceeded instead of being scored.
  Submission submit_path(
      const std::string& path_spec, bool bounded = false,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// Submits an already-extracted sample (the socket protocol's digest
  /// fast path — clients hash locally, the daemon only scores).
  Submission submit_sample(
      core::FeatureHashes sample, bool bounded = false,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  /// "<name>\t<confidence>" with the label range-checked against
  /// `model`'s class list (predictions can outlive a RELOAD); out-of-
  /// range and unknown labels print numerically (kUnknownLabel = -1).
  static std::string format_prediction(const core::FuzzyHashClassifier& model,
                                       const core::Prediction& pred);

  /// The canonical one-line key=value STATS reply (no trailing newline).
  std::string stats_line() const;

  struct ReloadResult {
    bool ok = false;
    std::string message;  // the model path on success, the error otherwise
  };

  /// Loads `model_path` (text/v1/v2 sniffed) and swaps it in. Never
  /// throws; in-flight batches finish on their snapshot either way. An
  /// unknown-threshold override set below is re-applied to the fresh
  /// model, so RELOAD cannot silently drop the deployment knob.
  ReloadResult reload(const std::string& model_path);

  /// Deployment override for the open-set rejection threshold
  /// (fhc_serve --unknown-threshold): applied to every model swapped in
  /// via reload(). The caller applies it to the initially-loaded model.
  void set_unknown_threshold_override(double threshold) {
    unknown_override_ = threshold;
  }

  /// Runs one line of the stdio protocol, writing replies (newline-
  /// terminated, unflushed) to `out`. Returns false on QUIT.
  bool handle_line(const std::string& line, std::ostream& out);

  ClassificationService& service() noexcept { return svc_; }
  const ClassificationService& service() const noexcept { return svc_; }

 private:
  ClassificationService& svc_;
  std::optional<double> unknown_override_;
};

}  // namespace fhc::service
