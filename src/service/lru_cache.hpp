// Sharded LRU cache of Predictions keyed by the sample's digest text.
//
// The service's repeat-binary fast path: a Slurm prolog classifies the
// same few executables over and over, so a small cache keyed by the exact
// fuzzy-hash text skips scoring entirely for repeats. Sharding by key hash
// keeps submit()-side lookups from serializing behind one mutex under
// concurrent clients; each shard is an independent LRU with its own lock.
//
// A capacity of 0 disables the cache (get always misses, put is a no-op),
// which the benches use to isolate the batching/sharding win from the
// caching win.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/classifier.hpp"

namespace fhc::service {

class ShardedLruCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRUs
  /// (each gets at least one slot; shard count is clamped to capacity).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached prediction and refreshes its recency, or nullopt.
  std::optional<core::Prediction> get(const std::string& key);

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when the shard is full.
  void put(const std::string& key, const core::Prediction& value);

  /// Drops every entry (model reload: cached results are stale).
  void clear();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  bool enabled() const noexcept { return capacity_ > 0; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used. The map owns iterator handles into the
    // list; list nodes are stable across splice so refresh never rehashes.
    std::list<std::pair<std::string, core::Prediction>> order;
    std::unordered_map<std::string, std::list<std::pair<std::string, core::Prediction>>::iterator>
        index;
    std::size_t capacity = 0;
  };

  Shard& shard_of(const std::string& key);

  std::size_t capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace fhc::service
