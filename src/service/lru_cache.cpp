#include "service/lru_cache.hpp"

#include <algorithm>
#include <functional>

namespace fhc::service {

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  if (capacity_ == 0) return;
  shards = std::clamp<std::size_t>(shards, 1, capacity_);
  shards_ = std::vector<Shard>(shards);
  // Distribute slots round-robin so the shard capacities sum to capacity_.
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s].capacity = capacity_ / shards + (s < capacity_ % shards ? 1 : 0);
  }
}

ShardedLruCache::Shard& ShardedLruCache::shard_of(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<core::Prediction> ShardedLruCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  return it->second->second;
}

void ShardedLruCache::put(const std::string& key, const core::Prediction& value) {
  if (!enabled()) return;
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  if (shard.order.size() >= shard.capacity) {
    shard.index.erase(shard.order.back().first);
    shard.order.pop_back();
  }
  shard.order.emplace_front(key, value);
  shard.index.emplace(key, shard.order.begin());
}

void ShardedLruCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.order.clear();
    shard.index.clear();
  }
}

std::size_t ShardedLruCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.order.size();
  }
  return total;
}

}  // namespace fhc::service
