#include "service/command_handler.hpp"

#include <cstdio>
#include <exception>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/features.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "util/io_util.hpp"

namespace fhc::service {

CommandHandler::Submission CommandHandler::submit_path(
    const std::string& path_spec, bool bounded,
    std::optional<std::chrono::milliseconds> deadline) {
  Submission out;
  core::FeatureHashes sample;
  try {
    const std::size_t at = path_spec.rfind('@');
    const auto image = util::read_file(
        at == std::string::npos ? path_spec : path_spec.substr(0, at));
    sample = core::extract_feature_hashes(image);
    if (at != std::string::npos) {
      runtime::attach_trace(sample,
                            runtime::load_trace_file(path_spec.substr(at + 1)));
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }
  return submit_sample(std::move(sample), bounded, deadline);
}

CommandHandler::Submission CommandHandler::submit_sample(
    core::FeatureHashes sample, bool bounded,
    std::optional<std::chrono::milliseconds> deadline) {
  Submission out;
  if (bounded) {
    out.rejected = !svc_.try_submit(std::move(sample), out.future, deadline);
  } else {
    out.future = svc_.submit(std::move(sample), deadline);
  }
  return out;
}

std::string CommandHandler::format_prediction(
    const core::FuzzyHashClassifier& model, const core::Prediction& pred) {
  char confidence[64];
  std::snprintf(confidence, sizeof confidence, "%.4f", pred.confidence);
  const std::vector<std::string>& names = model.class_names();
  std::string line;
  if (pred.label >= 0 && static_cast<std::size_t>(pred.label) < names.size()) {
    line = names[static_cast<std::size_t>(pred.label)];
  } else {
    line = std::to_string(pred.label);  // kUnknownLabel prints -1
  }
  line += '\t';
  line += confidence;
  return line;
}

std::string CommandHandler::stats_line() const {
  const ServiceStats s = svc_.stats();
  std::ostringstream out;
  out << "requests=" << s.requests << " completed=" << s.completed
      << " batches=" << s.batches << " scored=" << s.scored
      << " cache_hits=" << s.cache_hits << " dedup_hits=" << s.dedup_hits
      << " cache_hit_rate=" << s.cache_hit_rate()
      << " candidates_scored=" << s.candidates_scored
      << " index_skipped=" << s.index_skipped
      << " index_skip_rate=" << s.index_skip_rate() << " reloads=" << s.reloads
      << " largest_batch=" << s.largest_batch
      << " unknown_flagged=" << s.unknown_flagged
      << " deadline_expired=" << s.deadline_expired
      << " connections_opened=" << s.connections_opened
      << " connections_active=" << s.connections_active
      << " connections_rejected=" << s.connections_rejected
      << " connections_timed_out=" << s.connections_timed_out
      << " requests_rejected=" << s.requests_rejected
      << " queue_depth=" << s.queue_depth << " p50_ms=" << s.p50_ms
      << " p99_ms=" << s.p99_ms << " max_ms=" << s.max_ms;
  return out.str();
}

CommandHandler::ReloadResult CommandHandler::reload(const std::string& model_path) {
  ReloadResult result;
  try {
    core::FuzzyHashClassifier model = core::FuzzyHashClassifier::load_file(model_path);
    if (unknown_override_) model.set_unknown_threshold(*unknown_override_);
    svc_.reload(std::move(model));
    result.ok = true;
    result.message = model_path;
  } catch (const std::exception& e) {
    result.message = e.what();
  }
  return result;
}

bool CommandHandler::handle_line(const std::string& line, std::ostream& out) {
  std::istringstream parts(line);
  std::string command;
  parts >> command;
  if (command.empty()) return true;

  if (command == "CLASSIFY") {
    // Submit every path first so they land in one micro-batch, then
    // collect replies in order.
    std::vector<Submission> submissions;
    std::string path;
    while (parts >> path) submissions.push_back(submit_path(path));
    if (submissions.empty()) {
      out << "ERR CLASSIFY needs at least one path\n";
      return true;
    }
    // One model snapshot for the whole reply set; format_prediction
    // range-checks labels against it (a prediction can outlive a RELOAD).
    const std::shared_ptr<const core::FuzzyHashClassifier> model = svc_.model();
    for (Submission& submission : submissions) {
      if (!submission.error.empty()) {
        out << "ERR " << submission.error << '\n';
        continue;
      }
      try {
        out << format_prediction(*model, submission.future.get()) << '\n';
      } catch (const std::exception& e) {
        out << "ERR " << e.what() << '\n';
      }
    }
  } else if (command == "STATS") {
    out << stats_line() << '\n';
  } else if (command == "RELOAD") {
    std::string model_path;
    if (!(parts >> model_path)) {
      out << "ERR RELOAD needs a model path\n";
    } else {
      const ReloadResult result = reload(model_path);
      out << (result.ok ? "OK " : "ERR ") << result.message << '\n';
    }
  } else if (command == "QUIT") {
    out << "OK bye\n";
    return false;
  } else {
    out << "ERR unknown command: " << command << '\n';
  }
  return true;
}

}  // namespace fhc::service
