#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/feature_matrix.hpp"
#include "ml/matrix.hpp"
#include "util/fault_inject.hpp"

namespace fhc::service {

std::string sample_key(const core::FeatureHashes& sample) {
  // Digest text is base64-ish and never contains the separator, so the
  // concatenation is injective; equal keys imply equal feature rows. A
  // three-channel sample produces the exact pre-registry key bytes;
  // dynamic channels append further separated digests.
  std::string key = sample.file.to_string();
  key += '\x1f';
  key += sample.strings.to_string();
  key += '\x1f';
  key += sample.symbols.to_string();
  for (const ssdeep::FuzzyDigest& digest : sample.extra) {
    key += '\x1f';
    key += digest.to_string();
  }
  return key;
}

ClassificationService::ClassificationService(core::FuzzyHashClassifier model,
                                             ServiceConfig config,
                                             util::ThreadPool* pool)
    : config_(config),
      pool_(pool != nullptr ? pool : &util::ThreadPool::shared()),
      model_(std::make_shared<const core::FuzzyHashClassifier>(std::move(model))),
      cache_(config.cache_capacity, config.cache_shards),
      latency_ring_(std::max<std::size_t>(config.latency_window, 1), 0.0) {
  if (!model_->fitted()) {
    throw std::invalid_argument("ClassificationService: model not fitted");
  }
  if (config_.max_batch == 0) config_.max_batch = 1;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ClassificationService::~ClassificationService() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

std::future<core::Prediction> ClassificationService::submit(
    core::FeatureHashes sample,
    std::optional<std::chrono::milliseconds> deadline) {
  return enqueue(std::move(sample), /*bounded=*/false, /*rejected=*/nullptr,
                 deadline);
}

bool ClassificationService::try_submit(
    core::FeatureHashes sample, std::future<core::Prediction>& out,
    std::optional<std::chrono::milliseconds> deadline) {
  bool rejected = false;
  std::future<core::Prediction> future =
      enqueue(std::move(sample), /*bounded=*/true, &rejected, deadline);
  if (rejected) return false;
  out = std::move(future);
  return true;
}

std::future<core::Prediction> ClassificationService::enqueue(
    core::FeatureHashes sample, bool bounded, bool* rejected,
    std::optional<std::chrono::milliseconds> deadline) {
  Request request;
  request.sample = std::move(sample);
  request.key = sample_key(request.sample);
  if (deadline) {
    request.has_deadline = true;
    request.deadline = std::chrono::steady_clock::now() + *deadline;
  }
  std::future<core::Prediction> future = request.promise.get_future();

  // Probe the cache before touching any lock-shared counters so the hot
  // path (a hit) pays one stats_mutex_ acquisition, and counters land
  // before the promise — same ordering as score_batch, so a waiter that
  // observes the future resolve finds its request already counted.
  if (std::optional<core::Prediction> hit = cache_.get(request.key)) {
    {
      std::lock_guard lock(stats_mutex_);
      ++counters_.requests;
      ++counters_.cache_hits;
      ++counters_.completed;
      if (hit->is_unknown) ++counters_.unknown_flagged;
      record_latency_locked(request.watch.milliseconds());
    }
    request.promise.set_value(*hit);
    return future;
  }

  {
    std::lock_guard lock(queue_mutex_);
    if (bounded && config_.max_queue > 0 && pending_.size() >= config_.max_queue) {
      // Admission refusal: the caller owes the client a BUSY reply. The
      // request is never counted as submitted, so the completed ==
      // requests accounting stays intact. (queue_mutex_ -> stats_mutex_
      // is the established lock order below.)
      std::lock_guard stats_lock(stats_mutex_);
      ++counters_.requests_rejected;
      *rejected = true;
      return {};
    }
    if (stopping_) {
      // The dispatcher may already have drained and exited; nothing would
      // ever score this request.
      request.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("ClassificationService: submit after shutdown")));
      std::lock_guard stats_lock(stats_mutex_);
      ++counters_.requests;
      ++counters_.completed;
      return future;
    }
    // Chaos allocation hook: queue growth is the service's unbounded
    // allocation; an injected bad_alloc here must surface as a per-
    // request failure, not a crash.
    util::fi::alloc_guard();
    pending_.push_back(std::move(request));
    std::lock_guard stats_lock(stats_mutex_);
    ++counters_.requests;
  }
  queue_cv_.notify_one();
  return future;
}

void ClassificationService::flush() {
  {
    std::lock_guard lock(queue_mutex_);
    flush_requested_ = true;
  }
  queue_cv_.notify_all();
}

void ClassificationService::record_connection_opened() {
  std::lock_guard lock(stats_mutex_);
  ++counters_.connections_opened;
  ++counters_.connections_active;
}

void ClassificationService::record_connection_closed() {
  std::lock_guard lock(stats_mutex_);
  if (counters_.connections_active > 0) --counters_.connections_active;
}

void ClassificationService::record_connection_rejected() {
  std::lock_guard lock(stats_mutex_);
  ++counters_.connections_rejected;
}

void ClassificationService::record_connection_timed_out() {
  std::lock_guard lock(stats_mutex_);
  ++counters_.connections_timed_out;
}

std::vector<core::Prediction> ClassificationService::classify_batch(
    const std::vector<core::FeatureHashes>& samples) {
  std::vector<std::future<core::Prediction>> futures;
  futures.reserve(samples.size());
  for (const core::FeatureHashes& sample : samples) futures.push_back(submit(sample));
  std::vector<core::Prediction> results;
  results.reserve(samples.size());
  for (std::future<core::Prediction>& future : futures) results.push_back(future.get());
  return results;
}

void ClassificationService::reload(core::FuzzyHashClassifier model) {
  if (!model.fitted()) {
    throw std::invalid_argument("ClassificationService::reload: model not fitted");
  }
  auto fresh = std::make_shared<const core::FuzzyHashClassifier>(std::move(model));
  {
    std::lock_guard lock(model_mutex_);
    model_ = std::move(fresh);
    // Invalidate before clearing: a batch still scoring on the old model
    // re-checks this generation under model_mutex_ and skips its cache
    // puts, so it cannot repopulate the cache with stale predictions
    // after the clear below.
    ++model_generation_;
  }
  // Cached predictions came from the previous model.
  cache_.clear();
  std::lock_guard lock(stats_mutex_);
  ++counters_.reloads;
}

std::shared_ptr<const core::FuzzyHashClassifier> ClassificationService::model() const {
  std::lock_guard lock(model_mutex_);
  return model_;
}

ServiceStats ClassificationService::stats() const {
  // queue_mutex_ -> stats_mutex_ is the established order (submit's
  // stopping path); read the depth first rather than nesting the other way.
  std::uint64_t depth = 0;
  {
    std::lock_guard lock(queue_mutex_);
    depth = pending_.size();
  }
  std::lock_guard lock(stats_mutex_);
  ServiceStats out = counters_;
  out.queue_depth = depth;
  const std::size_t n = std::min(latency_count_, latency_ring_.size());
  if (n > 0) {
    std::vector<double> window(latency_ring_.begin(),
                               latency_ring_.begin() + static_cast<std::ptrdiff_t>(n));
    std::sort(window.begin(), window.end());
    // Nearest-rank percentiles: index ceil(p * n) - 1, so a full
    // 100-sample window reports window[98] as p99, not the max.
    out.p50_ms = window[(n + 1) / 2 - 1];
    out.p99_ms = window[(n * 99 + 99) / 100 - 1];
    out.max_ms = latency_max_;
  }
  return out;
}

void ClassificationService::record_latency_locked(double ms) {
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  ++latency_count_;
  latency_max_ = std::max(latency_max_, ms);
}

void ClassificationService::dispatcher_loop() {
  std::unique_lock lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] {
      return stopping_ || flush_requested_ || !pending_.empty();
    });
    if (pending_.empty()) {
      flush_requested_ = false;  // nothing to flush
      if (stopping_) return;     // drained
      continue;
    }
    // A batch is open. Flush when it fills, when the oldest request's
    // delay budget runs out, at shutdown (drain what's left), or when
    // flush() asks for an immediate dispatch.
    if (pending_.size() < config_.max_batch && !stopping_ && !flush_requested_) {
      const std::chrono::duration<double, std::milli> remaining(
          static_cast<double>(config_.max_delay.count()) -
          pending_.front().watch.milliseconds());
      queue_cv_.wait_for(lock, remaining, [this] {
        return stopping_ || flush_requested_ ||
               pending_.size() >= config_.max_batch;
      });
    }
    // flush_requested_ stays set until pending_ drains (cleared at loop
    // top): one flush() call dispatches a whole backlog even when it is
    // larger than max_batch — graceful shutdown depends on this.
    const std::size_t take = std::min(pending_.size(), config_.max_batch);
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    score_batch(std::move(batch));
    lock.lock();
  }
}

std::vector<ClassificationService::Request> ClassificationService::shed_expired(
    std::vector<Request> batch) {
  const auto now = std::chrono::steady_clock::now();
  const double max_age_ms =
      static_cast<double>(config_.max_queue_delay.count());
  std::vector<Request> live;
  std::vector<Request> expired;
  live.reserve(batch.size());
  for (Request& request : batch) {
    const bool over_deadline = request.has_deadline && now >= request.deadline;
    const bool over_age =
        max_age_ms > 0.0 && request.watch.milliseconds() > max_age_ms;
    (over_deadline || over_age ? expired : live).push_back(std::move(request));
  }
  if (expired.empty()) return live;

  // Counters before promises, as everywhere: a waiter that observes
  // DeadlineExceeded must find deadline_expired already bumped. These
  // requests contribute nothing to scored/candidates_scored — shedding
  // happens before any scoring stage runs.
  {
    std::lock_guard lock(stats_mutex_);
    counters_.deadline_expired += expired.size();
    counters_.completed += expired.size();
    for (Request& request : expired) {
      record_latency_locked(request.watch.milliseconds());
    }
  }
  for (Request& request : expired) {
    const char* what = request.has_deadline && now >= request.deadline
                           ? "deadline exceeded before scoring"
                           : "queue delay bound exceeded before scoring";
    request.promise.set_exception(
        std::make_exception_ptr(DeadlineExceeded(what)));
  }
  return live;
}

void ClassificationService::score_batch(std::vector<Request> batch) {
  // Expired work is answered first and never reaches a scoring stage —
  // under overload the capacity goes to requests whose clients are
  // still waiting.
  batch = shed_expired(std::move(batch));
  if (batch.empty()) return;

  // Snapshot the active model: reload() during scoring must not pull the
  // index out from under this batch.
  std::shared_ptr<const core::FuzzyHashClassifier> model;
  std::uint64_t generation = 0;
  {
    std::lock_guard lock(model_mutex_);
    model = model_;
    generation = model_generation_;
  }

  // In-batch dedup: identical samples (repeat binaries burst-submitted by
  // a prolog) are scored once and fanned out.
  std::unordered_map<std::string, std::size_t> slot_of_key;
  std::vector<std::size_t> representative;  // unique slot -> batch index
  std::vector<std::size_t> slot(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto [it, inserted] = slot_of_key.try_emplace(batch[i].key,
                                                        representative.size());
    if (inserted) representative.push_back(i);
    slot[i] = it->second;
  }

  const std::size_t uniques = representative.size();
  std::vector<core::Prediction> results(uniques);
  std::uint64_t gate_scored = 0;
  std::uint64_t gate_skipped = 0;
  try {
    const core::TrainIndex& index = model->index();
    const core::ClassifierConfig& cfg = model->config();
    const int k = index.n_classes();
    std::size_t shards = config_.shards != 0 ? config_.shards : pool_->size();
    shards = std::clamp<std::size_t>(shards, 1, static_cast<std::size_t>(k));

    // Stage 1: normalize each unique query once per channel and probe
    // the candidate index once — the candidate sets are slice-independent,
    // so stage 2's parallel slices share them instead of re-probing.
    std::vector<core::PreparedQuery> queries(uniques);
    std::vector<core::QueryCandidates> candidates(uniques);
    util::parallel_for(*pool_, 0, uniques, /*grain=*/1, [&](std::size_t u) {
      queries[u] = core::PreparedQuery(batch[representative[u]].sample, cfg.channels);
      candidates[u] = core::QueryCandidates(index, queries[u], cfg.channels);
    });

    // Stage 2: every (query, class-slice) pair is one work item, so a
    // single query's similarity row — the dominant cost — is computed in
    // parallel slices across the index and reduced by writing disjoint
    // column ranges of its row. Each slice reports its candidate-index
    // gate counters; slices partition the class range, so the batch
    // totals match one full-row fill per unique query.
    ml::Matrix rows(uniques, model->row_width());
    std::atomic<std::uint64_t> scored{0};
    std::atomic<std::uint64_t> skipped{0};
    util::parallel_for(*pool_, 0, uniques * shards, /*grain=*/1,
                       [&](std::size_t item) {
                         const std::size_t u = item / shards;
                         const std::size_t s = item % shards;
                         const int begin = static_cast<int>(
                             s * static_cast<std::size_t>(k) / shards);
                         const int end = static_cast<int>(
                             (s + 1) * static_cast<std::size_t>(k) / shards);
                         core::RowFillStats slice_stats;
                         core::fill_feature_row_slice(index, queries[u],
                                                      candidates[u], cfg.metric,
                                                      /*exclude_id=*/-1, begin, end,
                                                      rows.row(u), cfg.channels,
                                                      &slice_stats);
                         scored.fetch_add(slice_stats.candidates_scored,
                                          std::memory_order_relaxed);
                         skipped.fetch_add(slice_stats.index_skipped,
                                           std::memory_order_relaxed);
                       });
    gate_scored = scored.load(std::memory_order_relaxed);
    gate_skipped = skipped.load(std::memory_order_relaxed);

    // Stage 3: one tree-major FlatForest pass over the whole micro-batch
    // instead of a forest walk per row — each tree's nodes stay hot
    // across the batch, and the result is bit-identical to per-row
    // predict_from_row (same double accumulation order). Batches beyond
    // one block fan out across the pool inside predict_rows.
    model->predict_rows(rows, results, pool_);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    {
      std::lock_guard lock(stats_mutex_);
      ++counters_.batches;
      counters_.completed += batch.size();
      counters_.largest_batch = std::max<std::uint64_t>(counters_.largest_batch,
                                                        batch.size());
    }
    for (Request& request : batch) request.promise.set_exception(error);
    return;
  }

  // Counters before promises: a client that just observed its future
  // resolve must see the counters already reflecting its request.
  {
    std::lock_guard lock(stats_mutex_);
    ++counters_.batches;
    counters_.scored += uniques;
    counters_.candidates_scored += gate_scored;
    counters_.index_skipped += gate_skipped;
    counters_.dedup_hits += batch.size() - uniques;
    counters_.completed += batch.size();
    counters_.largest_batch = std::max<std::uint64_t>(counters_.largest_batch,
                                                      batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[slot[i]].is_unknown) ++counters_.unknown_flagged;
    }
    for (Request& request : batch) record_latency_locked(request.watch.milliseconds());
  }
  {
    // Cache puts happen under model_mutex_ after re-checking the
    // generation: if reload() swapped models mid-batch these results are
    // stale and must not outlive the reload's cache clear (a concurrent
    // reload blocks on the mutex, bumps the generation, and clears after
    // we release — wiping anything we put here).
    std::lock_guard lock(model_mutex_);
    if (generation == model_generation_) {
      for (const std::size_t i : representative) {
        cache_.put(batch[i].key, results[slot[i]]);
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(results[slot[i]]);
  }
}

}  // namespace fhc::service
