// PreparedDigest: the one-time-normalized form of a FuzzyDigest for
// repeated comparisons.
//
// compare_digests re-derives, for BOTH sides of EVERY call, the two
// run-normalized parts plus the sorted packed 7-gram arrays behind the
// common-substring gate. In the classifier that work is re-done millions
// of times per experiment: every (sample, train-digest) pair goes through
// the same normalization of train digests that never change. Preparing a
// digest once hoists all of it:
//
//   * part1/part2 after eliminate_long_runs,
//   * the sorted 42-bit-packed 7-gram array of each part (the gate then
//     degenerates to a merge scan of two presorted arrays).
//
// The raw digest text is deliberately NOT retained — comparison needs only
// the blocksize and the normalized parts, and indexes that must serialize
// (core::TrainIndex) keep their own raw view; serialization stays the
// "bs:p1:p2" text format and loaders prepare from it.
//
// Storage vs view: comparison itself never needs ownership, only the
// normalized text and gram array of each part. PreparedDigestView is that
// non-owning shape — a string_view + gram span per part — and
// compare_prepared is defined over views, so the identical code path runs
// whether the bytes live in a PreparedDigest's own vectors (training,
// text load) or in a memory-mapped model's prepared-digest pools
// (core::TrainIndex::attach, the v2 binary format). PreparedDigest is the
// owning storage; view() borrows it.
//
// compare_prepared is score-identical to compare_digests by construction:
// both run the same gate ordering and share score_strings_pregated for the
// DP scoring (tests/ssdeep/test_prepared.cpp holds the property test).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ssdeep/compare.hpp"
#include "ssdeep/digest.hpp"

namespace fhc::ssdeep {

/// One digest part after long-run elimination, with the sorted packed
/// 7-gram array for the common-substring gate precomputed.
struct PreparedPart {
  std::string text;
  std::vector<std::uint64_t> grams;
};

/// Non-owning view of a prepared part — what comparison actually reads.
struct PreparedPartView {
  std::string_view text;
  std::span<const std::uint64_t> grams;
};

/// Non-owning view of a whole prepared digest. Valid as long as the
/// backing storage (a PreparedDigest, or a mapped model's pools) lives.
struct PreparedDigestView {
  std::uint32_t blocksize = kMinBlocksize;
  PreparedPartView part1;  // at blocksize
  PreparedPartView part2;  // at 2 * blocksize
};

class PreparedDigest {
 public:
  PreparedDigest() = default;
  explicit PreparedDigest(const FuzzyDigest& raw);

  std::uint32_t blocksize() const noexcept { return blocksize_; }
  const PreparedPart& part1() const noexcept { return part1_; }
  const PreparedPart& part2() const noexcept { return part2_; }

  PreparedDigestView view() const noexcept {
    return {blocksize_,
            {part1_.text, part1_.grams},
            {part2_.text, part2_.grams}};
  }

 private:
  std::uint32_t blocksize_ = kMinBlocksize;
  PreparedPart part1_;  // at blocksize
  PreparedPart part2_;  // at 2 * blocksize
};

/// Similarity in [0, 100]; bit-identical to compare_digests on the two
/// digests the operands were prepared from, but without re-normalizing
/// either side.
int compare_prepared(const PreparedDigestView& a, const PreparedDigestView& b,
                     EditMetric metric = EditMetric::kDamerauOsa);

inline int compare_prepared(const PreparedDigest& a, const PreparedDigest& b,
                            EditMetric metric = EditMetric::kDamerauOsa) {
  return compare_prepared(a.view(), b.view(), metric);
}

/// Construction-path test hook: process-wide count of digest
/// normalizations (PreparedDigest built from a FuzzyDigest). Lets tests
/// prove a code path — e.g. the v2 binary attach — prepared nothing.
std::uint64_t prepared_digest_count() noexcept;

}  // namespace fhc::ssdeep
