// Fuzzy digest value type: "blocksize:part1:part2".
//
//  * part1 — up to SPAMSUM_LENGTH (64) base64 chars, one per chunk at
//            `blocksize`,
//  * part2 — up to SPAMSUM_LENGTH/2 (32) chars at `2 * blocksize`; carrying
//            both lets two digests whose blocksizes differ by one power of
//            two still be compared.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fhc::ssdeep {

inline constexpr std::size_t kSpamsumLength = 64;
inline constexpr std::uint32_t kMinBlocksize = 3;
inline constexpr std::size_t kNumBlockhashes = 31;

struct FuzzyDigest {
  std::uint32_t blocksize = kMinBlocksize;
  std::string part1;  // chunks at blocksize
  std::string part2;  // chunks at blocksize * 2

  /// Canonical "bs:part1:part2" form (what ssdeep prints).
  std::string to_string() const;

  bool operator==(const FuzzyDigest&) const = default;
};

/// Parses "bs:part1:part2". Returns nullopt when malformed: missing
/// colons, non-numeric or non-positive blocksize, blocksize not of the form
/// kMinBlocksize * 2^i, over-long parts, or characters outside the base64
/// alphabet.
std::optional<FuzzyDigest> parse_digest(std::string_view text);

/// True if `bs` is a legal CTPH blocksize (3 * 2^i within engine range).
bool valid_blocksize(std::uint32_t bs) noexcept;

}  // namespace fhc::ssdeep
