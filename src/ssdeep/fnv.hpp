// The non-rolling chunk hash used by CTPH.
//
// spamsum/ssdeep hash each chunk with a 32-bit FNV-style multiply-xor using
// a non-standard initial value (HASH_INIT = 0x28021967); the low 6 bits of
// the final state select one base64 character of the digest. We keep the
// historical constants for fidelity with the published algorithm.
#pragma once

#include <cstdint>

namespace fhc::ssdeep {

inline constexpr std::uint32_t kHashPrime = 0x01000193u;  // FNV-1 32-bit prime
inline constexpr std::uint32_t kHashInit = 0x28021967u;   // spamsum's seed

/// One FNV step: absorbs byte `c` into state `h`.
constexpr std::uint32_t fnv_step(std::uint8_t c, std::uint32_t h) noexcept {
  return (h * kHashPrime) ^ c;
}

}  // namespace fhc::ssdeep
