#include "ssdeep/prepared.hpp"

#include <algorithm>
#include <atomic>

namespace fhc::ssdeep {

namespace {

std::atomic<std::uint64_t> g_prepared_count{0};

PreparedPart prepare_part(std::string_view raw) {
  PreparedPart part;
  part.text = eliminate_long_runs(raw);
  part.grams = packed_sorted_grams(part.text);
  return part;
}

// Mirrors score_strings on prepared parts: same rejection order (overlong,
// empty, gate), then the shared post-gate scoring. The overlong check only
// fires for hand-built digests — parse_digest and fuzzy_hash never exceed
// kSpamsumLength — but equivalence must hold for those too.
int score_parts(const PreparedPartView& a, const PreparedPartView& b,
                std::uint32_t blocksize, EditMetric metric) {
  if (a.text.size() > kSpamsumLength || b.text.size() > kSpamsumLength) return 0;
  if (a.text.empty() || b.text.empty()) return 0;
  if (!sorted_grams_intersect(a.grams, b.grams)) return 0;
  return score_strings_pregated(a.text, b.text, blocksize, metric);
}

}  // namespace

std::uint64_t prepared_digest_count() noexcept {
  return g_prepared_count.load(std::memory_order_relaxed);
}

PreparedDigest::PreparedDigest(const FuzzyDigest& raw)
    : blocksize_(raw.blocksize),
      part1_(prepare_part(raw.part1)),
      part2_(prepare_part(raw.part2)) {
  g_prepared_count.fetch_add(1, std::memory_order_relaxed);
}

int compare_prepared(const PreparedDigestView& a, const PreparedDigestView& b,
                     EditMetric metric) {
  const std::uint32_t bs1 = a.blocksize;
  const std::uint32_t bs2 = b.blocksize;
  if (!blocksizes_can_pair(bs1, bs2)) return 0;

  if (bs1 == bs2) {
    // Mirrors compare_digests' fast path, including the overlong
    // exclusion that keeps "shares a 7-gram" necessary for score > 0.
    if (a.part1.text == b.part1.text && a.part1.text.size() > kRollingWindow &&
        a.part1.text.size() <= kSpamsumLength) {
      return 100;
    }
    const int s1 = score_parts(a.part1, b.part1, bs1, metric);
    const int s2 = score_parts(a.part2, b.part2, part2_blocksize(bs1), metric);
    return std::max(s1, s2);
  }
  if (bs1 == std::uint64_t{bs2} * 2) {
    // a's part1 lives at the same blocksize as b's part2.
    return score_parts(a.part1, b.part2, bs1, metric);
  }
  // bs2 == bs1 * 2
  return score_parts(a.part2, b.part1, bs2, metric);
}

}  // namespace fhc::ssdeep
