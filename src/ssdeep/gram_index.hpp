// GramIndex: an inverted index from packed 42-bit 7-grams to posting
// lists of digest ids — the lookup-structured formulation of the 7-gram
// gate.
//
// compare_prepared can only score > 0 when the two parts being scored
// share at least one 7-gram (score_parts runs sorted_grams_intersect
// before the DP and returns 0 when it fails; the identical-part1 == 100
// fast path requires parts longer than the window and at most
// kSpamsumLength — exactly the lengths whose gram arrays are equal and
// non-empty). That makes the gate *invertible*: instead of
// merge-scanning a query's gram array against every training digest and
// rejecting almost all of them one by one, index the training side once —
// gram -> ids of the digests containing it — and probe it with the
// query's grams. The probe returns the exact candidate set; every digest
// it does not return is provably score 0 and is never touched. An
// all-pairs scan over N digests costs N merge scans per query; the probe
// costs one galloping merge of the query's <= 58 grams against the key
// array, independent of how many digests share no gram.
//
// The index is append-then-seal: add() every digest's presorted gram
// array (PreparedDigest already stores them), then finalize() to build
// the CSR layout (sorted unique keys, offsets, postings). Probing needs
// only those three arrays, so the probe side is split out as
// GramIndexView — three spans that can point at the builder's own
// vectors or at a memory-mapped model's CSR pools (the v2 binary format
// serializes the arrays verbatim and attaches views, skipping the
// build entirely). CandidateSet is the reusable probe accumulator: it
// dedups ids across multiple probes (a query probes up to four indexes
// per channel — part1/part2 across pairable blocksizes) with an
// epoch-stamped scratch array, so repeated probes allocate nothing in
// steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fhc::ssdeep {

/// Reusable deduplicating accumulator of candidate ids in [0, universe).
/// reset() is O(1) amortized (epoch stamps, not a clear), insert() is
/// O(1), and ids() returns the distinct ids inserted since the last
/// reset, in insertion order until sort() is called.
class CandidateSet {
 public:
  void reset(std::size_t universe);

  void insert(std::uint32_t id) {
    if (stamp_[id] == epoch_) return;
    stamp_[id] = epoch_;
    ids_.push_back(id);
  }

  /// Sorts the collected ids ascending (callers that assigned ids in a
  /// meaningful order — e.g. grouped by class — get grouped candidates).
  void sort();

  std::span<const std::uint32_t> ids() const noexcept { return ids_; }
  bool empty() const noexcept { return ids_.empty(); }

 private:
  std::vector<std::uint32_t> stamp_;  // stamp_[id] == epoch_ <=> id collected
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> ids_;
};

/// Non-owning probe view of a sealed CSR gram index: keys sorted unique,
/// postings of keys[i] at postings[offsets[i] .. offsets[i+1]). Backed by
/// either a GramIndex's own vectors or a mapped model's pools; the
/// backing storage validates shape (core::TrainIndex does so on attach)
/// and must outlive the view.
class GramIndexView {
 public:
  GramIndexView() = default;
  GramIndexView(std::span<const std::uint64_t> keys,
                std::span<const std::uint32_t> offsets,
                std::span<const std::uint32_t> postings) noexcept
      : keys_(keys), offsets_(offsets), postings_(postings) {}

  /// Probes with a presorted (possibly duplicated) query gram array and
  /// inserts the id of every indexed part sharing at least one gram into
  /// `out`. Equivalent to running sorted_grams_intersect between the
  /// query array and every indexed array, without touching non-matches.
  void collect(std::span<const std::uint64_t> sorted_query_grams,
               CandidateSet& out) const;

  std::size_t gram_count() const noexcept { return keys_.size(); }
  std::size_t posting_count() const noexcept { return postings_.size(); }

  std::span<const std::uint64_t> keys() const noexcept { return keys_; }
  std::span<const std::uint32_t> offsets() const noexcept { return offsets_; }
  std::span<const std::uint32_t> postings() const noexcept { return postings_; }

 private:
  std::span<const std::uint64_t> keys_;
  std::span<const std::uint32_t> offsets_;  // keys.size() + 1 entries
  std::span<const std::uint32_t> postings_;
};

class GramIndex {
 public:
  GramIndex() = default;

  /// Registers one digest part's presorted gram array under `id`.
  /// Duplicate grams within one array produce a single posting. Must not
  /// be called after finalize().
  void add(std::uint32_t id, std::span<const std::uint64_t> sorted_grams);

  /// Seals the index: builds the CSR (keys/offsets/postings) layout.
  /// Idempotent; collect() requires it.
  void finalize();

  /// Probes the sealed index (see GramIndexView::collect).
  void collect(std::span<const std::uint64_t> sorted_query_grams,
               CandidateSet& out) const;

  /// Borrowing view of the sealed CSR — valid while this index lives and
  /// is not re-built. Requires finalize().
  GramIndexView view() const;

  bool finalized() const noexcept { return finalized_; }
  std::size_t gram_count() const noexcept { return keys_.size(); }
  std::size_t posting_count() const noexcept { return postings_.size(); }

 private:
  bool finalized_ = false;
  // Build-phase staging: (gram, id) pairs, consumed by finalize().
  std::vector<std::pair<std::uint64_t, std::uint32_t>> pending_;
  // Sealed CSR: keys_ sorted unique; postings of keys_[i] are
  // postings_[offsets_[i] .. offsets_[i+1]), each list sorted ascending.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> postings_;
};

/// Construction-path test hook: process-wide count of CSR builds
/// (GramIndex::finalize() calls that actually sealed an index). Lets
/// tests prove the v2 binary attach rebuilt no gram index.
std::uint64_t gram_index_build_count() noexcept;

}  // namespace fhc::ssdeep
