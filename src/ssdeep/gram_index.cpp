#include "ssdeep/gram_index.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace fhc::ssdeep {

namespace {
std::atomic<std::uint64_t> g_build_count{0};
}  // namespace

std::uint64_t gram_index_build_count() noexcept {
  return g_build_count.load(std::memory_order_relaxed);
}

void CandidateSet::reset(std::size_t universe) {
  if (stamp_.size() < universe) stamp_.resize(universe, 0);
  if (++epoch_ == 0) {
    // Epoch wrapped: every stale stamp could collide with the new epoch.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  ids_.clear();
}

void CandidateSet::sort() { std::sort(ids_.begin(), ids_.end()); }

void GramIndexView::collect(std::span<const std::uint64_t> sorted_query_grams,
                            CandidateSet& out) const {
  // Galloping merge: both sides are sorted, so each lower_bound starts
  // where the previous match left off — total cost O(q log k) worst case,
  // better when the query's grams cluster.
  auto it = keys_.begin();
  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint64_t gram : sorted_query_grams) {
    if (!first && gram == prev) continue;
    prev = gram;
    first = false;
    it = std::lower_bound(it, keys_.end(), gram);
    if (it == keys_.end()) return;
    if (*it != gram) continue;
    const auto key = static_cast<std::size_t>(it - keys_.begin());
    for (std::uint32_t p = offsets_[key]; p < offsets_[key + 1]; ++p) {
      out.insert(postings_[p]);
    }
  }
}

void GramIndex::add(std::uint32_t id, std::span<const std::uint64_t> sorted_grams) {
  if (finalized_) throw std::logic_error("GramIndex::add: already finalized");
  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint64_t gram : sorted_grams) {
    if (!first && gram == prev) continue;  // one posting per (gram, digest)
    pending_.emplace_back(gram, id);
    prev = gram;
    first = false;
  }
}

void GramIndex::finalize() {
  if (finalized_) return;
  finalized_ = true;
  g_build_count.fetch_add(1, std::memory_order_relaxed);
  // Sorting by (gram, id) groups each key's postings contiguously with the
  // ids already ascending. add() deduped within a digest, and distinct
  // digests have distinct ids, so no pair repeats.
  std::sort(pending_.begin(), pending_.end());
  keys_.reserve(pending_.size());
  offsets_.reserve(pending_.size() + 1);
  postings_.reserve(pending_.size());
  for (const auto& [gram, id] : pending_) {
    if (keys_.empty() || keys_.back() != gram) {
      keys_.push_back(gram);
      offsets_.push_back(static_cast<std::uint32_t>(postings_.size()));
    }
    postings_.push_back(id);
  }
  offsets_.push_back(static_cast<std::uint32_t>(postings_.size()));
  // keys_/offsets_ were reserved for the posting count but only hold one
  // entry per DISTINCT gram — return the slack, it lives as long as the
  // model does.
  keys_.shrink_to_fit();
  offsets_.shrink_to_fit();
  pending_.clear();
  pending_.shrink_to_fit();
}

GramIndexView GramIndex::view() const {
  if (!finalized_) throw std::logic_error("GramIndex::view: not finalized");
  return {keys_, offsets_, postings_};
}

void GramIndex::collect(std::span<const std::uint64_t> sorted_query_grams,
                        CandidateSet& out) const {
  if (!finalized_) throw std::logic_error("GramIndex::collect: not finalized");
  view().collect(sorted_query_grams, out);
}

}  // namespace fhc::ssdeep
