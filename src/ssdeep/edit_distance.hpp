// Edit distances for fuzzy-digest comparison.
//
// The paper (Section 3) specifies the Damerau–Levenshtein distance as the
// comparison metric and spells out the recursion we implement in
// damerau_levenshtein_osa(); that recursion is the *optimal string
// alignment* (a.k.a. restricted DL) variant, which never edits a substring
// twice. We additionally provide:
//   * levenshtein()                — classic insert/delete/substitute,
//   * weighted_levenshtein()       — the historical ssdeep/spamsum metric
//                                    (insert/delete cost 1, substitute 2),
//   * damerau_levenshtein_full()   — unrestricted DL (Lowrance–Wagner),
// so the scoring metric is a run-time choice and the variants can be
// compared in tests and benches.
#pragma once

#include <cstddef>
#include <string_view>

namespace fhc::ssdeep {

/// Classic Levenshtein distance (unit costs).
std::size_t levenshtein(std::string_view a, std::string_view b);

/// Levenshtein with configurable costs. ssdeep's edit_distn uses
/// (insert=1, delete=1, substitute=2), making the worst case |a|+|b| —
/// the denominator of the similarity scaling below.
std::size_t weighted_levenshtein(std::string_view a, std::string_view b,
                                 std::size_t insert_cost = 1,
                                 std::size_t delete_cost = 1,
                                 std::size_t substitute_cost = 2);

/// Damerau–Levenshtein, optimal-string-alignment variant: insertions,
/// deletions, substitutions and transpositions of *adjacent* symbols, with
/// no substring edited more than once. Matches Equation (1) of the paper.
std::size_t damerau_levenshtein_osa(std::string_view a, std::string_view b);

/// Unrestricted Damerau–Levenshtein (Lowrance–Wagner): transposed symbols
/// may be further edited. Distinguishable from OSA on e.g. "CA" vs "ABC"
/// (full: 2, OSA: 3).
std::size_t damerau_levenshtein_full(std::string_view a, std::string_view b);

}  // namespace fhc::ssdeep
