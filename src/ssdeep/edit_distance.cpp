#include "ssdeep/edit_distance.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

namespace fhc::ssdeep {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  return weighted_levenshtein(a, b, 1, 1, 1);
}

std::size_t weighted_levenshtein(std::string_view a, std::string_view b,
                                 std::size_t insert_cost, std::size_t delete_cost,
                                 std::size_t substitute_cost) {
  // Two-row DP; rows indexed by prefix length of b.
  const std::size_t n = b.size();
  std::vector<std::size_t> prev(n + 1);
  std::vector<std::size_t> curr(n + 1);
  for (std::size_t j = 0; j <= n; ++j) prev[j] = j * insert_cost;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i * delete_cost;
    const char ai = a[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t del = prev[j] + delete_cost;
      const std::size_t ins = curr[j - 1] + insert_cost;
      const std::size_t sub = prev[j - 1] + (ai == b[j - 1] ? 0 : substitute_cost);
      curr[j] = std::min({del, ins, sub});
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

std::size_t damerau_levenshtein_osa(std::string_view a, std::string_view b) {
  // Three-row DP: the transposition case looks two rows back.
  const std::size_t n = b.size();
  std::vector<std::size_t> two_back(n + 1);
  std::vector<std::size_t> prev(n + 1);
  std::vector<std::size_t> curr(n + 1);
  for (std::size_t j = 0; j <= n; ++j) prev[j] = j;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    const char ai = a[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const char bj = b[j - 1];
      std::size_t best = std::min({prev[j] + 1,                       // deletion
                                   curr[j - 1] + 1,                   // insertion
                                   prev[j - 1] + (ai == bj ? 0 : 1)}); // (mis)match
      if (i > 1 && j > 1 && ai == b[j - 2] && a[i - 2] == bj) {
        best = std::min(best, two_back[j - 2] + 1);                   // transposition
      }
      curr[j] = best;
    }
    std::swap(two_back, prev);
    std::swap(prev, curr);
  }
  return prev[n];
}

std::size_t damerau_levenshtein_full(std::string_view a, std::string_view b) {
  // Lowrance–Wagner: full (m+2) x (n+2) table plus per-character last-seen
  // rows. Only used for tests/ablation (digest strings are <= 64 chars), so
  // clarity wins over memory.
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t inf = m + n;  // safe upper bound

  std::vector<std::vector<std::size_t>> d(m + 2, std::vector<std::size_t>(n + 2, inf));
  d[1][1] = 0;
  for (std::size_t i = 0; i <= m; ++i) d[i + 1][1] = i;
  for (std::size_t j = 0; j <= n; ++j) d[1][j + 1] = j;

  std::array<std::size_t, 256> last_row{};  // last row where each char occurred in a

  for (std::size_t i = 1; i <= m; ++i) {
    std::size_t last_col = 0;  // last column in this row where a[i-1] == b[j-1]
    for (std::size_t j = 1; j <= n; ++j) {
      const auto bj = static_cast<unsigned char>(b[j - 1]);
      const std::size_t i1 = last_row[bj];
      const std::size_t j1 = last_col;
      const bool match = a[i - 1] == b[j - 1];
      if (match) last_col = j;

      const std::size_t subst = d[i][j] + (match ? 0 : 1);
      const std::size_t insert = d[i + 1][j] + 1;
      const std::size_t erase = d[i][j + 1] + 1;
      std::size_t transpose = inf;
      if (i1 > 0 && j1 > 0) {
        transpose = d[i1][j1] + (i - i1 - 1) + 1 + (j - j1 - 1);
      }
      d[i + 1][j + 1] = std::min({subst, insert, erase, transpose});
    }
    last_row[static_cast<unsigned char>(a[i - 1])] = i;
  }
  return d[m + 1][n + 1];
}

}  // namespace fhc::ssdeep
