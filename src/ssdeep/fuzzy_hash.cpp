#include "ssdeep/fuzzy_hash.hpp"

#include "util/base64.hpp"

namespace fhc::ssdeep {

FuzzyHasher::FuzzyHasher() { reset(); }

void FuzzyHasher::reset() {
  for (auto& level : levels_) {
    level.h = kHashInit;
    level.halfh = kHashInit;
    level.digest.clear();
    level.halfdigest.clear();
  }
  levels_[0].digest.reserve(kSpamsumLength);
  bh_start_ = 0;
  bh_end_ = 1;
  total_size_ = 0;
  roll_.reset();
}

void FuzzyHasher::update(std::span<const std::uint8_t> data) {
  total_size_ += data.size();
  for (const std::uint8_t c : data) step(c);
}

void FuzzyHasher::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void FuzzyHasher::try_fork_blockhash() {
  if (bh_end_ >= kNumBlockhashes) return;
  // The new level inherits the in-progress chunk hashes of the previous
  // highest level: both have absorbed exactly the same bytes since that
  // level's last emission.
  BlockHash& prev = levels_[bh_end_ - 1];
  BlockHash& next = levels_[bh_end_];
  next.h = prev.h;
  next.halfh = prev.halfh;
  next.digest.clear();
  next.halfdigest.clear();
  ++bh_end_;
}

void FuzzyHasher::try_reduce_blockhash() {
  if (bh_end_ - bh_start_ < 2) return;  // need at least two live levels
  // Drop the lowest level only once it can no longer be selected by
  // digest(): the initial blocksize estimate for the current total size
  // already points past it, and the next level has enough characters that
  // the estimate will not be walked back down to this one.
  if (blocksize_of(bh_start_) * kSpamsumLength >= total_size_) return;
  if (levels_[bh_start_ + 1].digest.size() < kSpamsumLength / 2) return;
  ++bh_start_;
}

void FuzzyHasher::step(std::uint8_t c) {
  const std::uint32_t h = roll_.update(c);

  for (std::size_t i = bh_start_; i < bh_end_; ++i) {
    levels_[i].h = fnv_step(c, levels_[i].h);
    levels_[i].halfh = fnv_step(c, levels_[i].halfh);
  }

  for (std::size_t i = bh_start_; i < bh_end_; ++i) {
    const std::uint64_t bs = blocksize_of(i);
    // Blocksizes are nested powers of two times kMinBlocksize, so once the
    // trigger fails at one level it fails at every higher level.
    if (h % bs != bs - 1) break;

    if (levels_[i].digest.empty()) {
      // First emission at the currently-highest level: bring the next
      // level to life so it can observe the rest of the stream.
      if (i == bh_end_ - 1) try_fork_blockhash();
    }
    BlockHash& level = levels_[i];
    if (level.digest.size() < kSpamsumLength - 1) {
      // Emit one character and start a fresh chunk. If the digest is full
      // we intentionally do NOT reset, folding the rest of the input into
      // the final character (spamsum's tail-overflow rule).
      level.digest.push_back(fhc::util::base64_char(level.h));
      level.h = kHashInit;
      if (level.halfdigest.size() < kSpamsumLength / 2 - 1) {
        level.halfdigest.push_back(fhc::util::base64_char(level.halfh));
        level.halfh = kHashInit;
      }
    } else {
      try_reduce_blockhash();
    }
  }
}

FuzzyDigest FuzzyHasher::digest() const {
  // Initial blocksize guess from total size: smallest bs with
  // bs * kSpamsumLength >= total_size.
  std::size_t bi = bh_start_;
  while (blocksize_of(bi) * kSpamsumLength < total_size_ && bi + 1 < kNumBlockhashes) {
    ++bi;
  }
  // Clamp to live levels, then walk down while the digest at the guess is
  // too short to be discriminative.
  if (bi >= bh_end_) bi = bh_end_ - 1;
  while (bi > bh_start_ && levels_[bi].digest.size() < kSpamsumLength / 2) --bi;

  const bool has_tail = roll_.sum() != 0;  // an unfinished chunk is pending

  FuzzyDigest out;
  out.blocksize = static_cast<std::uint32_t>(blocksize_of(bi));
  out.part1 = levels_[bi].digest;
  if (has_tail) out.part1.push_back(fhc::util::base64_char(levels_[bi].h));

  if (bi + 1 < bh_end_) {
    const BlockHash& next = levels_[bi + 1];
    out.part2 = next.halfdigest;
    if (has_tail) out.part2.push_back(fhc::util::base64_char(next.halfh));
  } else if (has_tail && levels_[bi].digest.empty()) {
    // Input too small for even one trigger at this level: mirror part1's
    // single tail character so the digest stays comparable.
    out.part2.push_back(fhc::util::base64_char(levels_[bi].h));
  }
  return out;
}

FuzzyDigest fuzzy_hash(std::span<const std::uint8_t> data) {
  FuzzyHasher hasher;
  hasher.update(data);
  return hasher.digest();
}

FuzzyDigest fuzzy_hash(std::string_view text) {
  FuzzyHasher hasher;
  hasher.update(text);
  return hasher.digest();
}

}  // namespace fhc::ssdeep
