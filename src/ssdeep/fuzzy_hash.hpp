// Single-pass, multi-blocksize CTPH engine (the ssdeep/spamsum algorithm).
//
// The engine maintains up to kNumBlockhashes parallel "block hash" levels,
// level i corresponding to blocksize kMinBlocksize << i. Every input byte
// feeds the rolling hash and the per-level FNV chunk hashes; when the
// rolling hash triggers at a level's blocksize the level emits one base64
// character and resets its chunk hash. Levels are forked lazily (a level
// starts existing when the previous one first emits) and retired eagerly
// (a level whose digest is already longer than the final digest could use
// is dropped), so the engine is O(1) memory and a genuinely single pass —
// unlike the original two-pass spamsum which re-reads the input when its
// initial blocksize guess proves wrong.
//
// digest() picks the level whose blocksize best matches the total input
// size, preferring smaller blocksizes while their digests are long enough
// to be discriminative (>= kSpamsumLength / 2 characters).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "ssdeep/digest.hpp"
#include "ssdeep/fnv.hpp"
#include "ssdeep/rolling_hash.hpp"

namespace fhc::ssdeep {

class FuzzyHasher {
 public:
  FuzzyHasher();

  /// Absorbs a buffer; may be called repeatedly (streaming).
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Produces the digest for everything absorbed so far. Non-destructive:
  /// more input may be absorbed afterwards and digest() called again.
  FuzzyDigest digest() const;

  /// Total bytes absorbed.
  std::uint64_t total_size() const noexcept { return total_size_; }

  void reset();

 private:
  struct BlockHash {
    std::uint32_t h = kHashInit;      // chunk hash for part1
    std::uint32_t halfh = kHashInit;  // chunk hash for part2 (2x blocksize)
    std::string digest;               // up to kSpamsumLength chars
    std::string halfdigest;           // up to kSpamsumLength / 2 chars
  };

  static constexpr std::uint64_t blocksize_of(std::size_t level) noexcept {
    return static_cast<std::uint64_t>(kMinBlocksize) << level;
  }

  void step(std::uint8_t c);
  void try_fork_blockhash();
  void try_reduce_blockhash();

  BlockHash levels_[kNumBlockhashes];
  std::size_t bh_start_ = 0;  // first live level
  std::size_t bh_end_ = 1;    // one past last live level
  std::uint64_t total_size_ = 0;
  RollingHash roll_;
};

/// One-shot digest of a byte buffer.
FuzzyDigest fuzzy_hash(std::span<const std::uint8_t> data);

/// One-shot digest of text (the strings/symbols feature channels).
FuzzyDigest fuzzy_hash(std::string_view text);

}  // namespace fhc::ssdeep
