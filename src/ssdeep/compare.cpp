#include "ssdeep/compare.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>

#include "ssdeep/edit_distance.hpp"
#include "util/base64.hpp"

namespace fhc::ssdeep {

namespace {

// 6-bit index of each base64 character (255 for non-alphabet bytes); the
// packing in has_common_substring must be injective on the alphabet, which
// a plain `c & 0x3f` is not ('p' and '0' collide).
constexpr std::array<std::uint8_t, 256> make_b64_index() {
  std::array<std::uint8_t, 256> table{};
  for (auto& entry : table) entry = 255;
  for (std::size_t i = 0; i < fhc::util::kBase64Alphabet.size(); ++i) {
    table[static_cast<unsigned char>(fhc::util::kBase64Alphabet[i])] =
        static_cast<std::uint8_t>(i);
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> kB64Index = make_b64_index();

}  // namespace

bool blocksizes_can_pair(std::uint32_t a, std::uint32_t b) noexcept {
  const std::uint64_t bs1 = a;
  const std::uint64_t bs2 = b;
  return bs1 == bs2 || bs1 == bs2 * 2 || bs2 == bs1 * 2;
}

std::string eliminate_long_runs(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t run = 0;
  char prev = '\0';
  for (const char c : s) {
    run = (c == prev) ? run + 1 : 1;
    prev = c;
    if (run <= 3) out.push_back(c);
  }
  return out;
}

namespace {

// Digest characters are base64, i.e. 6 bits each, so a 7-gram packs
// exactly into 42 bits of a uint64 — compare packed integers instead of
// substrings. Digests are at most 64 chars, so arrays stay tiny and a
// sort + merge-scan beats hashing.
std::pair<std::array<std::uint64_t, kSpamsumLength>, std::size_t> pack_grams(
    std::string_view s) {
  std::array<std::uint64_t, kSpamsumLength> grams{};
  std::size_t count = 0;
  std::uint64_t packed = 0;
  constexpr std::uint64_t mask = (1ULL << 42) - 1;
  for (std::size_t i = 0; i < s.size(); ++i) {
    packed = ((packed << 6) | kB64Index[static_cast<unsigned char>(s[i])]) & mask;
    if (i + 1 >= kRollingWindow) grams[count++] = packed;
  }
  return {grams, count};
}

}  // namespace

bool has_common_substring(std::string_view a, std::string_view b) {
  if (a.size() < kRollingWindow || b.size() < kRollingWindow) return false;
  // Digest parts never exceed kSpamsumLength, but this is a public entry
  // point and pack_grams writes into a fixed 64-slot array.
  if (a.size() > kSpamsumLength || b.size() > kSpamsumLength) return false;
  auto [ga, na] = pack_grams(a);
  auto [gb, nb] = pack_grams(b);
  std::sort(ga.begin(), ga.begin() + static_cast<std::ptrdiff_t>(na));
  std::sort(gb.begin(), gb.begin() + static_cast<std::ptrdiff_t>(nb));
  return sorted_grams_intersect({ga.data(), na}, {gb.data(), nb});
}

std::vector<std::uint64_t> packed_sorted_grams(std::string_view s) {
  if (s.size() < kRollingWindow || s.size() > kSpamsumLength) return {};
  auto [grams, count] = pack_grams(s);
  std::sort(grams.begin(), grams.begin() + static_cast<std::ptrdiff_t>(count));
  return {grams.begin(), grams.begin() + static_cast<std::ptrdiff_t>(count)};
}

bool sorted_grams_intersect(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

int score_strings(std::string_view a, std::string_view b, std::uint32_t blocksize,
                  EditMetric metric) {
  if (a.size() > kSpamsumLength || b.size() > kSpamsumLength) return 0;
  if (a.empty() || b.empty()) return 0;
  if (!has_common_substring(a, b)) return 0;
  return score_strings_pregated(a, b, blocksize, metric);
}

int score_strings_pregated(std::string_view a, std::string_view b,
                           std::uint32_t blocksize, EditMetric metric) {
  const std::size_t dist = metric == EditMetric::kDamerauOsa
                               ? damerau_levenshtein_osa(a, b)
                               : weighted_levenshtein(a, b);

  // Scale the distance by its worst case, then onto [0, 100]. The worst
  // case depends on the metric: the weighted Levenshtein (substitution
  // cost 2) can reach len(a)+len(b) — spamsum's original denominator —
  // while the unit-cost Damerau-OSA maxes at max(len(a), len(b)); using
  // the combined length there would floor every gated score near 50.
  const std::size_t worst = metric == EditMetric::kDamerauOsa
                                ? std::max(a.size(), b.size())
                                : a.size() + b.size();
  std::size_t score = dist * kSpamsumLength / worst;
  score = 100 * score / kSpamsumLength;
  if (score >= 100) return 0;
  score = 100 - score;

  // Small-blocksize cap: digests of tiny inputs are short, and short
  // strings that share a 7-gram would otherwise score spuriously high.
  const std::uint32_t threshold =
      static_cast<std::uint32_t>((99 + kRollingWindow) / kRollingWindow) * kMinBlocksize;
  if (blocksize < threshold) {
    const std::size_t cap =
        static_cast<std::size_t>(blocksize) / kMinBlocksize * std::min(a.size(), b.size());
    score = std::min(score, cap);
  }
  return static_cast<int>(score);
}

int compare_digests(const FuzzyDigest& a, const FuzzyDigest& b, EditMetric metric) {
  const std::uint32_t bs1 = a.blocksize;
  const std::uint32_t bs2 = b.blocksize;
  if (!blocksizes_can_pair(bs1, bs2)) return 0;

  const std::string a1 = eliminate_long_runs(a.part1);
  const std::string a2 = eliminate_long_runs(a.part2);
  const std::string b1 = eliminate_long_runs(b.part1);
  const std::string b2 = eliminate_long_runs(b.part2);

  if (bs1 == bs2) {
    // Identical digests of non-trivial length are a perfect match; the
    // DP would otherwise cap just below 100 for short strings. Overlong
    // parts (> kSpamsumLength, hand-built digests only) are excluded so
    // they uniformly score 0, like every other scoring path treats them
    // — and so a shared 7-gram remains a necessary condition for any
    // score > 0 (the invariant the GramIndex candidate probe inverts).
    if (a1 == b1 && a1.size() > kRollingWindow && a1.size() <= kSpamsumLength) {
      return 100;
    }
    const int s1 = score_strings(a1, b1, bs1, metric);
    const int s2 = score_strings(a2, b2, part2_blocksize(bs1), metric);
    return std::max(s1, s2);
  }
  if (bs1 == std::uint64_t{bs2} * 2) {
    // a's part1 lives at the same blocksize as b's part2.
    return score_strings(a1, b2, bs1, metric);
  }
  // bs2 == bs1 * 2
  return score_strings(a2, b1, bs2, metric);
}

int compare_digest_strings(std::string_view a, std::string_view b, EditMetric metric) {
  const auto da = parse_digest(a);
  const auto db = parse_digest(b);
  if (!da || !db) return -1;
  return compare_digests(*da, *db, metric);
}

}  // namespace fhc::ssdeep
