#include "ssdeep/digest.hpp"

#include <charconv>

#include "util/base64.hpp"

namespace fhc::ssdeep {

std::string FuzzyDigest::to_string() const {
  std::string out = std::to_string(blocksize);
  out.push_back(':');
  out += part1;
  out.push_back(':');
  out += part2;
  return out;
}

bool valid_blocksize(std::uint32_t bs) noexcept {
  std::uint64_t candidate = kMinBlocksize;
  for (std::size_t i = 0; i < kNumBlockhashes; ++i, candidate <<= 1) {
    if (candidate == bs) return true;
  }
  return false;
}

namespace {

bool all_base64(std::string_view s) {
  for (const char c : s) {
    if (fhc::util::kBase64Alphabet.find(c) == std::string_view::npos) return false;
  }
  return true;
}

}  // namespace

std::optional<FuzzyDigest> parse_digest(std::string_view text) {
  const std::size_t colon1 = text.find(':');
  if (colon1 == std::string_view::npos) return std::nullopt;
  const std::size_t colon2 = text.find(':', colon1 + 1);
  if (colon2 == std::string_view::npos) return std::nullopt;

  const std::string_view bs_text = text.substr(0, colon1);
  std::uint32_t bs = 0;
  const auto [ptr, ec] = std::from_chars(bs_text.data(), bs_text.data() + bs_text.size(), bs);
  if (ec != std::errc{} || ptr != bs_text.data() + bs_text.size()) return std::nullopt;
  if (!valid_blocksize(bs)) return std::nullopt;

  FuzzyDigest digest;
  digest.blocksize = bs;
  digest.part1 = std::string(text.substr(colon1 + 1, colon2 - colon1 - 1));
  digest.part2 = std::string(text.substr(colon2 + 1));
  if (digest.part1.size() > kSpamsumLength) return std::nullopt;
  if (digest.part2.size() > kSpamsumLength / 2) return std::nullopt;
  if (!all_base64(digest.part1) || !all_base64(digest.part2)) return std::nullopt;
  return digest;
}

}  // namespace fhc::ssdeep
