// The context-trigger: spamsum's 7-byte rolling hash.
//
// CTPH ("context triggered piecewise hashing", Kornblum 2006) cuts the
// input into chunks wherever this rolling hash of the last ROLLING_WINDOW
// bytes hits `blocksize - 1 (mod blocksize)`. Because the trigger depends
// only on local content, an insertion or deletion early in the file shifts
// chunk boundaries only locally — the property that makes the final digest
// similarity-preserving.
//
// The hash combines three components exactly as in spamsum:
//   h1 — sum of the window bytes,
//   h2 — position-weighted sum (ROLLING_WINDOW * newest ... 1 * oldest),
//   h3 — a shift-xor accumulator over all bytes seen (mod 2^32).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace fhc::ssdeep {

inline constexpr std::size_t kRollingWindow = 7;

class RollingHash {
 public:
  /// Absorbs one byte and returns the updated hash value.
  std::uint32_t update(std::uint8_t c) noexcept {
    h2_ -= h1_;
    h2_ += static_cast<std::uint32_t>(kRollingWindow) * c;
    h1_ += c;
    h1_ -= window_[pos_];
    window_[pos_] = c;
    pos_ = (pos_ + 1) % kRollingWindow;
    h3_ <<= 5;
    h3_ ^= c;
    return sum();
  }

  /// Current hash of the trailing window (0 before any input).
  std::uint32_t sum() const noexcept { return h1_ + h2_ + h3_; }

  void reset() noexcept { *this = RollingHash{}; }

 private:
  std::array<std::uint8_t, kRollingWindow> window_{};
  std::uint32_t h1_ = 0;
  std::uint32_t h2_ = 0;
  std::uint32_t h3_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace fhc::ssdeep
