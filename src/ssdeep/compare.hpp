// Digest comparison: maps two fuzzy digests to a similarity score in
// [0, 100] (0 = no similarity, 100 = near-identical), following the
// ssdeep/spamsum comparison pipeline:
//
//   1. blocksize compatibility — digests are comparable only when their
//      blocksizes are equal or differ by exactly one power of two (each
//      digest carries parts at bs and 2*bs precisely to widen this window);
//   2. long-run normalization — runs of > 3 identical characters are
//      collapsed (they carry little information and inflate matches);
//   3. common 7-gram gate — if the two parts share no substring of
//      kRollingWindow characters the score is 0; this both suppresses
//      coincidental matches and acts as the fast path that rejects most
//      cross-class pairs before the O(n^2) DP;
//   4. edit distance, scaled to [0, 100] and capped for small blocksizes
//      (short digests of tiny inputs match too easily).
//
// The edit-distance metric is selectable: the paper specifies
// Damerau–Levenshtein (our default); ssdeep's historical metric is the
// weighted Levenshtein. Both are available for ablation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ssdeep/digest.hpp"
#include "ssdeep/rolling_hash.hpp"

namespace fhc::ssdeep {

enum class EditMetric {
  kDamerauOsa,           // paper's Equation (1); default
  kWeightedLevenshtein,  // classic ssdeep (ins/del 1, subst 2)
};

/// Similarity of two digests in [0, 100]. Returns 0 for incompatible
/// blocksizes. `metric` selects the edit distance.
int compare_digests(const FuzzyDigest& a, const FuzzyDigest& b,
                    EditMetric metric = EditMetric::kDamerauOsa);

/// Convenience: parse-and-compare two "bs:p1:p2" strings; returns -1 when
/// either digest is malformed (distinguishable from a legitimate 0).
int compare_digest_strings(std::string_view a, std::string_view b,
                           EditMetric metric = EditMetric::kDamerauOsa);

// --- building blocks, exposed for unit tests, benches and the prepared
// --- path (prepared.hpp) ------------------------------------------------

/// True when digests at these blocksizes are comparable: equal or exactly
/// one power of two apart. The doubling is done in 64 bits — `bs * 2`
/// overflows uint32 at the top blocksize (3 << 30) and would otherwise
/// silently mis-pair digests.
bool blocksizes_can_pair(std::uint32_t a, std::uint32_t b) noexcept;

/// Blocksize of a digest's part2 (2 * bs), saturated to uint32 so the top
/// blocksize cannot wrap. Only the small-blocksize score cap reads this
/// value, so saturation is semantically neutral.
constexpr std::uint32_t part2_blocksize(std::uint32_t bs) noexcept {
  return bs > 0xffffffffu / 2 ? 0xffffffffu : bs * 2;
}

/// Collapses runs of more than 3 identical characters to exactly 3.
std::string eliminate_long_runs(std::string_view s);

/// True if the strings share any substring of kRollingWindow (7) chars.
bool has_common_substring(std::string_view a, std::string_view b);

/// Sorted array of the 42-bit-packed 7-grams of `s` (empty when `s` is
/// shorter than the window) — the precomputable half of
/// has_common_substring, stored by PreparedDigest.
std::vector<std::uint64_t> packed_sorted_grams(std::string_view s);

/// Merge-scan intersection test over two sorted gram arrays; equivalent to
/// has_common_substring on the strings they were packed from.
bool sorted_grams_intersect(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept;

/// Core scoring of two digest parts that were produced at `blocksize`.
/// Inputs are expected to be already run-normalized.
int score_strings(std::string_view a, std::string_view b, std::uint32_t blocksize,
                  EditMetric metric);

/// score_strings with the common-substring gate already established by the
/// caller (e.g. via sorted_grams_intersect on precomputed grams). Both
/// inputs must be non-empty, at most kSpamsumLength chars, run-normalized.
int score_strings_pregated(std::string_view a, std::string_view b,
                           std::uint32_t blocksize, EditMetric metric);

}  // namespace fhc::ssdeep
