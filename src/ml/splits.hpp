// Train/test splitting, including the paper's two-phase protocol.
//
// Phase 1 — class-level 80/20: whole classes go to an "unknown" pool that
// appears only in the test set (their true label becomes kUnknownLabel).
// Phase 2 — stratified 60/40 on samples of the remaining known classes.
//
// The class-level phase can either be random (generic mode) or pin the
// exact unknown-class list from the paper's Table 3 (replication mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fhc::ml {

/// Outcome of a stratified split: index lists into the original arrays.
struct SampleSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified split: each label contributes ~test_fraction of its samples
/// to the test side (round-half-up per class, clamped so every class with
/// >= 2 samples keeps at least one sample on each side). Deterministic in
/// `rng`.
SampleSplit stratified_split(const std::vector<int>& labels, double test_fraction,
                             fhc::util::Rng& rng);

/// Class-level split: returns the indices of classes assigned to the
/// held-out ("unknown") side, choosing round(unknown_fraction * n) classes
/// uniformly at random.
std::vector<std::size_t> class_level_split(std::size_t class_count,
                                           double unknown_fraction,
                                           fhc::util::Rng& rng);

/// Full two-phase split over per-sample class ids (0..K-1).
struct TwoPhaseSplit {
  std::vector<std::size_t> train;          // known-class training samples
  std::vector<std::size_t> test;           // known-class test + all unknown
  std::vector<bool> class_is_unknown;      // size K
  std::size_t unknown_test_count = 0;      // samples with unknown-pool class
};

/// `unknown_class_ids` non-empty pins the unknown pool (replication mode);
/// otherwise phase 1 draws round(unknown_fraction * K) classes at random.
TwoPhaseSplit two_phase_split(const std::vector<int>& class_ids, std::size_t class_count,
                              double unknown_fraction, double test_fraction,
                              fhc::util::Rng& rng,
                              const std::vector<int>& unknown_class_ids = {});

}  // namespace fhc::ml
