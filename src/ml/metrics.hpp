// Evaluation metrics: per-class precision/recall/f1/support and the
// micro/macro/weighted averages the paper reports, plus a renderer that
// reproduces the scikit-learn classification report layout of Table 4.
//
// Definitions (paper Section 3, "Evaluation"):
//   precision_c = TP_c / (TP_c + FP_c)
//   recall_c    = TP_c / (TP_c + FN_c)
//   f1_c        = 2 P R / (P + R)
//   micro    — computed from global TP/FP/FN (equals accuracy when every
//              sample gets exactly one prediction, as here);
//   macro    — unweighted mean over classes;
//   weighted — support-weighted mean over classes.
// Classes with zero denominator score 0 (sklearn's zero_division=0).
#pragma once

#include <string>
#include <vector>

namespace fhc::ml {

struct ClassMetrics {
  int label = 0;  // may be kUnknownLabel
  std::string name;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;  // true instances in y_true
};

struct AverageMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct ClassificationReport {
  std::vector<ClassMetrics> per_class;  // sorted: "-1" first, then by name
  AverageMetrics micro;
  AverageMetrics macro;
  AverageMetrics weighted;
  double accuracy = 0.0;
  std::size_t total_support = 0;

  /// sklearn-style text rendering (Table 4's layout).
  std::string to_string() const;
};

/// Builds the report from parallel label vectors. Labels may include
/// kUnknownLabel (-1). `label_names` maps label id -> display name for
/// ids >= 0; -1 renders as "-1". Classes are included if they appear in
/// y_true or y_pred (sklearn behaviour).
ClassificationReport classification_report(const std::vector<int>& y_true,
                                           const std::vector<int>& y_pred,
                                           const std::vector<std::string>& label_names);

/// Convenience accessors used by grid search scoring.
double macro_f1(const std::vector<int>& y_true, const std::vector<int>& y_pred);
double micro_f1(const std::vector<int>& y_true, const std::vector<int>& y_pred);
double weighted_f1(const std::vector<int>& y_true, const std::vector<int>& y_pred);

}  // namespace fhc::ml
