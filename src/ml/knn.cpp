#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fhc::ml {

void KnnClassifier::fit(const Matrix& x, const std::vector<int>& y, int n_classes,
                        const KnnParams& params) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("KnnClassifier::fit: bad dataset shape");
  }
  if (params.k <= 0) throw std::invalid_argument("KnnClassifier::fit: k <= 0");
  x_ = x;
  y_ = y;
  n_classes_ = n_classes;
  params_ = params;
}

std::vector<double> KnnClassifier::predict_proba(std::span<const float> row) const {
  if (y_.empty()) throw std::logic_error("KnnClassifier: not fitted");

  // Collect the k smallest squared distances with a partial sort.
  std::vector<std::pair<double, std::size_t>> dist(x_.rows());
  for (std::size_t i = 0; i < x_.rows(); ++i) {
    const auto train_row = x_.row(i);
    double d2 = 0.0;
    for (std::size_t c = 0; c < train_row.size(); ++c) {
      const double diff = static_cast<double>(train_row[c]) - row[c];
      d2 += diff * diff;
    }
    dist[i] = {d2, i};
  }
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(params_.k), dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());

  std::vector<double> votes(static_cast<std::size_t>(n_classes_), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double weight =
        params_.distance_weighted ? 1.0 / (std::sqrt(dist[i].first) + 1e-6) : 1.0;
    votes[static_cast<std::size_t>(y_[dist[i].second])] += weight;
    total += weight;
  }
  if (total > 0.0) {
    for (double& v : votes) v /= total;
  }
  return votes;
}

int KnnClassifier::predict(std::span<const float> row) const {
  const std::vector<double> proba = predict_proba(row);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace fhc::ml
