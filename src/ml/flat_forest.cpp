#include "ml/flat_forest.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "ml/decision_tree.hpp"

namespace fhc::ml {

namespace {

constexpr std::size_t kMaxCount = std::size_t{1} << 24;  // matches the text loaders

/// Byte offset of every SoA section inside the payload. Section order is
/// part of the binary format; every section start is 4-byte aligned by
/// construction (all leading sections hold 4-byte elements) and the
/// importances section is padded up to 8.
struct Layout {
  std::size_t node_base;
  std::size_t leaf_base;
  std::size_t depth;
  std::size_t feature;
  std::size_t threshold;
  std::size_t child;
  std::size_t leaf_offset;
  std::size_t leaf_pool;
  std::size_t importances;
  std::size_t total;
};

Layout layout_for(const FlatForest::Shape& s) {
  Layout l{};
  std::size_t o = 0;
  l.node_base = o;
  o += 4 * (s.tree_count + 1);
  l.leaf_base = o;
  o += 4 * (s.tree_count + 1);
  l.depth = o;
  o += 4 * s.tree_count;
  l.feature = o;
  o += 4 * s.total_nodes;
  l.threshold = o;
  o += 4 * s.total_nodes;
  l.child = o;
  o += 8 * s.total_nodes;
  l.leaf_offset = o;
  o += 4 * s.total_nodes;
  l.leaf_pool = o;
  o += 4 * s.leaf_pool;
  o = FlatForest::align8(o);
  l.importances = o;
  o += 8 * s.tree_count * s.n_features;
  l.total = o;
  return l;
}

template <typename T>
std::span<T> section(std::byte* base, std::size_t offset, std::size_t count) {
  return {reinterpret_cast<T*>(base + offset), count};
}

template <typename T>
std::span<const T> section(const std::byte* base, std::size_t offset,
                           std::size_t count) {
  return {reinterpret_cast<const T*>(base + offset), count};
}

/// Leaf-row accumulate: the 73-double `+=` per (tree, row) that bounds
/// the block walk once the descent overlaps its misses. `__restrict`
/// licenses the compiler to keep partial sums in registers and the
/// 4-wide unroll hands it a straight-line cvtps2pd/addpd body; each
/// acc[c] still receives exactly one `double += float` per call, in
/// ascending class order, so tree-major callers keep the nested walk's
/// operation sequence bit for bit.
inline void add_leaf_row(double* __restrict acc, const float* __restrict leaf,
                         std::size_t k) {
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    acc[c + 0] += static_cast<double>(leaf[c + 0]);
    acc[c + 1] += static_cast<double>(leaf[c + 1]);
    acc[c + 2] += static_cast<double>(leaf[c + 2]);
    acc[c + 3] += static_cast<double>(leaf[c + 3]);
  }
  for (; c < k; ++c) acc[c] += static_cast<double>(leaf[c]);
}

}  // namespace

std::size_t FlatForest::payload_size(const Shape& shape) {
  return layout_for(shape).total;
}

FlatForest FlatForest::build(std::span<const DecisionTree> trees, int n_classes,
                             std::size_t n_features) {
  if (trees.empty() || n_classes <= 0) {
    throw std::logic_error("FlatForest::build: empty forest");
  }
  Shape shape;
  shape.n_classes = static_cast<std::size_t>(n_classes);
  shape.n_features = n_features;
  shape.tree_count = trees.size();
  for (const DecisionTree& tree : trees) {
    shape.total_nodes += tree.nodes().size();
    shape.leaf_pool += tree.proba_pool().size();
  }

  const Layout layout = layout_for(shape);
  // Zero-initialized so alignment padding (and every reserved byte) is
  // deterministic: the buffer is written verbatim by save_binary and the
  // binary round-trip test compares it byte for byte.
  auto storage = std::make_shared<std::vector<std::byte>>(layout.total,
                                                          std::byte{0});
  std::byte* base = storage->data();
  auto node_base = section<std::uint32_t>(base, layout.node_base, shape.tree_count + 1);
  auto leaf_base = section<std::uint32_t>(base, layout.leaf_base, shape.tree_count + 1);
  auto depth = section<std::uint32_t>(base, layout.depth, shape.tree_count);
  auto feature = section<std::int32_t>(base, layout.feature, shape.total_nodes);
  auto threshold = section<float>(base, layout.threshold, shape.total_nodes);
  auto child = section<std::int32_t>(base, layout.child, 2 * shape.total_nodes);
  auto leaf_offset = section<std::int32_t>(base, layout.leaf_offset, shape.total_nodes);
  auto leaf_pool = section<float>(base, layout.leaf_pool, shape.leaf_pool);
  auto importances = section<double>(base, layout.importances,
                                     shape.tree_count * shape.n_features);

  std::uint32_t node_cursor = 0;
  std::uint32_t leaf_cursor = 0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const DecisionTree& tree = trees[t];
    node_base[t] = node_cursor;
    leaf_base[t] = leaf_cursor;
    depth[t] = static_cast<std::uint32_t>(tree.depth());
    const auto nodes = tree.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const DecisionTree::Node& node = nodes[i];
      const std::size_t g = node_cursor + i;
      if (node.proba_offset >= 0) {
        // Canonical leaf encoding regardless of what the source node
        // carried in its unused fields — keeps the payload a pure function
        // of the predictor.
        feature[g] = -1;
        threshold[g] = 0.0f;
        child[2 * g] = -1;
        child[2 * g + 1] = -1;
        leaf_offset[g] = static_cast<std::int32_t>(
            leaf_cursor + static_cast<std::uint32_t>(node.proba_offset));
      } else {
        feature[g] = node.feature;
        threshold[g] = node.threshold;
        child[2 * g] = static_cast<std::int32_t>(node_cursor) + node.left;
        child[2 * g + 1] = static_cast<std::int32_t>(node_cursor) + node.right;
        leaf_offset[g] = -1;
      }
    }
    const auto pool = tree.proba_pool();
    std::copy(pool.begin(), pool.end(), leaf_pool.begin() + leaf_cursor);
    // Trees always carry exactly n_features importances (fit constructs
    // them that way and the text loader enforces it).
    const auto& imp = tree.feature_importances();
    std::copy(imp.begin(), imp.begin() + static_cast<std::ptrdiff_t>(shape.n_features),
              importances.begin() +
                  static_cast<std::ptrdiff_t>(t * shape.n_features));
    node_cursor += static_cast<std::uint32_t>(nodes.size());
    leaf_cursor += static_cast<std::uint32_t>(pool.size());
  }
  node_base[shape.tree_count] = node_cursor;
  leaf_base[shape.tree_count] = leaf_cursor;

  return attach({storage->data(), storage->size()}, shape, storage);
}

FlatForest FlatForest::attach(std::span<const std::byte> payload, const Shape& shape,
                              std::shared_ptr<const void> keepalive) {
  if (shape.n_classes == 0 || shape.n_classes > kMaxCount ||
      shape.n_features > kMaxCount || shape.tree_count == 0 ||
      shape.tree_count > kMaxCount || shape.total_nodes > (kMaxCount << 2) ||
      shape.leaf_pool > (kMaxCount << 4)) {
    throw std::runtime_error("FlatForest::attach: unreasonable shape");
  }
  const Layout layout = layout_for(shape);
  if (payload.size() != layout.total) {
    throw std::runtime_error("FlatForest::attach: payload size mismatch");
  }
  if (reinterpret_cast<std::uintptr_t>(payload.data()) % 8 != 0) {
    throw std::runtime_error("FlatForest::attach: payload misaligned");
  }

  FlatForest plan;
  plan.shape_ = shape;
  plan.payload_ = payload;
  plan.storage_ = std::move(keepalive);
  const std::byte* base = payload.data();
  plan.node_base_ = section<const std::uint32_t>(base, layout.node_base,
                                                 shape.tree_count + 1);
  plan.leaf_base_ = section<const std::uint32_t>(base, layout.leaf_base,
                                                 shape.tree_count + 1);
  plan.depth_ = section<const std::uint32_t>(base, layout.depth, shape.tree_count);
  plan.feature_ = section<const std::int32_t>(base, layout.feature, shape.total_nodes);
  plan.threshold_ = section<const float>(base, layout.threshold, shape.total_nodes);
  plan.child_ = section<const std::int32_t>(base, layout.child,
                                            2 * shape.total_nodes);
  plan.leaf_offset_ = section<const std::int32_t>(base, layout.leaf_offset,
                                                  shape.total_nodes);
  plan.leaf_pool_ = section<const float>(base, layout.leaf_pool, shape.leaf_pool);
  plan.importances_ = section<const double>(base, layout.importances,
                                            shape.tree_count * shape.n_features);

  // Full structural validation before any walk can happen: prefix sums
  // must be consistent, every leaf offset must fit a distribution inside
  // its tree's pool slice, and every interior node must reference a valid
  // feature and forward in-tree children (forward links make every walk
  // provably terminate).
  if (plan.node_base_[0] != 0 ||
      plan.node_base_[shape.tree_count] != shape.total_nodes ||
      plan.leaf_base_[0] != 0 || plan.leaf_base_[shape.tree_count] != shape.leaf_pool) {
    throw std::runtime_error("FlatForest::attach: bad section prefix sums");
  }
  for (std::size_t t = 0; t < shape.tree_count; ++t) {
    const std::uint32_t nb = plan.node_base_[t];
    const std::uint32_t ne = plan.node_base_[t + 1];
    const std::uint32_t lb = plan.leaf_base_[t];
    const std::uint32_t le = plan.leaf_base_[t + 1];
    if (ne <= nb || le < lb) {
      throw std::runtime_error("FlatForest::attach: empty or reversed tree");
    }
    for (std::uint32_t i = nb; i < ne; ++i) {
      const std::int32_t off = plan.leaf_offset_[i];
      if (off >= 0) {
        if (static_cast<std::uint32_t>(off) < lb ||
            static_cast<std::uint32_t>(off) + shape.n_classes > le) {
          throw std::runtime_error("FlatForest::attach: leaf offset out of range");
        }
      } else {
        const std::int32_t f = plan.feature_[i];
        if (f < 0 || static_cast<std::size_t>(f) >= shape.n_features) {
          throw std::runtime_error("FlatForest::attach: feature out of range");
        }
        const std::int32_t left = plan.child_[2 * i];
        const std::int32_t right = plan.child_[2 * i + 1];
        if (left <= static_cast<std::int32_t>(i) ||
            right <= static_cast<std::int32_t>(i) ||
            static_cast<std::uint32_t>(left) >= ne ||
            static_cast<std::uint32_t>(right) >= ne) {
          throw std::runtime_error("FlatForest::attach: child link out of range");
        }
      }
    }
  }
  return plan;
}

void FlatForest::accumulate_block(const Matrix& rows, std::size_t begin,
                                  std::size_t end, std::span<double> acc) const {
  if (!compiled()) throw std::logic_error("FlatForest: not compiled");
  if (begin > end || end > rows.rows() || rows.cols() < shape_.n_features ||
      acc.size() != (end - begin) * shape_.n_classes) {
    throw std::invalid_argument("FlatForest::accumulate_block: bad shape");
  }
  std::fill(acc.begin(), acc.end(), 0.0);
  const std::size_t k = shape_.n_classes;
  const std::int32_t* const leaf_offset = leaf_offset_.data();
  const std::int32_t* const feature = feature_.data();
  const float* const threshold = threshold_.data();
  const std::int32_t* const child = child_.data();
  const float* const pool = leaf_pool_.data();
  // A single row's walk is a serial chain of dependent (usually cold)
  // loads — the memory latency, not bandwidth, bounds it. Walking a group
  // of rows through the tree in lockstep gives the out-of-order core
  // kGroup independent miss chains to overlap, then the leaf
  // distributions are accumulated in a separate streaming phase. The
  // phase split changes nothing about the result: per (row, class) the
  // adds still happen once per tree, trees in ascending order.
  constexpr std::size_t kGroup = 8;
  std::uint32_t node[kGroup];
  const float* row_ptr[kGroup];
  for (std::size_t t = 0; t < shape_.tree_count; ++t) {
    const std::uint32_t root = node_base_[t];
    for (std::size_t r0 = begin; r0 < end; r0 += kGroup) {
      const std::size_t lanes = std::min(kGroup, end - r0);
      for (std::size_t g = 0; g < lanes; ++g) {
        node[g] = root;
        row_ptr[g] = rows.row(r0 + g).data();
      }
      // Phase 1: advance every lane one level per sweep until all lanes
      // sit on a leaf. Finished lanes cost one predictable re-check.
      for (;;) {
        std::size_t active = 0;
        for (std::size_t g = 0; g < lanes; ++g) {
          const std::uint32_t n = node[g];
          if (leaf_offset[n] < 0) {
            node[g] = static_cast<std::uint32_t>(
                child[2 * n + (row_ptr[g][static_cast<std::uint32_t>(feature[n])] <=
                                       threshold[n]
                                   ? 0
                                   : 1)]);
            ++active;
          }
        }
        if (active == 0) break;
      }
      // The walk left every lane's leaf address known; fetch them all
      // before touching any — the distributions live anywhere in a pool
      // far bigger than L2, and hardware prefetch cannot predict them.
#if defined(__GNUC__) || defined(__clang__)
      for (std::size_t g = 0; g < lanes; ++g) {
        const float* const leaf =
            pool + static_cast<std::uint32_t>(leaf_offset[node[g]]);
        for (std::size_t c = 0; c < k; c += 16) {
          __builtin_prefetch(leaf + c, 0, 1);
        }
      }
#endif
      // Phase 2: streaming accumulation, rows in order. The leaf rows are
      // contiguous k-float runs of the pool; the prefetch above started
      // their loads, add_leaf_row turns each into a vectorizable
      // convert-and-add over the row accumulator.
      for (std::size_t g = 0; g < lanes; ++g) {
        const float* const leaf =
            pool + static_cast<std::uint32_t>(leaf_offset[node[g]]);
        add_leaf_row(acc.data() + (r0 + g - begin) * k, leaf, k);
      }
    }
  }
}

void FlatForest::predict_proba(std::span<const float> row,
                               std::span<double> out) const {
  if (!compiled()) throw std::logic_error("FlatForest: not compiled");
  if (out.size() != shape_.n_classes) {
    throw std::invalid_argument("FlatForest::predict_proba: bad output size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t k = shape_.n_classes;
  const std::int32_t* const leaf_offset = leaf_offset_.data();
  const std::int32_t* const feature = feature_.data();
  const float* const threshold = threshold_.data();
  const std::int32_t* const child = child_.data();
  const float* const pool = leaf_pool_.data();
  for (std::size_t t = 0; t < shape_.tree_count; ++t) {
    std::uint32_t node = node_base_[t];
    std::int32_t off;
    while ((off = leaf_offset[node]) < 0) {
      node = static_cast<std::uint32_t>(
          child[2 * node +
                (row[static_cast<std::uint32_t>(feature[node])] <= threshold[node]
                     ? 0
                     : 1)]);
    }
    add_leaf_row(out.data(), pool + off, k);
  }
  const double inv = 1.0 / static_cast<double>(shape_.tree_count);
  for (double& p : out) p *= inv;
}

void FlatForest::accumulate_leaf(std::span<double> acc, std::span<const float> leaf) {
  if (acc.size() != leaf.size()) {
    throw std::invalid_argument("FlatForest::accumulate_leaf: size mismatch");
  }
  add_leaf_row(acc.data(), leaf.data(), acc.size());
}

void FlatForest::predict_proba_block(const Matrix& rows, std::size_t begin,
                                     std::size_t end, Matrix& out) const {
  if (out.rows() != rows.rows() || out.cols() != shape_.n_classes) {
    throw std::invalid_argument("FlatForest::predict_proba_block: bad output shape");
  }
  // Chunk the range so the double accumulators stay L1-resident while a
  // tree's nodes are streamed across the whole chunk. The scratch is
  // thread-local so repeated calls (and pool workers handling different
  // blocks) allocate once, then never again.
  constexpr std::size_t kChunkRows = 16;
  thread_local std::vector<double> scratch;
  const std::size_t k = shape_.n_classes;
  if (scratch.size() < kChunkRows * k) scratch.resize(kChunkRows * k);
  const double inv = 1.0 / static_cast<double>(shape_.tree_count);
  for (std::size_t chunk = begin; chunk < end; chunk += kChunkRows) {
    const std::size_t chunk_end = std::min(chunk + kChunkRows, end);
    const std::size_t n = chunk_end - chunk;
    accumulate_block(rows, chunk, chunk_end, {scratch.data(), n * k});
    for (std::size_t r = chunk; r < chunk_end; ++r) {
      const double* const acc = scratch.data() + (r - chunk) * k;
      const auto row = out.row(r);
      for (std::size_t c = 0; c < k; ++c) {
        row[c] = static_cast<float>(acc[c] * inv);
      }
    }
  }
}

void FlatForest::predict_proba_block(const Matrix& rows, Matrix& out) const {
  predict_proba_block(rows, 0, rows.rows(), out);
}

}  // namespace fhc::ml
