#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace fhc::ml {

namespace {

double impurity_from_counts(std::span<const double> counts, double total,
                            Criterion criterion) {
  if (total <= 0.0) return 0.0;
  if (criterion == Criterion::kGini) {
    double sum_sq = 0.0;
    for (const double c : counts) sum_sq += (c / total) * (c / total);
    return 1.0 - sum_sq;
  }
  double entropy = 0.0;
  for (const double c : counts) {
    if (c > 0.0) {
      const double p = c / total;
      entropy -= p * std::log2(p);
    }
  }
  return entropy;
}

}  // namespace

struct DecisionTree::BuildContext {
  const Matrix& x;
  const std::vector<int>& y;
  std::span<const double> weight;
  TreeParams params;
  fhc::util::Rng& rng;
  int n_classes;
  int max_features;  // resolved (>=1)
  // scratch, reused across nodes:
  std::vector<std::pair<float, std::size_t>> sorted;  // (value, index)
  std::vector<double> counts_left;
  std::vector<double> counts_right;
  std::vector<double> counts_total;
  std::vector<std::size_t> feature_order;
};

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y, int n_classes,
                       std::span<const double> sample_weight, const TreeParams& params,
                       fhc::util::Rng& rng) {
  if (x.rows() != y.size()) throw std::invalid_argument("DecisionTree::fit: size mismatch");
  if (x.rows() == 0) throw std::invalid_argument("DecisionTree::fit: empty dataset");
  if (n_classes <= 0) throw std::invalid_argument("DecisionTree::fit: n_classes <= 0");
  for (const int label : y) {
    if (label < 0 || label >= n_classes) {
      throw std::invalid_argument("DecisionTree::fit: label out of range");
    }
  }
  std::vector<double> ones;
  if (sample_weight.empty()) {
    ones.assign(x.rows(), 1.0);
    sample_weight = ones;
  } else if (sample_weight.size() != x.rows()) {
    throw std::invalid_argument("DecisionTree::fit: weight size mismatch");
  }

  nodes_.clear();
  proba_pool_.clear();
  importances_.assign(x.cols(), 0.0);
  n_classes_ = n_classes;
  depth_ = 0;

  int max_features = params.max_features;
  if (max_features == -1) {
    max_features = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(x.cols()))));
  } else if (max_features <= 0 || max_features > static_cast<int>(x.cols())) {
    max_features = static_cast<int>(x.cols());
  }

  BuildContext ctx{x, y, sample_weight, params, rng, n_classes, max_features,
                   {}, {}, {}, {}, {}};
  ctx.counts_left.resize(static_cast<std::size_t>(n_classes));
  ctx.counts_right.resize(static_cast<std::size_t>(n_classes));
  ctx.counts_total.resize(static_cast<std::size_t>(n_classes));
  ctx.feature_order.resize(x.cols());
  std::iota(ctx.feature_order.begin(), ctx.feature_order.end(), std::size_t{0});

  std::vector<std::size_t> all(x.rows());
  std::iota(all.begin(), all.end(), std::size_t{0});
  build_node(ctx, all, 0);

  // Normalize importances to sum 1 (scikit-learn convention per tree).
  const double total = std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& imp : importances_) imp /= total;
  }
}

std::int32_t DecisionTree::build_node(BuildContext& ctx,
                                      std::vector<std::size_t>& indices,
                                      int current_depth) {
  depth_ = std::max(depth_, current_depth);

  // Weighted class histogram of this node.
  std::fill(ctx.counts_total.begin(), ctx.counts_total.end(), 0.0);
  double total_weight = 0.0;
  for (const std::size_t i : indices) {
    ctx.counts_total[static_cast<std::size_t>(ctx.y[i])] += ctx.weight[i];
    total_weight += ctx.weight[i];
  }
  const double node_impurity =
      impurity_from_counts(ctx.counts_total, total_weight, ctx.params.criterion);

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.proba_offset = static_cast<std::int32_t>(proba_pool_.size());
    for (const double count : ctx.counts_total) {
      proba_pool_.push_back(
          total_weight > 0.0 ? static_cast<float>(count / total_weight) : 0.0f);
    }
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool depth_reached =
      ctx.params.max_depth > 0 && current_depth >= ctx.params.max_depth;
  if (depth_reached || node_impurity <= 1e-12 ||
      static_cast<int>(indices.size()) < ctx.params.min_samples_split) {
    return make_leaf();
  }

  // --- find the best split over a random feature subset -----------------
  // Sample max_features candidates without replacement (partial
  // Fisher–Yates over the persistent feature_order scratch).
  const std::size_t d = ctx.x.cols();
  for (int f = 0; f < ctx.max_features; ++f) {
    const std::size_t j =
        static_cast<std::size_t>(f) +
        static_cast<std::size_t>(ctx.rng.next_below(d - static_cast<std::size_t>(f)));
    std::swap(ctx.feature_order[static_cast<std::size_t>(f)], ctx.feature_order[j]);
  }

  // Start below zero so zero-gain splits are still accepted (scikit-learn
  // semantics: min_impurity_decrease defaults to 0 and ties split anyway) —
  // this is what lets a tree work through XOR-like interactions where no
  // single split reduces impurity.
  double best_gain = -1.0;
  int best_feature = -1;
  float best_threshold = 0.0f;

  for (int f = 0; f < ctx.max_features; ++f) {
    const std::size_t feature = ctx.feature_order[static_cast<std::size_t>(f)];
    auto& sorted = ctx.sorted;
    sorted.clear();
    sorted.reserve(indices.size());
    for (const std::size_t i : indices) {
      sorted.emplace_back(ctx.x.at(i, feature), i);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (sorted.front().first == sorted.back().first) continue;  // constant feature

    std::fill(ctx.counts_left.begin(), ctx.counts_left.end(), 0.0);
    std::copy(ctx.counts_total.begin(), ctx.counts_total.end(), ctx.counts_right.begin());
    double weight_left = 0.0;
    double weight_right = total_weight;
    std::size_t n_left = 0;

    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const auto [value, i] = sorted[k];
      const double w = ctx.weight[i];
      const auto label = static_cast<std::size_t>(ctx.y[i]);
      ctx.counts_left[label] += w;
      ctx.counts_right[label] -= w;
      weight_left += w;
      weight_right -= w;
      ++n_left;
      if (value == sorted[k + 1].first) continue;  // can't split between equals
      if (static_cast<int>(n_left) < ctx.params.min_samples_leaf) continue;
      if (static_cast<int>(sorted.size() - n_left) < ctx.params.min_samples_leaf) break;

      const double impurity_left =
          impurity_from_counts(ctx.counts_left, weight_left, ctx.params.criterion);
      const double impurity_right =
          impurity_from_counts(ctx.counts_right, weight_right, ctx.params.criterion);
      const double gain = node_impurity -
                          (weight_left / total_weight) * impurity_left -
                          (weight_right / total_weight) * impurity_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        // Midpoint threshold: robust to unseen values between the two.
        best_threshold = 0.5f * (value + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Record importance: weighted impurity decrease at this node (clamped —
  // zero-gain tie splits contribute nothing).
  importances_[static_cast<std::size_t>(best_feature)] +=
      total_weight * std::max(0.0, best_gain);

  std::vector<std::size_t> left_indices;
  std::vector<std::size_t> right_indices;
  left_indices.reserve(indices.size());
  right_indices.reserve(indices.size());
  for (const std::size_t i : indices) {
    (ctx.x.at(i, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_indices
         : right_indices)
        .push_back(i);
  }
  indices.clear();
  indices.shrink_to_fit();  // release before recursing

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{best_feature, best_threshold, -1, -1, -1});
  const std::int32_t left_id = build_node(ctx, left_indices, current_depth + 1);
  const std::int32_t right_id = build_node(ctx, right_indices, current_depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left_id;
  nodes_[static_cast<std::size_t>(node_id)].right = right_id;
  return node_id;
}

std::vector<double> DecisionTree::predict_proba(std::span<const float> row) const {
  std::vector<double> proba(static_cast<std::size_t>(n_classes_), 0.0);
  accumulate_proba(row, proba);
  return proba;
}

void DecisionTree::accumulate_proba(std::span<const float> row,
                                    std::span<double> out) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t node = 0;
  while (nodes_[node].proba_offset < 0) {
    const Node& n = nodes_[node];
    node = static_cast<std::size_t>(
        row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right);
  }
  const auto offset = static_cast<std::size_t>(nodes_[node].proba_offset);
  for (std::size_t c = 0; c < static_cast<std::size_t>(n_classes_); ++c) {
    out[c] += proba_pool_[offset + c];
  }
}

int DecisionTree::predict(std::span<const float> row) const {
  const std::vector<double> proba = predict_proba(row);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

void DecisionTree::save(std::ostream& out) const {
  out << "tree " << n_classes_ << ' ' << depth_ << ' ' << nodes_.size() << ' '
      << proba_pool_.size() << ' ' << importances_.size() << '\n';
  out.precision(9);
  for (const Node& node : nodes_) {
    out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
        << node.right << ' ' << node.proba_offset << '\n';
  }
  for (std::size_t i = 0; i < proba_pool_.size(); ++i) {
    out << proba_pool_[i] << (i + 1 == proba_pool_.size() ? '\n' : ' ');
  }
  out.precision(17);
  for (std::size_t i = 0; i < importances_.size(); ++i) {
    out << importances_[i] << (i + 1 == importances_.size() ? '\n' : ' ');
  }
}

void DecisionTree::load(std::istream& in) {
  std::string tag;
  // Counts are read signed: operator>> into an unsigned type wraps a
  // crafted negative value into a huge allocation instead of failing.
  long long node_count = 0;
  long long pool_size = 0;
  long long importance_count = 0;
  if (!(in >> tag >> n_classes_ >> depth_ >> node_count >> pool_size >>
        importance_count) ||
      tag != "tree") {
    throw std::runtime_error("DecisionTree::load: bad header");
  }
  // Matches RandomForest::load's cap; far above any real tree (node count
  // is bounded by 2x the training rows) while keeping the allocation a
  // crafted header can trigger in the hundreds of MB, not GB.
  constexpr long long kMaxCount = 1LL << 24;
  if (depth_ < 0 || node_count < 0 || node_count > kMaxCount || pool_size < 0 ||
      pool_size > kMaxCount || importance_count < 0 ||
      importance_count > kMaxCount) {
    throw std::runtime_error("DecisionTree::load: negative or oversized header");
  }
  if (n_classes_ <= 0 ||
      static_cast<std::size_t>(pool_size) % static_cast<std::size_t>(n_classes_) !=
          0) {
    throw std::runtime_error("DecisionTree::load: inconsistent sizes");
  }
  nodes_.assign(static_cast<std::size_t>(node_count), Node{});
  for (Node& node : nodes_) {
    if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
          node.proba_offset)) {
      throw std::runtime_error("DecisionTree::load: truncated nodes");
    }
  }
  proba_pool_.assign(static_cast<std::size_t>(pool_size), 0.0f);
  for (float& p : proba_pool_) {
    if (!(in >> p)) throw std::runtime_error("DecisionTree::load: truncated pool");
  }
  importances_.assign(static_cast<std::size_t>(importance_count), 0.0);
  for (double& imp : importances_) {
    if (!(in >> imp)) throw std::runtime_error("DecisionTree::load: truncated importances");
  }
  validate_structure();
}

void DecisionTree::restore(std::vector<Node> nodes, std::vector<float> proba_pool,
                           std::vector<double> importances, int n_classes,
                           int depth) {
  if (n_classes <= 0 || depth < 0 ||
      proba_pool.size() % static_cast<std::size_t>(n_classes) != 0) {
    throw std::runtime_error("DecisionTree::restore: inconsistent sizes");
  }
  nodes_ = std::move(nodes);
  proba_pool_ = std::move(proba_pool);
  importances_ = std::move(importances);
  n_classes_ = n_classes;
  depth_ = depth;
  validate_structure();
}

void DecisionTree::validate_structure() const {
  // Validate links so a corrupt file cannot cause out-of-range walks.
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    const bool is_leaf = node.proba_offset >= 0;
    if (is_leaf) {
      if (static_cast<std::size_t>(node.proba_offset) +
              static_cast<std::size_t>(n_classes_) >
          proba_pool_.size()) {
        throw std::runtime_error("DecisionTree: leaf offset out of range");
      }
    } else {
      // Interior nodes index a feature column in predict_proba; a negative
      // index would read out of bounds long before the forest's
      // n_features upper-bound check can catch it.
      if (node.feature < 0) {
        throw std::runtime_error("DecisionTree: negative feature index");
      }
      // build_node emits children after their parent, so legitimate links
      // always point forward; requiring that makes the walk acyclic — a
      // crafted back-link would otherwise spin predict_proba forever.
      if (node.left <= static_cast<std::int32_t>(id) ||
          node.right <= static_cast<std::int32_t>(id) ||
          static_cast<std::size_t>(node.left) >= nodes_.size() ||
          static_cast<std::size_t>(node.right) >= nodes_.size()) {
        throw std::runtime_error("DecisionTree: child link out of range");
      }
    }
  }
}

int DecisionTree::max_feature_used() const noexcept {
  int max_feature = -1;
  for (const Node& node : nodes_) {
    if (node.proba_offset < 0) max_feature = std::max(max_feature, node.feature);
  }
  return max_feature;
}

}  // namespace fhc::ml
