#include "ml/class_weight.hpp"

#include <algorithm>
#include <stdexcept>

namespace fhc::ml {

std::vector<double> balanced_class_weights(const std::vector<int>& labels) {
  int max_label = -1;
  for (const int label : labels) {
    if (label < 0) throw std::invalid_argument("balanced_class_weights: negative label");
    max_label = std::max(max_label, label);
  }
  std::vector<double> counts(static_cast<std::size_t>(max_label + 1), 0.0);
  for (const int label : labels) counts[static_cast<std::size_t>(label)] += 1.0;

  std::size_t present = 0;
  for (const double count : counts) present += count > 0.0 ? 1 : 0;

  std::vector<double> weights(counts.size(), 0.0);
  const auto n = static_cast<double>(labels.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0.0) {
      weights[c] = n / (static_cast<double>(present) * counts[c]);
    }
  }
  return weights;
}

std::vector<double> balanced_sample_weights(const std::vector<int>& labels) {
  const std::vector<double> class_weights = balanced_class_weights(labels);
  std::vector<double> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out[i] = class_weights[static_cast<std::size_t>(labels[i])];
  }
  return out;
}

}  // namespace fhc::ml
