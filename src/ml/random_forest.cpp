#include "ml/random_forest.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fhc::ml {

namespace {

// Binary model format, version 1. Fixed 64-byte header (all counts
// little-endian) followed by FlatForest::payload_size(shape) payload
// bytes. The header starts with an 8-byte magic so FuzzyHashClassifier
// and tools can sniff the format from the first bytes of a file.
constexpr char kBinaryMagic[8] = {'F', 'H', 'C', 'F', 'R', 'S', 'T', '1'};
constexpr std::uint32_t kBinaryVersion = 1;

struct BinaryHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t n_classes;
  std::uint32_t n_features;
  std::uint32_t tree_count;
  std::uint32_t total_nodes;
  std::uint32_t leaf_pool;
  std::uint64_t payload_bytes;
  std::uint8_t reserved[24];
};
static_assert(sizeof(BinaryHeader) == 64, "binary header layout drifted");

void require_little_endian(const char* what) {
  if constexpr (std::endian::native != std::endian::little) {
    throw std::runtime_error(std::string(what) +
                             ": binary model format requires a little-endian host");
  }
}

FlatForest::Shape shape_from_header(const BinaryHeader& header) {
  if (std::memcmp(header.magic, kBinaryMagic, sizeof kBinaryMagic) != 0) {
    throw std::runtime_error("RandomForest::load_binary: bad magic");
  }
  if (header.version != kBinaryVersion) {
    throw std::runtime_error("RandomForest::load_binary: unsupported version");
  }
  FlatForest::Shape shape;
  shape.n_classes = header.n_classes;
  shape.n_features = header.n_features;
  shape.tree_count = header.tree_count;
  shape.total_nodes = header.total_nodes;
  shape.leaf_pool = header.leaf_pool;
  // Cap every count before payload_size() touches them (its section math
  // would overflow on crafted 32-bit-max values) — attach() re-validates,
  // but this keeps a crafted header from driving a huge read/allocation.
  constexpr std::size_t kMaxCount = std::size_t{1} << 24;
  if (shape.n_classes == 0 || shape.n_classes > kMaxCount ||
      shape.n_features > kMaxCount || shape.tree_count == 0 ||
      shape.tree_count > kMaxCount || shape.total_nodes > (kMaxCount << 2) ||
      shape.leaf_pool > (kMaxCount << 4)) {
    throw std::runtime_error("RandomForest::load_binary: unreasonable header counts");
  }
  // The per-count caps still admit a crafted tree_count x n_features
  // product whose importances section alone is petabytes; bound the total
  // before the stream loader allocates payload_bytes.
  constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 31;
  if (header.payload_bytes > kMaxPayload) {
    throw std::runtime_error("RandomForest::load_binary: oversized payload");
  }
  if (header.payload_bytes != FlatForest::payload_size(shape)) {
    throw std::runtime_error("RandomForest::load_binary: inconsistent header");
  }
  return shape;
}

}  // namespace

void RandomForest::fit(const Matrix& x, const std::vector<int>& y, int n_classes,
                       std::span<const double> sample_weight,
                       const ForestParams& params, util::ThreadPool* pool) {
  if (params.n_estimators <= 0) {
    throw std::invalid_argument("RandomForest::fit: n_estimators <= 0");
  }
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("RandomForest::fit: bad dataset shape");
  }
  std::vector<double> base_weight(x.rows(), 1.0);
  if (!sample_weight.empty()) {
    if (sample_weight.size() != x.rows()) {
      throw std::invalid_argument("RandomForest::fit: weight size mismatch");
    }
    std::copy(sample_weight.begin(), sample_weight.end(), base_weight.begin());
  }

  n_classes_ = n_classes;
  n_features_ = x.cols();
  trees_.assign(static_cast<std::size_t>(params.n_estimators), DecisionTree{});

  const std::size_t n = x.rows();
  const std::function<void(std::size_t)> fit_tree = [&](std::size_t t) {
    // Independent deterministic stream per tree: results do not depend on
    // which worker trains which tree.
    std::uint64_t stream = params.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1));
    fhc::util::Rng rng(fhc::util::splitmix64(stream));

    std::vector<double> weight = base_weight;
    if (params.bootstrap) {
      // Draw n samples with replacement; fold multiplicities into the
      // weights (x stays shared — no per-tree copies of the matrix).
      std::vector<double> multiplicity(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        multiplicity[static_cast<std::size_t>(rng.next_below(n))] += 1.0;
      }
      for (std::size_t i = 0; i < n; ++i) weight[i] *= multiplicity[i];
      // Zero-weight rows are skipped by the tree through their weights;
      // a tree must still see at least one positive weight.
    }
    trees_[t].fit(x, y, n_classes, weight, params.tree, rng);
  };
  if (pool != nullptr) {
    fhc::util::parallel_for(*pool, 0, trees_.size(), /*grain=*/1, fit_tree);
  } else {
    fhc::util::parallel_for(trees_.size(), fit_tree);
  }
  plan_ = FlatForest::build(trees_, n_classes_, n_features_);
}

std::vector<double> RandomForest::predict_proba(std::span<const float> row) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> mean(static_cast<std::size_t>(n_classes_), 0.0);
  plan_.predict_proba(row, mean);
  return mean;
}

std::vector<double> RandomForest::predict_proba_nested(
    std::span<const float> row) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> mean(static_cast<std::size_t>(n_classes_), 0.0);
  for (const DecisionTree& tree : trees_) tree.accumulate_proba(row, mean);
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& p : mean) p *= inv;
  return mean;
}

Matrix RandomForest::predict_proba_matrix(const Matrix& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  Matrix out(x.rows(), static_cast<std::size_t>(n_classes_));
  // One pool task per row block (not per row): service micro-batches on
  // the shared pool no longer queue behind hundreds of single-row tasks,
  // and each task is one cache-friendly tree-major pass.
  constexpr std::size_t kBlockRows = 64;
  const std::size_t blocks = (x.rows() + kBlockRows - 1) / kBlockRows;
  fhc::util::parallel_for(blocks, [&](std::size_t b) {
    const std::size_t begin = b * kBlockRows;
    const std::size_t end = std::min(begin + kBlockRows, x.rows());
    plan_.predict_proba_block(x, begin, end, out);
  });
  return out;
}

int RandomForest::predict(std::span<const float> row) const {
  const std::vector<double> proba = predict_proba(row);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

void RandomForest::save(std::ostream& out) const {
  out << "forest " << n_classes_ << ' ' << n_features_ << ' ' << trees_.size()
      << '\n';
  for (const DecisionTree& tree : trees_) tree.save(out);
}

void RandomForest::load(std::istream& in) {
  std::string tag;
  // Signed reads: operator>> into unsigned members would wrap crafted
  // negative header values into huge positives instead of failing.
  long long n_classes = 0;
  long long n_features = 0;
  long long tree_count = 0;
  if (!(in >> tag >> n_classes >> n_features >> tree_count) || tag != "forest") {
    throw std::runtime_error("RandomForest::load: bad header");
  }
  if (n_classes <= 0 || n_features < 0 || tree_count < 0) {
    throw std::runtime_error("RandomForest::load: negative header value");
  }
  if (tree_count == 0) throw std::runtime_error("RandomForest::load: empty forest");
  constexpr long long kMaxCount = 1LL << 24;
  if (tree_count > kMaxCount || n_features > kMaxCount || n_classes > kMaxCount) {
    // n_classes included: a value above INT_MAX would otherwise wrap
    // through the int cast and could collide with the trees' class count.
    throw std::runtime_error("RandomForest::load: oversized header value");
  }
  n_classes_ = static_cast<int>(n_classes);
  n_features_ = static_cast<std::size_t>(n_features);
  trees_.assign(static_cast<std::size_t>(tree_count), DecisionTree{});
  for (DecisionTree& tree : trees_) {
    tree.load(in);
    if (tree.n_classes() != n_classes_) {
      throw std::runtime_error("RandomForest::load: tree class-count mismatch");
    }
    // predict_proba indexes rows of width n_features_ with each interior
    // node's feature; feature_importances reads importances[0..n_features).
    // Reject trees that would read out of bounds on either.
    if (tree.max_feature_used() >= static_cast<int>(n_features_)) {
      throw std::runtime_error("RandomForest::load: tree feature out of range");
    }
    // Exact, not just >=: fit always produces one importance per feature,
    // and the binary format stores exactly n_features per tree — admitting
    // oversized arrays here would make the binary round-trip lossy.
    if (tree.feature_importances().size() != n_features_) {
      throw std::runtime_error("RandomForest::load: importances/features mismatch");
    }
  }
  plan_ = FlatForest::build(trees_, n_classes_, n_features_);
}

void RandomForest::save_binary(std::ostream& out) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::save_binary: not fitted");
  require_little_endian("RandomForest::save_binary");
  const FlatForest::Shape& shape = plan_.shape();
  BinaryHeader header{};
  std::memcpy(header.magic, kBinaryMagic, sizeof kBinaryMagic);
  header.version = kBinaryVersion;
  header.n_classes = static_cast<std::uint32_t>(shape.n_classes);
  header.n_features = static_cast<std::uint32_t>(shape.n_features);
  header.tree_count = static_cast<std::uint32_t>(shape.tree_count);
  header.total_nodes = static_cast<std::uint32_t>(shape.total_nodes);
  header.leaf_pool = static_cast<std::uint32_t>(shape.leaf_pool);
  header.payload_bytes = plan_.payload().size();
  out.write(reinterpret_cast<const char*>(&header), sizeof header);
  // The compiled plan's buffer is the on-disk payload, written verbatim —
  // save -> load -> save is byte-identical by construction.
  out.write(reinterpret_cast<const char*>(plan_.payload().data()),
            static_cast<std::streamsize>(plan_.payload().size()));
  if (!out) throw std::runtime_error("RandomForest::save_binary: write failed");
}

void RandomForest::load_binary(std::istream& in) {
  require_little_endian("RandomForest::load_binary");
  BinaryHeader header{};
  if (!in.read(reinterpret_cast<char*>(&header), sizeof header)) {
    throw std::runtime_error("RandomForest::load_binary: truncated header");
  }
  const FlatForest::Shape shape = shape_from_header(header);
  auto storage = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(header.payload_bytes));
  if (!in.read(reinterpret_cast<char*>(storage->data()),
               static_cast<std::streamsize>(storage->size()))) {
    throw std::runtime_error("RandomForest::load_binary: truncated payload");
  }
  adopt_plan(FlatForest::attach({storage->data(), storage->size()}, shape, storage));
}

void RandomForest::load_binary(std::span<const std::byte> bytes,
                               std::shared_ptr<const void> keepalive) {
  require_little_endian("RandomForest::load_binary");
  if (bytes.size() < sizeof(BinaryHeader)) {
    throw std::runtime_error("RandomForest::load_binary: truncated header");
  }
  BinaryHeader header{};
  std::memcpy(&header, bytes.data(), sizeof header);
  const FlatForest::Shape shape = shape_from_header(header);
  if (bytes.size() < sizeof header + header.payload_bytes) {
    throw std::runtime_error("RandomForest::load_binary: truncated payload");
  }
  adopt_plan(FlatForest::attach(
      bytes.subspan(sizeof header, static_cast<std::size_t>(header.payload_bytes)),
      shape, std::move(keepalive)));
}

void RandomForest::adopt_plan(FlatForest plan) {
  // Rebuild the per-tree view from the validated plan so everything the
  // nested representation serves (text save, tree() introspection,
  // feature_importances) keeps working after a binary load. This is
  // struct-filling, not parsing — the node data itself stays referenced
  // in place by the plan.
  const FlatForest::Shape& shape = plan.shape();
  std::vector<DecisionTree> trees(shape.tree_count);
  for (std::size_t t = 0; t < shape.tree_count; ++t) {
    const std::uint32_t nb = plan.node_base()[t];
    const std::uint32_t ne = plan.node_base()[t + 1];
    const std::uint32_t lb = plan.leaf_base()[t];
    const std::uint32_t le = plan.leaf_base()[t + 1];
    std::vector<DecisionTree::Node> nodes(ne - nb);
    for (std::uint32_t i = nb; i < ne; ++i) {
      DecisionTree::Node& node = nodes[i - nb];
      const std::int32_t off = plan.leaf_offsets()[i];
      if (off >= 0) {
        node.proba_offset = off - static_cast<std::int32_t>(lb);
      } else {
        node.feature = plan.features()[i];
        node.threshold = plan.thresholds()[i];
        node.left = plan.children()[2 * i] - static_cast<std::int32_t>(nb);
        node.right = plan.children()[2 * i + 1] - static_cast<std::int32_t>(nb);
      }
    }
    std::vector<float> pool(plan.leaf_pool().begin() + lb,
                            plan.leaf_pool().begin() + le);
    std::vector<double> importances(
        plan.importances().begin() + static_cast<std::ptrdiff_t>(t * shape.n_features),
        plan.importances().begin() +
            static_cast<std::ptrdiff_t>((t + 1) * shape.n_features));
    trees[t].restore(std::move(nodes), std::move(pool), std::move(importances),
                     static_cast<int>(shape.n_classes),
                     static_cast<int>(plan.depths()[t]));
  }
  trees_ = std::move(trees);
  n_classes_ = static_cast<int>(shape.n_classes);
  n_features_ = shape.n_features;
  plan_ = std::move(plan);
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> mean(n_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importances();
    for (std::size_t f = 0; f < mean.size(); ++f) mean[f] += imp[f];
  }
  const double total = std::accumulate(mean.begin(), mean.end(), 0.0);
  if (total > 0.0) {
    for (double& m : mean) m /= total;
  }
  return mean;
}

}  // namespace fhc::ml
