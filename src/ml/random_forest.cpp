#include "ml/random_forest.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fhc::ml {

void RandomForest::fit(const Matrix& x, const std::vector<int>& y, int n_classes,
                       std::span<const double> sample_weight,
                       const ForestParams& params, util::ThreadPool* pool) {
  if (params.n_estimators <= 0) {
    throw std::invalid_argument("RandomForest::fit: n_estimators <= 0");
  }
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("RandomForest::fit: bad dataset shape");
  }
  std::vector<double> base_weight(x.rows(), 1.0);
  if (!sample_weight.empty()) {
    if (sample_weight.size() != x.rows()) {
      throw std::invalid_argument("RandomForest::fit: weight size mismatch");
    }
    std::copy(sample_weight.begin(), sample_weight.end(), base_weight.begin());
  }

  n_classes_ = n_classes;
  n_features_ = x.cols();
  trees_.assign(static_cast<std::size_t>(params.n_estimators), DecisionTree{});

  const std::size_t n = x.rows();
  const std::function<void(std::size_t)> fit_tree = [&](std::size_t t) {
    // Independent deterministic stream per tree: results do not depend on
    // which worker trains which tree.
    std::uint64_t stream = params.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1));
    fhc::util::Rng rng(fhc::util::splitmix64(stream));

    std::vector<double> weight = base_weight;
    if (params.bootstrap) {
      // Draw n samples with replacement; fold multiplicities into the
      // weights (x stays shared — no per-tree copies of the matrix).
      std::vector<double> multiplicity(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        multiplicity[static_cast<std::size_t>(rng.next_below(n))] += 1.0;
      }
      for (std::size_t i = 0; i < n; ++i) weight[i] *= multiplicity[i];
      // Zero-weight rows are skipped by the tree through their weights;
      // a tree must still see at least one positive weight.
    }
    trees_[t].fit(x, y, n_classes, weight, params.tree, rng);
  };
  if (pool != nullptr) {
    fhc::util::parallel_for(*pool, 0, trees_.size(), /*grain=*/1, fit_tree);
  } else {
    fhc::util::parallel_for(trees_.size(), fit_tree);
  }
}

std::vector<double> RandomForest::predict_proba(std::span<const float> row) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> mean(static_cast<std::size_t>(n_classes_), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> proba = tree.predict_proba(row);
    for (std::size_t c = 0; c < mean.size(); ++c) mean[c] += proba[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& p : mean) p *= inv;
  return mean;
}

Matrix RandomForest::predict_proba_matrix(const Matrix& x) const {
  Matrix out(x.rows(), static_cast<std::size_t>(n_classes_));
  fhc::util::parallel_for(x.rows(), [&](std::size_t i) {
    const std::vector<double> proba = predict_proba(x.row(i));
    auto row = out.row(i);
    for (std::size_t c = 0; c < proba.size(); ++c) row[c] = static_cast<float>(proba[c]);
  });
  return out;
}

int RandomForest::predict(std::span<const float> row) const {
  const std::vector<double> proba = predict_proba(row);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

void RandomForest::save(std::ostream& out) const {
  out << "forest " << n_classes_ << ' ' << n_features_ << ' ' << trees_.size()
      << '\n';
  for (const DecisionTree& tree : trees_) tree.save(out);
}

void RandomForest::load(std::istream& in) {
  std::string tag;
  // Signed reads: operator>> into unsigned members would wrap crafted
  // negative header values into huge positives instead of failing.
  long long n_classes = 0;
  long long n_features = 0;
  long long tree_count = 0;
  if (!(in >> tag >> n_classes >> n_features >> tree_count) || tag != "forest") {
    throw std::runtime_error("RandomForest::load: bad header");
  }
  if (n_classes <= 0 || n_features < 0 || tree_count < 0) {
    throw std::runtime_error("RandomForest::load: negative header value");
  }
  if (tree_count == 0) throw std::runtime_error("RandomForest::load: empty forest");
  constexpr long long kMaxCount = 1LL << 24;
  if (tree_count > kMaxCount || n_features > kMaxCount || n_classes > kMaxCount) {
    // n_classes included: a value above INT_MAX would otherwise wrap
    // through the int cast and could collide with the trees' class count.
    throw std::runtime_error("RandomForest::load: oversized header value");
  }
  n_classes_ = static_cast<int>(n_classes);
  n_features_ = static_cast<std::size_t>(n_features);
  trees_.assign(static_cast<std::size_t>(tree_count), DecisionTree{});
  for (DecisionTree& tree : trees_) {
    tree.load(in);
    if (tree.n_classes() != n_classes_) {
      throw std::runtime_error("RandomForest::load: tree class-count mismatch");
    }
    // predict_proba indexes rows of width n_features_ with each interior
    // node's feature; feature_importances reads importances[0..n_features).
    // Reject trees that would read out of bounds on either.
    if (tree.max_feature_used() >= static_cast<int>(n_features_)) {
      throw std::runtime_error("RandomForest::load: tree feature out of range");
    }
    if (tree.feature_importances().size() < n_features_) {
      throw std::runtime_error("RandomForest::load: importances/features mismatch");
    }
  }
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> mean(n_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importances();
    for (std::size_t f = 0; f < mean.size(); ++f) mean[f] += imp[f];
  }
  const double total = std::accumulate(mean.begin(), mean.end(), 0.0);
  if (total > 0.0) {
    for (double& m : mean) m /= total;
  }
  return mean;
}

}  // namespace fhc::ml
