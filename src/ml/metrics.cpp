#include "ml/metrics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "ml/dataset.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace fhc::ml {

namespace {

struct Counts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t support = 0;
};

double safe_div(double num, double den) { return den > 0.0 ? num / den : 0.0; }

double f1_of(double precision, double recall) {
  return precision + recall > 0.0 ? 2.0 * precision * recall / (precision + recall)
                                  : 0.0;
}

}  // namespace

ClassificationReport classification_report(const std::vector<int>& y_true,
                                           const std::vector<int>& y_pred,
                                           const std::vector<std::string>& label_names) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("classification_report: size mismatch");
  }

  std::map<int, Counts> counts;  // keyed by label; -1 sorts first
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const int t = y_true[i];
    const int p = y_pred[i];
    counts[t].support += 1;
    if (t == p) {
      counts[t].tp += 1;
      ++correct;
    } else {
      counts[t].fn += 1;
      counts[p].fp += 1;
    }
  }

  ClassificationReport report;
  report.total_support = y_true.size();
  report.accuracy = safe_div(static_cast<double>(correct),
                             static_cast<double>(y_true.size()));

  std::size_t global_tp = 0;
  std::size_t global_fp = 0;
  std::size_t global_fn = 0;
  double macro_p = 0.0;
  double macro_r = 0.0;
  double macro_f = 0.0;
  double weighted_p = 0.0;
  double weighted_r = 0.0;
  double weighted_f = 0.0;

  for (const auto& [label, c] : counts) {
    ClassMetrics m;
    m.label = label;
    if (label == kUnknownLabel) {
      m.name = "-1";
    } else if (label >= 0 && static_cast<std::size_t>(label) < label_names.size()) {
      m.name = label_names[static_cast<std::size_t>(label)];
    } else {
      m.name = std::to_string(label);
    }
    m.precision = safe_div(static_cast<double>(c.tp), static_cast<double>(c.tp + c.fp));
    m.recall = safe_div(static_cast<double>(c.tp), static_cast<double>(c.tp + c.fn));
    m.f1 = f1_of(m.precision, m.recall);
    m.support = c.support;
    report.per_class.push_back(m);

    global_tp += c.tp;
    global_fp += c.fp;
    global_fn += c.fn;
    macro_p += m.precision;
    macro_r += m.recall;
    macro_f += m.f1;
    weighted_p += m.precision * static_cast<double>(m.support);
    weighted_r += m.recall * static_cast<double>(m.support);
    weighted_f += m.f1 * static_cast<double>(m.support);
  }

  // Sort: unknown ("-1") first, then lexicographic by name (Table 4 order).
  std::sort(report.per_class.begin(), report.per_class.end(),
            [](const ClassMetrics& a, const ClassMetrics& b) {
              if ((a.label == kUnknownLabel) != (b.label == kUnknownLabel)) {
                return a.label == kUnknownLabel;
              }
              return a.name < b.name;
            });

  const auto k = static_cast<double>(counts.size());
  const auto n = static_cast<double>(y_true.size());
  report.micro.precision =
      safe_div(static_cast<double>(global_tp), static_cast<double>(global_tp + global_fp));
  report.micro.recall =
      safe_div(static_cast<double>(global_tp), static_cast<double>(global_tp + global_fn));
  report.micro.f1 = f1_of(report.micro.precision, report.micro.recall);
  report.macro = {safe_div(macro_p, k), safe_div(macro_r, k), safe_div(macro_f, k)};
  report.weighted = {safe_div(weighted_p, n), safe_div(weighted_r, n),
                     safe_div(weighted_f, n)};
  return report;
}

std::string ClassificationReport::to_string() const {
  using fhc::util::Align;
  using fhc::util::fixed;
  fhc::util::TextTable table(
      {"Class", "Precision", "Recall", "f1-Score", "Support"},
      {Align::Left, Align::Right, Align::Right, Align::Right, Align::Right});
  for (const ClassMetrics& m : per_class) {
    table.add_row({m.name, fixed(m.precision, 2), fixed(m.recall, 2), fixed(m.f1, 2),
                   std::to_string(m.support)});
  }
  table.add_rule();
  table.add_row({"micro avg", fixed(micro.precision, 2), fixed(micro.recall, 2),
                 fixed(micro.f1, 2), std::to_string(total_support)});
  table.add_row({"macro avg", fixed(macro.precision, 2), fixed(macro.recall, 2),
                 fixed(macro.f1, 2), std::to_string(total_support)});
  table.add_row({"weighted avg", fixed(weighted.precision, 2), fixed(weighted.recall, 2),
                 fixed(weighted.f1, 2), std::to_string(total_support)});
  return table.render();
}

namespace {

ClassificationReport quick_report(const std::vector<int>& y_true,
                                  const std::vector<int>& y_pred) {
  return classification_report(y_true, y_pred, {});
}

}  // namespace

double macro_f1(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return quick_report(y_true, y_pred).macro.f1;
}

double micro_f1(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return quick_report(y_true, y_pred).micro.f1;
}

double weighted_f1(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return quick_report(y_true, y_pred).weighted.f1;
}

}  // namespace fhc::ml
