#include "ml/splits.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fhc::ml {

SampleSplit stratified_split(const std::vector<int>& labels, double test_fraction,
                             fhc::util::Rng& rng) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    throw std::invalid_argument("stratified_split: fraction out of [0,1]");
  }
  int max_label = -1;
  for (const int label : labels) max_label = std::max(max_label, label);

  // Bucket sample indices per label.
  std::vector<std::vector<std::size_t>> buckets(static_cast<std::size_t>(max_label + 1));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) throw std::invalid_argument("stratified_split: negative label");
    buckets[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  SampleSplit split;
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    rng.shuffle(bucket);
    // Round-half-up matches the reconstruction of the paper's per-class
    // test supports; clamp so no side is empty for classes with >= 2.
    auto n_test = static_cast<std::size_t>(
        std::floor(test_fraction * static_cast<double>(bucket.size()) + 0.5));
    if (bucket.size() >= 2) {
      n_test = std::min(n_test, bucket.size() - 1);
      if (test_fraction > 0.0) n_test = std::max<std::size_t>(n_test, 1);
    }
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(bucket[i]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

std::vector<std::size_t> class_level_split(std::size_t class_count,
                                           double unknown_fraction,
                                           fhc::util::Rng& rng) {
  auto order = fhc::util::random_permutation(class_count, rng);
  const auto n_unknown = static_cast<std::size_t>(
      std::floor(unknown_fraction * static_cast<double>(class_count) + 0.5));
  order.resize(std::min(n_unknown, class_count));
  std::sort(order.begin(), order.end());
  return order;
}

TwoPhaseSplit two_phase_split(const std::vector<int>& class_ids, std::size_t class_count,
                              double unknown_fraction, double test_fraction,
                              fhc::util::Rng& rng,
                              const std::vector<int>& unknown_class_ids) {
  TwoPhaseSplit out;
  out.class_is_unknown.assign(class_count, false);

  if (!unknown_class_ids.empty()) {
    for (const int id : unknown_class_ids) {
      if (id < 0 || static_cast<std::size_t>(id) >= class_count) {
        throw std::invalid_argument("two_phase_split: bad pinned unknown class id");
      }
      out.class_is_unknown[static_cast<std::size_t>(id)] = true;
    }
  } else {
    for (const std::size_t c : class_level_split(class_count, unknown_fraction, rng)) {
      out.class_is_unknown[c] = true;
    }
  }

  // Unknown-pool samples all land in the test set; known-class samples go
  // through the stratified phase. The stratified split sees only known
  // samples, with labels re-used as-is (gaps are fine).
  std::vector<std::size_t> known_indices;
  std::vector<int> known_labels;
  for (std::size_t i = 0; i < class_ids.size(); ++i) {
    const int cid = class_ids[i];
    if (cid < 0 || static_cast<std::size_t>(cid) >= class_count) {
      throw std::invalid_argument("two_phase_split: class id out of range");
    }
    if (out.class_is_unknown[static_cast<std::size_t>(cid)]) {
      out.test.push_back(i);
      ++out.unknown_test_count;
    } else {
      known_indices.push_back(i);
      known_labels.push_back(cid);
    }
  }

  const SampleSplit known_split = stratified_split(known_labels, test_fraction, rng);
  for (const std::size_t k : known_split.train) out.train.push_back(known_indices[k]);
  for (const std::size_t k : known_split.test) out.test.push_back(known_indices[k]);
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

}  // namespace fhc::ml
