#include "ml/linear_svm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fhc::ml {

void LinearSvm::fit(const Matrix& x, const std::vector<int>& y, int n_classes,
                    std::span<const double> sample_weight, const SvmParams& params) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("LinearSvm::fit: bad dataset shape");
  }
  n_classes_ = n_classes;
  weights_ = Matrix(static_cast<std::size_t>(n_classes), x.cols(), 0.0f);
  bias_.assign(static_cast<std::size_t>(n_classes), 0.0);

  const std::size_t n = x.rows();
  std::vector<double> ones;
  if (sample_weight.empty()) {
    ones.assign(n, 1.0);
    sample_weight = ones;
  }

  // One independent binary problem per class; they parallelize cleanly.
  fhc::util::parallel_for(static_cast<std::size_t>(n_classes), [&](std::size_t cls) {
    fhc::util::Rng rng(params.seed ^ (0x51ede5c4b5ca2a6fULL * (cls + 1)));
    std::vector<double> w(x.cols(), 0.0);
    double b = 0.0;
    // Pegasos step with a warm-start offset t0 = 1/lambda: caps the first
    // steps at eta <= 1 (the raw 1/(lambda*t) schedule explodes at t = 1).
    const double t0 = 1.0 / params.lambda;
    std::size_t t = 0;
    for (int epoch = 0; epoch < params.epochs; ++epoch) {
      auto order = fhc::util::random_permutation(n, rng);
      for (const std::size_t i : order) {
        ++t;
        const double eta = 1.0 / (params.lambda * (static_cast<double>(t) + t0));
        const double target = y[i] == static_cast<int>(cls) ? 1.0 : -1.0;
        const auto row = x.row(i);
        double margin = b;
        for (std::size_t f = 0; f < w.size(); ++f) margin += w[f] * row[f];

        // L2 shrinkage every step; hinge subgradient when violating.
        const double shrink = 1.0 - eta * params.lambda;
        for (double& wf : w) wf *= shrink;
        if (target * margin < 1.0) {
          const double step = eta * sample_weight[i] * target;
          for (std::size_t f = 0; f < w.size(); ++f) w[f] += step * row[f];
          b += step;
        }
      }
    }
    auto out_row = weights_.row(cls);
    for (std::size_t f = 0; f < w.size(); ++f) out_row[f] = static_cast<float>(w[f]);
    bias_[cls] = b;
  });
}

std::vector<double> LinearSvm::decision_function(std::span<const float> row) const {
  if (bias_.empty()) throw std::logic_error("LinearSvm: not fitted");
  std::vector<double> margins(static_cast<std::size_t>(n_classes_));
  for (std::size_t c = 0; c < margins.size(); ++c) {
    const auto w = weights_.row(c);
    double margin = bias_[c];
    for (std::size_t f = 0; f < w.size(); ++f) margin += w[f] * row[f];
    margins[c] = margin;
  }
  return margins;
}

std::vector<double> LinearSvm::predict_proba(std::span<const float> row) const {
  std::vector<double> margins = decision_function(row);
  const double max_margin = *std::max_element(margins.begin(), margins.end());
  double total = 0.0;
  for (double& m : margins) {
    m = std::exp(m - max_margin);
    total += m;
  }
  for (double& m : margins) m /= total;
  return margins;
}

int LinearSvm::predict(std::span<const float> row) const {
  const std::vector<double> margins = decision_function(row);
  return static_cast<int>(std::max_element(margins.begin(), margins.end()) -
                          margins.begin());
}

}  // namespace fhc::ml
