// Dense row-major matrix of floats — the feature-matrix container.
//
// Rows are samples, columns are features. Row-major keeps one sample's
// features contiguous, which is the access pattern of tree training
// (feature gather per node) and prediction (single-row walks).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace fhc::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// New matrix containing the given rows (in the given order).
  Matrix gather_rows(std::span<const std::size_t> indices) const {
    Matrix out(indices.size(), cols_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      if (indices[i] >= rows_) throw std::out_of_range("Matrix::gather_rows");
      const auto src = row(indices[i]);
      std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
  }

  const std::vector<float>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace fhc::ml
