// Linear SVM (one-vs-rest, L2-regularized hinge loss via SGD) — the
// paper's other named future-work comparator (Section 6).
//
// Pegasos-style step size (eta_t = 1 / (lambda * t)), per-sample weights
// (so balanced class weighting composes as in the forest), and a softmax
// over margins as the probability surrogate for the confidence-threshold
// mechanism (documented approximation; margins are not calibrated).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace fhc::ml {

struct SvmParams {
  double lambda = 1e-4;  // L2 regularization strength
  int epochs = 20;
  std::uint64_t seed = 1;
};

class LinearSvm {
 public:
  void fit(const Matrix& x, const std::vector<int>& y, int n_classes,
           std::span<const double> sample_weight, const SvmParams& params);

  /// Raw one-vs-rest margins (w_c . x + b_c) for each class.
  std::vector<double> decision_function(std::span<const float> row) const;

  /// softmax(margins): a probability surrogate, NOT calibrated.
  std::vector<double> predict_proba(std::span<const float> row) const;
  int predict(std::span<const float> row) const;

  int n_classes() const noexcept { return n_classes_; }

 private:
  Matrix weights_;             // n_classes x n_features
  std::vector<double> bias_;   // n_classes
  int n_classes_ = 0;
};

}  // namespace fhc::ml
