// Random Forest classifier (Breiman-style bagging of CART trees).
//
// Matches the scikit-learn behaviour the paper relies on:
//  * bootstrap resampling per tree (implemented as multiplicity weights so
//    class-balance weights compose multiplicatively),
//  * per-node feature subsampling (max_features = sqrt by default),
//  * predict_proba = mean of tree leaf distributions,
//  * feature_importances = mean of per-tree normalized impurity
//    importances (Table 5's source).
//
// Trees train in parallel on the shared pool; each tree derives its own
// RNG stream from (forest seed, tree index) so results are independent of
// thread scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"
#include "ml/matrix.hpp"

namespace fhc::util {
class ThreadPool;
}

namespace fhc::ml {

struct ForestParams {
  int n_estimators = 200;
  TreeParams tree;        // tree.max_features = -1 (sqrt) by default here
  bool bootstrap = true;
  std::uint64_t seed = 1;

  ForestParams() { tree.max_features = -1; }
};

class RandomForest {
 public:
  /// Fits `n_estimators` trees. `sample_weight` may be empty (all ones);
  /// balanced class weighting is applied by passing the weights here.
  /// `pool` selects where the per-tree work runs (nullptr = the shared
  /// pool); results are bit-identical for any pool because every tree's
  /// RNG stream is derived from (forest seed, tree index), never from
  /// scheduling — a 1-thread pool is the serial reference path.
  void fit(const Matrix& x, const std::vector<int>& y, int n_classes,
           std::span<const double> sample_weight, const ForestParams& params,
           util::ThreadPool* pool = nullptr);

  /// Mean class-probability vector across trees — served by the compiled
  /// FlatForest plan (bit-identical to the nested reference path).
  std::vector<double> predict_proba(std::span<const float> row) const;

  /// Nested reference path: walks each DecisionTree in turn via
  /// accumulate_proba (no per-tree allocation). The plan must stay
  /// bit-identical to this — it is what the FlatForest property test
  /// compares against.
  std::vector<double> predict_proba_nested(std::span<const float> row) const;

  /// Probability matrix for many rows — row blocks fan out across the
  /// shared pool (one task per block, not per row), each scored by one
  /// tree-major predict_proba_block pass.
  Matrix predict_proba_matrix(const Matrix& x) const;

  /// argmax label for one sample.
  int predict(std::span<const float> row) const;

  /// The compiled inference plan (valid whenever the forest is fitted or
  /// loaded).
  const FlatForest& plan() const noexcept { return plan_; }

  /// Mean normalized impurity importances, re-normalized to sum 1.
  std::vector<double> feature_importances() const;

  int n_classes() const noexcept { return n_classes_; }
  std::size_t n_features() const noexcept { return n_features_; }
  std::size_t tree_count() const noexcept { return trees_.size(); }
  const DecisionTree& tree(std::size_t i) const { return trees_.at(i); }

  /// Text serialization of the fitted ensemble (train once, classify in a
  /// Slurm prolog — the paper's deployment model). Throws
  /// std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  /// Binary model format: a 64-byte little-endian header followed by the
  /// FlatForest SoA payload written verbatim, so save -> load_binary ->
  /// save round-trips byte-identically and a loaded file needs no float
  /// parsing. Throws std::runtime_error on malformed input (and on
  /// big-endian hosts, which the format does not support).
  void save_binary(std::ostream& out) const;
  void load_binary(std::istream& in);

  /// Zero-copy variant: adopts `bytes` (header + payload, e.g. an mmap'd
  /// model file) without copying the node sections; `keepalive` owns the
  /// bytes for the lifetime of the plan. `bytes` may extend past the model
  /// (the mapped file's tail); the payload must start 8-byte aligned.
  void load_binary(std::span<const std::byte> bytes,
                   std::shared_ptr<const void> keepalive);

 private:
  /// Installs a validated plan: reconstructs the per-tree view (text save,
  /// importances, tree() introspection) from the plan's sections.
  void adopt_plan(FlatForest plan);

  std::vector<DecisionTree> trees_;
  FlatForest plan_;
  int n_classes_ = 0;
  std::size_t n_features_ = 0;
};

}  // namespace fhc::ml
