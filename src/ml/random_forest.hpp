// Random Forest classifier (Breiman-style bagging of CART trees).
//
// Matches the scikit-learn behaviour the paper relies on:
//  * bootstrap resampling per tree (implemented as multiplicity weights so
//    class-balance weights compose multiplicatively),
//  * per-node feature subsampling (max_features = sqrt by default),
//  * predict_proba = mean of tree leaf distributions,
//  * feature_importances = mean of per-tree normalized impurity
//    importances (Table 5's source).
//
// Trees train in parallel on the shared pool; each tree derives its own
// RNG stream from (forest seed, tree index) so results are independent of
// thread scheduling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/matrix.hpp"

namespace fhc::util {
class ThreadPool;
}

namespace fhc::ml {

struct ForestParams {
  int n_estimators = 200;
  TreeParams tree;        // tree.max_features = -1 (sqrt) by default here
  bool bootstrap = true;
  std::uint64_t seed = 1;

  ForestParams() { tree.max_features = -1; }
};

class RandomForest {
 public:
  /// Fits `n_estimators` trees. `sample_weight` may be empty (all ones);
  /// balanced class weighting is applied by passing the weights here.
  /// `pool` selects where the per-tree work runs (nullptr = the shared
  /// pool); results are bit-identical for any pool because every tree's
  /// RNG stream is derived from (forest seed, tree index), never from
  /// scheduling — a 1-thread pool is the serial reference path.
  void fit(const Matrix& x, const std::vector<int>& y, int n_classes,
           std::span<const double> sample_weight, const ForestParams& params,
           util::ThreadPool* pool = nullptr);

  /// Mean class-probability vector across trees.
  std::vector<double> predict_proba(std::span<const float> row) const;

  /// Probability matrix for many rows (parallel).
  Matrix predict_proba_matrix(const Matrix& x) const;

  /// argmax label for one sample.
  int predict(std::span<const float> row) const;

  /// Mean normalized impurity importances, re-normalized to sum 1.
  std::vector<double> feature_importances() const;

  int n_classes() const noexcept { return n_classes_; }
  std::size_t tree_count() const noexcept { return trees_.size(); }
  const DecisionTree& tree(std::size_t i) const { return trees_.at(i); }

  /// Text serialization of the fitted ensemble (train once, classify in a
  /// Slurm prolog — the paper's deployment model). Throws
  /// std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<DecisionTree> trees_;
  int n_classes_ = 0;
  std::size_t n_features_ = 0;
};

}  // namespace fhc::ml
