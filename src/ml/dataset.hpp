// Supervised dataset: features + integer labels + naming metadata.
//
// Labels are dense ints 0..K-1 for known classes; the reserved label
// kUnknownLabel (-1) marks samples whose true class is outside the model's
// label set (the paper's "unknown" pool). kUnknownLabel never appears in
// training labels — it exists only as ground truth / prediction output.
#pragma once

#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace fhc::ml {

inline constexpr int kUnknownLabel = -1;

struct Dataset {
  Matrix x;
  std::vector<int> y;                      // size == x.rows()
  std::vector<std::string> class_names;    // index == label
  std::vector<std::string> feature_names;  // index == column

  std::size_t size() const noexcept { return y.size(); }

  /// Display name of a label (handles kUnknownLabel).
  std::string label_name(int label) const {
    if (label == kUnknownLabel) return "-1";
    return class_names.at(static_cast<std::size_t>(label));
  }
};

}  // namespace fhc::ml
