// Balanced class weighting (scikit-learn's class_weight="balanced").
//
// The paper addresses its heavily imbalanced 92-class dataset by weighting
// classes inversely proportional to frequency:
//     w_c = n_samples / (n_classes * count_c)
// so every class contributes equal total weight to the loss.
#pragma once

#include <vector>

namespace fhc::ml {

/// Per-class weights over labels 0..max(labels). Classes absent from
/// `labels` get weight 0.
std::vector<double> balanced_class_weights(const std::vector<int>& labels);

/// Per-sample weights: w[i] = class weight of labels[i].
std::vector<double> balanced_sample_weights(const std::vector<int>& labels);

}  // namespace fhc::ml
