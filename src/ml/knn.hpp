// k-Nearest-Neighbours classifier — one of the paper's named future-work
// comparators (Section 6). Brute-force Euclidean search over the feature
// matrix; adequate at this dataset scale and exact, which matters for a
// baseline.
#pragma once

#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace fhc::ml {

struct KnnParams {
  int k = 5;
  bool distance_weighted = true;  // votes weighted by 1/(dist + eps)
};

class KnnClassifier {
 public:
  void fit(const Matrix& x, const std::vector<int>& y, int n_classes,
           const KnnParams& params);

  /// Class-probability vector from (weighted) neighbour votes.
  std::vector<double> predict_proba(std::span<const float> row) const;
  int predict(std::span<const float> row) const;

  int n_classes() const noexcept { return n_classes_; }

 private:
  Matrix x_;
  std::vector<int> y_;
  int n_classes_ = 0;
  KnnParams params_;
};

}  // namespace fhc::ml
