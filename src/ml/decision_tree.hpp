// CART decision tree with weighted samples — the forest's base learner.
//
// Axis-aligned binary splits chosen by weighted Gini impurity (or entropy)
// decrease, grown depth-first. Supports per-sample weights (how balanced
// class weighting and bootstrap multiplicities enter), feature
// subsampling per node (max_features, the forest's decorrelation knob) and
// the usual stopping rules. Leaves store weighted class-probability
// vectors so predict_proba() works exactly like scikit-learn's.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace fhc::ml {

enum class Criterion { kGini, kEntropy };

struct TreeParams {
  Criterion criterion = Criterion::kGini;
  int max_depth = 0;            // 0 = unlimited
  int min_samples_split = 2;    // node must have >= this many samples to split
  int min_samples_leaf = 1;     // each child must keep >= this many samples
  int max_features = 0;         // features tried per node; 0 = all, -1 = sqrt(d)
};

class DecisionTree {
 public:
  struct Node {
    // Internal nodes: feature/threshold and child links; leaves:
    // probability distribution (left == -1 marks a leaf).
    int feature = -1;
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t proba_offset = -1;  // into proba_pool() for leaves
  };

  /// Fits on rows of `x` with labels in 0..n_classes-1. `sample_weight`
  /// may be empty (all ones). `rng` drives feature subsampling only.
  void fit(const Matrix& x, const std::vector<int>& y, int n_classes,
           std::span<const double> sample_weight, const TreeParams& params,
           fhc::util::Rng& rng);

  /// Class-probability vector for one sample (size n_classes).
  std::vector<double> predict_proba(std::span<const float> row) const;

  /// Adds this tree's leaf distribution for `row` into `out` (size
  /// n_classes) — the allocation-free primitive predict_proba wraps, and
  /// what the forest's nested reference path accumulates tree by tree.
  void accumulate_proba(std::span<const float> row, std::span<double> out) const;

  /// argmax of predict_proba.
  int predict(std::span<const float> row) const;

  /// Weighted-impurity-decrease importances, unnormalized (the forest
  /// normalizes after averaging). Size = n_features.
  const std::vector<double>& feature_importances() const noexcept {
    return importances_;
  }

  int n_classes() const noexcept { return n_classes_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }

  /// Largest feature index referenced by any interior node, or -1 for a
  /// leaf-only tree — lets the forest validate loaded trees against its
  /// own n_features before predict_proba ever indexes a row.
  int max_feature_used() const noexcept;

  /// Raw fitted structure — what FlatForest packs into its SoA plan.
  std::span<const Node> nodes() const noexcept { return nodes_; }
  std::span<const float> proba_pool() const noexcept { return proba_pool_; }

  /// Serializes the fitted tree as whitespace-separated text (one line per
  /// node). load() restores an equivalent predictor; throws
  /// std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  /// Rebuilds a fitted tree from raw parts (the binary model-load path).
  /// Runs the same structural validation as load(); throws
  /// std::runtime_error when links or offsets are out of range.
  void restore(std::vector<Node> nodes, std::vector<float> proba_pool,
               std::vector<double> importances, int n_classes, int depth);

 private:
  struct BuildContext;  // defined in the .cpp

  void validate_structure() const;

  std::int32_t build_node(BuildContext& ctx, std::vector<std::size_t>& indices,
                          int current_depth);

  std::vector<Node> nodes_;
  std::vector<float> proba_pool_;  // concatenated leaf distributions
  std::vector<double> importances_;
  int n_classes_ = 0;
  int depth_ = 0;
};

}  // namespace fhc::ml
