// FlatForest — the compiled, cache-friendly inference plan for a fitted
// RandomForest.
//
// predict_proba walks pointer-chased per-tree Node arrays and pays one
// heap allocation per tree per row; at service rates (every submitted
// binary classified in a Slurm prolog) that is the hot path. FlatForest
// packs every tree's nodes into contiguous structure-of-arrays sections —
// feature[], threshold[], child[] (2 per node), leaf_offset[] — with all
// leaf distributions in one shared float pool, and walks a *block* of rows
// through all trees tree-major: each tree's few KB of nodes stay hot in
// L1/L2 across the whole row block instead of being re-missed per row.
//
// Bit-identity contract: every accumulation is `double += float` over
// trees in index order, then one multiply by 1/n_trees — exactly the
// operation sequence of the nested DecisionTree::predict_proba loop, so
// plan output is bit-identical to the nested reference path (property
// test in tests/ml/test_flat_forest.cpp).
//
// The plan's backing buffer IS the payload of the binary model format
// (RandomForest::save_binary writes it verbatim behind a small header),
// which is what makes mmap'd zero-copy model load possible: attach() can
// point the section spans straight into a ModelMap'd file, so a RELOAD
// parses no text and copies none of the node data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "ml/matrix.hpp"

namespace fhc::ml {

class DecisionTree;

class FlatForest {
 public:
  /// Shape of a plan — the binary header carries exactly these counts.
  struct Shape {
    std::size_t n_classes = 0;
    std::size_t n_features = 0;
    std::size_t tree_count = 0;
    std::size_t total_nodes = 0;
    std::size_t leaf_pool = 0;  // floats in the shared leaf pool
  };

  FlatForest() = default;

  /// Compiles fitted trees into an owned SoA payload.
  static FlatForest build(std::span<const DecisionTree> trees, int n_classes,
                          std::size_t n_features);

  /// Adopts an existing payload (an owned buffer or an mmap'd model file)
  /// without copying the section data. `keepalive` owns the bytes; the
  /// plan holds it for its lifetime. `payload` must be 8-byte aligned and
  /// exactly payload_size(shape) long. Validates every link and offset so
  /// a corrupt or crafted file cannot cause an out-of-range walk; throws
  /// std::runtime_error on any violation.
  static FlatForest attach(std::span<const std::byte> payload, const Shape& shape,
                           std::shared_ptr<const void> keepalive);

  /// Payload bytes a plan of this shape occupies (sections + alignment
  /// padding) — what save_binary writes after the header.
  static std::size_t payload_size(const Shape& shape);

  /// The format's alignment quantum: section math here and the classifier
  /// file's forest-offset padding must round with the SAME function, so
  /// both use this one.
  static constexpr std::size_t align8(std::size_t n) {
    return (n + 7) & ~std::size_t{7};
  }

  bool compiled() const noexcept { return !node_base_.empty(); }
  int n_classes() const noexcept { return static_cast<int>(shape_.n_classes); }
  const Shape& shape() const noexcept { return shape_; }
  std::span<const std::byte> payload() const noexcept { return payload_; }

  /// Sums leaf distributions over all trees for rows [begin, end) into
  /// `acc` ((end-begin) x n_classes row-major doubles, zeroed here) —
  /// tree-major, zero allocation. Callers scale by 1/tree_count.
  void accumulate_block(const Matrix& rows, std::size_t begin, std::size_t end,
                        std::span<double> acc) const;

  /// The accumulation primitive of every predict path: adds one
  /// contiguous leaf distribution into a row accumulator, acc[c] +=
  /// leaf[c] for each class in ascending order. Restructured for
  /// vectorization (__restrict operands, 4-wide unroll) — per class
  /// element it is still exactly one `double += float`, so the
  /// bit-identity contract with the nested walk is untouched. Exposed
  /// for the BM_LeafAccumulate bench pair and unit tests; `acc` and
  /// `leaf` must not overlap and must both hold `n_classes` elements.
  static void accumulate_leaf(std::span<double> acc, std::span<const float> leaf);

  /// Mean class probabilities for one row into caller-owned `out`
  /// (size n_classes) — allocation-free single-row predict.
  void predict_proba(std::span<const float> row, std::span<double> out) const;

  /// Mean class probabilities for rows [begin, end) of `rows`, written to
  /// the same row indices of `out` (shape rows.rows() x n_classes, float,
  /// cast after double accumulation exactly like the nested matrix path).
  /// No per-call allocation beyond a reused thread-local scratch.
  void predict_proba_block(const Matrix& rows, std::size_t begin, std::size_t end,
                           Matrix& out) const;

  /// Whole-matrix convenience: predict_proba_block over every row.
  void predict_proba_block(const Matrix& rows, Matrix& out) const;

  // --- section views (binary load reconstruction, tests) ----------------
  std::span<const std::uint32_t> node_base() const noexcept { return node_base_; }
  std::span<const std::uint32_t> leaf_base() const noexcept { return leaf_base_; }
  std::span<const std::uint32_t> depths() const noexcept { return depth_; }
  std::span<const std::int32_t> features() const noexcept { return feature_; }
  std::span<const float> thresholds() const noexcept { return threshold_; }
  std::span<const std::int32_t> children() const noexcept { return child_; }
  std::span<const std::int32_t> leaf_offsets() const noexcept { return leaf_offset_; }
  std::span<const float> leaf_pool() const noexcept { return leaf_pool_; }
  /// Per-tree unnormalized importances, tree-major (tree_count x n_features).
  std::span<const double> importances() const noexcept { return importances_; }

 private:
  Shape shape_;
  std::span<const std::byte> payload_;

  // Views into payload_ — node_base_/leaf_base_ carry tree_count + 1
  // prefix-sum entries, child_ two entries per node (left, right), and
  // leaf_offset_ a global pool offset per node (-1 for interior nodes).
  std::span<const std::uint32_t> node_base_;
  std::span<const std::uint32_t> leaf_base_;
  std::span<const std::uint32_t> depth_;
  std::span<const std::int32_t> feature_;
  std::span<const float> threshold_;
  std::span<const std::int32_t> child_;
  std::span<const std::int32_t> leaf_offset_;
  std::span<const float> leaf_pool_;
  std::span<const double> importances_;

  std::shared_ptr<const void> storage_;  // owns payload_'s bytes
};

}  // namespace fhc::ml
