// Deterministic random number generation for the whole library.
//
// Every stochastic step in the system (corpus genome generation, version
// mutation, train/test splitting, bootstrap resampling, feature
// subsampling) draws from an Rng seeded through SplitMix64 stream
// derivation, so a single experiment seed reproduces the entire pipeline
// bit-for-bit across runs and thread counts.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string_view>
#include <vector>

namespace fhc::util {

/// SplitMix64 step. Used both as a standalone mixer for seed derivation and
/// to bootstrap the xoshiro256** state. Reference: Steele, Lea, Flood,
/// "Fast splittable pseudorandom number generators" (OOPSLA 2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a string into a 64-bit value (FNV-1a folded through SplitMix64).
/// Used to derive per-application-class seeds from class names so corpus
/// content is stable under reordering of the class table.
constexpr std::uint64_t hash_string_seed(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 256-bit state.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if ever
/// needed, but we provide the distributions we use directly (inclusive
/// bounded ints, unit reals, shuffles) to keep results identical across
/// standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform real in [0, 1) with 53 bits of randomness.
  double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator state a pure function of the number of draws).
  double gaussian() noexcept {
    for (;;) {
      const double u = uniform_real(-1.0, 1.0);
      const double v = uniform_real(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        // sqrt(-2 ln s / s) * u
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Fisher–Yates shuffle, deterministic given the generator state.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks one element of a non-empty vector uniformly.
  template <typename T>
  const T& choice(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Derives an independent child generator; `salt` distinguishes streams
  /// drawn from the same parent (e.g. one stream per tree in the forest).
  Rng split(std::uint64_t salt) noexcept {
    std::uint64_t s = (*this)() ^ splitmix64(salt);
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Returns a vector {0, 1, ..., n-1} shuffled with `rng`; the standard way
/// we derive random orderings for splits and bootstraps.
inline std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  return idx;
}

}  // namespace fhc::util
