#include "util/sectioned.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "util/fault_inject.hpp"

namespace fhc::util {

namespace {

constexpr std::size_t kHeaderSize = 24;  // magic + count + reserved + checksum
constexpr std::size_t kAlign = 64;
// A table bigger than this cannot be legitimate (the classifier writes
// ~16 sections); it bounds the count read from untrusted bytes before any
// multiplication.
constexpr std::uint32_t kMaxSections = 4096;

constexpr std::size_t align_up(std::size_t n) {
  return (n + (kAlign - 1)) & ~(kAlign - 1);
}

std::array<char, 8> pack_tag(std::string_view tag) {
  if (tag.empty() || tag.size() > 8) {
    throw std::invalid_argument("sectioned: tag must be 1..8 chars");
  }
  std::array<char, 8> out{};
  std::memcpy(out.data(), tag.data(), tag.size());
  return out;
}

/// The table checksum covers the 16-byte header prefix (magic, count,
/// reserved) as well as the entries, so no header byte is unprotected.
std::uint64_t table_checksum_of(std::span<const std::byte> header_prefix,
                                std::span<const SectionEntry> entries) {
  return checksum64(std::as_bytes(entries), checksum64(header_prefix));
}

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("sectioned: " + what);
}

/// fsync a path opened read-only (used for the directory after rename).
void fsync_path(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint64_t checksum64(std::span<const std::byte> bytes,
                         std::uint64_t state) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, bytes.data() + i, 8);
    state = (state ^ lane) * kPrime;
  }
  if (i < bytes.size()) {
    std::uint64_t lane = 0;  // zero-padded tail lane
    std::memcpy(&lane, bytes.data() + i, bytes.size() - i);
    state = (state ^ lane) * kPrime;
  }
  // Folding the length in keeps "abc" and "abc\0" (padded tail) distinct.
  return (state ^ static_cast<std::uint64_t>(bytes.size())) * kPrime;
}

std::string_view SectionEntry::tag_view() const noexcept {
  std::size_t len = 0;
  while (len < tag.size() && tag[len] != '\0') ++len;
  return {tag.data(), len};
}

SectionedWriter::SectionedWriter(std::string_view magic) {
  if (magic.size() != 8) {
    throw std::invalid_argument("sectioned: magic must be 8 chars");
  }
  std::memcpy(magic_.data(), magic.data(), 8);
}

void SectionedWriter::add(std::string_view tag, std::span<const std::byte> bytes) {
  const std::array<char, 8> packed = pack_tag(tag);
  for (const Pending& section : sections_) {
    if (section.tag == packed) {
      throw std::invalid_argument("sectioned: duplicate tag '" +
                                  std::string(tag) + "'");
    }
  }
  sections_.push_back(Pending{packed, bytes});
}

void SectionedWriter::add_copy(std::string_view tag,
                               std::span<const std::byte> bytes) {
  owned_.emplace_back(bytes.begin(), bytes.end());
  add(tag, owned_.back());
}

std::size_t SectionedWriter::total_size() const noexcept {
  std::size_t at = align_up(kHeaderSize + sections_.size() * sizeof(SectionEntry));
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (i > 0) at = align_up(at);
    at += sections_[i].bytes.size();
  }
  return at;
}

void SectionedWriter::write_to(std::ostream& out) const {
  // Lay the table out first (offsets are deterministic), then stream the
  // header, table and payloads in order.
  std::vector<SectionEntry> entries(sections_.size());
  std::size_t at = align_up(kHeaderSize + sections_.size() * sizeof(SectionEntry));
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    at = align_up(at);
    entries[i].tag = sections_[i].tag;
    entries[i].offset = at;
    entries[i].size = sections_[i].bytes.size();
    entries[i].checksum = checksum64(sections_[i].bytes);
    at += sections_[i].bytes.size();
  }

  out.write(magic_.data(), 8);
  const auto count = static_cast<std::uint32_t>(sections_.size());
  const std::uint32_t reserved = 0;
  std::array<std::byte, 16> header_prefix{};
  std::memcpy(header_prefix.data(), magic_.data(), 8);
  std::memcpy(header_prefix.data() + 8, &count, sizeof count);
  std::memcpy(header_prefix.data() + 12, &reserved, sizeof reserved);
  const std::uint64_t table_checksum = table_checksum_of(header_prefix, entries);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(&reserved), sizeof reserved);
  out.write(reinterpret_cast<const char*>(&table_checksum), sizeof table_checksum);
  out.write(reinterpret_cast<const char*>(entries.data()),
            static_cast<std::streamsize>(entries.size() * sizeof(SectionEntry)));

  static constexpr char kZeros[kAlign] = {};
  std::size_t written = kHeaderSize + entries.size() * sizeof(SectionEntry);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const std::size_t pad = static_cast<std::size_t>(entries[i].offset) - written;
    out.write(kZeros, static_cast<std::streamsize>(pad));
    if (!sections_[i].bytes.empty()) {  // empty spans may carry a null data()
      out.write(reinterpret_cast<const char*>(sections_[i].bytes.data()),
                static_cast<std::streamsize>(sections_[i].bytes.size()));
    }
    written = static_cast<std::size_t>(entries[i].offset) + sections_[i].bytes.size();
  }
  if (!out) bad("write failed");
}

void SectionedWriter::write_file(const std::string& path) const {
  // Daemons mmap the live model; truncating the inode in place would
  // SIGBUS them, and renaming an unflushed temp could surface a torn
  // model after a crash. So: sibling temp -> fsync(file) -> rename ->
  // fsync(dir). Readers keep their old mapping; a crash at any point
  // leaves a complete file under `path`.
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) bad("cannot open " + tmp);
    write_to(out);
    out.flush();
    if (!out) bad("write failed for " + tmp);
    out.close();
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0) bad("cannot reopen " + tmp + " for fsync");
    const int rc = fi::fsync(fd);
    ::close(fd);
    if (rc != 0) bad("fsync failed for " + tmp);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::error_code error;
  if (const int injected = fi::injected(FaultSite::kRename); injected != 0) {
    error = std::error_code(injected, std::generic_category());
  } else {
    std::filesystem::rename(tmp, path, error);
  }
  if (error) {
    std::filesystem::remove(tmp, error);
    bad("cannot replace " + path);
  }
  const std::filesystem::path dir = std::filesystem::path(path).parent_path();
  fsync_path(dir.empty() ? "." : dir.c_str());
}

SectionedView SectionedView::attach(std::span<const std::byte> bytes,
                                    std::string_view magic) {
  if (magic.size() != 8) throw std::invalid_argument("sectioned: magic must be 8 chars");
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 != 0) {
    bad("attach base not 8-byte aligned");
  }
  if (bytes.size() < kHeaderSize) bad("truncated header");
  if (std::memcmp(bytes.data(), magic.data(), 8) != 0) bad("bad magic");

  std::uint32_t count = 0;
  std::uint64_t table_checksum = 0;
  std::memcpy(&count, bytes.data() + 8, sizeof count);
  if (count > kMaxSections) bad("implausible section count");
  std::memcpy(&table_checksum, bytes.data() + 16, sizeof table_checksum);
  const std::size_t table_end = kHeaderSize + std::size_t{count} * sizeof(SectionEntry);
  if (table_end > bytes.size()) bad("truncated section table");

  SectionedView view;
  view.bytes_ = bytes;
  view.entries_ = {reinterpret_cast<const SectionEntry*>(bytes.data() + kHeaderSize),
                   count};
  if (table_checksum_of(bytes.first(16), view.entries_) != table_checksum) {
    bad("section table checksum mismatch");
  }

  std::uint64_t prev_end = table_end;
  for (const SectionEntry& entry : view.entries_) {
    if (entry.offset % kAlign != 0) bad("section offset not 64-byte aligned");
    if (entry.offset < prev_end) bad("sections overlap or out of order");
    if (entry.offset > bytes.size() || entry.size > bytes.size() - entry.offset) {
      bad("section out of bounds");
    }
    prev_end = entry.offset + entry.size;
  }
  return view;
}

bool SectionedView::find(std::string_view tag,
                         std::span<const std::byte>& out) const noexcept {
  for (const SectionEntry& entry : entries_) {
    if (entry.tag_view() == tag) {
      out = bytes_.subspan(static_cast<std::size_t>(entry.offset),
                           static_cast<std::size_t>(entry.size));
      return true;
    }
  }
  return false;
}

std::span<const std::byte> SectionedView::section(std::string_view tag) const {
  std::span<const std::byte> out;
  if (!find(tag, out)) bad("missing section '" + std::string(tag) + "'");
  return out;
}

void SectionedView::verify_checksums() const {
  for (const SectionEntry& entry : entries_) {
    const auto payload = bytes_.subspan(static_cast<std::size_t>(entry.offset),
                                        static_cast<std::size_t>(entry.size));
    if (checksum64(payload) != entry.checksum) {
      bad("checksum mismatch in section '" + std::string(entry.tag_view()) + "'");
    }
  }
}

}  // namespace fhc::util
