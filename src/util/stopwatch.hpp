// Monotonic wall-clock timer for coarse pipeline phase timings.
#pragma once

#include <chrono>

namespace fhc::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fhc::util
