// Read-only memory map of a model file.
//
// The binary model format is designed to be consumed in place (FlatForest
// attaches its SoA sections straight to the mapped bytes), so a
// `fhc_serve RELOAD` maps the file once instead of re-parsing text — the
// kernel pages node data in on demand and shares it across processes.
// On platforms without mmap (or when mapping fails) the file is read into
// an owned buffer instead; callers see the same bytes() either way.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fhc::util {

class ModelMap {
 public:
  /// Maps (or, as a fallback, reads) `path`. Throws std::runtime_error
  /// when the file cannot be opened or mapped.
  explicit ModelMap(const std::string& path);
  ~ModelMap();

  ModelMap(const ModelMap&) = delete;
  ModelMap& operator=(const ModelMap&) = delete;

  /// The whole file. Page-aligned when mapped() is true.
  std::span<const std::byte> bytes() const noexcept { return {data_, size_}; }

  /// True when the bytes come from an mmap (false = owned-buffer fallback).
  bool mapped() const noexcept { return mapped_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;  // used when not mapped
};

}  // namespace fhc::util
