#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace fhc::util {

namespace {
// Set while a thread is executing inside a pool worker. parallel_for uses
// it to degrade to serial execution instead of deadlocking on wait_idle()
// when invoked from within a task (nested parallelism).
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    const std::exception_ptr error = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    t_inside_worker = true;
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    t_inside_worker = false;
    {
      // The worker must be marked done on every path — a throwing task
      // previously escaped to std::terminate and left in_flight_ stuck,
      // deadlocking wait_idle() forever.
      std::lock_guard lock(mutex_);
      if (error && !first_exception_) first_exception_ = std::move(error);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  if (pool.size() <= 1 || n <= grain || t_inside_worker) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic block scheduling: an atomic cursor hands out grain-sized blocks
  // so uneven per-index cost (e.g. same-class vs cross-class digest
  // comparisons) still balances across workers.
  //
  // Completion and exceptions are tracked in per-call state, not the pool:
  // this call returns as soon as ITS tasks finish rather than at a global
  // pool-quiescent instant, and concurrent batches each receive their own
  // failure. (Scheduling is still shared: tasks queue FIFO behind whatever
  // is already running, so a batch can wait for workers to free up.)
  struct BatchState {
    std::atomic<std::size_t> cursor;
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining = 0;  // tasks of THIS call still running
    std::exception_ptr error;
  };
  auto state = std::make_shared<BatchState>();
  state->cursor.store(begin);
  const std::size_t tasks = std::min(pool.size(), (n + grain - 1) / grain);
  state->remaining = tasks;
  for (std::size_t t = 0; t < tasks; ++t) {
    pool.submit([state, end, grain, &fn] {
      try {
        while (!state->failed.load(std::memory_order_relaxed)) {
          const std::size_t lo = state->cursor.fetch_add(grain);
          if (lo >= end) break;
          const std::size_t hi = std::min(end, lo + grain);
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        }
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
      std::lock_guard lock(state->mutex);
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }
  {
    std::unique_lock lock(state->mutex);
    state->done_cv.wait(lock, [&state] { return state->remaining == 0; });
  }
  if (state->failed.load()) std::rethrow_exception(state->error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t grain = std::max<std::size_t>(1, n / (pool.size() * 8));
  parallel_for(pool, 0, n, grain, fn);
}

}  // namespace fhc::util
