#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace fhc::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string pad_left(std::string text, std::size_t width) {
  if (text.size() < width) text.insert(0, width - text.size(), ' ');
  return text;
}

std::string pad_right(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

}  // namespace fhc::util
