// Plain-text table rendering for the bench harness: produces the same
// row/column layout the paper's tables use (sklearn classification-report
// style for Table 4, simple two-column layouts for Tables 1/3/5).
#pragma once

#include <string>
#include <vector>

namespace fhc::util {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

class TextTable {
 public:
  /// `headers` defines the column count; all rows must match it.
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignments = {});

  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with single-space-padded columns and '-' rules.
  std::string render() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace fhc::util
