// Environment-variable knobs for the bench harness.
//
//   FHC_SCALE   — corpus scale factor in (0, 1]; 1.0 = the paper's full
//                 5333-sample dataset. Smaller values shrink every class
//                 proportionally (min 3 samples) for quick runs.
//   FHC_SEED    — experiment master seed (default 42).
//   FHC_THREADS — worker-thread override for the shared pool.
#pragma once

#include <cstdint>
#include <string>

namespace fhc::util {

/// Reads env var `name`; returns `fallback` when unset or unparsable.
double env_double(const std::string& name, double fallback);
std::int64_t env_int(const std::string& name, std::int64_t fallback);
std::string env_string(const std::string& name, const std::string& fallback);

/// Corpus scale for benches: FHC_SCALE clamped to (0, 1].
double bench_scale();

/// Experiment master seed for benches: FHC_SEED (default 42).
std::uint64_t bench_seed();

}  // namespace fhc::util
