#include "util/base64.hpp"

#include <array>
#include <stdexcept>

namespace fhc::util {

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.push_back(kBase64Alphabet[(v >> 6) & 63]);
    out.push_back(kBase64Alphabet[v & 63]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.push_back(kBase64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

namespace {

std::array<std::int8_t, 256> build_reverse_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (std::size_t i = 0; i < kBase64Alphabet.size(); ++i) {
    table[static_cast<unsigned char>(kBase64Alphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

}  // namespace

std::string base64_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> kReverse = build_reverse_table();
  if (text.size() % 4 != 0) throw std::invalid_argument("base64: length not multiple of 4");
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        if (i + 4 != text.size() || j < 2) throw std::invalid_argument("base64: bad padding");
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) throw std::invalid_argument("base64: data after padding");
      const std::int8_t d = kReverse[static_cast<unsigned char>(c)];
      if (d < 0) throw std::invalid_argument("base64: invalid character");
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xff));
  }
  return out;
}

}  // namespace fhc::util
