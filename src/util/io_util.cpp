#include "util/io_util.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace fhc::util {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_file: cannot open " + path.string());
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> data(size);
  if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()),
                           static_cast<std::streamsize>(size))) {
    throw std::runtime_error("read_file: short read on " + path.string());
  }
  return data;
}

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> data) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_file: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("write_file: short write on " + path.string());
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  write_file(path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::vector<std::filesystem::path> list_files(const std::filesystem::path& root) {
  std::vector<std::filesystem::path> out;
  if (!std::filesystem::exists(root)) return out;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fhc::util
