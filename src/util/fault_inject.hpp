// util::FaultInjector — deterministic, process-wide fault injection for
// the serving stack's environment dependencies.
//
// Every error branch in the daemon (a recv() that returns ECONNRESET, an
// accept4() hitting EMFILE, an mmap() denied mid-RELOAD, an fsync()
// failing under a full disk) is dead code until something exercises it.
// This layer makes those branches drivable from tests and from the
// fhc_chaos sweep tool without mocking the kernel: the serving code
// calls thin `fi::` wrappers instead of raw syscalls, and each wrapper
// asks the injector whether this call should fail before forwarding to
// the real thing.
//
// Schedules are seeded and deterministic:
//   * fail-the-Nth-call   — the Nth intercepted call at a site fails
//                           (per-site counters reset at arm());
//   * fail-with-probability — each call fails with probability p drawn
//                           from a SplitMix64 stream seeded at arm();
//   * fail-at-site        — p = 1.0: every call at the site fails (until
//                           max_failures is spent).
//
// Disarmed cost is one relaxed atomic load per wrapped call — no locks,
// no counters, no branches beyond the check — so the wrappers are
// compiled in always (release binaries included) and the chaos harness
// drives the very binaries that ship.
//
// The injector is process-wide: arm() in a test affects every wrapped
// site in the process. Wrappers are placed only at *server-side* call
// sites (SocketServer, ModelMap, SectionedWriter), so in-process clients
// driving a chaos run stay healthy.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <atomic>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/types.h>
#endif
#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace fhc::util {

enum class FaultSite : unsigned {
  kRead = 0,    // recv()/read() on a connection
  kWrite,       // send()/write() on a connection
  kAccept,      // accept4() on a listener
  kEpollWait,   // the event loop's epoll_wait()
  kEventfd,     // the wake eventfd (read and write sides)
  kMmap,        // model file mapping
  kFsync,       // model save durability barrier
  kRename,      // model save atomic replace
  kAlloc,       // allocation guard (throws std::bad_alloc when fired)
};
inline constexpr std::size_t kFaultSiteCount = 9;

/// The canonical site names ("read", "write", "accept", "epoll_wait",
/// "eventfd", "mmap", "fsync", "rename", "alloc") — used by the spec
/// parser and the chaos tools' reports.
const char* fault_site_name(FaultSite site) noexcept;

/// The errno a real failure at this site most plausibly carries
/// (ECONNRESET for read, ECONNABORTED for accept, ENOMEM for mmap, ...).
/// Chaos sweeps default to it so the exercised branches are the ones
/// production would take.
int fault_default_errno(FaultSite site) noexcept;

/// One injection rule. `nth` and `probability` compose: the rule fires on
/// the exact Nth intercepted call at `site` and/or on any call with
/// probability p. `max_failures` bounds how many times it fires in total
/// (so a "fail once then recover" schedule is nth=N, max_failures=1 —
/// the default).
struct FaultRule {
  FaultSite site = FaultSite::kRead;
  std::uint64_t nth = 0;        // 1-based call index at the site; 0 = off
  double probability = 0.0;     // per-call failure probability; 1.0 = always
  int error_code = 0;           // errno to inject; 0 = fault_default_errno(site)
  std::uint64_t max_failures = 1;
};

/// A full schedule: the seed drives every probability draw, so the same
/// plan injects the same faults on every run.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

class FaultInjector {
 public:
  /// The process-wide instance (constant-initialized; safe to use from
  /// static constructors and signal-free contexts).
  static FaultInjector& instance() noexcept;

  /// Installs `plan` and starts injecting. Resets all per-site counters.
  void arm(FaultPlan plan);

  /// Stops injecting (wrappers become passthrough again) and clears the
  /// plan. Counters keep their values for post-run assertions.
  void disarm();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// The hot-path gate called by every wrapper: returns the errno to
  /// inject at `site`, or 0 to let the real call proceed. Disarmed, this
  /// is a single relaxed atomic load.
  int check(FaultSite site) noexcept;

  struct SiteCounters {
    std::uint64_t calls = 0;     // intercepted while armed
    std::uint64_t injected = 0;  // failures delivered
  };

  std::array<SiteCounters, kFaultSiteCount> counters() const;
  std::uint64_t total_injected() const;

  /// Parses a schedule spec into `plan.rules` (the seed is left alone):
  ///
  ///   spec  := rule (';' rule)*
  ///   rule  := site (':' key '=' value)*
  ///   site  := read|write|accept|epoll_wait|eventfd|mmap|fsync|rename|alloc
  ///   key   := nth | p | errno | max
  ///
  /// errno accepts a symbolic name (EIO, EINTR, EAGAIN, ECONNRESET,
  /// ECONNABORTED, EMFILE, ENOMEM, ENOSPC, EPIPE) or a decimal number.
  /// A rule with neither nth nor p fails every call (fail-at-site).
  /// Returns false and fills `error` on a malformed spec.
  static bool parse_spec(const std::string& spec, FaultPlan& plan,
                         std::string& error);

  /// Arms from the FHC_FAULT environment variable (spec as above) with
  /// FHC_FAULT_SEED (default 1). Returns true when armed, false when the
  /// variable is unset; a malformed spec fills `error` and leaves the
  /// injector disarmed. This is how `fhc_serve` under ci_chaos_smoke.sh
  /// runs the shipped binary with faults scheduled.
  bool arm_from_env(std::string& error);

 private:
  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;  // armed-path state below
  std::vector<FaultRule> rules_;
  std::vector<std::uint64_t> fired_;  // per-rule injection counts
  std::uint64_t rng_state_ = 1;
  std::array<SiteCounters, kFaultSiteCount> counters_{};
};

// ---- injectable syscall wrappers ----------------------------------------
// Drop-in signatures: same return/errno contract as the real call, with
// the injector consulted first. Serving code calls these instead of the
// raw syscall; everything else (clients, one-shot CLI paths) stays raw.
namespace fi {

#if defined(__unix__) || defined(__APPLE__)
ssize_t read(int fd, void* buf, std::size_t count) noexcept;
ssize_t write(int fd, const void* buf, std::size_t count) noexcept;
ssize_t recv(int fd, void* buf, std::size_t count, int flags) noexcept;
ssize_t send(int fd, const void* buf, std::size_t count, int flags) noexcept;
int fsync(int fd) noexcept;
void* mmap(void* addr, std::size_t length, int prot, int flags, int fd,
           off_t offset) noexcept;
#endif

#if defined(__linux__)
int accept4(int fd, ::sockaddr* addr, ::socklen_t* addrlen,
            int flags) noexcept;
int epoll_wait(int epfd, ::epoll_event* events, int maxevents,
               int timeout) noexcept;
ssize_t eventfd_read(int fd, std::uint64_t& value) noexcept;
ssize_t eventfd_write(int fd, std::uint64_t value) noexcept;
#endif

/// Generic gate for failure points that are not raw syscalls (e.g. the
/// std::filesystem::rename in the model save path): returns the injected
/// errno, or 0.
int injected(FaultSite site) noexcept;

/// Allocation hook: throws std::bad_alloc when a kAlloc rule fires.
/// Placed in front of the serving stack's unbounded allocations (frame
/// payload buffers, service queue growth).
void alloc_guard();

}  // namespace fi

}  // namespace fhc::util
