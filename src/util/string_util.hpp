// Small string helpers shared across subsystems.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fhc::util {

/// Splits `text` on `sep`, keeping empty fields ("a::b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `c` is printable ASCII (0x20..0x7e), the `strings`(1) criterion.
constexpr bool is_printable_ascii(unsigned char c) noexcept {
  return c >= 0x20 && c <= 0x7e;
}

/// Lowercases ASCII in place and returns the argument (no locale).
std::string to_lower(std::string text);

/// Formats `value` with `decimals` fixed decimals (classification report).
std::string fixed(double value, int decimals);

/// Left/right pads `text` with spaces to `width` (no truncation).
std::string pad_left(std::string text, std::size_t width);
std::string pad_right(std::string text, std::size_t width);

}  // namespace fhc::util
