// Filesystem helpers with explicit error reporting (exceptions carry the
// offending path). Used by Corpus::materialize() and the examples.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace fhc::util {

/// Reads an entire file into memory. Throws std::runtime_error on failure.
std::vector<std::uint8_t> read_file(const std::filesystem::path& path);

/// Writes `data` to `path`, creating parent directories. Throws on failure.
void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> data);
void write_file(const std::filesystem::path& path, const std::string& text);

/// Recursively lists regular files under `root`, sorted for determinism.
std::vector<std::filesystem::path> list_files(const std::filesystem::path& root);

}  // namespace fhc::util
