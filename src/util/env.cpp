#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace fhc::util {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  return value != nullptr && *value != '\0' ? std::string(value) : fallback;
}

double env_double(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return end != value ? parsed : fallback;
}

double bench_scale() {
  return std::clamp(env_double("FHC_SCALE", 1.0), 1e-3, 1.0);
}

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("FHC_SEED", 42));
}

}  // namespace fhc::util
