#include "util/model_map.hpp"

#include <stdexcept>

#include "util/fault_inject.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FHC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FHC_HAVE_MMAP 0
#include <fstream>
#endif

namespace fhc::util {

#if FHC_HAVE_MMAP

ModelMap::ModelMap(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("ModelMap: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("ModelMap: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // Nothing to map; bytes() is an empty span.
    ::close(fd);
    return;
  }
  void* addr = fi::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) throw std::runtime_error("ModelMap: mmap failed for " + path);
  data_ = static_cast<const std::byte*>(addr);
  mapped_ = true;
}

ModelMap::~ModelMap() {
  if (mapped_) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

#else  // no mmap: read the file into an owned buffer

ModelMap::ModelMap(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("ModelMap: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  fallback_.resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(fallback_.data()), size)) {
    throw std::runtime_error("ModelMap: read failed for " + path);
  }
  data_ = fallback_.data();
  size_ = fallback_.size();
}

ModelMap::~ModelMap() = default;

#endif

}  // namespace fhc::util
