// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Role in the reproduction: the paper contrasts fuzzy hashing against
// cryptographic hashing, which "can only be used to find exact matches"
// (Yamamoto et al., ISC'18). Our crypto-exact-match baseline in
// bench/ablation_models uses this digest.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace fhc::util {

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;

  /// Absorbs `data`; may be called repeatedly (streaming).
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Finalizes and returns the 32-byte digest. The object must be reset()
  /// before reuse.
  std::array<std::uint8_t, 32> finish() noexcept;

  /// One-shot convenience: lowercase hex digest of `data`.
  static std::string hex_digest(std::span<const std::uint8_t> data);
  static std::string hex_digest(std::string_view text);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace fhc::util
