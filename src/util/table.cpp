#include "util/table.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.hpp"

namespace fhc::util {

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no columns");
  if (alignments_.empty()) {
    alignments_.assign(headers_.size(), Align::Left);
  }
  if (alignments_.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: alignment count != column count");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      line += alignments_[c] == Align::Left ? pad_right(cells[c], widths[c])
                                            : pad_left(cells[c], widths[c]);
    }
    // Trailing spaces from a final left-aligned column are noise.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line;
  };

  std::size_t total = (headers_.size() - 1) * 2;
  for (const std::size_t w : widths) total += w;
  const std::string rule(total, '-');

  std::string out = render_cells(headers_);
  out += '\n';
  out += rule;
  out += '\n';
  for (const Row& row : rows_) {
    if (row.rule_before) {
      out += rule;
      out += '\n';
    }
    out += render_cells(row.cells);
    out += '\n';
  }
  return out;
}

}  // namespace fhc::util
