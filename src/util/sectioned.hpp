// Sectioned model container: the generic binary envelope behind the v2
// classifier model format.
//
// A container is an 8-byte caller-chosen magic, a section table, and the
// section payloads:
//
//   offset 0   magic[8]
//   offset 8   u32 section_count
//   offset 12  u32 reserved (zero)
//   offset 16  u64 table_checksum        (FNV-1a 64 over bytes [0, 16)
//                                         then the raw entries)
//   offset 24  section_count x 32-byte entries:
//                char tag[8]  (NUL-padded)
//                u64 offset   (from file start, 64-byte aligned)
//                u64 size     (bytes, may be zero)
//                u64 checksum (FNV-1a 64 over the section bytes)
//   ...        payloads, each at its 64-byte-aligned offset, zero padding
//              between them, emitted in table order without overlap.
//
// The point of the envelope is zero-copy attach: every section lands
// 64-byte aligned in the file, so an mmap of the whole container hands
// each consumer (FlatForest, the TrainIndex pools) a span it can use in
// place. SectionedView::attach validates the table shape — magic, bounds,
// alignment, ordering, table checksum — so a truncated or bit-flipped
// table is a clean error, never UB; verify_checksums() extends that to
// the payload bytes (a streaming pass, still far cheaper than any
// rebuild). Like the forest image, the container is little-endian and
// not an interchange format: it is written and read by the same
// toolchain.
//
// SectionedWriter::write_file carries the crash discipline a daemon
// mmap'ing the model needs: write a sibling temp file, fsync it, rename
// over the target, then fsync the directory — a torn or half-flushed
// model can never appear under the real name.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fhc::util {

/// The container's integrity primitive: FNV-1a-style mixing over 8-byte
/// little-endian lanes (tail zero-padded, total length folded in last),
/// continuing from `state` (pass the default to start fresh). One
/// multiply per 8 bytes keeps the mandatory verify pass on the RELOAD
/// path at memory-bandwidth-ish speed instead of byte-serial FNV's
/// ~1 GB/s. Not standard FNV-1a; like the rest of the container it is
/// written and read by the same toolchain.
std::uint64_t checksum64(std::span<const std::byte> bytes,
                         std::uint64_t state = 0xcbf29ce484222325ull) noexcept;

/// One section-table entry as it sits in the file.
struct SectionEntry {
  std::array<char, 8> tag{};  // NUL-padded
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;

  std::string_view tag_view() const noexcept;
};
static_assert(sizeof(SectionEntry) == 32);

class SectionedWriter {
 public:
  /// `magic` must be exactly 8 characters.
  explicit SectionedWriter(std::string_view magic);

  /// Appends a section referencing caller-owned bytes; they must stay
  /// alive until the final write_to/write_file. Tags are 1..8 chars,
  /// unique within one container.
  void add(std::string_view tag, std::span<const std::byte> bytes);

  /// Appends a section from a copy owned by the writer — for small
  /// metadata blocks built on the stack.
  void add_copy(std::string_view tag, std::span<const std::byte> bytes);

  /// Total container size in bytes if written now.
  std::size_t total_size() const noexcept;

  void write_to(std::ostream& out) const;

  /// Atomic, torn-write-safe emission: write `path + ".tmp"`, fsync it,
  /// rename over `path`, fsync the containing directory. A crash at any
  /// point leaves either the old complete file or the new complete file.
  void write_file(const std::string& path) const;

 private:
  std::array<char, 8> magic_{};
  struct Pending {
    std::array<char, 8> tag{};
    std::span<const std::byte> bytes;
  };
  std::vector<Pending> sections_;
  std::vector<std::vector<std::byte>> owned_;  // backing for add_copy
};

/// Read-only, zero-copy view of a container. Holds spans into the bytes
/// it was attached to; the caller keeps those bytes alive (typically via
/// the util::ModelMap keepalive chain).
class SectionedView {
 public:
  SectionedView() = default;

  /// Validates the envelope (magic, counts, table checksum, per-section
  /// bounds / 64-byte alignment / table-order non-overlap) and returns a
  /// view. Throws std::runtime_error on any malformed input; never reads
  /// out of bounds. `bytes.data()` must be 8-byte aligned (mmap and any
  /// new[]-backed buffer are).
  static SectionedView attach(std::span<const std::byte> bytes,
                              std::string_view magic);

  std::span<const SectionEntry> entries() const noexcept { return entries_; }

  /// Section payload by tag; throws std::runtime_error when absent.
  std::span<const std::byte> section(std::string_view tag) const;

  /// Section payload by tag, or an empty nullopt-like: {data=nullptr}.
  /// Returns true and sets `out` when found.
  bool find(std::string_view tag, std::span<const std::byte>& out) const noexcept;

  /// Recomputes every section checksum against the table. Throws
  /// std::runtime_error naming the first mismatching tag.
  void verify_checksums() const;

  std::span<const std::byte> bytes() const noexcept { return bytes_; }

 private:
  std::span<const std::byte> bytes_;
  std::span<const SectionEntry> entries_;
};

/// Typed view of a section: the payload reinterpreted as a span of POD
/// `T`. Throws when the size is not a multiple of sizeof(T) or the
/// payload is misaligned for T (cannot happen for 64-byte-aligned
/// sections of types with alignment <= 64, but checked anyway).
template <class T>
std::span<const T> section_as(const SectionedView& view, std::string_view tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::span<const std::byte> raw = view.section(tag);
  if (raw.size() % sizeof(T) != 0) {
    throw std::runtime_error("sectioned: section '" + std::string(tag) +
                             "' size not a multiple of element size");
  }
  if (reinterpret_cast<std::uintptr_t>(raw.data()) % alignof(T) != 0) {
    throw std::runtime_error("sectioned: section '" + std::string(tag) +
                             "' misaligned");
  }
  return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
}

}  // namespace fhc::util
