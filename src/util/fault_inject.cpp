#include "util/fault_inject.hpp"

#include <cerrno>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace fhc::util {

namespace {

// Constant-initialized so wrappers are usable from any point of the
// process lifetime without an init-order dependency.
constinit FaultInjector g_injector;

struct ErrnoName {
  const char* name;
  int value;
};

constexpr ErrnoName kErrnoNames[] = {
    {"EIO", EIO},         {"EINTR", EINTR},
    {"EAGAIN", EAGAIN},   {"ECONNRESET", ECONNRESET},
    {"ECONNABORTED", ECONNABORTED},
    {"EMFILE", EMFILE},   {"ENOMEM", ENOMEM},
    {"ENOSPC", ENOSPC},   {"EPIPE", EPIPE},
};

bool parse_errno(const std::string& text, int& out) {
  for (const ErrnoName& entry : kErrnoNames) {
    if (text == entry.name) {
      out = entry.value;
      return true;
    }
  }
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0) return false;
  out = static_cast<int>(value);
  return true;
}

bool parse_site(const std::string& text, FaultSite& out) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (text == fault_site_name(site)) {
      out = site;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kRead: return "read";
    case FaultSite::kWrite: return "write";
    case FaultSite::kAccept: return "accept";
    case FaultSite::kEpollWait: return "epoll_wait";
    case FaultSite::kEventfd: return "eventfd";
    case FaultSite::kMmap: return "mmap";
    case FaultSite::kFsync: return "fsync";
    case FaultSite::kRename: return "rename";
    case FaultSite::kAlloc: return "alloc";
  }
  return "?";
}

int fault_default_errno(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kRead: return ECONNRESET;
    case FaultSite::kWrite: return EPIPE;
    case FaultSite::kAccept: return ECONNABORTED;
    case FaultSite::kEpollWait: return EINTR;
    case FaultSite::kEventfd: return EAGAIN;
    case FaultSite::kMmap: return ENOMEM;
    case FaultSite::kFsync: return EIO;
    case FaultSite::kRename: return EIO;
    case FaultSite::kAlloc: return ENOMEM;
  }
  return EIO;
}

FaultInjector& FaultInjector::instance() noexcept { return g_injector; }

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard lock(mutex_);
  rules_ = std::move(plan.rules);
  for (FaultRule& rule : rules_) {
    if (rule.error_code == 0) rule.error_code = fault_default_errno(rule.site);
    // A rule with no trigger at all is fail-at-site (see parse_spec).
    if (rule.nth == 0 && rule.probability <= 0.0) rule.probability = 1.0;
  }
  fired_.assign(rules_.size(), 0);
  rng_state_ = plan.seed;
  counters_.fill(SiteCounters{});
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
  fired_.clear();
}

int FaultInjector::check(FaultSite site) noexcept {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  std::lock_guard lock(mutex_);
  const auto idx = static_cast<std::size_t>(site);
  const std::uint64_t call = ++counters_[idx].calls;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FaultRule& rule = rules_[r];
    if (rule.site != site || fired_[r] >= rule.max_failures) continue;
    bool fire = rule.nth != 0 && call == rule.nth;
    if (!fire && rule.probability > 0.0) {
      const double u =
          static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
      fire = u < rule.probability;
    }
    if (fire) {
      ++fired_[r];
      ++counters_[idx].injected;
      return rule.error_code;
    }
  }
  return 0;
}

std::array<FaultInjector::SiteCounters, kFaultSiteCount>
FaultInjector::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const SiteCounters& site : counters_) total += site.injected;
  return total;
}

bool FaultInjector::parse_spec(const std::string& spec, FaultPlan& plan,
                               std::string& error) {
  plan.rules.clear();
  for (const std::string& rule_text : split(spec, ';')) {
    const std::string trimmed(trim(rule_text));
    if (trimmed.empty()) continue;
    const std::vector<std::string> parts = split(trimmed, ':');
    FaultRule rule;
    if (!parse_site(std::string(trim(parts[0])), rule.site)) {
      error = "unknown fault site: " + parts[0];
      return false;
    }
    bool has_trigger = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string item(trim(parts[i]));
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        error = "expected key=value in fault rule: " + item;
        return false;
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      char* end = nullptr;
      if (key == "nth") {
        rule.nth = std::strtoull(value.c_str(), &end, 10);
        if (*end != '\0' || rule.nth == 0) {
          error = "bad nth: " + value;
          return false;
        }
        has_trigger = true;
      } else if (key == "p") {
        rule.probability = std::strtod(value.c_str(), &end);
        if (*end != '\0' || rule.probability <= 0.0 || rule.probability > 1.0) {
          error = "bad probability: " + value;
          return false;
        }
        has_trigger = true;
      } else if (key == "errno") {
        if (!parse_errno(value, rule.error_code)) {
          error = "bad errno: " + value;
          return false;
        }
      } else if (key == "max") {
        rule.max_failures = std::strtoull(value.c_str(), &end, 10);
        if (*end != '\0' || rule.max_failures == 0) {
          error = "bad max: " + value;
          return false;
        }
      } else {
        error = "unknown fault rule key: " + key;
        return false;
      }
    }
    // Bare "site" (no nth/p) means fail-at-site: every call fails until
    // max_failures runs out, so lift the one-shot default.
    if (!has_trigger) rule.max_failures = ~std::uint64_t{0};
    plan.rules.push_back(rule);
  }
  if (plan.rules.empty()) {
    error = "empty fault spec";
    return false;
  }
  return true;
}

bool FaultInjector::arm_from_env(std::string& error) {
  const char* spec = std::getenv("FHC_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  FaultPlan plan;
  if (const char* seed = std::getenv("FHC_FAULT_SEED")) {
    plan.seed = std::strtoull(seed, nullptr, 10);
  }
  if (!parse_spec(spec, plan, error)) return false;
  arm(std::move(plan));
  return true;
}

namespace fi {

int injected(FaultSite site) noexcept {
  return FaultInjector::instance().check(site);
}

void alloc_guard() {
  if (FaultInjector::instance().check(FaultSite::kAlloc) != 0) {
    throw std::bad_alloc();
  }
}

#if defined(__unix__) || defined(__APPLE__)

ssize_t read(int fd, void* buf, std::size_t count) noexcept {
  if (const int e = injected(FaultSite::kRead)) {
    errno = e;
    return -1;
  }
  return ::read(fd, buf, count);
}

ssize_t write(int fd, const void* buf, std::size_t count) noexcept {
  if (const int e = injected(FaultSite::kWrite)) {
    errno = e;
    return -1;
  }
  return ::write(fd, buf, count);
}

ssize_t recv(int fd, void* buf, std::size_t count, int flags) noexcept {
  if (const int e = injected(FaultSite::kRead)) {
    errno = e;
    return -1;
  }
  return ::recv(fd, buf, count, flags);
}

ssize_t send(int fd, const void* buf, std::size_t count, int flags) noexcept {
  if (const int e = injected(FaultSite::kWrite)) {
    errno = e;
    return -1;
  }
  return ::send(fd, buf, count, flags);
}

int fsync(int fd) noexcept {
  if (const int e = injected(FaultSite::kFsync)) {
    errno = e;
    return -1;
  }
  return ::fsync(fd);
}

void* mmap(void* addr, std::size_t length, int prot, int flags, int fd,
           off_t offset) noexcept {
  if (const int e = injected(FaultSite::kMmap)) {
    errno = e;
    return MAP_FAILED;
  }
  return ::mmap(addr, length, prot, flags, fd, offset);
}

#endif  // unix

#if defined(__linux__)

int accept4(int fd, ::sockaddr* addr, ::socklen_t* addrlen,
            int flags) noexcept {
  if (const int e = injected(FaultSite::kAccept)) {
    errno = e;
    return -1;
  }
  return ::accept4(fd, addr, addrlen, flags);
}

int epoll_wait(int epfd, ::epoll_event* events, int maxevents,
               int timeout) noexcept {
  if (const int e = injected(FaultSite::kEpollWait)) {
    errno = e;
    return -1;
  }
  return ::epoll_wait(epfd, events, maxevents, timeout);
}

ssize_t eventfd_read(int fd, std::uint64_t& value) noexcept {
  if (const int e = injected(FaultSite::kEventfd)) {
    errno = e;
    return -1;
  }
  return ::read(fd, &value, sizeof value);
}

ssize_t eventfd_write(int fd, std::uint64_t value) noexcept {
  if (const int e = injected(FaultSite::kEventfd)) {
    errno = e;
    return -1;
  }
  return ::write(fd, &value, sizeof value);
}

#endif  // linux

}  // namespace fi

}  // namespace fhc::util
