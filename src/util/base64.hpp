// Base64 alphabet and encoding.
//
// SSDeep does not base64-encode byte triples; it maps each chunk hash to a
// single character of the standard base64 alphabet (b64[h % 64]). We expose
// the alphabet for the CTPH engine and a conventional RFC 4648 encoder for
// diagnostics/serialization.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace fhc::util {

/// The 64-character alphabet shared with ssdeep/spamsum.
inline constexpr std::string_view kBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Maps the low 6 bits of `h` to a base64 character (spamsum digest step).
constexpr char base64_char(std::uint64_t h) noexcept {
  return kBase64Alphabet[static_cast<std::size_t>(h % 64)];
}

/// RFC 4648 base64 (with '=' padding) of an arbitrary byte buffer.
std::string base64_encode(std::span<const std::uint8_t> data);

/// Inverse of base64_encode. Throws std::invalid_argument on malformed
/// input (bad characters, bad padding).
std::string base64_decode(std::string_view text);

}  // namespace fhc::util
