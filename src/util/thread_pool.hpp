// Fixed-size worker pool with a blocking task queue, plus parallel_for /
// parallel_reduce helpers used by the similarity-matrix builder and the
// random forest trainer.
//
// Design notes (shared-memory parallelism per the HPC guides):
//  * Work is partitioned into contiguous index blocks ("grains") so each
//    worker streams through cache-adjacent data.
//  * Determinism: parallel_for never reorders side effects that matter —
//    callers write to disjoint output slots indexed by the loop variable,
//    so results are independent of scheduling.
//  * The pool is explicitly sized (default: hardware_concurrency) and can
//    be shared across subsystems; a size of 0 or 1 degrades to serial
//    execution in the calling thread, which keeps unit tests simple.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fhc::util {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means "use hardware_concurrency", which
  /// itself falls back to 2 if the runtime reports 0.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. An exception escaping a task is captured by the
  /// worker (first one wins; later ones are dropped) and rethrown from the
  /// next wait_idle() call — it never reaches the worker thread's
  /// std::thread boundary, so it cannot std::terminate the process.
  /// This pool-level capture assumes one wait_idle() client at a time;
  /// with concurrent waiters the exception surfaces in whichever returns
  /// first. parallel_for does not rely on it — it scopes completion AND
  /// failure per call, so shared-pool batches neither wait on each
  /// other's tasks nor receive each other's exceptions.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception captured since the previous wait_idle()
  /// (clearing it, so the pool stays usable afterwards).
  void wait_idle();

  /// Process-wide shared pool, created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_exception_;  // guarded by mutex_
};

/// Runs fn(i) for i in [begin, end) across the pool, in contiguous blocks
/// of at least `grain` indices. fn must be safe to invoke concurrently for
/// distinct i. Runs serially when the range is small or the pool has a
/// single worker. Returns when THIS call's tasks have finished — not when
/// the whole pool is idle, so a batch never waits on another batch's
/// unfinished tasks (it may still queue behind them for worker slots).
/// If a body throws, the first exception is rethrown on
/// the calling thread once this call's workers drain; which of the
/// remaining indices still ran is unspecified.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, const std::function<void(std::size_t)>& fn);

/// parallel_for over [0, n) on the shared pool with a heuristic grain.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace fhc::util
