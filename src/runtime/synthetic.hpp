// Synthetic counter traces: deterministic per-application phase patterns
// with per-run jitter, for the miner-detection example, the runtime-layer
// tests, and the benches. No real perf data ships with the repo, so this
// plays the role tests/support/synthetic_hashes.hpp plays for the static
// channels: same-application runs must fingerprint *similar* (long shared
// quantized substrings survive the per-run jitter) and different
// applications *dissimilar* (different phase structure), or the runtime
// channel could not carry signal through the classifier.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/trace.hpp"

namespace fhc::runtime {

/// One event's behavior in a synthetic workload: a base rate modulated by
/// a square-wave phase pattern (period in intervals, on-phase multiplier)
/// — the compute/communicate alternation shape of real HPC codes. The
/// pattern is a deterministic function of the profile; only `jitter_ppm`
/// of samples get a per-run perturbation.
struct EventProfile {
  std::string event;
  double base_rate = 1e9;     // counts per second off-phase
  double on_multiplier = 1.0;  // rate multiplier during the on phase
  int period = 16;             // intervals per full phase cycle (>= 1)
  int duty = 8;                // on-phase intervals per cycle (0..period)
  double jitter = 0.02;        // relative sigma of per-run noise
};

/// A named workload: its event profiles plus generation shape.
struct TraceSpec {
  std::string name;
  std::vector<EventProfile> events;
  std::size_t intervals = 240;
  double interval_s = 1.0;
};

/// Generates one run of `spec`: the deterministic phase pattern plus
/// run-specific Gaussian jitter derived from `seed`. Same (spec, seed)
/// is byte-stable; different seeds of one spec fingerprint similar.
CounterTrace synthesize_trace(const TraceSpec& spec, std::uint64_t seed);

/// A cryptominer's signature: flat, saturated integer throughput — high
/// steady instructions/cycles, near-zero cache misses, no phase
/// structure. `variant` perturbs the base rates (different miner builds).
TraceSpec miner_trace_spec(int variant = 0);

/// A phase-structured HPC solver: alternating compute bursts and
/// memory/communication phases. `variant` selects period/duty/rate
/// combinations (distinct applications).
TraceSpec hpc_trace_spec(int variant = 0);

}  // namespace fhc::runtime
