#include "runtime/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

namespace fhc::runtime {

std::string fingerprint_bytes(const CounterTrace& trace,
                              const FingerprintConfig& config) {
  if (config.levels < 2 || config.levels > 26) {
    throw std::invalid_argument("fingerprint: levels out of range");
  }
  if (!(config.clamp_sigma > 0.0)) {
    throw std::invalid_argument("fingerprint: clamp_sigma must be positive");
  }

  // Regroup the interleaved stream per event, keeping stream order inside
  // each event; the map makes the emission order canonical (sorted names)
  // regardless of the order perf listed the events in.
  struct Series {
    std::vector<double> rates;
    double last_time = 0.0;
  };
  std::map<std::string, Series> by_event;
  for (const CounterSample& sample : trace.samples) {
    Series& series = by_event[sample.event];
    double dt = sample.time - series.last_time;
    if (!(dt > config.min_interval)) dt = 1.0;  // torn/first interval
    series.last_time = sample.time;
    series.rates.push_back(sample.value / dt);
  }

  std::string out;
  for (auto& [event, series] : by_event) {
    double mean = 0.0;
    for (const double r : series.rates) mean += r;
    mean /= static_cast<double>(series.rates.size());
    double var = 0.0;
    for (const double r : series.rates) var += (r - mean) * (r - mean);
    var /= static_cast<double>(series.rates.size());
    const double sigma = std::sqrt(var);

    out += event;
    out += ':';
    const double span = 2.0 * config.clamp_sigma;
    for (const double r : series.rates) {
      const double z = sigma > 0.0 ? (r - mean) / sigma : 0.0;
      const double clamped =
          std::clamp(z, -config.clamp_sigma, config.clamp_sigma);
      const int level = static_cast<int>(
          std::lround((clamped + config.clamp_sigma) / span *
                      static_cast<double>(config.levels - 1)));
      out += static_cast<char>('A' + level);
    }
    out += '\n';
  }
  return out;
}

ssdeep::FuzzyDigest hash_trace(const CounterTrace& trace,
                               const FingerprintConfig& config) {
  return ssdeep::fuzzy_hash(std::string_view(fingerprint_bytes(trace, config)));
}

core::ChannelSet runtime_channel_set() {
  return core::ChannelSet::static_plus(std::string(kRuntimeChannelName),
                                       core::ChannelKind::kRuntime);
}

void attach_trace(core::FeatureHashes& sample, const CounterTrace& trace,
                  const FingerprintConfig& config) {
  sample.set_channel(3, hash_trace(trace, config));
}

}  // namespace fhc::runtime
