#include "runtime/trace.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fhc::runtime {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* const end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

/// Calls `fn(line)` for every line of `text` (terminator optional on the
/// last line).
template <class Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    fn(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
}

/// Value of the string or numeric JSON field `key` in a flat one-line
/// object, or empty when absent. perf's -j output never nests or escapes
/// quotes inside values, so a quote scan is exact for it.
std::string_view json_field(std::string_view line, std::string_view key) {
  const std::string quoted = '"' + std::string(key) + '"';
  const std::size_t at = line.find(quoted);
  if (at == std::string_view::npos) return {};
  std::size_t pos = line.find(':', at + quoted.size());
  if (pos == std::string_view::npos) return {};
  ++pos;
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos >= line.size()) return {};
  if (line[pos] == '"') {
    const std::size_t close = line.find('"', pos + 1);
    if (close == std::string_view::npos) return {};
    return line.substr(pos + 1, close - pos - 1);
  }
  std::size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return trim(line.substr(pos, end - pos));
}

}  // namespace

CounterTrace parse_perf_csv(std::string_view text) {
  CounterTrace trace;
  bool saw_data_line = false;
  for_each_line(text, [&](std::string_view line) {
    line = trim(line);
    if (line.empty() || line.front() == '#') return;
    // Split "time,value,unit,event[,...]" — only the first four fields
    // matter; later ones (run time, percentage) vary across perf versions.
    std::string_view fields[4];
    std::size_t field = 0;
    std::size_t pos = 0;
    while (field < 4 && pos <= line.size()) {
      std::size_t comma = line.find(',', pos);
      if (comma == std::string_view::npos) comma = line.size();
      fields[field++] = trim(line.substr(pos, comma - pos));
      pos = comma + 1;
    }
    if (field < 4) return;  // not an interval-mode data line
    CounterSample sample;
    if (!parse_double(fields[0], sample.time)) return;
    saw_data_line = true;
    if (!parse_double(fields[1], sample.value)) return;  // "<not counted>"
    if (fields[3].empty()) return;
    sample.event = std::string(fields[3]);
    trace.samples.push_back(std::move(sample));
  });
  if (!saw_data_line) {
    throw std::runtime_error("parse_perf_csv: no interval data lines");
  }
  return trace;
}

CounterTrace parse_perf_json_lines(std::string_view text) {
  CounterTrace trace;
  bool saw_data_line = false;
  for_each_line(text, [&](std::string_view line) {
    line = trim(line);
    if (line.empty() || line.front() != '{') return;
    CounterSample sample;
    if (!parse_double(json_field(line, "interval"), sample.time)) return;
    saw_data_line = true;
    if (!parse_double(json_field(line, "counter-value"), sample.value)) {
      return;  // "<not counted>" / "<not supported>"
    }
    const std::string_view event = json_field(line, "event");
    if (event.empty()) return;
    sample.event = std::string(event);
    trace.samples.push_back(std::move(sample));
  });
  if (!saw_data_line) {
    throw std::runtime_error("parse_perf_json_lines: no interval data lines");
  }
  return trace;
}

CounterTrace parse_trace(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = trim(text.substr(pos, nl - pos));
    if (!line.empty()) {
      return line.front() == '{' ? parse_perf_json_lines(text)
                                 : parse_perf_csv(text);
    }
    pos = nl + 1;
  }
  throw std::runtime_error("parse_trace: empty trace");
}

CounterTrace load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

}  // namespace fhc::runtime
