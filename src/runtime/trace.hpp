// Counter-sample trace ingestion: perf-stat-style streams -> CounterTrace.
//
// The runtime feature channel classifies *running* applications from
// hardware-counter time series (the Execution Fingerprint Dictionary
// recipe; see PAPERS.md). The collector of record is plain perf:
//
//   perf stat -I 1000 -x, -e cycles,instructions,cache-misses,branches
//        ... -p <pid> -o app.trace.csv
//   perf stat -I 1000 -j -e ...            # line-JSON variant
//
// parse_perf_csv ingests the `-x,` interval CSV (time,value,unit,event,...)
// and parse_perf_json_lines the `-j` one-object-per-line form; both skip
// "<not counted>"/"<not supported>" samples and comment lines, so a trace
// cut short or over-subscribed still parses. parse_trace sniffs the
// format. No external JSON/CSV dependency: the grammar actually emitted
// by perf is line-oriented and flat, and a hand-rolled scanner keeps the
// ingest path allocation-light.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fhc::runtime {

/// One counter reading: the interval-end timestamp in seconds, the count
/// accumulated over that interval, and the event name.
struct CounterSample {
  double time = 0.0;
  double value = 0.0;
  std::string event;

  bool operator==(const CounterSample&) const = default;
};

/// A whole collection run, samples in stream order (perf interleaves the
/// events of each interval).
struct CounterTrace {
  std::vector<CounterSample> samples;

  bool empty() const noexcept { return samples.empty(); }
  std::size_t size() const noexcept { return samples.size(); }
};

/// `perf stat -I <ms> -x,` output: one "time,value,unit,event[,...]" line
/// per (interval, event). Lines starting with '#', blank lines, and
/// not-counted samples are skipped. Throws std::runtime_error when no
/// line of the input parses (a wrong file, not a sparse one).
CounterTrace parse_perf_csv(std::string_view text);

/// `perf stat -I <ms> -j` output: one flat JSON object per line with
/// "interval", "counter-value", and "event" keys. Same skip rules.
CounterTrace parse_perf_json_lines(std::string_view text);

/// Sniffs the format (first non-blank line starting with '{' = JSON) and
/// delegates.
CounterTrace parse_trace(std::string_view text);

/// Reads `path` and parse_trace's it.
CounterTrace load_trace_file(const std::string& path);

}  // namespace fhc::runtime
