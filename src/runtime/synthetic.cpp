#include "runtime/synthetic.hpp"

#include <random>

namespace fhc::runtime {

namespace {

/// Stable 64-bit mix of the spec name into the run seed (std::hash is
/// unspecified across implementations; FNV-1a is not).
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

CounterTrace synthesize_trace(const TraceSpec& spec, std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ fnv1a(spec.name));
  std::normal_distribution<double> noise(0.0, 1.0);
  CounterTrace trace;
  trace.samples.reserve(spec.intervals * spec.events.size());
  for (std::size_t t = 1; t <= spec.intervals; ++t) {
    const double time = static_cast<double>(t) * spec.interval_s;
    for (const EventProfile& event : spec.events) {
      const int period = event.period > 0 ? event.period : 1;
      const bool on = static_cast<int>((t - 1) % static_cast<std::size_t>(
                                                     period)) < event.duty;
      double rate = event.base_rate * (on ? event.on_multiplier : 1.0);
      rate += noise(rng) * event.jitter * event.base_rate;
      if (rate < 0.0) rate = 0.0;
      trace.samples.push_back(
          CounterSample{time, rate * spec.interval_s, event.event});
    }
  }
  return trace;
}

// Duty fractions are NOT free parameters. For a square wave the z-score
// of each phase is a function of the duty fraction alone
// (z_on = sqrt((1-d)/d), z_off = -sqrt(d/(1-d)) — the amplitude cancels
// against the standard deviation), and the fingerprint quantizer puts
// 16 levels across +/- 2 sigma. A duty fraction whose phase z lands near
// a bin boundary makes every letter of that phase a coin flip under
// per-run jitter, and two runs of the *same* spec fingerprint apart. The
// (period, duty) pairs below are chosen so both phases — and their
// complements, used by the cache-misses profile — sit at least ~0.25
// bins away from a boundary.

TraceSpec miner_trace_spec(int variant) {
  // The cryptominer shape: saturated integer throughput with no real
  // phase structure — just the periodic share-submission heartbeat that
  // gives same-application runs a reproducible (hence matchable)
  // fingerprint. Rates are unusually steady (low jitter: the scratchpad
  // working set never misses), which is itself part of the signature.
  const double scale = 1.0 + 0.15 * static_cast<double>(variant);
  TraceSpec spec;
  spec.name = "miner-v" + std::to_string(variant);
  spec.events = {
      {"cycles", 3.0e9 * scale, 1.5, 32, 4, 0.005},
      {"instructions", 9.0e9 * scale, 1.6, 32, 4, 0.005},
      {"cache-misses", 2.0e5 * scale, 2.0, 32, 4, 0.01},
      {"branches", 6.0e8 * scale, 1.5, 32, 4, 0.005},
  };
  return spec;
}

TraceSpec hpc_trace_spec(int variant) {
  // Phase-structured solvers: compute bursts alternating with
  // memory/communication phases. Each variant is a distinct application
  // (different period, duty fraction, and burst amplitude — so variants
  // differ in both letter alphabet and run lengths), fingerprinting
  // apart from each other AND from the miner.
  TraceSpec spec;
  spec.name = "hpc-v" + std::to_string(variant);
  constexpr int kPeriods[] = {10, 16, 22, 28};
  constexpr int kDuties[] = {3, 7, 11, 19};
  const int period = kPeriods[variant % 4];
  const int duty = kDuties[variant % 4];
  const double burst = 2.0 + 0.5 * static_cast<double>(variant % 5);
  spec.events = {
      {"cycles", 2.0e9, burst, period, duty, 0.02},
      {"instructions", 4.0e9, burst * 1.2, period, duty, 0.02},
      {"cache-misses", 5.0e7, burst * 3.0, period, period - duty, 0.02},
      {"branches", 4.0e8, burst, period, duty, 0.02},
  };
  return spec;
}

}  // namespace fhc::runtime
