// Execution fingerprints: counter trace -> normalized byte stream ->
// fuzzy hash, the fourth feature channel.
//
// The normalization follows the Execution Fingerprint Dictionary recipe
// (arXiv:2109.04766): the raw trace is machine- and duration-scaled, so
// absolute counts never reach the hash. Per event,
//
//   1. each interval count becomes a *rate* (count / interval length),
//   2. the rate series is z-scored over the whole trace (its own mean and
//      standard deviation), so a 2x faster machine or a doubled core
//      count produces the identical series shape,
//   3. each z value is quantized to one of `levels` letters, clamped to
//      +/- clamp_sigma standard deviations,
//
// and the per-event letter streams are concatenated in canonical
// (sorted-by-name) event order with the event name as a separator. Two
// runs of the same application produce byte streams with long common
// substrings — exactly what ssdeep's CTPH scores — while a different
// phase structure (a cryptominer's flat integer grind vs a solver's
// compute/communicate alternation) diverges early and often. The digest
// then flows through the same content-agnostic ssdeep layer as the three
// static channels and fuses in the feature matrix as channel
// "ssdeep-runtime" (core::ChannelSet position 3 of runtime_channel_set()).
#pragma once

#include <string>
#include <string_view>

#include "core/features.hpp"
#include "runtime/trace.hpp"
#include "ssdeep/fuzzy_hash.hpp"

namespace fhc::runtime {

/// Model channel name of the execution-fingerprint channel.
inline constexpr std::string_view kRuntimeChannelName = "ssdeep-runtime";

struct FingerprintConfig {
  int levels = 16;           // quantization alphabet size (2..26)
  double clamp_sigma = 2.0;  // z values clamp to +/- this many sigma
  double min_interval = 1e-6;  // floor for interval lengths (seconds)
};

/// The canonical normalized byte stream of a trace (empty for an empty
/// trace). Deterministic in the trace contents; invariant under uniform
/// scaling of any event's counts (z-scores absorb the scale). Throws
/// std::invalid_argument on a malformed config.
std::string fingerprint_bytes(const CounterTrace& trace,
                              const FingerprintConfig& config = {});

/// fuzzy_hash(fingerprint_bytes(trace)) — the runtime channel digest.
ssdeep::FuzzyDigest hash_trace(const CounterTrace& trace,
                               const FingerprintConfig& config = {});

/// The static triple plus the runtime channel — the channel set of a
/// model trained with execution fingerprints.
core::ChannelSet runtime_channel_set();

/// Hashes `trace` into `sample`'s runtime channel (position 3). A sample
/// without an attached trace scores 0 on that channel, like a stripped
/// binary on the symbols channel.
void attach_trace(core::FeatureHashes& sample, const CounterTrace& trace,
                  const FingerprintConfig& config = {});

}  // namespace fhc::runtime
