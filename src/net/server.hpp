// fhc::net::SocketServer — the rack-scale front-end of the classification
// daemon: a non-blocking epoll event loop serving the length-prefixed
// binary protocol (net/protocol.hpp) over TCP and Unix-domain sockets.
//
// Architecture (three threads touch a request):
//
//   event loop (run())      accepts, reads, frames, admission-checks,
//                           submits to the ClassificationService via the
//                           shared CommandHandler, and writes replies;
//   service dispatcher      the existing micro-batching scorer;
//   completion worker       waits each submitted future in FIFO order,
//                           encodes the reply frame, and wakes the loop
//                           through an eventfd.
//
// Pipelining: replies go out strictly in request order per connection.
// Each request occupies a reply slot; slots resolved out of order (a
// cache hit behind a scored miss) wait for their turn, so clients need
// no correlation ids.
//
// Admission control — over-limit work gets an explicit BUSY frame (or,
// at the accept gate, a BUSY frame and an immediate close) instead of
// unbounded queueing:
//   * max_connections   concurrent connections across both transports;
//   * max_pipeline      reply slots in flight per connection;
//   * max_inflight      classify requests in flight across the server;
//   * ServiceConfig::max_queue   the dispatcher backlog (try_submit).
//
// Backpressure: a connection whose write buffer exceeds the high
// watermark stops being read until the client drains half of it.
//
// Graceful shutdown (QUIT frame, stop(), or SIGTERM via stop()):
// listeners close first, every connection stops reading, the service
// flushes its pending queue, in-flight batches finish on their model
// snapshot, replies drain, then connections close and run() returns.
// Connections that will not drain are force-closed after
// drain_timeout_ms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "net/protocol.hpp"
#include "service/command_handler.hpp"

namespace fhc::net {

struct ServerConfig {
  // Transports: any combination; at least one must be configured.
  std::string unix_path;             // listen on this Unix socket when non-empty
  int tcp_port = -1;                 // listen on tcp_host:port when >= 0 (0 = ephemeral)
  std::string tcp_host = "127.0.0.1";

  // Admission control.
  std::size_t max_connections = 1024;
  std::size_t max_inflight = 4096;
  std::size_t max_pipeline = 64;

  // Wire limits and backpressure.
  std::size_t max_frame = kDefaultMaxFrame;
  std::size_t write_high_watermark = 4u << 20;

  // Graceful-shutdown drain bound.
  int drain_timeout_ms = 5000;

  // Per-connection timeouts (0 = off), enforced by a timing wheel folded
  // into the epoll loop. A connection with nothing owed to it (no reply
  // slots, empty write buffer) that produced no bytes for
  // idle_timeout_ms is evicted; a connection sitting on a *partial*
  // frame whose first byte arrived read_progress_timeout_ms ago is
  // evicted even if it trickles (slow-loris: progress is measured per
  // frame, not per byte). Eviction counts
  // ServiceStats::connections_timed_out, sends a best-effort ERROR
  // frame, and hard-closes.
  int idle_timeout_ms = 0;
  int read_progress_timeout_ms = 0;
};

class SocketServer {
 public:
  /// Binds and listens synchronously (throws std::runtime_error on any
  /// socket/bind/listen failure, std::invalid_argument on a config with
  /// no transport). The daemon is not serving until run()/start().
  SocketServer(service::CommandHandler& handler, ServerConfig config);

  /// Stops (gracefully) and joins if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Runs the event loop on the calling thread until graceful shutdown.
  void run();

  /// Runs the event loop on a background thread (tests/benches).
  void start();

  /// Requests graceful shutdown from any thread; also safe from a signal
  /// handler (one atomic store + one eventfd write). Idempotent.
  void stop();

  /// Joins the start() thread (no-op for run()-on-caller usage).
  void join();

  /// The bound TCP port (ephemeral port 0 resolved at construction), or
  /// -1 when no TCP listener was configured.
  int tcp_port() const noexcept;

  /// The Unix socket path ("" when not configured).
  const std::string& unix_socket_path() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fhc::net
