// net::TimerWheel — a hashed timing wheel for per-connection timeouts,
// folded into the SocketServer epoll loop.
//
// The loop needs "evict connection X at time T" for thousands of
// connections without a per-iteration O(n) scan and without a heap
// rebalance on every read (reads are the hot path). The classic answer
// is a timing wheel with lazy revalidation:
//
//   * schedule(id, deadline) hashes the deadline's tick into a slot —
//     O(1), called once per connection (at accept, and again only when
//     an expiry check finds the deadline has moved);
//   * activity on a connection just updates its authoritative deadline
//     field; the wheel entry is NOT touched (no churn on reads);
//   * expire(now) drains the slots whose ticks have passed and hands the
//     ids back; the caller compares against the authoritative deadline
//     and either evicts or re-schedules at the true deadline.
//
// Entries whose tick lies more than one wheel revolution ahead simply
// stay in their slot and are re-filed when the slot comes around — the
// (id, tick) pair carries the absolute tick, so wrap-around is handled
// by comparison, not by rounds bookkeeping.
//
// Contract: at most one live entry per id (schedule only at accept and
// from the expire() revalidation path); ids whose connection died are
// dropped by the caller's lookup failing.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fhc::net {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// `resolution` is the tick size (timeout precision); `slots` the wheel
  /// circumference. A 100ms x 512-slot wheel spans ~51s per revolution —
  /// longer deadlines just ride around again.
  explicit TimerWheel(std::chrono::milliseconds resolution =
                          std::chrono::milliseconds(100),
                      std::size_t slots = 512);

  /// Files `id` to fire at `deadline` (rounded up to the next tick).
  void schedule(std::uint64_t id, Clock::time_point deadline);

  /// Moves every id whose tick has passed into `out`. The caller must
  /// revalidate each against its authoritative deadline.
  void expire(Clock::time_point now, std::vector<std::uint64_t>& out);

  /// Milliseconds until the earliest filed tick (clamped to >= 0), or
  /// -1 when the wheel is empty — the epoll_wait timeout.
  int next_timeout_ms(Clock::time_point now) const;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t tick = 0;  // absolute tick index since epoch_
  };

  std::uint64_t tick_of(Clock::time_point t) const;

  std::chrono::milliseconds resolution_;
  std::vector<std::vector<Entry>> slots_;
  Clock::time_point epoch_;
  std::uint64_t cursor_ = 0;  // last tick already drained
  std::size_t size_ = 0;
};

}  // namespace fhc::net
