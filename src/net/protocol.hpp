// fhc::net wire protocol — length-prefixed binary frames for the socket
// front-end of the classification daemon.
//
// The stdio line protocol serves one client per process; the socket
// protocol serves a rack. It is framed so clients can pipeline (many
// requests in flight on one connection; the daemon answers strictly in
// request order) and binary so digest payloads need no escaping.
//
// Byte layout (all integers little-endian, no alignment padding):
//
//   frame    := u32 payload_len | payload[payload_len]
//   payload  := u8 opcode | body
//
// payload_len counts the opcode byte, so it is always >= 1; frames whose
// declared length exceeds the configured maximum (default 1 MiB) are a
// protocol violation and the connection is closed. Strings are
// u32-length-prefixed byte runs. f64 is the IEEE-754 bit pattern as a
// little-endian u64.
//
// Requests:
//   0x01 CLASSIFY_DIGESTS  u8 count_flags | [u32 deadline_ms] | n x string
//        Pre-hashed channel digests in model channel order (position 0 =
//        ssdeep-file, ...). Empty strings are allowed and score 0, like
//        a stripped binary's symbols channel. The daemon never touches
//        the filesystem for these — clients hash locally, the daemon
//        scores. Malformed digest text answers ERROR (connection stays).
//        count_flags: low nibble = n (1..8); bit 7 set = a u32
//        deadline_ms follows (the request's time budget from decode —
//        work not started by then answers DEADLINE_EXCEEDED); bits 4..6
//        reserved, must be zero (kMalformed otherwise). Pre-deadline
//        encoders emit a bare count <= 8, so old frames decode
//        unchanged.
//   0x02 CLASSIFY_PATH     string path | [u32 deadline_ms]
//        Server-side extraction of "exe" or "exe@trace" (the stdio
//        CLASSIFY semantics; the daemon reads the file). A trailing u32,
//        when present, is the deadline as above (any other trailing
//        length stays kMalformed).
//   0x03 STATS             (empty)
//   0x04 RELOAD            string model_path
//   0x05 PING              (empty)
//   0x06 QUIT              (empty) — graceful daemon shutdown: replies
//        OK, stops accepting, drains every connection's in-flight
//        replies, then exits.
//
// Responses:
//   0x81 PREDICTION  i32 label | u8 flags | f64 confidence |
//                    u64 server_micros | string class_name
//        label -1 = unknown (class_name empty); flags bit0 set = the
//        prediction was rejected as unknown (open-set rejection / below
//        the confidence threshold — always set when label is -1), other
//        bits reserved (must be zero); server_micros is the per-request
//        wall time from frame decode to completion.
//   0x82 OK          string text        (RELOAD/PING/QUIT acknowledgements)
//   0x83 STATS_TEXT  string text        (the key=value stats line)
//   0x84 ERROR       string message     (per-request failure)
//   0x85 BUSY        string reason      (admission control: over
//        max_connections / max_pipeline / max_inflight / service queue —
//        an explicit reject instead of unbounded queueing; back off and
//        retry)
//   0x86 DEADLINE_EXCEEDED string reason (the request's deadline or the
//        server's max_queue_delay passed before scoring started; the
//        sample was never scored. Unlike BUSY this is not a capacity
//        signal — retrying with the same budget will likely expire
//        again.)
//
// Framing violations (oversize or zero-length frames, truncated bodies,
// trailing bytes after a body) answer ERROR and close the connection;
// an unknown opcode in an otherwise well-formed frame answers ERROR and
// keeps it open.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace fhc::net {

inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;  // 1 MiB payload cap
inline constexpr std::size_t kFrameHeaderSize = 4;         // u32 payload_len
inline constexpr std::size_t kMaxDigestChannels = 8;       // mirrors core::kMaxChannels

enum class Opcode : std::uint8_t {
  kClassifyDigests = 0x01,
  kClassifyPath = 0x02,
  kStats = 0x03,
  kReload = 0x04,
  kPing = 0x05,
  kQuit = 0x06,

  kPrediction = 0x81,
  kOk = 0x82,
  kStatsText = 0x83,
  kError = 0x84,
  kBusy = 0x85,
  kDeadlineExceeded = 0x86,
};

/// One decoded request. `digests` is set for kClassifyDigests, `text`
/// for kClassifyPath (the path spec) and kReload (the model path).
struct Request {
  Opcode op = Opcode::kPing;
  std::vector<std::string> digests;
  std::string text;
  // CLASSIFY deadline (optional wire field): time budget in milliseconds
  // from frame decode. has_deadline distinguishes "0ms" (expire at once)
  // from "no deadline".
  std::uint32_t deadline_ms = 0;
  bool has_deadline = false;
};

/// One decoded response. `text` carries the OK/STATS/ERROR/BUSY string
/// or the prediction's class name.
struct Response {
  Opcode op = Opcode::kOk;
  std::int32_t label = 0;
  bool is_unknown = false;  // PREDICTION flags bit0
  double confidence = 0.0;
  std::uint64_t server_micros = 0;
  std::string text;
};

/// PREDICTION flags bits (u8 after the label; others reserved as zero).
inline constexpr std::uint8_t kPredictionFlagUnknown = 0x01;

/// CLASSIFY_DIGESTS count_flags bits: low nibble is the channel count,
/// bit 7 announces the deadline field, bits 4..6 are reserved-as-zero.
inline constexpr std::uint8_t kClassifyCountMask = 0x0f;
inline constexpr std::uint8_t kClassifyFlagDeadline = 0x80;
inline constexpr std::uint8_t kClassifyReservedMask = 0x70;

// ---- encoding ------------------------------------------------------------
// Each encoder appends one complete frame (header + payload) to `out`.
// The optional `deadline_ms` emits the CLASSIFY deadline field.

void encode_classify_digests(std::string& out, std::span<const std::string> digests,
                             std::optional<std::uint32_t> deadline_ms = std::nullopt);
void encode_classify_path(std::string& out, std::string_view path_spec,
                          std::optional<std::uint32_t> deadline_ms = std::nullopt);
void encode_stats(std::string& out);
void encode_reload(std::string& out, std::string_view model_path);
void encode_ping(std::string& out);
void encode_quit(std::string& out);

void encode_prediction(std::string& out, std::int32_t label, bool is_unknown,
                       double confidence, std::uint64_t server_micros,
                       std::string_view class_name);
void encode_ok(std::string& out, std::string_view text);
void encode_stats_text(std::string& out, std::string_view text);
void encode_error(std::string& out, std::string_view message);
void encode_busy(std::string& out, std::string_view reason);
void encode_deadline_exceeded(std::string& out, std::string_view reason);

// ---- decoding ------------------------------------------------------------

enum class DecodeStatus {
  kOk,
  kUnknownOpcode,  // framing intact: reply ERROR, keep the connection
  kMalformed,      // truncated/trailing/overlong body: reply ERROR + close
};

/// Decodes one frame payload (opcode + body) into `out`. Never throws.
DecodeStatus decode_request(std::span<const std::uint8_t> payload, Request& out);
DecodeStatus decode_response(std::span<const std::uint8_t> payload, Response& out);

/// Incremental frame extractor over a byte stream — feed() arbitrary
/// chunks (torn reads are the normal case), then drain next() until it
/// returns nothing. A frame whose declared payload length is 0 or
/// exceeds max_frame poisons the reader (error() != nullopt): the stream
/// can no longer be trusted and the connection must close.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  void feed(std::span<const std::uint8_t> bytes);
  void feed(std::string_view bytes);

  /// The next complete frame payload (opcode + body), or nullopt when
  /// more bytes are needed or the reader is poisoned.
  std::optional<std::vector<std::uint8_t>> next();

  /// Non-empty once a framing violation was seen; the reader stays
  /// poisoned and next() returns nothing from then on.
  const std::optional<std::string>& error() const noexcept { return error_; }

  /// Bytes buffered but not yet returned (diagnostics/backpressure).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix already handed out via next()
  std::optional<std::string> error_;
};

}  // namespace fhc::net
