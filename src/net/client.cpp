#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace fhc::net {

namespace {
using Clock = std::chrono::steady_clock;

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

int connect_once(const Endpoint& endpoint, std::string& error) {
  if (!endpoint.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      error = "unix path too long: " + endpoint.unix_path;
      return -1;
    }
    std::memcpy(addr.sun_path, endpoint.unix_path.c_str(),
                endpoint.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      error = errno_string("socket(AF_UNIX)");
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      error = errno_string("connect(" + endpoint.unix_path + ")");
      ::close(fd);
      return -1;
    }
    return fd;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    error = "bad host: " + endpoint.host;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = errno_string("socket(AF_INET)");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = errno_string("connect(" + endpoint.host + ":" +
                         std::to_string(endpoint.port) + ")");
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}
}  // namespace

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

std::string BlockingClient::connect(const Endpoint& endpoint, int retries,
                                    int retry_delay_ms) {
  close();
  std::string error;
  for (int attempt = 0;; ++attempt) {
    fd_ = connect_once(endpoint, error);
    if (fd_ >= 0) {
      reader_ = FrameReader();
      if (recv_timeout_ms_ > 0) set_recv_timeout(recv_timeout_ms_);
      return {};
    }
    if (attempt >= retries) return error;
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_delay_ms));
  }
}

void BlockingClient::set_recv_timeout(int timeout_ms) {
  recv_timeout_ms_ = timeout_ms < 0 ? 0 : timeout_ms;
  if (fd_ < 0) return;  // applied on the next connect()
  timeval tv{};
  tv.tv_sec = recv_timeout_ms_ / 1000;
  tv.tv_usec = (recv_timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool BlockingClient::send_bytes(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

BlockingClient::ReadStatus BlockingClient::read_response_status(
    Response& out, std::string* error) {
  for (;;) {
    if (std::optional<std::vector<std::uint8_t>> payload = reader_.next()) {
      const DecodeStatus status = decode_response(*payload, out);
      if (status != DecodeStatus::kOk) {
        if (error != nullptr) *error = "malformed response frame";
        return ReadStatus::kProtocol;
      }
      return ReadStatus::kOk;
    }
    if (reader_.error()) {
      if (error != nullptr) *error = *reader_.error();
      return ReadStatus::kProtocol;
    }
    char buf[65536];
    const ssize_t got = ::recv(fd_, buf, sizeof buf, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = (errno == EAGAIN || errno == EWOULDBLOCK)
                     ? "recv timeout"
                     : errno_string("recv");
      }
      return ReadStatus::kTransport;
    }
    if (got == 0) {
      if (error != nullptr) *error = "connection closed by server";
      return ReadStatus::kTransport;
    }
    reader_.feed(std::string_view(buf, static_cast<std::size_t>(got)));
  }
}

LoadResult run_load(const LoadOptions& options,
                    std::span<const std::string> frames) {
  LoadResult total;
  if (frames.empty()) {
    total.failure = "run_load: no request frames";
    return total;
  }
  const std::size_t pipeline = std::max<std::size_t>(options.pipeline, 1);

  struct PerConn {
    LoadResult result;
    std::vector<double> latencies_ms;
  };
  std::vector<PerConn> per_conn(std::max<std::size_t>(options.connections, 1));

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(per_conn.size());
  for (std::size_t c = 0; c < per_conn.size(); ++c) {
    threads.emplace_back([&, c] {
      PerConn& mine = per_conn[c];
      BlockingClient client;
      if (options.recv_timeout_ms > 0) {
        client.set_recv_timeout(options.recv_timeout_ms);
      }
      const std::string connect_error =
          client.connect(options.endpoint, options.connect_retries);
      if (!connect_error.empty()) {
        mine.result.failure = connect_error;
        return;
      }
      mine.latencies_ms.reserve(options.requests);

      // One entry per frame in flight, FIFO like the server's reply
      // order. Retried frames keep their original start (latency is
      // time-to-final-reply) and carry the retries they have consumed.
      struct Pending {
        std::size_t frame_idx = 0;
        Clock::time_point start{};
        int attempts = 0;
      };
      std::deque<Pending> in_flight;
      std::size_t sent = 0;
      std::size_t received = 0;
      int reconnect_budget = options.retries;

      // Deterministic jitter: the same seed and connection index replay
      // the same backoff schedule (base * 2^attempt capped at 1s, then
      // jittered into [delay/2, delay] so retry herds decorrelate).
      util::Rng rng(options.retry_seed + 0x9e3779b97f4a7c15ULL * (c + 1));
      const auto backoff = [&](int attempt) {
        const std::int64_t base = std::max(options.backoff_ms, 1);
        std::int64_t delay = base;
        for (int i = 0; i < attempt && delay < 1000; ++i) delay *= 2;
        delay = std::min<std::int64_t>(delay, 1000);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            rng.uniform_int(delay - delay / 2, delay)));
      };

      // Transport fault: reconnect and replay everything unanswered, in
      // order (the old connection's unsent replies are gone with it).
      const auto reconnect_and_resend = [&]() -> std::string {
        for (;;) {
          if (reconnect_budget <= 0) return "retry budget exhausted";
          --reconnect_budget;
          ++mine.result.reconnects;
          backoff(options.retries - reconnect_budget);
          const std::string error =
              client.connect(options.endpoint, options.connect_retries);
          if (!error.empty()) continue;  // budget-bounded, keep trying
          bool resent = true;
          for (const Pending& pending : in_flight) {
            if (!client.send_bytes(frames[pending.frame_idx % frames.size()])) {
              resent = false;
              break;
            }
          }
          if (resent) return {};
        }
      };

      while (received < options.requests) {
        while (sent < options.requests && in_flight.size() < pipeline) {
          const std::size_t frame_idx = sent;
          in_flight.push_back(Pending{frame_idx, Clock::now(), 0});
          if (!client.send_bytes(frames[frame_idx % frames.size()])) {
            const std::string error = reconnect_and_resend();
            if (!error.empty()) {
              mine.result.failure = "send failed after " +
                                    std::to_string(sent) + " requests (" +
                                    error + ")";
              return;
            }
          }
          ++sent;
          ++mine.result.sent;
        }
        Response response;
        std::string error;
        const BlockingClient::ReadStatus status =
            client.read_response_status(response, &error);
        if (status == BlockingClient::ReadStatus::kTransport &&
            reconnect_budget > 0) {
          const std::string reconnect_error = reconnect_and_resend();
          if (reconnect_error.empty()) continue;
          error += "; " + reconnect_error;
        }
        if (status != BlockingClient::ReadStatus::kOk) {
          mine.result.failure =
              error + " (after " + std::to_string(received) + "/" +
              std::to_string(options.requests) + " replies)";
          return;
        }
        if (in_flight.empty()) {
          mine.result.failure = "reply without a pending request";
          return;
        }
        Pending pending = in_flight.front();
        in_flight.pop_front();
        if (response.op == Opcode::kBusy && pending.attempts < options.retries) {
          // Absorb the BUSY: back off, re-send the same frame at the
          // tail of the pipeline (server replies stay in send order).
          ++mine.result.busy_retries;
          ++pending.attempts;
          backoff(pending.attempts);
          if (!client.send_bytes(frames[pending.frame_idx % frames.size()])) {
            const std::string reconnect_error = reconnect_and_resend();
            if (!reconnect_error.empty()) {
              mine.result.failure = "send failed on retry (" +
                                    reconnect_error + ")";
              return;
            }
          }
          in_flight.push_back(pending);
          continue;
        }
        const std::chrono::duration<double, std::milli> took =
            Clock::now() - pending.start;
        mine.latencies_ms.push_back(took.count());
        ++received;
        switch (response.op) {
          case Opcode::kPrediction:
            ++mine.result.predictions;
            if (response.is_unknown) ++mine.result.unknown;
            break;
          case Opcode::kBusy:
            ++mine.result.busy;
            break;
          case Opcode::kError:
            ++mine.result.errors;
            break;
          case Opcode::kDeadlineExceeded:
            ++mine.result.deadline_exceeded;
            break;
          default:  // OK/STATS replies to interleaved control frames
            break;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  total.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> latencies;
  for (PerConn& conn : per_conn) {
    total.sent += conn.result.sent;
    total.predictions += conn.result.predictions;
    total.unknown += conn.result.unknown;
    total.busy += conn.result.busy;
    total.errors += conn.result.errors;
    total.deadline_exceeded += conn.result.deadline_exceeded;
    total.busy_retries += conn.result.busy_retries;
    total.reconnects += conn.result.reconnects;
    if (!conn.result.failure.empty() && total.failure.empty()) {
      total.failure = conn.result.failure;
    }
    latencies.insert(latencies.end(), conn.latencies_ms.begin(),
                     conn.latencies_ms.end());
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const std::size_t n = latencies.size();
    total.p50_ms = latencies[(n + 1) / 2 - 1];
    total.p99_ms = latencies[(n * 99 + 99) / 100 - 1];
    total.max_ms = latencies.back();
  }
  return total;
}

}  // namespace fhc::net
