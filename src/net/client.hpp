// fhc::net client side — a small blocking client for the framed socket
// protocol plus run_load(), the pipelined load-generator core shared by
// tools/fhc_loadgen, the socket benches, and the net tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.hpp"

namespace fhc::net {

/// Where to connect: the Unix path wins when non-empty, otherwise
/// host:port.
struct Endpoint {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
};

/// One blocking connection. Not thread-safe; one per thread.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connects, retrying `retries` times with `retry_delay_ms` between
  /// attempts (daemon-startup races). Returns "" on success, the error
  /// otherwise.
  std::string connect(const Endpoint& endpoint, int retries = 0,
                      int retry_delay_ms = 50);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Bounds every blocking read (SO_RCVTIMEO). 0 restores blocking
  /// forever. Chaos runs set this so a server whose accept/read path is
  /// being failed cannot hang the client; a timeout surfaces as a
  /// kTransport read status.
  void set_recv_timeout(int timeout_ms);

  /// Sends all of `bytes` (one or more pre-encoded frames).
  bool send_bytes(std::string_view bytes);

  /// How a read_response() failure should be handled: transport faults
  /// (peer closed, reset, recv timeout) are retryable by reconnecting;
  /// protocol faults (framing violation, malformed response) are not —
  /// the stream itself cannot be trusted.
  enum class ReadStatus { kOk, kTransport, kProtocol };

  /// Blocks for the next response frame. On failure, `error` (when
  /// given) explains: peer closed, framing violation, malformed
  /// response, or recv timeout.
  ReadStatus read_response_status(Response& out, std::string* error = nullptr);

  /// Compatibility wrapper: read_response_status() == kOk.
  bool read_response(Response& out, std::string* error = nullptr) {
    return read_response_status(out, error) == ReadStatus::kOk;
  }

 private:
  int fd_ = -1;
  int recv_timeout_ms_ = 0;
  FrameReader reader_;
};

struct LoadOptions {
  Endpoint endpoint;
  std::size_t connections = 1;
  std::size_t pipeline = 8;   // frames in flight per connection
  std::size_t requests = 64;  // total frames per connection
  int connect_retries = 0;

  // Retry policy (off when retries == 0). A BUSY reply is re-sent after
  // an exponential backoff with jitter (base backoff_ms, doubling per
  // attempt, capped at 1s); a transport fault (reset/close/timeout)
  // reconnects and re-sends everything still in flight, in order. Both
  // draw from the same per-request budget. Protocol violations are
  // never retried. Backoff jitter is seeded (retry_seed + connection
  // index), so a load run retries identically every time.
  int retries = 0;
  int backoff_ms = 5;
  std::uint64_t retry_seed = 1;

  // Bounds every blocking read when > 0 (see
  // BlockingClient::set_recv_timeout) — chaos runs set this so injected
  // server faults cannot hang the generator.
  int recv_timeout_ms = 0;
};

struct LoadResult {
  std::size_t sent = 0;
  std::size_t predictions = 0;
  std::size_t unknown = 0;  // predictions flagged is_unknown (open-set reject)
  std::size_t busy = 0;    // BUSY replies left standing (budget exhausted / retries off)
  std::size_t errors = 0;  // ERROR replies
  std::size_t deadline_exceeded = 0;  // DEADLINE_EXCEEDED replies (shed work)
  std::size_t busy_retries = 0;       // BUSY replies absorbed by re-sending
  std::size_t reconnects = 0;         // transport faults absorbed by reconnecting
  double elapsed_s = 0.0;
  double p50_ms = 0.0;  // client-observed time-in-pipe percentiles
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::string failure;  // non-empty on transport failure / missing replies

  bool ok() const noexcept { return failure.empty(); }
  double replies() const noexcept {
    return static_cast<double>(predictions + busy + errors + deadline_exceeded);
  }
};

/// Drives `connections` pipelined connections, each cycling through the
/// pre-encoded request `frames` until it has sent `requests` of them
/// with at most `pipeline` in flight. Every request gets exactly one
/// reply (prediction/busy/error); a missing reply or transport error
/// lands in LoadResult::failure. Latency is measured send-to-reply per
/// frame (time in pipe, queueing included).
LoadResult run_load(const LoadOptions& options,
                    std::span<const std::string> frames);

}  // namespace fhc::net
