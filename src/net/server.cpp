#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <new>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/features.hpp"
#include "net/timer_wheel.hpp"
#include "ssdeep/digest.hpp"
#include "util/fault_inject.hpp"

namespace fhc::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Builds a FeatureHashes from wire digest texts (channel order). Empty
/// strings are the empty digest (scores 0, like a stripped channel).
bool sample_from_digests(const std::vector<std::string>& digests,
                         core::FeatureHashes& out, std::string& error) {
  out = core::FeatureHashes{};
  for (std::size_t i = 0; i < digests.size(); ++i) {
    if (digests[i].empty()) continue;  // empty channel
    std::optional<ssdeep::FuzzyDigest> parsed = ssdeep::parse_digest(digests[i]);
    if (!parsed) {
      error = "malformed digest in channel " + std::to_string(i);
      return false;
    }
    out.set_channel(i, std::move(*parsed));
  }
  return true;
}

}  // namespace

struct SocketServer::Impl {
  // ---- static wiring -----------------------------------------------------
  service::CommandHandler& handler;
  ServerConfig config;

  struct Listener {
    int fd = -1;
    bool tcp = false;
  };
  std::vector<Listener> listeners;
  int resolved_tcp_port = -1;
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd: completions + stop()

  // ---- connections (event-loop thread only) ------------------------------
  struct Slot {
    bool ready = false;
    std::string bytes;
  };

  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    bool tcp = false;
    FrameReader reader;
    std::string wbuf;
    std::size_t woff = 0;
    std::deque<Slot> slots;    // reply queue, strictly in request order
    std::uint64_t base_seq = 0;  // seq of slots.front()
    std::uint64_t next_seq = 0;
    std::size_t inflight = 0;  // pending (classify/reload) slots
    std::uint32_t events = 0;  // currently registered epoll interest
    bool reads_off = false;    // paused (backpressure) or draining
    bool closing = false;      // no more reads; close once drained
    bool reload_wait = false;  // RELOAD in flight: later frames must
                               // observe the new model, so dispatch
                               // pauses until it completes

    // Timeout bookkeeping (authoritative; the timer wheel entry is lazy).
    Clock::time_point last_activity{};  // last byte received
    Clock::time_point frame_start{};    // first byte of the pending partial frame
    bool mid_frame = false;             // reader holds an incomplete frame

    explicit Conn(std::size_t max_frame) : reader(max_frame) {}
  };

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 1000;  // ids < 1000 are listeners/wakeups
  std::size_t global_inflight = 0;
  bool draining = false;
  Clock::time_point drain_deadline{};

  // Per-connection timeout machinery (idle / read-progress eviction).
  TimerWheel wheel;
  std::vector<std::uint64_t> expired_scratch;
  int epoll_failures = 0;  // consecutive non-EINTR epoll_wait failures

  // ---- completion worker -------------------------------------------------
  struct Job {
    enum Kind { kClassify, kReload, kStop } kind = kStop;
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::future<core::Prediction> future;
    std::string path;
    Clock::time_point start{};
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    bool classify = false;
    std::string bytes;
  };

  std::mutex jobs_mutex;
  std::condition_variable jobs_cv;
  std::deque<Job> jobs;
  std::mutex completions_mutex;
  std::deque<Completion> completions;
  std::thread worker;

  // ---- lifecycle ---------------------------------------------------------
  std::atomic<bool> stop_requested{false};
  std::thread loop_thread;  // start() only

  Impl(service::CommandHandler& h, ServerConfig c)
      : handler(h), config(std::move(c)) {}

  ~Impl() {
    for (auto& [id, conn] : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    close_listeners();
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (!config.unix_path.empty()) ::unlink(config.unix_path.c_str());
  }

  // ---- setup -------------------------------------------------------------

  void setup() {
    if (config.unix_path.empty() && config.tcp_port < 0) {
      throw std::invalid_argument(
          "SocketServer: configure a Unix socket path and/or a TCP port");
    }
    if (config.max_pipeline == 0) config.max_pipeline = 1;
    if (config.max_connections == 0) config.max_connections = 1;
    if (config.max_inflight == 0) config.max_inflight = 1;

    if (timeouts_enabled()) {
      // Wheel tick = a quarter of the tightest timeout, so eviction lag
      // (one tick of rounding + one tick of drain) stays well inside
      // the 2x-timeout bound even for aggressive test settings.
      int tightest = config.idle_timeout_ms > 0 ? config.idle_timeout_ms : 0;
      if (config.read_progress_timeout_ms > 0) {
        tightest = tightest > 0
                       ? std::min(tightest, config.read_progress_timeout_ms)
                       : config.read_progress_timeout_ms;
      }
      const int tick = std::clamp(tightest / 4, 1, 100);
      wheel = TimerWheel(std::chrono::milliseconds(tick), 512);
    }

    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) throw_errno("epoll_create1");
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0) throw_errno("eventfd");
    watch(wake_fd, /*key=*/0, EPOLLIN);

    if (!config.unix_path.empty()) add_unix_listener();
    if (config.tcp_port >= 0) add_tcp_listener();
    for (std::size_t i = 0; i < listeners.size(); ++i) {
      watch(listeners[i].fd, /*key=*/1 + i, EPOLLIN);
    }
  }

  void add_unix_listener() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("SocketServer: unix path too long: " +
                                  config.unix_path);
    }
    std::memcpy(addr.sun_path, config.unix_path.c_str(),
                config.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    // A previous daemon's stale socket file would fail the bind; the
    // path is daemon-owned, so replacing it is the standard idiom.
    ::unlink(config.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      throw_errno("bind(" + config.unix_path + ")");
    }
    if (::listen(fd, 512) < 0) {
      ::close(fd);
      throw_errno("listen(" + config.unix_path + ")");
    }
    listeners.push_back({fd, /*tcp=*/false});
  }

  void add_tcp_listener() {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config.tcp_port));
    if (::inet_pton(AF_INET, config.tcp_host.c_str(), &addr.sin_addr) != 1) {
      throw std::invalid_argument("SocketServer: bad tcp host: " + config.tcp_host);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      throw_errno("bind(" + config.tcp_host + ":" +
                  std::to_string(config.tcp_port) + ")");
    }
    if (::listen(fd, 512) < 0) {
      ::close(fd);
      throw_errno("listen(tcp)");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      resolved_tcp_port = ntohs(bound.sin_port);
    }
    listeners.push_back({fd, /*tcp=*/true});
  }

  void close_listeners() {
    for (Listener& listener : listeners) {
      if (listener.fd >= 0) {
        if (epoll_fd >= 0) ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener.fd, nullptr);
        ::close(listener.fd);
        listener.fd = -1;
      }
    }
  }

  void watch(int fd, std::uint64_t key, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = key;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) throw_errno("epoll_ctl(ADD)");
  }

  void update_interest(Conn& conn) {
    std::uint32_t wanted = 0;
    if (!conn.reads_off && !conn.closing && !conn.reload_wait) wanted |= EPOLLIN;
    if (conn.woff < conn.wbuf.size()) wanted |= EPOLLOUT;
    if (wanted == conn.events) return;
    epoll_event ev{};
    ev.events = wanted;
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.events = wanted;
  }

  // ---- per-connection timeouts -------------------------------------------

  bool timeouts_enabled() const noexcept {
    return config.idle_timeout_ms > 0 || config.read_progress_timeout_ms > 0;
  }

  /// Tracks partial-frame state after every drain: the read-progress
  /// clock anchors at the *first* byte of the pending frame, so a
  /// slow-loris that trickles one byte per tick still expires.
  void note_read_progress(Conn& conn) {
    const bool mid = conn.reader.buffered() > 0;
    if (mid && !conn.mid_frame) conn.frame_start = Clock::now();
    conn.mid_frame = mid;
  }

  /// The connection's authoritative expiry, or nullopt when no
  /// configured bound currently applies to it.
  std::optional<Clock::time_point> conn_deadline(const Conn& conn) const {
    if (conn.mid_frame && config.read_progress_timeout_ms > 0) {
      return conn.frame_start +
             std::chrono::milliseconds(config.read_progress_timeout_ms);
    }
    if (config.idle_timeout_ms > 0) {
      return conn.last_activity + std::chrono::milliseconds(config.idle_timeout_ms);
    }
    return std::nullopt;
  }

  /// Eviction is only for connections the server owes nothing: no reply
  /// slots pending and an empty write buffer — or ones already closing
  /// whose peer will not drain them.
  bool evictable(const Conn& conn) const noexcept {
    return conn.closing || (conn.slots.empty() && conn.wbuf.empty());
  }

  void evict_conn(Conn& conn, const char* why) {
    // Counter before the observable effect (the RST/FIN the peer sees),
    // same discipline as the admission and close paths.
    handler.service().record_connection_timed_out();
    std::string frame;
    encode_error(frame, why);
    (void)util::fi::send(conn.fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    close_conn(conn.id);
  }

  void expire_timers() {
    if (!timeouts_enabled()) return;
    const Clock::time_point now = Clock::now();
    expired_scratch.clear();
    wheel.expire(now, expired_scratch);
    for (const std::uint64_t id : expired_scratch) {
      const auto it = conns.find(id);
      if (it == conns.end()) continue;  // closed; its entry just lapses
      Conn& conn = *it->second;
      const std::optional<Clock::time_point> deadline = conn_deadline(conn);
      if (deadline && *deadline <= now && evictable(conn)) {
        evict_conn(conn, conn.mid_frame ? "read timeout: incomplete frame"
                                        : "idle timeout");
        continue;
      }
      // Lazy revalidation: activity moved the deadline (or the conn has
      // work in flight) — re-file at the true expiry, or at a polling
      // interval when no bound applies right now (a later partial frame
      // must still be caught).
      const Clock::time_point recheck = deadline
          ? std::max(*deadline, now)
          : now + std::chrono::milliseconds(config.read_progress_timeout_ms);
      wheel.schedule(id, recheck);
    }
  }

  // ---- event loop --------------------------------------------------------

  void run_loop() {
    std::vector<epoll_event> events(256);
    for (;;) {
      if (stop_requested.load(std::memory_order_relaxed)) begin_drain();
      if (draining && conns.empty()) break;

      int timeout = -1;
      if (draining) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            drain_deadline - Clock::now());
        if (left.count() <= 0) {
          force_close_all();
          break;
        }
        timeout = static_cast<int>(left.count());
      }
      if (timeouts_enabled() && !conns.empty()) {
        const int wheel_ms = wheel.next_timeout_ms(Clock::now());
        if (wheel_ms >= 0 && (timeout < 0 || wheel_ms < timeout)) {
          timeout = wheel_ms;
        }
      }
      {
        // Lost-wake guard: an injected eventfd_write failure must not
        // strand finished completions, so never sleep long while any
        // are queued.
        std::lock_guard lock(completions_mutex);
        if (!completions.empty() && (timeout < 0 || timeout > 20)) timeout = 20;
      }

      const int n = util::fi::epoll_wait(epoll_fd, events.data(),
                                         static_cast<int>(events.size()), timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        // Tolerate transient (injected or real one-off) failures; a
        // persistently broken epoll fd still surfaces.
        if (++epoll_failures > 64) throw_errno("epoll_wait");
        continue;
      }
      epoll_failures = 0;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t key = events[i].data.u64;
        const std::uint32_t mask = events[i].events;
        try {
          if (key == 0) {
            drain_wake();
          } else if (key <= listeners.size()) {
            accept_ready(listeners[key - 1]);
          } else {
            on_conn_event(key, mask);
          }
        } catch (const std::bad_alloc&) {
          // Allocation failure handling one connection must not take
          // down the daemon: shed that connection and keep serving.
          if (key > listeners.size()) close_conn(key);
        }
      }
      // Second half of the lost-wake guard: sweep any completions that
      // queued without a successful eventfd wake.
      bool pending_completions = false;
      {
        std::lock_guard lock(completions_mutex);
        pending_completions = !completions.empty();
      }
      if (pending_completions) drain_wake();
      expire_timers();
    }
    // Stop the completion worker; every queued job's future resolves
    // because begin_drain() flushed the service queue and nothing can
    // submit anymore.
    {
      std::lock_guard lock(jobs_mutex);
      jobs.push_back(Job{});  // kStop
    }
    jobs_cv.notify_one();
    if (worker.joinable()) worker.join();
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    drain_deadline =
        Clock::now() + std::chrono::milliseconds(std::max(config.drain_timeout_ms, 0));
    close_listeners();
    for (auto& [id, conn] : conns) {
      conn->closing = true;
      update_interest(*conn);
    }
    // Queued-but-unflushed requests must not wait out max_delay (or
    // worse, a huge test configuration) during shutdown.
    handler.service().flush();
    // Connections with nothing in flight close immediately; collect ids
    // first (close_conn mutates the map).
    std::vector<std::uint64_t> idle;
    for (auto& [id, conn] : conns) {
      if (conn->slots.empty() && conn->woff == conn->wbuf.size()) idle.push_back(id);
    }
    for (const std::uint64_t id : idle) close_conn(id);
  }

  void force_close_all() {
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (auto& [id, conn] : conns) ids.push_back(id);
    for (const std::uint64_t id : ids) close_conn(id);
  }

  void drain_wake() {
    std::uint64_t count = 0;
    while (util::fi::eventfd_read(wake_fd, count) > 0) {
    }
    std::deque<Completion> ready;
    {
      std::lock_guard lock(completions_mutex);
      ready.swap(completions);
    }
    for (Completion& completion : ready) {
      if (completion.classify && global_inflight > 0) --global_inflight;
      const auto it = conns.find(completion.conn_id);
      if (it == conns.end()) continue;  // connection died first
      Conn& conn = *it->second;
      if (completion.seq < conn.base_seq) continue;  // stale (should not happen)
      const std::size_t idx = completion.seq - conn.base_seq;
      if (idx >= conn.slots.size()) continue;
      conn.slots[idx].ready = true;
      conn.slots[idx].bytes = std::move(completion.bytes);
      if (conn.inflight > 0) --conn.inflight;
      if (!completion.classify) {
        // A reload finished: lift the barrier and dispatch the frames
        // that were buffered behind it against the new model.
        conn.reload_wait = false;
        if (!drain_frames(conn)) continue;
        note_read_progress(conn);
        apply_backpressure(conn);
      }
      flush_conn(conn);
    }
  }

  void accept_ready(const Listener& listener) {
    if (listener.fd < 0) return;
    for (;;) {
      const int fd = util::fi::accept4(listener.fd, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept errors (ECONNABORTED, EMFILE): keep serving
      }
      if (draining || conns.size() >= config.max_connections) {
        // Admission refusal at the accept gate: an explicit BUSY frame
        // (best-effort — the socket buffer of a fresh connection takes
        // it) and an immediate close. Count first: a client that
        // observes the BUSY/close must find the counter already bumped.
        handler.service().record_connection_rejected();
        std::string frame;
        encode_busy(frame, draining ? "server shutting down"
                                    : "connection limit reached");
        (void)util::fi::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      if (listener.tcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      }
      auto conn = std::make_unique<Conn>(config.max_frame);
      conn->id = next_conn_id++;
      conn->fd = fd;
      conn->tcp = listener.tcp;
      conn->events = EPOLLIN;
      conn->last_activity = Clock::now();
      watch(fd, conn->id, EPOLLIN);
      handler.service().record_connection_opened();
      if (timeouts_enabled()) {
        const std::optional<Clock::time_point> deadline = conn_deadline(*conn);
        wheel.schedule(conn->id,
                       deadline ? *deadline
                                : conn->last_activity +
                                      std::chrono::milliseconds(
                                          config.read_progress_timeout_ms));
      }
      conns.emplace(conn->id, std::move(conn));
    }
  }

  void on_conn_event(std::uint64_t id, std::uint32_t mask) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = *it->second;
    if (mask & (EPOLLHUP | EPOLLERR)) {
      close_conn(id);
      return;
    }
    if (mask & EPOLLOUT) {
      flush_conn(conn);
      if (conns.find(id) == conns.end()) return;  // flush closed it
    }
    if (mask & EPOLLIN) read_ready(id);
  }

  void read_ready(std::uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = *it->second;
    char buf[65536];
    for (;;) {
      if (conn.reads_off || conn.closing || conn.reload_wait) break;
      const ssize_t got = util::fi::recv(conn.fd, buf, sizeof buf, 0);
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_conn(id);
        return;
      }
      if (got == 0) {  // peer closed: flush what is owed, then close
        conn.closing = true;
        break;
      }
      conn.last_activity = Clock::now();
      util::fi::alloc_guard();  // frame buffer growth is the next allocation
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(got)));
      if (!drain_frames(conn)) return;  // connection died mid-dispatch
      note_read_progress(conn);
      apply_backpressure(conn);
    }
    flush_conn(conn);
  }

  /// Dispatches every buffered frame the connection may currently
  /// process (dispatch stops at closing and at a reload barrier).
  /// Returns false when the connection was erased mid-dispatch.
  bool drain_frames(Conn& conn) {
    const std::uint64_t id = conn.id;
    while (!conn.closing && !conn.reload_wait) {
      std::optional<std::vector<std::uint8_t>> payload = conn.reader.next();
      if (!payload) break;
      dispatch(conn, *payload);
      if (conns.find(id) == conns.end()) return false;
    }
    if (conn.reader.error() && !conn.closing) {
      // Framing violation: the stream can no longer be trusted.
      append_ready(conn, [&](std::string& out) {
        encode_error(out, "protocol error: " + *conn.reader.error());
      });
      conn.closing = true;
    }
    return true;
  }

  /// Appends one immediately-ready reply slot.
  template <typename Encode>
  void append_ready(Conn& conn, Encode&& encode) {
    Slot slot;
    slot.ready = true;
    encode(slot.bytes);
    conn.slots.push_back(std::move(slot));
    ++conn.next_seq;
  }

  /// Appends a pending slot and returns its sequence number.
  std::uint64_t append_pending(Conn& conn) {
    conn.slots.emplace_back();
    ++conn.inflight;
    return conn.next_seq++;
  }

  void dispatch(Conn& conn, const std::vector<std::uint8_t>& payload) {
    Request request;
    const DecodeStatus status = decode_request(payload, request);
    if (status == DecodeStatus::kUnknownOpcode) {
      append_ready(conn, [](std::string& out) {
        encode_error(out, "unknown opcode");
      });
      return;
    }
    if (status == DecodeStatus::kMalformed) {
      append_ready(conn, [](std::string& out) {
        encode_error(out, "malformed request body");
      });
      conn.closing = true;  // framing no longer trustworthy
      return;
    }

    switch (request.op) {
      case Opcode::kClassifyDigests:
      case Opcode::kClassifyPath:
        dispatch_classify(conn, request);
        break;
      case Opcode::kStats:
        append_ready(conn, [&](std::string& out) {
          encode_stats_text(out, handler.stats_line());
        });
        break;
      case Opcode::kPing:
        append_ready(conn, [](std::string& out) { encode_ok(out, "pong"); });
        break;
      case Opcode::kReload: {
        const std::uint64_t seq = append_pending(conn);
        // Barrier: frames pipelined behind a RELOAD must observe the new
        // model, so this connection's dispatch pauses until it completes
        // (other connections keep flowing against the old snapshot).
        conn.reload_wait = true;
        Job job;
        job.kind = Job::kReload;
        job.conn_id = conn.id;
        job.seq = seq;
        job.path = request.text;
        job.start = Clock::now();
        push_job(std::move(job));
        break;
      }
      case Opcode::kQuit:
        append_ready(conn, [](std::string& out) { encode_ok(out, "bye"); });
        begin_drain();
        break;
      default:  // unreachable: decode_request validated the opcode
        break;
    }
  }

  void dispatch_classify(Conn& conn, Request& request) {
    // Admission gates, cheapest first; every refusal is an explicit
    // BUSY reply in the pipeline, never silent queueing.
    if (conn.inflight >= config.max_pipeline) {
      append_ready(conn, [](std::string& out) {
        encode_busy(out, "per-connection pipeline limit reached");
      });
      return;
    }
    if (global_inflight >= config.max_inflight) {
      append_ready(conn, [](std::string& out) {
        encode_busy(out, "server in-flight limit reached");
      });
      return;
    }

    const Clock::time_point start = Clock::now();
    // The wire deadline is the client's total time budget; the service
    // starts the clock at enqueue and sheds expired work before scoring.
    std::optional<std::chrono::milliseconds> deadline;
    if (request.has_deadline) {
      deadline = std::chrono::milliseconds(request.deadline_ms);
    }
    service::CommandHandler::Submission submission;
    if (request.op == Opcode::kClassifyDigests) {
      core::FeatureHashes sample;
      std::string error;
      if (!sample_from_digests(request.digests, sample, error)) {
        // Bad digest text is an input error, not a framing error: the
        // connection stays usable.
        append_ready(conn, [&](std::string& out) { encode_error(out, error); });
        return;
      }
      submission =
          handler.submit_sample(std::move(sample), /*bounded=*/true, deadline);
    } else {
      submission = handler.submit_path(request.text, /*bounded=*/true, deadline);
    }

    if (!submission.error.empty()) {
      append_ready(conn, [&](std::string& out) {
        encode_error(out, submission.error);
      });
      return;
    }
    if (submission.rejected) {
      append_ready(conn, [](std::string& out) {
        encode_busy(out, "service queue full");
      });
      return;
    }

    const std::uint64_t seq = append_pending(conn);
    ++global_inflight;
    Job job;
    job.kind = Job::kClassify;
    job.conn_id = conn.id;
    job.seq = seq;
    job.future = std::move(submission.future);
    job.start = start;
    push_job(std::move(job));
  }

  void apply_backpressure(Conn& conn) {
    const std::size_t backlog = conn.wbuf.size() - conn.woff;
    if (!conn.reads_off && backlog > config.write_high_watermark) {
      conn.reads_off = true;
    } else if (conn.reads_off && backlog < config.write_high_watermark / 2) {
      conn.reads_off = false;
    }
  }

  void flush_conn(Conn& conn) {
    // Move the ready prefix of the reply queue into the write buffer.
    while (!conn.slots.empty() && conn.slots.front().ready) {
      conn.wbuf += conn.slots.front().bytes;
      conn.slots.pop_front();
      ++conn.base_seq;
    }
    while (conn.woff < conn.wbuf.size()) {
      const ssize_t sent = util::fi::send(conn.fd, conn.wbuf.data() + conn.woff,
                                          conn.wbuf.size() - conn.woff,
                                          MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_conn(conn.id);
        return;
      }
      conn.woff += static_cast<std::size_t>(sent);
    }
    if (conn.woff == conn.wbuf.size()) {
      conn.wbuf.clear();
      conn.woff = 0;
    }
    apply_backpressure(conn);
    if ((conn.closing || draining) && conn.slots.empty() && conn.wbuf.empty()) {
      close_conn(conn.id);
      return;
    }
    update_interest(conn);
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = *it->second;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    // Count before closing: a peer that observes the EOF must find the
    // counter already decremented.
    handler.service().record_connection_closed();
    ::close(conn.fd);
    conn.fd = -1;
    // In-flight completions for this connection are dropped on arrival
    // (conn lookup fails); their global_inflight share is still released
    // there.
    conns.erase(it);
  }

  // ---- completion worker -------------------------------------------------

  void push_job(Job job) {
    {
      std::lock_guard lock(jobs_mutex);
      jobs.push_back(std::move(job));
    }
    jobs_cv.notify_one();
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lock(jobs_mutex);
        jobs_cv.wait(lock, [this] { return !jobs.empty(); });
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      if (job.kind == Job::kStop) return;

      Completion completion;
      completion.conn_id = job.conn_id;
      completion.seq = job.seq;
      completion.classify = job.kind == Job::kClassify;
      if (job.kind == Job::kClassify) {
        try {
          const core::Prediction pred = job.future.get();
          const auto micros =
              std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                    job.start);
          // Name the label against the current model snapshot, exactly
          // like the stdio front-end (a prediction can outlive a RELOAD;
          // out-of-range labels stay numeric via the empty name).
          const std::shared_ptr<const core::FuzzyHashClassifier> model =
              handler.service().model();
          const std::vector<std::string>& names = model->class_names();
          std::string_view name;
          if (pred.label >= 0 &&
              static_cast<std::size_t>(pred.label) < names.size()) {
            name = names[static_cast<std::size_t>(pred.label)];
          }
          encode_prediction(completion.bytes, pred.label, pred.is_unknown,
                            pred.confidence,
                            static_cast<std::uint64_t>(micros.count()), name);
        } catch (const service::DeadlineExceeded& e) {
          // Shed before scoring: a distinct reply opcode so clients can
          // tell "too late" from "broken" without parsing text.
          encode_deadline_exceeded(completion.bytes, e.what());
        } catch (const std::exception& e) {
          encode_error(completion.bytes, e.what());
        }
      } else {
        const service::CommandHandler::ReloadResult result =
            handler.reload(job.path);
        if (result.ok) {
          encode_ok(completion.bytes, result.message);
        } else {
          encode_error(completion.bytes, result.message);
        }
      }

      {
        std::lock_guard lock(completions_mutex);
        completions.push_back(std::move(completion));
      }
      wake();
    }
  }

  void wake() {
    // A failed wake (injected or real) is survivable: the loop caps its
    // sleep while completions are queued and sweeps them on timeout.
    ssize_t rc;
    do {
      rc = util::fi::eventfd_write(wake_fd, 1);
    } while (rc < 0 && errno == EINTR);
  }
};

SocketServer::SocketServer(service::CommandHandler& handler, ServerConfig config)
    : impl_(std::make_unique<Impl>(handler, std::move(config))) {
  impl_->setup();
}

SocketServer::~SocketServer() {
  stop();
  join();
}

void SocketServer::run() {
  impl_->worker = std::thread([this] { impl_->worker_loop(); });
  impl_->run_loop();
}

void SocketServer::start() {
  impl_->loop_thread = std::thread([this] { run(); });
}

void SocketServer::stop() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  impl_->wake();
}

void SocketServer::join() {
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
}

int SocketServer::tcp_port() const noexcept { return impl_->resolved_tcp_port; }

const std::string& SocketServer::unix_socket_path() const noexcept {
  return impl_->config.unix_path;
}

}  // namespace fhc::net
