#include "net/timer_wheel.hpp"

#include <algorithm>

namespace fhc::net {

TimerWheel::TimerWheel(std::chrono::milliseconds resolution, std::size_t slots)
    : resolution_(std::max<std::chrono::milliseconds>(resolution,
                                                      std::chrono::milliseconds(1))),
      slots_(std::max<std::size_t>(slots, 2)),
      epoch_(Clock::now()) {}

std::uint64_t TimerWheel::tick_of(Clock::time_point t) const {
  if (t <= epoch_) return 0;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(t - epoch_);
  // Round deadlines up: firing a tick late is fine, a tick early is not.
  return static_cast<std::uint64_t>(
      (elapsed.count() + resolution_.count() - 1) / resolution_.count());
}

void TimerWheel::schedule(std::uint64_t id, Clock::time_point deadline) {
  // A deadline at or behind the drain cursor would land in a slot that
  // was already visited and sleep a whole revolution; file it one tick
  // ahead instead so the next expire() sees it.
  const std::uint64_t tick = std::max(tick_of(deadline), cursor_ + 1);
  slots_[tick % slots_.size()].push_back(Entry{id, tick});
  ++size_;
}

void TimerWheel::expire(Clock::time_point now, std::vector<std::uint64_t>& out) {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_);
  const std::uint64_t now_tick = now <= epoch_
      ? 0
      : static_cast<std::uint64_t>(elapsed.count() / resolution_.count());
  if (now_tick <= cursor_) return;
  // One pass over the slots the cursor sweeps; a jump beyond a full
  // revolution visits each slot exactly once.
  const std::uint64_t steps =
      std::min<std::uint64_t>(now_tick - cursor_, slots_.size());
  for (std::uint64_t i = 1; i <= steps; ++i) {
    std::vector<Entry>& slot = slots_[(cursor_ + i) % slots_.size()];
    std::size_t kept = 0;
    for (Entry& entry : slot) {
      if (entry.tick <= now_tick) {
        out.push_back(entry.id);
        --size_;
      } else {
        slot[kept++] = entry;  // a later revolution's entry stays filed
      }
    }
    slot.resize(kept);
  }
  cursor_ = now_tick;
}

int TimerWheel::next_timeout_ms(Clock::time_point now) const {
  if (size_ == 0) return -1;
  std::uint64_t min_tick = ~std::uint64_t{0};
  for (const std::vector<Entry>& slot : slots_) {
    for (const Entry& entry : slot) min_tick = std::min(min_tick, entry.tick);
  }
  const Clock::time_point fire =
      epoch_ + resolution_ * static_cast<std::int64_t>(min_tick);
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(fire - now);
  return static_cast<int>(std::max<std::int64_t>(left.count(), 0));
}

}  // namespace fhc::net
