#include "net/protocol.hpp"

#include <bit>
#include <cstring>

namespace fhc::net {

namespace {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Patches the frame header in front of a payload appended after
/// begin_frame(); keeps every encoder a straight-line append.
std::size_t begin_frame(std::string& out) {
  const std::size_t header_at = out.size();
  put_u32(out, 0);  // patched by end_frame
  return header_at;
}

void end_frame(std::string& out, std::size_t header_at) {
  const auto payload_len =
      static_cast<std::uint32_t>(out.size() - header_at - kFrameHeaderSize);
  out[header_at + 0] = static_cast<char>(payload_len & 0xff);
  out[header_at + 1] = static_cast<char>((payload_len >> 8) & 0xff);
  out[header_at + 2] = static_cast<char>((payload_len >> 16) & 0xff);
  out[header_at + 3] = static_cast<char>((payload_len >> 24) & 0xff);
}

/// Bounds-checked little-endian reader over one frame payload.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (at_ + 1 > bytes_.size()) return false;
    v = bytes_[at_++];
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (at_ + 4 > bytes_.size()) return false;
    v = static_cast<std::uint32_t>(bytes_[at_]) |
        (static_cast<std::uint32_t>(bytes_[at_ + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes_[at_ + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes_[at_ + 3]) << 24);
    at_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }

  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (at_ + len > bytes_.size()) return false;  // at_ + len can't wrap: both fit
    v.assign(reinterpret_cast<const char*>(bytes_.data() + at_), len);
    at_ += len;
    return true;
  }

  bool done() const noexcept { return at_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

}  // namespace

void encode_classify_digests(std::string& out,
                             std::span<const std::string> digests,
                             std::optional<std::uint32_t> deadline_ms) {
  const std::size_t header = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Opcode::kClassifyDigests));
  std::uint8_t count_flags = static_cast<std::uint8_t>(digests.size());
  if (deadline_ms) count_flags |= kClassifyFlagDeadline;
  put_u8(out, count_flags);
  if (deadline_ms) put_u32(out, *deadline_ms);
  for (const std::string& digest : digests) put_string(out, digest);
  end_frame(out, header);
}

void encode_classify_path(std::string& out, std::string_view path_spec,
                          std::optional<std::uint32_t> deadline_ms) {
  const std::size_t header = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Opcode::kClassifyPath));
  put_string(out, path_spec);
  if (deadline_ms) put_u32(out, *deadline_ms);
  end_frame(out, header);
}

namespace {
void encode_bodyless(std::string& out, Opcode op) {
  const std::size_t header = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(op));
  end_frame(out, header);
}

void encode_text(std::string& out, Opcode op, std::string_view text) {
  const std::size_t header = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(op));
  put_string(out, text);
  end_frame(out, header);
}
}  // namespace

void encode_stats(std::string& out) { encode_bodyless(out, Opcode::kStats); }
void encode_ping(std::string& out) { encode_bodyless(out, Opcode::kPing); }
void encode_quit(std::string& out) { encode_bodyless(out, Opcode::kQuit); }

void encode_reload(std::string& out, std::string_view model_path) {
  encode_text(out, Opcode::kReload, model_path);
}

void encode_prediction(std::string& out, std::int32_t label, bool is_unknown,
                       double confidence, std::uint64_t server_micros,
                       std::string_view class_name) {
  const std::size_t header = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Opcode::kPrediction));
  put_u32(out, static_cast<std::uint32_t>(label));
  put_u8(out, is_unknown ? kPredictionFlagUnknown : 0);
  put_u64(out, std::bit_cast<std::uint64_t>(confidence));
  put_u64(out, server_micros);
  put_string(out, class_name);
  end_frame(out, header);
}

void encode_ok(std::string& out, std::string_view text) {
  encode_text(out, Opcode::kOk, text);
}
void encode_stats_text(std::string& out, std::string_view text) {
  encode_text(out, Opcode::kStatsText, text);
}
void encode_error(std::string& out, std::string_view message) {
  encode_text(out, Opcode::kError, message);
}
void encode_busy(std::string& out, std::string_view reason) {
  encode_text(out, Opcode::kBusy, reason);
}
void encode_deadline_exceeded(std::string& out, std::string_view reason) {
  encode_text(out, Opcode::kDeadlineExceeded, reason);
}

DecodeStatus decode_request(std::span<const std::uint8_t> payload, Request& out) {
  Cursor cursor(payload);
  std::uint8_t op = 0;
  if (!cursor.u8(op)) return DecodeStatus::kMalformed;
  out = Request{};
  out.op = static_cast<Opcode>(op);
  switch (out.op) {
    case Opcode::kClassifyDigests: {
      std::uint8_t count_flags = 0;
      if (!cursor.u8(count_flags)) return DecodeStatus::kMalformed;
      // Reserved flag bits follow the PR 9 discipline: must-be-zero now
      // so a future writer can claim them without old decoders silently
      // misreading the body.
      if ((count_flags & kClassifyReservedMask) != 0) return DecodeStatus::kMalformed;
      const std::uint8_t count = count_flags & kClassifyCountMask;
      if (count == 0 || count > kMaxDigestChannels) return DecodeStatus::kMalformed;
      if ((count_flags & kClassifyFlagDeadline) != 0) {
        if (!cursor.u32(out.deadline_ms)) return DecodeStatus::kMalformed;
        out.has_deadline = true;
      }
      out.digests.resize(count);
      for (std::string& digest : out.digests) {
        if (!cursor.str(digest)) return DecodeStatus::kMalformed;
      }
      break;
    }
    case Opcode::kClassifyPath:
      if (!cursor.str(out.text)) return DecodeStatus::kMalformed;
      // Exactly four trailing bytes are the optional deadline; anything
      // else trailing falls through to the done() check below.
      if (!cursor.done()) {
        if (!cursor.u32(out.deadline_ms)) return DecodeStatus::kMalformed;
        out.has_deadline = true;
      }
      break;
    case Opcode::kReload:
      if (!cursor.str(out.text)) return DecodeStatus::kMalformed;
      break;
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kQuit:
      break;
    default:
      return DecodeStatus::kUnknownOpcode;
  }
  return cursor.done() ? DecodeStatus::kOk : DecodeStatus::kMalformed;
}

DecodeStatus decode_response(std::span<const std::uint8_t> payload, Response& out) {
  Cursor cursor(payload);
  std::uint8_t op = 0;
  if (!cursor.u8(op)) return DecodeStatus::kMalformed;
  out = Response{};
  out.op = static_cast<Opcode>(op);
  switch (out.op) {
    case Opcode::kPrediction: {
      std::uint32_t label = 0;
      std::uint8_t flags = 0;
      std::uint64_t confidence_bits = 0;
      if (!cursor.u32(label) || !cursor.u8(flags) ||
          !cursor.u64(confidence_bits) || !cursor.u64(out.server_micros) ||
          !cursor.str(out.text)) {
        return DecodeStatus::kMalformed;
      }
      if ((flags & ~kPredictionFlagUnknown) != 0) return DecodeStatus::kMalformed;
      out.label = static_cast<std::int32_t>(label);
      out.is_unknown = (flags & kPredictionFlagUnknown) != 0;
      out.confidence = std::bit_cast<double>(confidence_bits);
      break;
    }
    case Opcode::kOk:
    case Opcode::kStatsText:
    case Opcode::kError:
    case Opcode::kBusy:
    case Opcode::kDeadlineExceeded:
      if (!cursor.str(out.text)) return DecodeStatus::kMalformed;
      break;
    default:
      return DecodeStatus::kUnknownOpcode;
  }
  return cursor.done() ? DecodeStatus::kOk : DecodeStatus::kMalformed;
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (error_) return;  // poisoned: drop everything
  // Compact the consumed prefix before growing — steady-state pipelining
  // keeps the buffer near one frame.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReader::feed(std::string_view bytes) {
  feed(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (error_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint32_t payload_len = static_cast<std::uint32_t>(head[0]) |
                                    (static_cast<std::uint32_t>(head[1]) << 8) |
                                    (static_cast<std::uint32_t>(head[2]) << 16) |
                                    (static_cast<std::uint32_t>(head[3]) << 24);
  if (payload_len == 0) {
    error_ = "zero-length frame";
    return std::nullopt;
  }
  if (payload_len > max_frame_) {
    error_ = "frame exceeds maximum payload size (" +
             std::to_string(payload_len) + " > " + std::to_string(max_frame_) +
             ")";
    return std::nullopt;
  }
  if (available < kFrameHeaderSize + payload_len) return std::nullopt;
  std::vector<std::uint8_t> payload(head + kFrameHeaderSize,
                                    head + kFrameHeaderSize + payload_len);
  consumed_ += kFrameHeaderSize + payload_len;
  return payload;
}

}  // namespace fhc::net
