// ELF64 parsing with defensive bounds checking.
//
// The reader never trusts offsets/sizes from the image: every access is
// range-checked against the buffer, so corrupt or truncated executables
// produce a clean ElfError instead of out-of-bounds reads. The reader does
// not own the bytes; callers keep the image alive while using it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "elf/elf_types.hpp"

namespace fhc::elf {

class ElfError : public std::runtime_error {
 public:
  explicit ElfError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed symbol (resolved name + raw fields).
struct Symbol {
  std::string_view name;
  unsigned char bind = 0;
  unsigned char type = 0;
  std::uint16_t shndx = 0;
  std::uint64_t value = 0;
  std::uint64_t size = 0;
};

/// A parsed section (resolved name + raw header + content view).
struct Section {
  std::string_view name;
  Elf64_Shdr header{};
  std::span<const std::uint8_t> content;  // empty for SHT_NOBITS
};

class ElfReader {
 public:
  /// Parses headers and the section table. Throws ElfError when the image
  /// is not a little-endian ELF64 or any header is out of bounds.
  explicit ElfReader(std::span<const std::uint8_t> image);

  const Elf64_Ehdr& header() const noexcept { return ehdr_; }
  const std::vector<Section>& sections() const noexcept { return sections_; }

  /// First section with the given name, if any.
  std::optional<Section> section_by_name(std::string_view name) const;

  /// True when the image carries a .symtab section.
  bool has_symtab() const;

  /// All symbols from .symtab (empty for stripped binaries). Symbol names
  /// view into the image buffer.
  std::vector<Symbol> symbols() const;

  /// Quick check without construction: does `image` start with an ELF64
  /// little-endian magic?
  static bool looks_like_elf(std::span<const std::uint8_t> image) noexcept;

 private:
  std::span<const std::uint8_t> bytes_at(std::uint64_t offset, std::uint64_t size) const;
  std::string_view cstring_at(std::span<const std::uint8_t> table, std::uint64_t offset) const;

  std::span<const std::uint8_t> image_;
  Elf64_Ehdr ehdr_{};
  std::vector<Section> sections_;
};

}  // namespace fhc::elf
