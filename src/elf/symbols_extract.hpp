// `nm`(1) equivalent: the paper's third (and most important) feature
// channel is the SSDeep hash of "the global text symbols extracted using
// the nm command". We reproduce the relevant nm behaviour: defined global
// symbols, classified by the section that defines them ('T' for text, 'D'
// for writable data, 'R' for read-only data, 'W' for weak), sorted by name
// as nm prints them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "elf/elf_reader.hpp"

namespace fhc::elf {

/// One nm output line: classification letter + symbol name.
struct NmEntry {
  char letter = '?';
  std::string name;
};

/// nm-style classification of one parsed symbol given its defining
/// section header (nullptr for SHN_UNDEF/SHN_ABS). Returns 'U' for
/// undefined, 'A' for absolute, 'T'/'D'/'R'/'B' by section flags, with
/// weak binding lowering 'T'->'W' (nm prints 'W'/'w' for weak; we use 'W').
char classify_symbol(const Symbol& symbol, const Elf64_Shdr* defining_section);

/// All defined global (and weak) symbols, nm-sorted (by name). Throws
/// ElfError on malformed images; returns empty for stripped binaries.
std::vector<NmEntry> nm_global_defined(const ElfReader& reader);

/// Names of global *text* symbols ('T'), sorted, joined with '\n': the
/// exact text fed to the fuzzy hasher for the ssdeep-symbols feature.
/// Empty when the binary is stripped — the caller decides policy (the
/// paper notes stripped binaries defeat the approach).
std::string global_text_symbols_text(std::span<const std::uint8_t> image);

/// True when `image` is a parseable ELF that carries a symbol table.
bool has_symbol_table(std::span<const std::uint8_t> image) noexcept;

}  // namespace fhc::elf
