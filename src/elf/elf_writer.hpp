// ELF64 executable synthesis.
//
// The corpus generator models each application sample as machine code,
// read-only data (strings), a compiler identification note and a symbol
// table, then emits it as a genuine ELF64 executable image through this
// writer. The images parse cleanly with our reader (and with binutils),
// which keeps the whole feature-extraction path — `file bytes`,
// `strings`, `nm` — identical to what it would be on real system binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elf/elf_types.hpp"

namespace fhc::elf {

/// Where a synthesized symbol is defined.
enum class SymbolSection { kText, kRodata };

/// One symbol-table entry to synthesize.
struct SymbolSpec {
  std::string name;
  SymbolSection section = SymbolSection::kText;
  unsigned char bind = kStbGlobal;   // kStbLocal / kStbGlobal / kStbWeak
  unsigned char type = kSttFunc;     // kSttFunc / kSttObject
  std::uint64_t value = 0;           // offset within its section
  std::uint64_t size = 0;
};

/// Full description of an executable to synthesize.
struct ElfSpec {
  std::vector<std::uint8_t> text;    // .text contents ("machine code")
  std::vector<std::uint8_t> rodata;  // .rodata contents (string pool etc.)
  std::string comment;               // .comment (e.g. "GCC: (GNU) 10.3.0")
  std::vector<SymbolSpec> symbols;   // emitted in the given order
  bool stripped = false;             // omit .symtab/.strtab entirely
  std::uint64_t entry = 0x400000;    // e_entry and base vaddr of the image
};

/// Serializes `spec` into a valid ELF64 little-endian executable image:
/// Ehdr, one PT_LOAD Phdr, .text, .rodata, .comment, [.symtab, .strtab,]
/// .shstrtab and the section-header table. Throws std::invalid_argument if
/// a symbol references space outside its section.
std::vector<std::uint8_t> write_elf(const ElfSpec& spec);

}  // namespace fhc::elf
