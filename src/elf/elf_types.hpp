// ELF64 on-disk structures and the constants this library needs.
//
// Only the little-endian 64-bit subset used by Linux executables is
// modelled — enough for the writer to emit executables that `readelf`/`nm`
// accept and for the reader to parse anything the writer (or a real
// toolchain) produces with intact headers.
// Reference: System V ABI, ELF-64 object file format.
#pragma once

#include <cstdint>

namespace fhc::elf {

// --- e_ident layout ------------------------------------------------------
inline constexpr unsigned char kMag0 = 0x7f;
inline constexpr unsigned char kMag1 = 'E';
inline constexpr unsigned char kMag2 = 'L';
inline constexpr unsigned char kMag3 = 'F';
inline constexpr unsigned char kClass64 = 2;       // ELFCLASS64
inline constexpr unsigned char kDataLsb = 1;       // ELFDATA2LSB
inline constexpr unsigned char kEvCurrent = 1;     // EV_CURRENT
inline constexpr unsigned char kOsabiSysv = 0;     // ELFOSABI_NONE

// --- e_type / e_machine ---------------------------------------------------
inline constexpr std::uint16_t kEtExec = 2;        // ET_EXEC
inline constexpr std::uint16_t kEtDyn = 3;         // ET_DYN (PIE)
inline constexpr std::uint16_t kEmX86_64 = 62;     // EM_X86_64

// --- section types (sh_type) ----------------------------------------------
inline constexpr std::uint32_t kShtNull = 0;
inline constexpr std::uint32_t kShtProgbits = 1;
inline constexpr std::uint32_t kShtSymtab = 2;
inline constexpr std::uint32_t kShtStrtab = 3;
inline constexpr std::uint32_t kShtNobits = 8;

// --- section flags (sh_flags) ----------------------------------------------
inline constexpr std::uint64_t kShfWrite = 0x1;
inline constexpr std::uint64_t kShfAlloc = 0x2;
inline constexpr std::uint64_t kShfExecinstr = 0x4;
inline constexpr std::uint64_t kShfStrings = 0x20;

// --- program header --------------------------------------------------------
inline constexpr std::uint32_t kPtLoad = 1;
inline constexpr std::uint32_t kPfX = 0x1;
inline constexpr std::uint32_t kPfW = 0x2;
inline constexpr std::uint32_t kPfR = 0x4;

// --- symbols ---------------------------------------------------------------
inline constexpr unsigned char kStbLocal = 0;
inline constexpr unsigned char kStbGlobal = 1;
inline constexpr unsigned char kStbWeak = 2;
inline constexpr unsigned char kSttNotype = 0;
inline constexpr unsigned char kSttObject = 1;
inline constexpr unsigned char kSttFunc = 2;
inline constexpr std::uint16_t kShnUndef = 0;
inline constexpr std::uint16_t kShnAbs = 0xfff1;

constexpr unsigned char st_info(unsigned char bind, unsigned char type) noexcept {
  return static_cast<unsigned char>((bind << 4) | (type & 0xf));
}
constexpr unsigned char st_bind(unsigned char info) noexcept { return info >> 4; }
constexpr unsigned char st_type(unsigned char info) noexcept { return info & 0xf; }

// --- on-disk records (packed layout matches the ABI; all members are
// naturally aligned so no #pragma pack is needed) ---------------------------

struct Elf64_Ehdr {
  unsigned char e_ident[16];
  std::uint16_t e_type;
  std::uint16_t e_machine;
  std::uint32_t e_version;
  std::uint64_t e_entry;
  std::uint64_t e_phoff;
  std::uint64_t e_shoff;
  std::uint32_t e_flags;
  std::uint16_t e_ehsize;
  std::uint16_t e_phentsize;
  std::uint16_t e_phnum;
  std::uint16_t e_shentsize;
  std::uint16_t e_shnum;
  std::uint16_t e_shstrndx;
};
static_assert(sizeof(Elf64_Ehdr) == 64);

struct Elf64_Phdr {
  std::uint32_t p_type;
  std::uint32_t p_flags;
  std::uint64_t p_offset;
  std::uint64_t p_vaddr;
  std::uint64_t p_paddr;
  std::uint64_t p_filesz;
  std::uint64_t p_memsz;
  std::uint64_t p_align;
};
static_assert(sizeof(Elf64_Phdr) == 56);

struct Elf64_Shdr {
  std::uint32_t sh_name;
  std::uint32_t sh_type;
  std::uint64_t sh_flags;
  std::uint64_t sh_addr;
  std::uint64_t sh_offset;
  std::uint64_t sh_size;
  std::uint32_t sh_link;
  std::uint32_t sh_info;
  std::uint64_t sh_addralign;
  std::uint64_t sh_entsize;
};
static_assert(sizeof(Elf64_Shdr) == 64);

struct Elf64_Sym {
  std::uint32_t st_name;
  unsigned char st_info;
  unsigned char st_other;
  std::uint16_t st_shndx;
  std::uint64_t st_value;
  std::uint64_t st_size;
};
static_assert(sizeof(Elf64_Sym) == 24);

}  // namespace fhc::elf
