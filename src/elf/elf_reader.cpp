#include "elf/elf_reader.hpp"

#include <cstring>

namespace fhc::elf {

bool ElfReader::looks_like_elf(std::span<const std::uint8_t> image) noexcept {
  return image.size() >= 6 && image[0] == kMag0 && image[1] == kMag1 &&
         image[2] == kMag2 && image[3] == kMag3 && image[4] == kClass64 &&
         image[5] == kDataLsb;
}

std::span<const std::uint8_t> ElfReader::bytes_at(std::uint64_t offset,
                                                  std::uint64_t size) const {
  if (offset > image_.size() || size > image_.size() - offset) {
    throw ElfError("elf: range [" + std::to_string(offset) + ", +" +
                   std::to_string(size) + ") exceeds image of " +
                   std::to_string(image_.size()) + " bytes");
  }
  return image_.subspan(offset, size);
}

std::string_view ElfReader::cstring_at(std::span<const std::uint8_t> table,
                                       std::uint64_t offset) const {
  if (offset >= table.size()) throw ElfError("elf: string offset out of range");
  const auto* begin = reinterpret_cast<const char*>(table.data() + offset);
  const auto* end = reinterpret_cast<const char*>(table.data() + table.size());
  const auto* terminator = static_cast<const char*>(
      std::memchr(begin, '\0', static_cast<std::size_t>(end - begin)));
  if (terminator == nullptr) throw ElfError("elf: unterminated string");
  return {begin, static_cast<std::size_t>(terminator - begin)};
}

ElfReader::ElfReader(std::span<const std::uint8_t> image) : image_(image) {
  if (!looks_like_elf(image)) throw ElfError("elf: bad magic or not ELF64-LSB");
  const auto ehdr_bytes = bytes_at(0, sizeof(Elf64_Ehdr));
  std::memcpy(&ehdr_, ehdr_bytes.data(), sizeof(Elf64_Ehdr));

  if (ehdr_.e_shentsize != sizeof(Elf64_Shdr)) {
    throw ElfError("elf: unexpected section header entry size");
  }
  if (ehdr_.e_shnum == 0) return;  // headerless image: nothing more to parse
  if (ehdr_.e_shstrndx >= ehdr_.e_shnum) throw ElfError("elf: bad e_shstrndx");

  std::vector<Elf64_Shdr> headers(ehdr_.e_shnum);
  const auto table_bytes =
      bytes_at(ehdr_.e_shoff, static_cast<std::uint64_t>(ehdr_.e_shnum) * sizeof(Elf64_Shdr));
  std::memcpy(headers.data(), table_bytes.data(), table_bytes.size());

  const Elf64_Shdr& shstr = headers[ehdr_.e_shstrndx];
  const auto shstrtab = bytes_at(shstr.sh_offset, shstr.sh_size);

  sections_.reserve(headers.size());
  for (const Elf64_Shdr& shdr : headers) {
    Section section;
    section.header = shdr;
    section.name = shdr.sh_name < shstrtab.size() ? cstring_at(shstrtab, shdr.sh_name)
                                                  : std::string_view{};
    if (shdr.sh_type != kShtNull && shdr.sh_type != kShtNobits && shdr.sh_size > 0) {
      section.content = bytes_at(shdr.sh_offset, shdr.sh_size);
    }
    sections_.push_back(section);
  }
}

std::optional<Section> ElfReader::section_by_name(std::string_view name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return section;
  }
  return std::nullopt;
}

bool ElfReader::has_symtab() const {
  for (const Section& section : sections_) {
    if (section.header.sh_type == kShtSymtab) return true;
  }
  return false;
}

std::vector<Symbol> ElfReader::symbols() const {
  std::vector<Symbol> out;
  for (const Section& section : sections_) {
    if (section.header.sh_type != kShtSymtab) continue;
    if (section.header.sh_entsize != sizeof(Elf64_Sym)) {
      throw ElfError("elf: unexpected symbol entry size");
    }
    if (section.header.sh_link >= sections_.size()) {
      throw ElfError("elf: symtab sh_link out of range");
    }
    const Section& strtab = sections_[section.header.sh_link];
    const std::size_t count = section.content.size() / sizeof(Elf64_Sym);
    out.reserve(out.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      Elf64_Sym raw{};
      std::memcpy(&raw, section.content.data() + i * sizeof(Elf64_Sym), sizeof(raw));
      Symbol sym;
      sym.name = raw.st_name != 0 ? cstring_at(strtab.content, raw.st_name)
                                  : std::string_view{};
      sym.bind = st_bind(raw.st_info);
      sym.type = st_type(raw.st_info);
      sym.shndx = raw.st_shndx;
      sym.value = raw.st_value;
      sym.size = raw.st_size;
      out.push_back(sym);
    }
  }
  return out;
}

}  // namespace fhc::elf
