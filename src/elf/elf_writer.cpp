#include "elf/elf_writer.hpp"

#include <cstring>
#include <stdexcept>

namespace fhc::elf {

namespace {

/// Appends raw bytes of a trivially-copyable record.
template <typename T>
void append_record(std::vector<std::uint8_t>& out, const T& record) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&record);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void pad_to(std::vector<std::uint8_t>& out, std::size_t alignment) {
  while (out.size() % alignment != 0) out.push_back(0);
}

/// String table builder: offset 0 is always the empty string.
class StrTab {
 public:
  StrTab() : data_(1, '\0') {}

  std::uint32_t add(const std::string& s) {
    const auto offset = static_cast<std::uint32_t>(data_.size());
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back('\0');
    return offset;
  }

  const std::vector<char>& data() const noexcept { return data_; }

 private:
  std::vector<char> data_;
};

}  // namespace

std::vector<std::uint8_t> write_elf(const ElfSpec& spec) {
  for (const SymbolSpec& sym : spec.symbols) {
    const std::uint64_t section_size =
        sym.section == SymbolSection::kText ? spec.text.size() : spec.rodata.size();
    if (sym.value > section_size || sym.value + sym.size > section_size) {
      throw std::invalid_argument("write_elf: symbol '" + sym.name +
                                  "' exceeds its section");
    }
  }

  // Section numbering (fixed layout):
  //   0 NULL, 1 .text, 2 .rodata, 3 .comment, [4 .symtab, 5 .strtab,]
  //   last .shstrtab
  const bool with_symtab = !spec.stripped;
  const std::uint16_t text_idx = 1;
  const std::uint16_t rodata_idx = 2;
  const std::uint16_t shstrtab_idx = with_symtab ? 6 : 4;
  const std::uint16_t section_count = with_symtab ? 7 : 5;

  // --- build .symtab / .strtab ------------------------------------------
  StrTab strtab;
  std::vector<Elf64_Sym> syms;
  std::size_t local_count = 1;  // the mandatory null symbol
  if (with_symtab) {
    syms.push_back(Elf64_Sym{});  // index 0: null symbol
    // ELF requires local symbols to precede globals (sh_info = first
    // non-local index); emit locals first, preserving relative order.
    for (int pass = 0; pass < 2; ++pass) {
      for (const SymbolSpec& sym : spec.symbols) {
        const bool is_local = sym.bind == kStbLocal;
        if ((pass == 0) != is_local) continue;
        Elf64_Sym entry{};
        entry.st_name = strtab.add(sym.name);
        entry.st_info = st_info(sym.bind, sym.type);
        entry.st_other = 0;
        entry.st_shndx = sym.section == SymbolSection::kText ? text_idx : rodata_idx;
        entry.st_value = spec.entry + sym.value;  // pretend-linked address
        entry.st_size = sym.size;
        syms.push_back(entry);
        if (is_local) ++local_count;
      }
    }
  }

  // --- shstrtab ------------------------------------------------------------
  StrTab shstrtab;
  const std::uint32_t name_text = shstrtab.add(".text");
  const std::uint32_t name_rodata = shstrtab.add(".rodata");
  const std::uint32_t name_comment = shstrtab.add(".comment");
  const std::uint32_t name_symtab = with_symtab ? shstrtab.add(".symtab") : 0;
  const std::uint32_t name_strtab = with_symtab ? shstrtab.add(".strtab") : 0;
  const std::uint32_t name_shstrtab = shstrtab.add(".shstrtab");

  // --- lay out the file ------------------------------------------------
  std::vector<std::uint8_t> out;
  out.reserve(4096 + spec.text.size() + spec.rodata.size() + syms.size() * sizeof(Elf64_Sym));
  out.resize(sizeof(Elf64_Ehdr) + sizeof(Elf64_Phdr));  // headers patched later

  pad_to(out, 16);
  const std::uint64_t text_off = out.size();
  out.insert(out.end(), spec.text.begin(), spec.text.end());

  pad_to(out, 16);
  const std::uint64_t rodata_off = out.size();
  out.insert(out.end(), spec.rodata.begin(), spec.rodata.end());

  const std::uint64_t comment_off = out.size();
  out.insert(out.end(), spec.comment.begin(), spec.comment.end());
  out.push_back('\0');
  const std::uint64_t comment_size = out.size() - comment_off;

  std::uint64_t symtab_off = 0;
  std::uint64_t strtab_off = 0;
  if (with_symtab) {
    pad_to(out, 8);
    symtab_off = out.size();
    for (const Elf64_Sym& sym : syms) append_record(out, sym);
    strtab_off = out.size();
    out.insert(out.end(), strtab.data().begin(), strtab.data().end());
  }

  const std::uint64_t shstrtab_off = out.size();
  out.insert(out.end(), shstrtab.data().begin(), shstrtab.data().end());

  pad_to(out, 8);
  const std::uint64_t shoff = out.size();

  // --- section headers ----------------------------------------------------
  std::vector<Elf64_Shdr> shdrs(section_count);
  shdrs[0] = Elf64_Shdr{};  // SHT_NULL

  shdrs[text_idx] = {name_text, kShtProgbits, kShfAlloc | kShfExecinstr,
                     spec.entry + text_off, text_off, spec.text.size(),
                     0, 0, 16, 0};
  shdrs[rodata_idx] = {name_rodata, kShtProgbits, kShfAlloc,
                       spec.entry + rodata_off, rodata_off, spec.rodata.size(),
                       0, 0, 16, 0};
  shdrs[3] = {name_comment, kShtProgbits, 0,
              0, comment_off, comment_size, 0, 0, 1, 0};
  if (with_symtab) {
    shdrs[4] = {name_symtab, kShtSymtab, 0, 0, symtab_off,
                syms.size() * sizeof(Elf64_Sym), 5 /* link: .strtab */,
                static_cast<std::uint32_t>(local_count), 8, sizeof(Elf64_Sym)};
    shdrs[5] = {name_strtab, kShtStrtab, 0, 0, strtab_off,
                strtab.data().size(), 0, 0, 1, 0};
  }
  shdrs[shstrtab_idx] = {name_shstrtab, kShtStrtab, 0, 0, shstrtab_off,
                         shstrtab.data().size(), 0, 0, 1, 0};

  for (const Elf64_Shdr& shdr : shdrs) append_record(out, shdr);

  // --- patch headers -------------------------------------------------------
  Elf64_Ehdr ehdr{};
  ehdr.e_ident[0] = kMag0;
  ehdr.e_ident[1] = kMag1;
  ehdr.e_ident[2] = kMag2;
  ehdr.e_ident[3] = kMag3;
  ehdr.e_ident[4] = kClass64;
  ehdr.e_ident[5] = kDataLsb;
  ehdr.e_ident[6] = kEvCurrent;
  ehdr.e_ident[7] = kOsabiSysv;
  ehdr.e_type = kEtExec;
  ehdr.e_machine = kEmX86_64;
  ehdr.e_version = 1;
  ehdr.e_entry = spec.entry + text_off;
  ehdr.e_phoff = sizeof(Elf64_Ehdr);
  ehdr.e_shoff = shoff;
  ehdr.e_flags = 0;
  ehdr.e_ehsize = sizeof(Elf64_Ehdr);
  ehdr.e_phentsize = sizeof(Elf64_Phdr);
  ehdr.e_phnum = 1;
  ehdr.e_shentsize = sizeof(Elf64_Shdr);
  ehdr.e_shnum = section_count;
  ehdr.e_shstrndx = shstrtab_idx;
  std::memcpy(out.data(), &ehdr, sizeof(ehdr));

  Elf64_Phdr phdr{};
  phdr.p_type = kPtLoad;
  phdr.p_flags = kPfR | kPfX;
  phdr.p_offset = 0;
  phdr.p_vaddr = spec.entry;
  phdr.p_paddr = spec.entry;
  phdr.p_filesz = shoff;  // load everything up to the section headers
  phdr.p_memsz = shoff;
  phdr.p_align = 0x1000;
  std::memcpy(out.data() + sizeof(Elf64_Ehdr), &phdr, sizeof(phdr));

  return out;
}

}  // namespace fhc::elf
