// `strings`(1) equivalent: the paper's second feature channel is the
// SSDeep hash of "the continuous printable characters extracted using the
// strings command". We reproduce GNU strings' default behaviour: scan the
// whole file for runs of >= 4 printable ASCII characters and print one run
// per line.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fhc::elf {

struct StringsOptions {
  std::size_t min_length = 4;  // GNU strings default (-n 4)
};

/// All printable runs in `data`, in file order.
std::vector<std::string> extract_strings(std::span<const std::uint8_t> data,
                                         const StringsOptions& options = {});

/// The runs joined with '\n' — the exact text fed to the fuzzy hasher.
std::string strings_text(std::span<const std::uint8_t> data,
                         const StringsOptions& options = {});

}  // namespace fhc::elf
