#include "elf/symbols_extract.hpp"

#include <algorithm>

namespace fhc::elf {

char classify_symbol(const Symbol& symbol, const Elf64_Shdr* defining_section) {
  if (symbol.shndx == kShnUndef) return 'U';
  if (symbol.shndx == kShnAbs) return 'A';
  if (defining_section == nullptr) return '?';

  char letter = '?';
  const std::uint64_t flags = defining_section->sh_flags;
  if (defining_section->sh_type == kShtNobits) {
    letter = 'B';
  } else if ((flags & kShfExecinstr) != 0) {
    letter = 'T';
  } else if ((flags & kShfWrite) != 0) {
    letter = 'D';
  } else {
    letter = 'R';
  }
  if (symbol.bind == kStbWeak) letter = 'W';
  return letter;
}

std::vector<NmEntry> nm_global_defined(const ElfReader& reader) {
  std::vector<NmEntry> out;
  const auto& sections = reader.sections();
  for (const Symbol& symbol : reader.symbols()) {
    if (symbol.name.empty()) continue;
    if (symbol.bind != kStbGlobal && symbol.bind != kStbWeak) continue;
    if (symbol.shndx == kShnUndef) continue;
    const Elf64_Shdr* shdr = symbol.shndx < sections.size()
                                 ? &sections[symbol.shndx].header
                                 : nullptr;
    out.push_back(NmEntry{classify_symbol(symbol, shdr), std::string(symbol.name)});
  }
  std::sort(out.begin(), out.end(),
            [](const NmEntry& a, const NmEntry& b) { return a.name < b.name; });
  return out;
}

std::string global_text_symbols_text(std::span<const std::uint8_t> image) {
  if (!ElfReader::looks_like_elf(image)) return {};
  try {
    const ElfReader reader(image);
    if (!reader.has_symtab()) return {};

    std::string text;
    for (const NmEntry& entry : nm_global_defined(reader)) {
      if (entry.letter != 'T' && entry.letter != 'W') continue;
      text += entry.name;
      text.push_back('\n');
    }
    return text;
  } catch (const ElfError&) {
    // Corrupt or truncated image: this extractor sits on the screening
    // path, so hostile input must degrade to "no symbols" (the stripped-
    // binary behaviour), never propagate.
    return {};
  }
}

bool has_symbol_table(std::span<const std::uint8_t> image) noexcept {
  if (!ElfReader::looks_like_elf(image)) return false;
  try {
    return ElfReader(image).has_symtab();
  } catch (const ElfError&) {
    return false;
  }
}

}  // namespace fhc::elf
