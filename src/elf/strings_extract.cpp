#include "elf/strings_extract.hpp"

#include "util/string_util.hpp"

namespace fhc::elf {

std::vector<std::string> extract_strings(std::span<const std::uint8_t> data,
                                         const StringsOptions& options) {
  std::vector<std::string> out;
  std::size_t run_start = 0;
  std::size_t run_length = 0;
  for (std::size_t i = 0; i <= data.size(); ++i) {
    const bool printable = i < data.size() && fhc::util::is_printable_ascii(data[i]);
    if (printable) {
      if (run_length == 0) run_start = i;
      ++run_length;
    } else {
      if (run_length >= options.min_length) {
        out.emplace_back(reinterpret_cast<const char*>(data.data() + run_start),
                         run_length);
      }
      run_length = 0;
    }
  }
  return out;
}

std::string strings_text(std::span<const std::uint8_t> data,
                         const StringsOptions& options) {
  const std::vector<std::string> runs = extract_strings(data, options);
  std::string text;
  std::size_t total = 0;
  for (const std::string& run : runs) total += run.size() + 1;
  text.reserve(total);
  for (const std::string& run : runs) {
    text += run;
    text.push_back('\n');
  }
  return text;
}

}  // namespace fhc::elf
