// Version drift: the paper's software-tracking use case (Section 1 —
// "reporting software usage across the cluster", "analyzing performance
// variation of jobs"). Fuzzy hashes recognize new *versions* of known
// applications, which cryptographic hashes cannot (Section 2).
//
// The demo walks one application's release history, compares each release
// against the previous one on all three channels, and contrasts fuzzy
// matching with SHA-256 exact matching.
//
// Run:  ./version_drift [ClassName]   (default: Exonerate)
#include <cstdio>
#include <string>

#include "core/features.hpp"
#include "corpus/corpus.hpp"
#include "ssdeep/compare.hpp"
#include "util/sha256.hpp"
#include "util/table.hpp"

using namespace fhc;

int main(int argc, char** argv) {
  const std::string class_name = argc > 1 ? argv[1] : "Exonerate";
  const corpus::AppClassSpec* spec =
      corpus::find_class(corpus::paper_app_classes(), class_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown application class: %s\n", class_name.c_str());
    return 1;
  }

  corpus::Corpus corp({*spec}, /*seed=*/42);
  const auto& synth = corp.synthesizer(0);
  std::printf("Release history of %s (%zu versions)\n\n", class_name.c_str(),
              synth.versions().size());

  // Hash the first executable of every version.
  struct Release {
    std::string version;
    core::FeatureHashes hashes;
    std::string sha256;
  };
  std::vector<Release> releases;
  for (const auto& ref : corp.samples()) {
    if (ref.exec_idx != 0) continue;
    const auto image = corp.sample_bytes(ref);
    releases.push_back({ref.version_dir, core::extract_feature_hashes(image),
                        fhc::util::Sha256::hex_digest(image).substr(0, 12)});
  }

  fhc::util::TextTable table(
      {"version", "vs previous: file", "strings", "symbols", "sha256 match",
       "sha256 (prefix)"},
      {fhc::util::Align::Left, fhc::util::Align::Right, fhc::util::Align::Right,
       fhc::util::Align::Right, fhc::util::Align::Left, fhc::util::Align::Left});
  for (std::size_t i = 0; i < releases.size(); ++i) {
    if (i == 0) {
      table.add_row({releases[0].version, "-", "-", "-", "-", releases[0].sha256});
      continue;
    }
    const auto& prev = releases[i - 1];
    const auto& curr = releases[i];
    const int file = ssdeep::compare_digests(prev.hashes.file, curr.hashes.file);
    const int strings =
        ssdeep::compare_digests(prev.hashes.strings, curr.hashes.strings);
    const int symbols =
        ssdeep::compare_digests(prev.hashes.symbols, curr.hashes.symbols);
    table.add_row({curr.version, std::to_string(file), std::to_string(strings),
                   std::to_string(symbols),
                   prev.sha256 == curr.sha256 ? "yes" : "NO",
                   curr.sha256});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading the table:\n"
      " * sha256 never matches across releases — cryptographic hashes only\n"
      "   re-identify byte-identical files (the paper's Section 2 argument);\n"
      " * ssdeep-symbols stays high across releases (stable vocabulary),\n"
      "   ssdeep-strings drifts moderately, ssdeep-file drifts the most —\n"
      "   the channel ordering behind the paper's Table 5.\n");
  return 0;
}
