// Unknown-software screening: the paper's security scenario (Section 1
// cites cryptomining incidents on HPC systems). A classifier trained on
// the site's preinstalled software must flag binaries that belong to none
// of the known classes — including renamed and *stripped* ones (the
// stripped case is the paper's stated limitation).
//
// This example trains the four-channel variant: the static ssdeep triple
// plus the "ssdeep-runtime" execution-fingerprint channel fed by
// perf-stat-style counter traces (here synthetic: phase-structured HPC
// solver traces for catalogue apps, a flat integer-grind trace for the
// miner). The same fitted model is then queried twice per suspect — once
// with the runtime channel masked off (static-only, the paper's setup)
// and once with all channels — showing what the behavioral channel adds:
// a stripped foreign binary that static channels must catch on two
// channels also looks wrong *behaviorally*.
//
// The "miner" is a synthetic foreign application generated outside the
// training corpus — a stand-in exercising the exact code path a real
// out-of-profile binary would.
//
// Run:  ./miner_detection
#include <cstdio>
#include <vector>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "corpus/corpus.hpp"
#include "corpus/synth_app.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/synthetic.hpp"
#include "util/table.hpp"

using namespace fhc;

namespace {

// Catalogue classes run phase-structured solver workloads; the spec
// variant is keyed by class so distinct applications behave distinctly,
// while runs of one class differ only by seed jitter.
runtime::CounterTrace catalogue_trace(int class_idx, std::uint64_t run) {
  return runtime::synthesize_trace(runtime::hpc_trace_spec(class_idx),
                                   /*seed=*/0x9000 + 131 * static_cast<std::uint64_t>(class_idx) + run);
}

}  // namespace

int main() {
  // --- 1. train on the site's software catalogue -------------------------
  corpus::Corpus corp(corpus::scaled_app_classes(0.05), /*seed=*/5);
  std::vector<core::FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<std::string> class_names;
  for (int c = 0; c < corp.class_count(); ++c) {
    class_names.push_back(corp.specs()[static_cast<std::size_t>(c)].name);
  }
  std::uint64_t run = 0;
  for (const auto& ref : corp.samples()) {
    core::FeatureHashes sample = core::extract_feature_hashes(corp.sample_bytes(ref));
    runtime::attach_trace(sample, catalogue_trace(ref.class_idx, run++));
    train_hashes.push_back(std::move(sample));
    train_labels.push_back(ref.class_idx);
  }
  core::ClassifierConfig config;
  config.forest.n_estimators = 80;
  // Screening mode: a threshold this strict would flood a static-only
  // deployment with false quarantines (see the static-only column) — the
  // behavioral channel is what buys the headroom to use it.
  config.confidence_threshold = 0.45;
  config.channel_set = runtime::runtime_channel_set();
  core::FuzzyHashClassifier classifier;
  classifier.fit(train_hashes, train_labels, class_names, config);
  std::printf("catalogue: %zu samples across %zu classes; threshold %.2f\n",
              train_hashes.size(), class_names.size(),
              config.confidence_threshold);
  std::printf("channels:");
  for (const core::ChannelDesc& channel : classifier.index().channels()) {
    std::printf(" %s", channel.name.c_str());
  }
  std::printf("\n\n");

  // --- 2. craft suspicious binaries ------------------------------------
  // A foreign application family ("xmcoin") that was never part of the
  // corpus; note the innocuous executable names. Its counter trace is the
  // miner signature: flat saturated integer throughput, no phase
  // structure.
  corpus::AppClassSpec miner_spec;
  miner_spec.name = "xmcoin";
  miner_spec.lineage = "xmcoin";
  miner_spec.total_samples = 6;
  miner_spec.domain = corpus::Domain::kMath;
  miner_spec.exec_names = {"a.out", "python3", "data_helper"};
  const corpus::SampleSynthesizer miner(miner_spec, /*corpus_seed=*/777);
  const auto miner_trace = [](int variant, std::uint64_t seed) {
    return runtime::synthesize_trace(runtime::miner_trace_spec(variant), seed);
  };

  struct Suspect {
    const char* shown_name;
    std::vector<std::uint8_t> image;
    runtime::CounterTrace trace;
  };
  std::vector<Suspect> suspects;
  suspects.push_back({"a.out (foreign binary)", miner.build(0, 0), miner_trace(0, 1)});
  suspects.push_back({"python3 (foreign, misleading name)", miner.build(0, 1),
                      miner_trace(0, 2)});
  suspects.push_back({"data_helper (foreign, STRIPPED)", miner.build(1, 2, true),
                      miner_trace(1, 3)});
  // Control group: legitimate catalogue binaries under misleading names,
  // running their usual workloads.
  const auto& legit_ref = corp.samples()[10];
  suspects.push_back({"my_job (really a catalogue app)", corp.sample_bytes(legit_ref),
                      catalogue_trace(legit_ref.class_idx, 9001)});
  const auto& legit2 = corp.samples()[100];
  suspects.push_back({"simulation (really a catalogue app)", corp.sample_bytes(legit2),
                      catalogue_trace(legit2.class_idx, 9002)});

  // --- 3. screen: static-only vs static+runtime ------------------------
  // Same fitted model both times; the channel mask is a query-time knob.
  const core::ChannelMask static_only{true, true, true};
  fhc::util::TextTable table({"submitted as", "symtab", "static-only",
                              "static+runtime", "verdict"});
  const auto describe = [&](const core::Prediction& pred, char* buf,
                            std::size_t len) {
    if (pred.label == ml::kUnknownLabel) {
      std::snprintf(buf, len, "unknown (%.2f)", pred.confidence);
    } else {
      std::snprintf(buf, len, "%s (%.2f)",
                    class_names[static_cast<std::size_t>(pred.label)].c_str(),
                    pred.confidence);
    }
  };
  for (const Suspect& suspect : suspects) {
    core::FeatureHashes hashes = core::extract_feature_hashes(suspect.image);
    runtime::attach_trace(hashes, suspect.trace);

    classifier.set_channel_mask(static_only);
    const core::Prediction without = classifier.predict(hashes);
    classifier.set_channel_mask(core::kAllChannels);
    const core::Prediction with = classifier.predict(hashes);

    char col_without[64];
    char col_with[64];
    describe(without, col_without, sizeof(col_without));
    describe(with, col_with, sizeof(col_with));
    const bool unknown = with.label == ml::kUnknownLabel;
    table.add_row({suspect.shown_name, hashes.has_symbols ? "yes" : "STRIPPED",
                   col_without, col_with,
                   unknown ? "QUARANTINE + notify admin" : "allow"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Note: the stripped suspect loses the ssdeep-symbols channel entirely\n"
      "(the paper's stated limitation). The static channels still screen it\n"
      "via file and strings, and the runtime channel adds a second line of\n"
      "defence that survives stripping: the binary's *behavior* — a flat\n"
      "integer grind instead of the catalogue's phase-structured solver\n"
      "traces — does not match any known class either.\n");
  return 0;
}
