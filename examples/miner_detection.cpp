// Unknown-software screening: the paper's security scenario (Section 1
// cites cryptomining incidents on HPC systems). A classifier trained on
// the site's preinstalled software must flag binaries that belong to none
// of the known classes — including renamed and *stripped* ones (the
// stripped case is the paper's stated limitation, reproduced here).
//
// The "miner" is a synthetic foreign application generated outside the
// training corpus — a stand-in exercising the exact code path a real
// out-of-profile binary would.
//
// Run:  ./miner_detection
#include <cstdio>
#include <vector>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "corpus/corpus.hpp"
#include "corpus/synth_app.hpp"
#include "util/table.hpp"

using namespace fhc;

int main() {
  // --- 1. train on the site's software catalogue -------------------------
  corpus::Corpus corp(corpus::scaled_app_classes(0.05), /*seed=*/5);
  std::vector<core::FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<std::string> class_names;
  for (int c = 0; c < corp.class_count(); ++c) {
    class_names.push_back(corp.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const auto& ref : corp.samples()) {
    train_hashes.push_back(core::extract_feature_hashes(corp.sample_bytes(ref)));
    train_labels.push_back(ref.class_idx);
  }
  core::ClassifierConfig config;
  config.forest.n_estimators = 80;
  config.confidence_threshold = 0.35;  // screening mode: stricter threshold
  core::FuzzyHashClassifier classifier;
  classifier.fit(train_hashes, train_labels, class_names, config);
  std::printf("catalogue: %zu samples across %zu classes; threshold %.2f\n\n",
              train_hashes.size(), class_names.size(),
              config.confidence_threshold);

  // --- 2. craft suspicious binaries ------------------------------------
  // A foreign application family ("xmcoin") that was never part of the
  // corpus; note the innocuous executable names.
  corpus::AppClassSpec miner_spec;
  miner_spec.name = "xmcoin";
  miner_spec.lineage = "xmcoin";
  miner_spec.total_samples = 6;
  miner_spec.domain = corpus::Domain::kMath;
  miner_spec.exec_names = {"a.out", "python3", "data_helper"};
  const corpus::SampleSynthesizer miner(miner_spec, /*corpus_seed=*/777);

  struct Suspect {
    const char* shown_name;
    std::vector<std::uint8_t> image;
  };
  std::vector<Suspect> suspects;
  suspects.push_back({"a.out (foreign binary)", miner.build(0, 0)});
  suspects.push_back({"python3 (foreign, misleading name)", miner.build(0, 1)});
  suspects.push_back({"data_helper (foreign, STRIPPED)", miner.build(1, 2, true)});
  // Control group: legitimate catalogue binaries under misleading names.
  const auto& legit_ref = corp.samples()[10];
  suspects.push_back({"my_job (really a catalogue app)", corp.sample_bytes(legit_ref)});
  const auto& legit2 = corp.samples()[100];
  suspects.push_back({"simulation (really a catalogue app)", corp.sample_bytes(legit2)});

  // --- 3. screen ---------------------------------------------------
  fhc::util::TextTable table({"submitted as", "prediction", "confidence",
                              "symtab", "verdict"});
  for (const Suspect& suspect : suspects) {
    const core::FeatureHashes hashes = core::extract_feature_hashes(suspect.image);
    const core::Prediction pred = classifier.predict(hashes);
    const bool unknown = pred.label == ml::kUnknownLabel;
    char conf[16];
    std::snprintf(conf, sizeof(conf), "%.2f", pred.confidence);
    table.add_row({suspect.shown_name,
                   unknown ? "-1 (unknown)"
                           : class_names[static_cast<std::size_t>(pred.label)],
                   conf, hashes.has_symbols ? "yes" : "STRIPPED",
                   unknown ? "QUARANTINE + notify admin" : "allow"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Note: the stripped suspect loses the ssdeep-symbols channel entirely\n"
      "(the paper's stated limitation) yet is still screened via the file\n"
      "and strings channels plus the confidence threshold.\n");
  return 0;
}
