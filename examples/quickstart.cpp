// Quickstart: the five-minute tour of the public API.
//
//   1. hash two executables with SSDeep and compare them,
//   2. train a Fuzzy Hash Classifier on a small corpus,
//   3. classify a known sample, a new version, and a foreign binary.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "corpus/corpus.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/fuzzy_hash.hpp"

using namespace fhc;

int main() {
  std::printf("== 1. Fuzzy hashing two strings =====================================\n");
  // Varied content (constant bytes have no context boundaries and produce
  // degenerate digests — a documented CTPH property).
  std::string text_a;
  for (int i = 0; i < 400; ++i) {
    text_a += "line " + std::to_string(i * 37 % 1000) + ": payload-" +
              std::to_string(i * i % 7919) + "\n";
  }
  std::string text_b = text_a;
  text_b.insert(700, "a small insertion");
  // (real inputs are executables; strings keep the demo self-contained)
  const auto digest_a = ssdeep::fuzzy_hash(text_a);
  const auto digest_b = ssdeep::fuzzy_hash(text_b);
  std::printf("digest A: %s\n", digest_a.to_string().c_str());
  std::printf("digest B: %s\n", digest_b.to_string().c_str());
  std::printf("similarity: %d / 100\n\n",
              ssdeep::compare_digests(digest_a, digest_b));

  std::printf("== 2. Train on a small synthetic corpus ============================\n");
  // 10%% of the paper corpus: every class keeps >= 3 samples.
  corpus::Corpus corp(corpus::scaled_app_classes(0.10), /*seed=*/7);
  std::printf("corpus: %zu samples across %d classes\n",
              corp.samples().size(), corp.class_count());

  // Train on every version except each class's newest; keep those back.
  std::vector<core::FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<std::string> class_names;
  std::vector<const corpus::SampleRef*> held_out;
  for (int c = 0; c < corp.class_count(); ++c) {
    class_names.push_back(corp.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const corpus::SampleRef& ref : corp.samples()) {
    const auto& synth = corp.synthesizer(ref.class_idx);
    const bool newest =
        ref.version_idx == static_cast<int>(synth.versions().size()) - 1;
    if (newest) {
      held_out.push_back(&ref);
    } else {
      train_hashes.push_back(core::extract_feature_hashes(corp.sample_bytes(ref)));
      train_labels.push_back(ref.class_idx);
    }
  }

  core::ClassifierConfig config;
  config.forest.n_estimators = 80;
  // Demo operating point: accept any confident-enough class; production
  // deployments tune this with the pipeline's inner grid search.
  config.confidence_threshold = 0.15;
  core::FuzzyHashClassifier classifier;
  classifier.fit(train_hashes, train_labels, class_names, config);
  std::printf("trained on %zu samples, %zu held-out newest-version samples\n\n",
              train_hashes.size(), held_out.size());

  std::printf("== 3. Classify unseen samples ======================================\n");
  int correct = 0;
  int shown = 0;
  for (const corpus::SampleRef* ref : held_out) {
    const auto hashes = core::extract_feature_hashes(corp.sample_bytes(*ref));
    const core::Prediction pred = classifier.predict(hashes);
    const std::string got = pred.label == ml::kUnknownLabel
                                ? "-1 (unknown)"
                                : class_names[static_cast<std::size_t>(pred.label)];
    if (got == ref->class_name) ++correct;
    if (shown < 8) {
      std::printf("  %-40s -> %-24s (confidence %.2f)\n", ref->rel_path().c_str(),
                  got.c_str(), pred.confidence);
      ++shown;
    }
  }
  std::printf("  ...\n  newest-version accuracy: %d / %zu\n", correct,
              held_out.size());
  return 0;
}
