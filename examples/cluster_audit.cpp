// Cluster audit: the paper's motivating scenario (Section 1, guiding
// question 1 and 2) — is each job's executable similar to what that user
// or allocation normally runs?
//
// Simulation: three project allocations, each with an established software
// profile built from the preinstalled corpus. A stream of "jobs" then
// arrives; most run the usual applications (new versions included), but
// one user suddenly starts executing a completely different application —
// the deviation-from-allocation-purpose signal the paper targets.
//
// Run:  ./cluster_audit
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "corpus/corpus.hpp"
#include "util/table.hpp"

using namespace fhc;

namespace {

struct Job {
  std::string user;
  std::string allocation;
  corpus::SampleRef sample;
};

}  // namespace

int main() {
  // --- 1. build the site's software registry ---------------------------
  corpus::Corpus corp(corpus::scaled_app_classes(0.06), /*seed=*/11);

  // Allocations and their declared purposes (which application classes the
  // project said it would run).
  const std::map<std::string, std::vector<std::string>> allocations{
      {"proj-genomics", {"BWA", "HMMER", "Trinity", "Subread"}},
      {"proj-structbio", {"Rosetta", "OpenBabel", "ViennaRNA"}},
      {"proj-imaging", {"FSL", "Raster3D", "XDS"}},
  };

  // Train the classifier on every sample of every registered class except
  // each class's newest version (kept back to play "new jobs").
  std::vector<core::FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<std::string> class_names;
  std::map<std::string, int> label_of;
  for (const auto& [alloc, apps] : allocations) {
    for (const std::string& app : apps) {
      if (!label_of.contains(app)) {
        label_of[app] = static_cast<int>(class_names.size());
        class_names.push_back(app);
      }
    }
  }

  std::vector<Job> incoming;
  for (const auto& ref : corp.samples()) {
    if (!label_of.contains(ref.class_name)) continue;
    const auto& synth = corp.synthesizer(ref.class_idx);
    const bool newest =
        ref.version_idx == static_cast<int>(synth.versions().size()) - 1;
    if (newest) continue;  // kept for the job stream below
    train_hashes.push_back(core::extract_feature_hashes(corp.sample_bytes(ref)));
    train_labels.push_back(label_of[ref.class_name]);
  }

  core::ClassifierConfig config;
  config.forest.n_estimators = 80;
  config.confidence_threshold = 0.30;
  core::FuzzyHashClassifier classifier;
  classifier.fit(train_hashes, train_labels, class_names, config);
  std::printf("registry trained: %zu samples, %zu application classes\n\n",
              train_hashes.size(), class_names.size());

  // --- 2. simulate the job stream ----------------------------------------
  // Regular jobs: newest versions of each allocation's declared software.
  // Rogue job: user of proj-genomics suddenly runs Gurobi (an optimizer
  // never seen in training) with a misleading executable name.
  std::vector<Job> jobs;
  for (const auto& ref : corp.samples()) {
    if (!label_of.contains(ref.class_name)) continue;
    const auto& synth = corp.synthesizer(ref.class_idx);
    if (ref.version_idx != static_cast<int>(synth.versions().size()) - 1) continue;
    if (ref.exec_idx > 0) continue;  // one job per app keeps the demo short
    for (const auto& [alloc, apps] : allocations) {
      for (const std::string& app : apps) {
        if (app == ref.class_name) {
          jobs.push_back(Job{"user-" + alloc.substr(5), alloc, ref});
        }
      }
    }
  }
  for (const auto& ref : corp.samples()) {
    if (ref.class_name == "Gurobi" && ref.exec_idx == 0 && ref.version_idx == 0) {
      jobs.push_back(Job{"user-genomics", "proj-genomics", ref});
      break;
    }
  }

  // --- 3. audit ----------------------------------------------------
  fhc::util::TextTable table(
      {"user", "allocation", "job executable", "label", "conf", "verdict"});
  int flagged = 0;
  for (const Job& job : jobs) {
    const auto hashes =
        core::extract_feature_hashes(corp.sample_bytes(job.sample));
    const core::Prediction pred = classifier.predict(hashes);
    const bool known = pred.label != ml::kUnknownLabel;
    const std::string label =
        known ? class_names[static_cast<std::size_t>(pred.label)] : "-1 (unknown)";

    // Compliance rule: the predicted class must be declared for the
    // allocation, and the classifier must be confident.
    bool declared = false;
    if (known) {
      for (const std::string& app : allocations.at(job.allocation)) {
        declared |= app == label;
      }
    }
    const char* verdict = !known ? "FLAG: unknown software"
                          : !declared ? "FLAG: off-allocation"
                                      : "ok";
    if (*verdict == 'F') ++flagged;

    char conf[16];
    std::snprintf(conf, sizeof(conf), "%.2f", pred.confidence);
    table.add_row({job.user, job.allocation, job.sample.rel_path(), label, conf,
                   verdict});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%d of %zu jobs flagged for review\n", flagged, jobs.size());
  return 0;
}
