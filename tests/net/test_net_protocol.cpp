// fhc::net wire protocol: framing and body codecs.
//
// The load-bearing properties: every encoder/decoder pair round-trips
// bit-exactly (confidence is an f64 bit pattern, not text), the
// FrameReader survives arbitrarily torn reads, and malformed input —
// truncated at EVERY byte depth, oversized, zero-length, trailing
// garbage — is rejected deterministically without crashing.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace fhc::net {
namespace {

/// Feeds `bytes` one byte at a time and collects every completed frame.
std::vector<std::vector<std::uint8_t>> torn_feed(FrameReader& reader,
                                                 const std::string& bytes) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const char byte : bytes) {
    reader.feed(std::string_view(&byte, 1));
    while (std::optional<std::vector<std::uint8_t>> frame = reader.next()) {
      frames.push_back(std::move(*frame));
    }
  }
  return frames;
}

TEST(NetProtocol, ClassifyDigestsRoundTrip) {
  const std::vector<std::string> digests = {"3:abc:def", "", "6:xyz:qrs"};
  std::string wire;
  encode_classify_digests(wire, digests);

  FrameReader reader;
  reader.feed(wire);
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  Request request;
  ASSERT_EQ(decode_request(*payload, request), DecodeStatus::kOk);
  EXPECT_EQ(request.op, Opcode::kClassifyDigests);
  EXPECT_EQ(request.digests, digests);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetProtocol, ClassifyDeadlineRoundTrips) {
  // The optional deadline field on both CLASSIFY forms, including the
  // 0ms case — has_deadline distinguishes "expire at once" from "no
  // deadline".
  for (const std::uint32_t deadline_ms : {0u, 1u, 250u, 0xffffffffu}) {
    std::string wire;
    encode_classify_digests(wire, std::vector<std::string>{"3:abc:def"},
                            deadline_ms);
    encode_classify_path(wire, "/opt/app/bin/solver", deadline_ms);

    FrameReader reader;
    reader.feed(wire);
    for (int frame = 0; frame < 2; ++frame) {
      const auto payload = reader.next();
      ASSERT_TRUE(payload.has_value());
      Request request;
      ASSERT_EQ(decode_request(*payload, request), DecodeStatus::kOk);
      EXPECT_TRUE(request.has_deadline) << deadline_ms;
      EXPECT_EQ(request.deadline_ms, deadline_ms);
    }
  }
  // Without the field the flag stays down.
  std::string wire;
  encode_classify_digests(wire, std::vector<std::string>{"3:abc:def"});
  FrameReader reader;
  reader.feed(wire);
  Request request;
  ASSERT_EQ(decode_request(*reader.next(), request), DecodeStatus::kOk);
  EXPECT_FALSE(request.has_deadline);
  EXPECT_EQ(request.deadline_ms, 0u);
}

TEST(NetProtocol, ClassifyReservedCountFlagBitsAreMalformed) {
  // Bits 4..6 of the count_flags byte are reserved must-be-zero.
  std::string wire;
  encode_classify_digests(wire, std::vector<std::string>{"3:abc:def"});
  std::vector<std::uint8_t> payload(wire.begin() + kFrameHeaderSize, wire.end());
  const std::size_t flags_at = 1;  // opcode
  for (const std::uint8_t bit : {0x10, 0x20, 0x40}) {
    std::vector<std::uint8_t> poked = payload;
    poked[flags_at] |= bit;
    Request request;
    EXPECT_EQ(decode_request(poked, request), DecodeStatus::kMalformed)
        << "reserved bit 0x" << std::hex << int(bit);
  }
  Request request;
  EXPECT_EQ(decode_request(payload, request), DecodeStatus::kOk);
}

TEST(NetProtocol, TruncatedDeadlineFieldIsMalformed) {
  // Announce the deadline (bit 7) but cut the frame inside the u32.
  std::string wire;
  encode_classify_digests(wire, std::vector<std::string>{"3:abc:def"},
                          std::uint32_t{1000});
  const std::vector<std::uint8_t> payload(wire.begin() + kFrameHeaderSize,
                                          wire.end());
  ASSERT_TRUE(payload[1] & kClassifyFlagDeadline);
  // The deadline u32 sits right after opcode + count_flags.
  for (std::size_t keep = 2; keep < 2 + 4; ++keep) {
    const std::vector<std::uint8_t> cut(payload.begin(),
                                        payload.begin() + keep);
    Request request;
    EXPECT_EQ(decode_request(cut, request), DecodeStatus::kMalformed)
        << "cut at byte " << keep;
  }
}

TEST(NetProtocol, DeadlineExceededResponseRoundTrips) {
  std::string wire;
  encode_deadline_exceeded(wire, "deadline expired before scoring");
  FrameReader reader;
  reader.feed(wire);
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  Response response;
  ASSERT_EQ(decode_response(*payload, response), DecodeStatus::kOk);
  EXPECT_EQ(response.op, Opcode::kDeadlineExceeded);
  EXPECT_EQ(response.text, "deadline expired before scoring");
}

TEST(NetProtocol, AllRequestOpcodesRoundTrip) {
  std::string wire;
  encode_classify_path(wire, "/opt/app/bin/solver@/tmp/trace.txt");
  encode_stats(wire);
  encode_reload(wire, "/models/prod.fhcb");
  encode_ping(wire);
  encode_quit(wire);

  FrameReader reader;
  reader.feed(wire);
  std::vector<Request> requests;
  while (const auto payload = reader.next()) {
    Request request;
    ASSERT_EQ(decode_request(*payload, request), DecodeStatus::kOk);
    requests.push_back(std::move(request));
  }
  ASSERT_EQ(requests.size(), 5u);
  EXPECT_EQ(requests[0].op, Opcode::kClassifyPath);
  EXPECT_EQ(requests[0].text, "/opt/app/bin/solver@/tmp/trace.txt");
  EXPECT_EQ(requests[1].op, Opcode::kStats);
  EXPECT_EQ(requests[2].op, Opcode::kReload);
  EXPECT_EQ(requests[2].text, "/models/prod.fhcb");
  EXPECT_EQ(requests[3].op, Opcode::kPing);
  EXPECT_EQ(requests[4].op, Opcode::kQuit);
}

TEST(NetProtocol, PredictionRoundTripIsBitExact) {
  // Confidence travels as the IEEE-754 bit pattern; a value with no
  // short decimal representation must survive unchanged.
  const double confidence = 0.1 + 0.2 + 1.0 / 3.0;
  std::string wire;
  encode_prediction(wire, -1, /*is_unknown=*/true, confidence,
                    123456789012345ull, "miniapp_lulesh");

  FrameReader reader;
  reader.feed(wire);
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  Response response;
  ASSERT_EQ(decode_response(*payload, response), DecodeStatus::kOk);
  EXPECT_EQ(response.op, Opcode::kPrediction);
  EXPECT_EQ(response.label, -1);
  EXPECT_TRUE(response.is_unknown);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(response.confidence),
            std::bit_cast<std::uint64_t>(confidence));
  EXPECT_EQ(response.server_micros, 123456789012345ull);
  EXPECT_EQ(response.text, "miniapp_lulesh");
}

TEST(NetProtocol, PredictionFlagsByteCarriesUnknown) {
  std::string wire;
  encode_prediction(wire, 4, /*is_unknown=*/false, 0.9, 1, "known_app");
  encode_prediction(wire, -1, /*is_unknown=*/true, 0.2, 2, "");

  FrameReader reader;
  reader.feed(wire);
  Response known;
  Response unknown;
  auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  ASSERT_EQ(decode_response(*payload, known), DecodeStatus::kOk);
  payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  ASSERT_EQ(decode_response(*payload, unknown), DecodeStatus::kOk);
  EXPECT_FALSE(known.is_unknown);
  EXPECT_EQ(known.label, 4);
  EXPECT_TRUE(unknown.is_unknown);
  EXPECT_EQ(unknown.label, -1);
}

TEST(NetProtocol, PredictionReservedFlagBitsAreMalformed) {
  // Bits 1..7 of the flags byte are reserved must-be-zero: a peer
  // setting them speaks a protocol revision we don't, and guessing at
  // the rest of the body would be worse than rejecting the frame.
  std::string wire;
  encode_prediction(wire, 0, /*is_unknown=*/true, 0.5, 7, "app");
  std::vector<std::uint8_t> payload(wire.begin() + kFrameHeaderSize, wire.end());
  const std::size_t flags_at = 1 + 4;  // opcode + i32 label
  ASSERT_EQ(payload[flags_at], kPredictionFlagUnknown);
  for (int bit = 1; bit < 8; ++bit) {
    std::vector<std::uint8_t> poked = payload;
    poked[flags_at] |= static_cast<std::uint8_t>(1u << bit);
    Response response;
    EXPECT_EQ(decode_response(poked, response), DecodeStatus::kMalformed)
        << "reserved bit " << bit;
  }
  // Sanity: the unpoked payload still decodes.
  Response response;
  EXPECT_EQ(decode_response(payload, response), DecodeStatus::kOk);
  EXPECT_TRUE(response.is_unknown);
}

TEST(NetProtocol, TextResponsesRoundTrip) {
  std::string wire;
  encode_ok(wire, "bye");
  encode_stats_text(wire, "requests=7 completed=7");
  encode_error(wire, "malformed digest in channel 2");
  encode_busy(wire, "service queue full");

  FrameReader reader;
  reader.feed(wire);
  std::vector<Response> responses;
  while (const auto payload = reader.next()) {
    Response response;
    ASSERT_EQ(decode_response(*payload, response), DecodeStatus::kOk);
    responses.push_back(std::move(response));
  }
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].op, Opcode::kOk);
  EXPECT_EQ(responses[0].text, "bye");
  EXPECT_EQ(responses[1].op, Opcode::kStatsText);
  EXPECT_EQ(responses[1].text, "requests=7 completed=7");
  EXPECT_EQ(responses[2].op, Opcode::kError);
  EXPECT_EQ(responses[3].op, Opcode::kBusy);
  EXPECT_EQ(responses[3].text, "service queue full");
}

TEST(NetProtocol, TornReadsReassembleEveryFrame) {
  // Byte-at-a-time is the worst torn-read case; every intermediate state
  // of the reader is exercised.
  const std::vector<std::string> digests = {"3:abcdefgh:ijklmnop", "3:q:r"};
  std::string wire;
  encode_classify_digests(wire, digests);
  encode_ping(wire);
  encode_classify_path(wire, "/bin/true");

  FrameReader reader;
  const auto frames = torn_feed(reader, wire);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_FALSE(reader.error().has_value());

  Request request;
  ASSERT_EQ(decode_request(frames[0], request), DecodeStatus::kOk);
  EXPECT_EQ(request.digests, digests);
  ASSERT_EQ(decode_request(frames[1], request), DecodeStatus::kOk);
  EXPECT_EQ(request.op, Opcode::kPing);
  ASSERT_EQ(decode_request(frames[2], request), DecodeStatus::kOk);
  EXPECT_EQ(request.text, "/bin/true");
}

TEST(NetProtocol, TruncationAtEveryDepthIsMalformed) {
  // Chop a multi-field payload at every possible byte boundary: no
  // prefix may decode as kOk (or crash). This sweeps header-truncated
  // strings, mid-string cuts, and missing fields in one loop.
  std::string wire;
  encode_classify_digests(wire, std::vector<std::string>{"3:abc:def", "3:g:h"});
  const std::vector<std::uint8_t> payload(wire.begin() + kFrameHeaderSize,
                                          wire.end());
  for (std::size_t depth = 0; depth < payload.size(); ++depth) {
    Request request;
    const auto status = decode_request(
        std::span<const std::uint8_t>(payload.data(), depth), request);
    EXPECT_EQ(status, DecodeStatus::kMalformed) << "depth " << depth;
  }
  // And the full payload still decodes (the loop above didn't pass by
  // rejecting everything).
  Request request;
  EXPECT_EQ(decode_request(payload, request), DecodeStatus::kOk);

  std::string response_wire;
  encode_prediction(response_wire, 3, false, 0.5, 42, "npb_ft");
  const std::vector<std::uint8_t> response_payload(
      response_wire.begin() + kFrameHeaderSize, response_wire.end());
  for (std::size_t depth = 0; depth < response_payload.size(); ++depth) {
    Response response;
    const auto status = decode_response(
        std::span<const std::uint8_t>(response_payload.data(), depth), response);
    EXPECT_EQ(status, DecodeStatus::kMalformed) << "depth " << depth;
  }
}

TEST(NetProtocol, TrailingBytesAreMalformed) {
  std::string wire;
  encode_ping(wire);
  std::vector<std::uint8_t> payload(wire.begin() + kFrameHeaderSize, wire.end());
  payload.push_back(0x00);  // one stray byte after a valid body
  Request request;
  EXPECT_EQ(decode_request(payload, request), DecodeStatus::kMalformed);
}

TEST(NetProtocol, UnknownOpcodeIsDistinguishedFromMalformed) {
  const std::vector<std::uint8_t> payload = {0x7d, 0x01, 0x02};
  Request request;
  EXPECT_EQ(decode_request(payload, request), DecodeStatus::kUnknownOpcode);
  Response response;
  EXPECT_EQ(decode_response(payload, response), DecodeStatus::kUnknownOpcode);
  // An empty payload has no opcode at all: malformed, not unknown.
  Request empty;
  EXPECT_EQ(decode_request(std::span<const std::uint8_t>{}, empty),
            DecodeStatus::kMalformed);
}

TEST(NetProtocol, DigestCountLimitsEnforced) {
  // n = 0 and n > kMaxDigestChannels are both malformed even when the
  // rest of the body would parse.
  for (const std::uint8_t count : {std::uint8_t{0}, std::uint8_t{9}}) {
    std::vector<std::uint8_t> payload = {
        static_cast<std::uint8_t>(Opcode::kClassifyDigests), count};
    for (int i = 0; i < count; ++i) {
      payload.insert(payload.end(), {0, 0, 0, 0});  // empty strings
    }
    Request request;
    EXPECT_EQ(decode_request(payload, request), DecodeStatus::kMalformed)
        << "count " << int(count);
  }
}

TEST(NetProtocol, OversizedFramePoisonsReader) {
  FrameReader reader(/*max_frame=*/64);
  std::string header;
  const std::uint32_t declared = 65;
  header.push_back(static_cast<char>(declared & 0xff));
  header.push_back(static_cast<char>((declared >> 8) & 0xff));
  header.push_back(static_cast<char>((declared >> 16) & 0xff));
  header.push_back(static_cast<char>((declared >> 24) & 0xff));
  reader.feed(header);
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.error().has_value());
  // Poisoned for good: later (even valid) bytes change nothing.
  std::string valid;
  encode_ping(valid);
  reader.feed(valid);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error().has_value());
}

TEST(NetProtocol, ZeroLengthFramePoisonsReader) {
  FrameReader reader;
  reader.feed(std::string_view("\0\0\0\0", 4));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error().has_value());
}

TEST(NetProtocol, MaxFrameBoundaryIsExact) {
  // A payload of exactly max_frame passes; one byte more poisons.
  FrameReader reader(/*max_frame=*/32);
  std::string wire;
  encode_classify_path(wire, std::string(32 - 1 - 4, 'x'));  // opcode + u32 len
  ASSERT_EQ(wire.size(), kFrameHeaderSize + 32);
  reader.feed(wire);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.error().has_value());

  FrameReader strict(/*max_frame=*/31);
  strict.feed(wire);
  EXPECT_FALSE(strict.next().has_value());
  EXPECT_TRUE(strict.error().has_value());
}

TEST(NetProtocol, LongPipelinedStreamCompactsBuffer) {
  // Hundreds of frames through one reader in mixed-size chunks: the
  // consumed-prefix compaction must never corrupt framing.
  std::string wire;
  std::vector<std::string> expected;
  for (int i = 0; i < 500; ++i) {
    const std::string path = "/bin/app" + std::to_string(i);
    expected.push_back(path);
    encode_classify_path(wire, path);
  }
  FrameReader reader;
  std::size_t decoded = 0;
  std::size_t at = 0;
  std::size_t chunk = 1;
  while (at < wire.size()) {
    const std::size_t take = std::min(chunk, wire.size() - at);
    reader.feed(std::string_view(wire.data() + at, take));
    at += take;
    chunk = chunk % 37 + 1;  // mixed chunk sizes, deterministic
    while (const auto payload = reader.next()) {
      Request request;
      ASSERT_EQ(decode_request(*payload, request), DecodeStatus::kOk);
      ASSERT_LT(decoded, expected.size());
      EXPECT_EQ(request.text, expected[decoded]);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, expected.size());
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace fhc::net
