// fhc::net::SocketServer end-to-end: the epoll daemon front-end against
// live Unix/TCP sockets.
//
// The load-bearing properties: socket replies are bit-identical to the
// serial FuzzyHashClassifier::predict path (the service equivalence
// extends through the wire), replies arrive strictly in request order
// under pipelining, admission control provably bounds the queue (BUSY
// frames + rejection counters, never silent queueing), and RELOAD /
// graceful shutdown work mid-connection.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "service/command_handler.hpp"
#include "support/synthetic_hashes.hpp"

namespace fhc::net {
namespace {

struct Fixture {
  core::FuzzyHashClassifier model;         // threshold 0.3
  core::FuzzyHashClassifier strict_model;  // threshold 1.01: all unknown
  std::vector<core::FeatureHashes> queries;
};

Fixture make_fixture() {
  testsupport::SyntheticHashes data =
      testsupport::make_synthetic_hashes(testsupport::SyntheticHashesParams{});
  Fixture fx;
  fx.queries = std::move(data.queries);
  core::ClassifierConfig config;
  config.forest.n_estimators = 20;
  config.forest.seed = 11;
  config.confidence_threshold = 0.3;
  fx.model.fit(data.train, data.labels, {"A", "B", "C", "D"}, config);
  config.confidence_threshold = 1.01;
  fx.strict_model.fit(data.train, data.labels, {"A", "B", "C", "D"}, config);
  return fx;
}

const Fixture& fixture() {
  static const Fixture fx = make_fixture();
  return fx;
}

core::FuzzyHashClassifier clone(const core::FuzzyHashClassifier& model) {
  std::stringstream buffer;
  model.save(buffer);
  core::FuzzyHashClassifier copy;
  copy.load(buffer);
  return copy;
}

/// A fresh short unix socket path per server (sun_path is ~108 bytes).
std::string fresh_socket_path() {
  static int counter = 0;
  return "/tmp/fhc_net_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// Encodes one CLASSIFY_DIGESTS frame for `sample` (channel order).
std::string classify_frame(const core::FeatureHashes& sample) {
  std::vector<std::string> digests;
  for (std::size_t i = 0; i < sample.channel_count(); ++i) {
    digests.push_back(sample.channel(i).to_string());
  }
  std::string frame;
  encode_classify_digests(frame, digests);
  return frame;
}

void expect_prediction_matches(const Response& response,
                               const core::Prediction& expected) {
  ASSERT_EQ(response.op, Opcode::kPrediction);
  EXPECT_EQ(response.label, expected.label);
  EXPECT_EQ(response.is_unknown, expected.is_unknown);
  // Bit-identical, not approximately equal: the wire carries the f64 bit
  // pattern and the service layer guarantees the serial path's bits.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(response.confidence),
            std::bit_cast<std::uint64_t>(expected.confidence));
}

/// One server + service + handler bundle with test-friendly defaults.
struct TestDaemon {
  service::ClassificationService svc;
  service::CommandHandler handler;
  SocketServer server;

  explicit TestDaemon(core::FuzzyHashClassifier model,
                      service::ServiceConfig service_config = {},
                      ServerConfig server_config = {},
                      bool with_tcp = false)
      : svc(std::move(model), service_config),
        handler(svc),
        server(handler, [&] {
          if (server_config.unix_path.empty()) {
            server_config.unix_path = fresh_socket_path();
          }
          if (with_tcp) server_config.tcp_port = 0;  // ephemeral
          return server_config;
        }()) {
    server.start();
  }

  ~TestDaemon() {
    server.stop();
    server.join();
  }

  Endpoint unix_endpoint() const {
    Endpoint endpoint;
    endpoint.unix_path = server.unix_socket_path();
    return endpoint;
  }

  Endpoint tcp_endpoint() const {
    Endpoint endpoint;
    endpoint.port = server.tcp_port();
    return endpoint;
  }
};

TEST(SocketServer, UnixRepliesBitIdenticalToSerialPredict) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  // Pipeline every query, then read every reply: order must match.
  std::string wire;
  for (const core::FeatureHashes& query : fx.queries) {
    wire += classify_frame(query);
  }
  ASSERT_TRUE(client.send_bytes(wire));
  const std::vector<std::string>& names = fx.model.class_names();
  for (const core::FeatureHashes& query : fx.queries) {
    Response response;
    std::string error;
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    const core::Prediction expected = fx.model.predict(query);
    expect_prediction_matches(response, expected);
    if (expected.label >= 0) {
      EXPECT_EQ(response.text, names[static_cast<std::size_t>(expected.label)]);
    } else {
      EXPECT_TRUE(response.text.empty());
    }
  }
}

TEST(SocketServer, UnknownFlagTravelsTheWireBitIdentically) {
  // Open-set rejection through the socket path: the strict model flags
  // every query unknown, the PREDICTION frame must carry the flag and
  // label -1 exactly as serial predict decides, and the daemon's STATS
  // line must count the rejections.
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.strict_model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");
  for (const core::FeatureHashes& query : fx.queries) {
    ASSERT_TRUE(client.send_bytes(classify_frame(query)));
    Response response;
    std::string error;
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    const core::Prediction expected = fx.strict_model.predict(query);
    ASSERT_TRUE(expected.is_unknown);  // fixture invariant
    expect_prediction_matches(response, expected);
    EXPECT_EQ(response.label, -1);
    EXPECT_TRUE(response.text.empty());
  }
  std::string stats_wire;
  encode_stats(stats_wire);
  ASSERT_TRUE(client.send_bytes(stats_wire));
  Response stats;
  std::string error;
  ASSERT_TRUE(client.read_response(stats, &error)) << error;
  ASSERT_EQ(stats.op, Opcode::kStatsText);
  EXPECT_NE(stats.text.find("unknown_flagged=" +
                            std::to_string(fx.queries.size())),
            std::string::npos)
      << stats.text;
}

TEST(SocketServer, TcpRepliesMatchUnixReplies) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model), {}, {}, /*with_tcp=*/true);
  ASSERT_GE(daemon.server.tcp_port(), 0);
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.tcp_endpoint(), /*retries=*/20), "");
  for (const core::FeatureHashes& query : fx.queries) {
    ASSERT_TRUE(client.send_bytes(classify_frame(query)));
    Response response;
    std::string error;
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    expect_prediction_matches(response, fx.model.predict(query));
  }
}

TEST(SocketServer, PipelinedRepliesInterleaveControlFramesInOrder) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  // classify q0 | STATS | PING | classify q1 — one write. STATS and PING
  // resolve instantly server-side but must still wait for q0's slot.
  std::string wire = classify_frame(fx.queries[0]);
  encode_stats(wire);
  encode_ping(wire);
  wire += classify_frame(fx.queries[1]);
  ASSERT_TRUE(client.send_bytes(wire));

  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  expect_prediction_matches(response, fx.model.predict(fx.queries[0]));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kStatsText);
  EXPECT_NE(response.text.find("requests="), std::string::npos);
  EXPECT_NE(response.text.find("connections_active=1"), std::string::npos);
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kOk);
  EXPECT_EQ(response.text, "pong");
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  expect_prediction_matches(response, fx.model.predict(fx.queries[1]));
}

TEST(SocketServer, AdmissionControlBoundsServiceQueueWithBusyFrames) {
  const Fixture& fx = fixture();
  service::ServiceConfig service_config;
  service_config.max_queue = 2;
  service_config.max_batch = 64;
  service_config.max_delay = std::chrono::milliseconds(10000);  // hold the batch
  service_config.cache_capacity = 0;
  TestDaemon daemon(clone(fx.model), service_config);
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  // 8 distinct queries: 2 admitted (fill the queue), 6 must be refused
  // with BUSY. The dispatcher is parked on max_delay, so nothing drains
  // the queue while the frames arrive.
  const std::size_t total = 8;
  std::string wire;
  for (std::size_t i = 0; i < total; ++i) wire += classify_frame(fx.queries[i]);
  ASSERT_TRUE(client.send_bytes(wire));

  // The queue provably never exceeded its bound: wait (bounded) for the
  // six rejections to land, then inspect depth directly.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon.svc.stats().requests_rejected < total - 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const service::ServiceStats held = daemon.svc.stats();
  EXPECT_EQ(held.requests_rejected, total - 2);
  EXPECT_EQ(held.queue_depth, 2u);
  EXPECT_EQ(held.requests, 2u);

  // QUIT releases the parked batch (graceful drain flushes the service),
  // and the reply order is exactly the request order: prediction,
  // prediction, BUSY x6, OK.
  std::string quit;
  encode_quit(quit);
  ASSERT_TRUE(client.send_bytes(quit));
  Response response;
  std::string error;
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    expect_prediction_matches(response, fx.model.predict(fx.queries[i]));
  }
  for (std::size_t i = 2; i < total; ++i) {
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    EXPECT_EQ(response.op, Opcode::kBusy) << "reply " << i;
  }
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kOk);
  EXPECT_EQ(response.text, "bye");
  // Graceful shutdown: the server closes the drained connection and exits.
  EXPECT_FALSE(client.read_response(response, &error));
  daemon.server.join();
}

TEST(SocketServer, PerConnectionPipelineLimitAnswersBusy) {
  const Fixture& fx = fixture();
  service::ServiceConfig service_config;
  service_config.max_batch = 64;
  service_config.max_delay = std::chrono::milliseconds(10000);
  service_config.cache_capacity = 0;
  ServerConfig server_config;
  server_config.max_pipeline = 3;
  TestDaemon daemon(clone(fx.model), service_config, server_config);
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  // 6 classifies + QUIT in one write: the frames dispatch strictly in
  // order on the same connection, so exactly 3 are in flight when the
  // limit trips, and QUIT's drain releases the parked batch — no timing.
  std::string wire;
  for (std::size_t i = 0; i < 6; ++i) wire += classify_frame(fx.queries[i]);
  encode_quit(wire);
  ASSERT_TRUE(client.send_bytes(wire));

  Response response;
  std::string error;
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    expect_prediction_matches(response, fx.model.predict(fx.queries[i]));
  }
  for (std::size_t i = 3; i < 6; ++i) {
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    EXPECT_EQ(response.op, Opcode::kBusy) << "reply " << i;
  }
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kOk);
  daemon.server.join();
}

TEST(SocketServer, ConnectionLimitRejectsWithBusyAndCounts) {
  const Fixture& fx = fixture();
  ServerConfig server_config;
  server_config.max_connections = 2;
  TestDaemon daemon(clone(fx.model), {}, server_config);

  BlockingClient first;
  BlockingClient second;
  ASSERT_EQ(first.connect(daemon.unix_endpoint(), /*retries=*/20), "");
  ASSERT_EQ(second.connect(daemon.unix_endpoint(), /*retries=*/20), "");
  // Confirm both are registered before the third knocks.
  std::string ping;
  encode_ping(ping);
  Response response;
  std::string error;
  ASSERT_TRUE(first.send_bytes(ping));
  ASSERT_TRUE(first.read_response(response, &error)) << error;
  ASSERT_TRUE(second.send_bytes(ping));
  ASSERT_TRUE(second.read_response(response, &error)) << error;

  BlockingClient third;
  ASSERT_EQ(third.connect(daemon.unix_endpoint(), /*retries=*/20), "");
  ASSERT_TRUE(third.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kBusy);
  EXPECT_FALSE(third.read_response(response, &error));  // closed after BUSY

  const service::ServiceStats stats = daemon.svc.stats();
  EXPECT_EQ(stats.connections_opened, 2u);
  EXPECT_EQ(stats.connections_active, 2u);
  EXPECT_EQ(stats.connections_rejected, 1u);

  // A freed slot admits again.
  first.close();
  BlockingClient fourth;
  std::string late_error;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_EQ(fourth.connect(daemon.unix_endpoint(), /*retries=*/20), "");
    ASSERT_TRUE(fourth.send_bytes(ping));
    if (fourth.read_response(response, &late_error) &&
        response.op == Opcode::kOk) {
      break;
    }
    // The server may not have reaped the closed fd yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(response.op, Opcode::kOk);
}

TEST(SocketServer, ReloadMidConnectionSwapsModel) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  Response response;
  std::string error;
  ASSERT_TRUE(client.send_bytes(classify_frame(fx.queries[0])));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  expect_prediction_matches(response, fx.model.predict(fx.queries[0]));

  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_net_reload_" + std::to_string(::getpid()) + ".fhcb");
  fx.strict_model.save_binary_file(path.string());
  std::string wire;
  encode_reload(wire, path.string());
  wire += classify_frame(fx.queries[0]);  // pipelined behind the reload
  ASSERT_TRUE(client.send_bytes(wire));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  ASSERT_EQ(response.op, Opcode::kOk) << response.text;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  // The strict model answers everything unknown — and bit-identically to
  // its own serial path.
  expect_prediction_matches(response, fx.strict_model.predict(fx.queries[0]));
  EXPECT_EQ(response.label, ml::kUnknownLabel);
  EXPECT_EQ(daemon.svc.stats().reloads, 1u);

  // A bad reload answers ERROR and leaves the daemon serving.
  std::string bad;
  encode_reload(bad, "/nonexistent/model.fhcb");
  ASSERT_TRUE(client.send_bytes(bad));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kError);
  ASSERT_TRUE(client.send_bytes(classify_frame(fx.queries[1])));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kPrediction);
  std::filesystem::remove(path);
}

TEST(SocketServer, ReloadWithDamagedModelAnswersErrorAndKeepsServing) {
  // Verify-before-swap over the wire: a RELOAD naming a bit-flipped
  // model file answers ERROR, the old snapshot keeps serving
  // bit-identically, and the reload counter stays put.
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_net_damaged_" + std::to_string(::getpid()) + ".fhcb");
  fx.strict_model.save_binary_file(path.string());
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const auto size = std::filesystem::file_size(path);
    file.seekp(static_cast<std::streamoff>(size / 2));
    const char flip = 0x40;
    file.write(&flip, 1);
  }

  std::string wire;
  encode_reload(wire, path.string());
  wire += classify_frame(fx.queries[0]);  // pipelined behind the bad reload
  ASSERT_TRUE(client.send_bytes(wire));
  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kError) << response.text;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  // Old model, not the (strict) one the damaged file carried.
  expect_prediction_matches(response, fx.model.predict(fx.queries[0]));
  EXPECT_EQ(daemon.svc.stats().reloads, 0u);
  std::filesystem::remove(path);
}

TEST(SocketServer, StopDrainsInFlightRepliesBeforeClosing) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  std::string wire;
  for (std::size_t i = 0; i < 4; ++i) wire += classify_frame(fx.queries[i]);
  ASSERT_TRUE(client.send_bytes(wire));
  daemon.server.stop();  // graceful: owed replies still arrive

  Response response;
  std::string error;
  std::size_t predictions = 0;
  while (client.read_response(response, &error)) {
    if (response.op == Opcode::kPrediction) ++predictions;
  }
  // The race between the reads and the stop means some frames may never
  // have been decoded; every decoded one was answered, and the server
  // exited cleanly.
  EXPECT_LE(predictions, 4u);
  daemon.server.join();
}

TEST(SocketServer, OversizedFrameAnswersErrorAndCloses) {
  const Fixture& fx = fixture();
  ServerConfig server_config;
  server_config.max_frame = 1024;
  TestDaemon daemon(clone(fx.model), {}, server_config);
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  std::string wire;
  encode_classify_path(wire, std::string(4096, 'x'));  // > max_frame
  ASSERT_TRUE(client.send_bytes(wire));
  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kError);
  EXPECT_NE(response.text.find("protocol error"), std::string::npos);
  EXPECT_FALSE(client.read_response(response, &error));  // connection closed
}

TEST(SocketServer, MalformedDigestAnswersErrorAndKeepsConnection) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  std::string wire;
  encode_classify_digests(wire, std::vector<std::string>{"not a digest"});
  ASSERT_TRUE(client.send_bytes(wire));
  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kError);
  EXPECT_NE(response.text.find("malformed digest"), std::string::npos);

  // Input errors are per-request: the connection still serves.
  ASSERT_TRUE(client.send_bytes(classify_frame(fx.queries[0])));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  expect_prediction_matches(response, fx.model.predict(fx.queries[0]));
}

TEST(SocketServer, UnknownOpcodeAnswersErrorAndKeepsConnection) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  BlockingClient client;
  ASSERT_EQ(client.connect(daemon.unix_endpoint(), /*retries=*/20), "");

  // A well-framed payload with an opcode the server does not know.
  std::string wire;
  wire.push_back(1);  // payload_len = 1
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0x7d);
  ASSERT_TRUE(client.send_bytes(wire));
  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kError);

  std::string ping;
  encode_ping(ping);
  ASSERT_TRUE(client.send_bytes(ping));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kOk);
}

TEST(SocketServer, RunLoadDrivesManyPipelinedConnections) {
  const Fixture& fx = fixture();
  TestDaemon daemon(clone(fx.model));
  std::vector<std::string> frames;
  for (const core::FeatureHashes& query : fx.queries) {
    frames.push_back(classify_frame(query));
  }
  LoadOptions options;
  options.endpoint = daemon.unix_endpoint();
  options.connections = 8;
  options.pipeline = 4;
  options.requests = 32;
  options.connect_retries = 20;
  const LoadResult result = run_load(options, frames);
  EXPECT_TRUE(result.ok()) << result.failure;
  EXPECT_EQ(result.sent, 8u * 32u);
  EXPECT_EQ(result.predictions, 8u * 32u);
  EXPECT_EQ(result.busy, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_LE(result.p50_ms, result.p99_ms);
  EXPECT_LE(result.p99_ms, result.max_ms);
  const service::ServiceStats stats = daemon.svc.stats();
  EXPECT_EQ(stats.connections_opened, 8u);
  EXPECT_GE(stats.requests, 8u * 32u);
}

}  // namespace
}  // namespace fhc::net
