// net::TimerWheel — the hashed timing wheel behind the socket server's
// idle / read-progress eviction.
//
// The load-bearing properties: entries fire only once their tick has
// passed (never early), expire() drains everything due in one call even
// across several elapsed ticks, far-future entries survive a full wheel
// revolution (absolute ticks, not rounds), slot collisions lose no
// entries, and next_timeout_ms() gives the epoll loop a usable bound
// (-1 when idle, >= 0 and <= the earliest deadline otherwise).
#include "net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

namespace fhc::net {
namespace {

using namespace std::chrono_literals;
using Clock = TimerWheel::Clock;

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(TimerWheel, EmptyWheelHasNoTimeout) {
  TimerWheel wheel(10ms, 16);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.next_timeout_ms(Clock::now()), -1);
  std::vector<std::uint64_t> out;
  wheel.expire(Clock::now(), out);
  EXPECT_TRUE(out.empty());
}

TEST(TimerWheel, EntryFiresAfterItsDeadlineNotBefore) {
  TimerWheel wheel(10ms, 16);
  const Clock::time_point now = Clock::now();
  wheel.schedule(7, now + 50ms);
  EXPECT_EQ(wheel.size(), 1u);

  std::vector<std::uint64_t> out;
  wheel.expire(now + 20ms, out);
  EXPECT_TRUE(out.empty()) << "fired 30ms early";
  wheel.expire(now + 200ms, out);
  EXPECT_EQ(out, std::vector<std::uint64_t>{7});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, DrainsEverythingDueInOneCall) {
  TimerWheel wheel(10ms, 16);
  const Clock::time_point now = Clock::now();
  wheel.schedule(1, now + 15ms);
  wheel.schedule(2, now + 35ms);
  wheel.schedule(3, now + 55ms);
  wheel.schedule(4, now + 900ms);  // not due

  std::vector<std::uint64_t> out;
  wheel.expire(now + 100ms, out);  // several ticks elapsed at once
  EXPECT_EQ(sorted(out), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheel, SlotCollisionsLoseNothing) {
  // 4 slots x 10ms: ids 10ms apart beyond one revolution share slots.
  TimerWheel wheel(10ms, 4);
  const Clock::time_point now = Clock::now();
  for (std::uint64_t id = 0; id < 12; ++id) {
    wheel.schedule(id, now + std::chrono::milliseconds(10 * (id + 1)));
  }
  EXPECT_EQ(wheel.size(), 12u);
  std::vector<std::uint64_t> out;
  wheel.expire(now + 500ms, out);
  std::vector<std::uint64_t> want(12);
  for (std::uint64_t id = 0; id < 12; ++id) want[id] = id;
  EXPECT_EQ(sorted(out), want);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, FarFutureEntryRidesAroundTheWheel) {
  // One revolution of this wheel is 4 x 10ms = 40ms; schedule well past
  // it. The entry must neither fire early (when its slot first comes
  // around) nor get lost.
  TimerWheel wheel(10ms, 4);
  const Clock::time_point now = Clock::now();
  wheel.schedule(42, now + 130ms);

  std::vector<std::uint64_t> out;
  wheel.expire(now + 60ms, out);  // past the colliding earlier tick
  EXPECT_TRUE(out.empty()) << "fired a full revolution early";
  EXPECT_EQ(wheel.size(), 1u);
  wheel.expire(now + 200ms, out);
  EXPECT_EQ(out, std::vector<std::uint64_t>{42});
}

TEST(TimerWheel, NextTimeoutBoundsTheEarliestDeadline) {
  TimerWheel wheel(10ms, 16);
  const Clock::time_point now = Clock::now();
  wheel.schedule(1, now + 80ms);
  wheel.schedule(2, now + 30ms);

  const int timeout = wheel.next_timeout_ms(now);
  ASSERT_GE(timeout, 0);
  // Never sleep past the earliest deadline's tick (rounded up + one
  // resolution of slack).
  EXPECT_LE(timeout, 40);

  // Past every deadline the wheel still demands an immediate poll.
  EXPECT_EQ(wheel.next_timeout_ms(now + 500ms), 0);
}

TEST(TimerWheel, ExpiredIdsCanBeRescheduled) {
  // The lazy-revalidation contract: the caller re-schedules an id whose
  // authoritative deadline moved. The new entry must fire at the new
  // deadline.
  TimerWheel wheel(10ms, 16);
  const Clock::time_point now = Clock::now();
  wheel.schedule(9, now + 20ms);
  std::vector<std::uint64_t> out;
  wheel.expire(now + 50ms, out);
  ASSERT_EQ(out, std::vector<std::uint64_t>{9});

  wheel.schedule(9, now + 90ms);  // deadline moved: re-file
  out.clear();
  wheel.expire(now + 60ms, out);
  EXPECT_TRUE(out.empty());
  wheel.expire(now + 150ms, out);
  EXPECT_EQ(out, std::vector<std::uint64_t>{9});
}

}  // namespace
}  // namespace fhc::net
