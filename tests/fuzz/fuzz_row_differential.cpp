// Differential fuzz target: the gram-indexed feature-row fill against
// the all-pairs oracle, on fuzzer-shaped digest sets.
//
// The input is split on newlines; every line that parses as a fuzzy
// digest becomes one single-channel training sample (labels round-robin
// over up to 4 classes). For a handful of the samples we then assert
//
//   fill_feature_row(...) == fill_feature_row_all_pairs(...)
//
// bit-for-bit, for both edit metrics and with/without leave-self-out.
// The gram index is a *pruning* structure: any divergence from the
// exhaustive scan means the index dropped (or invented) a candidate —
// silently wrong similarity features, the worst failure mode a
// classifier can have. unit tests cover curated digests; this target
// lets the fuzzer search for pathological blocksize/length combinations
// the curated set misses.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/feature_matrix.hpp"
#include "core/features.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/digest.hpp"

namespace {

constexpr std::size_t kMaxSamples = 64;  // keep one input cheap
constexpr std::size_t kMaxChecked = 8;   // rows asserted per input

void check_rows_equal(std::span<const float> indexed,
                      std::span<const float> oracle) {
  if (indexed.size() != oracle.size()) std::abort();
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    // Bit-identity, including signed zero; both paths compute the same
    // max over the same candidate scores or the column stays 0.
    if (std::memcmp(&indexed[i], &oracle[i], sizeof(float)) != 0) std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::vector<fhc::core::FeatureHashes> samples;
  std::size_t pos = 0;
  while (pos <= text.size() && samples.size() < kMaxSamples) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    if (const auto digest = fhc::ssdeep::parse_digest(line)) {
      fhc::core::FeatureHashes sample;
      sample.file = *digest;  // single populated channel is enough to probe
      samples.push_back(std::move(sample));
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  if (samples.size() < 2) return 0;  // need at least two classes

  const std::size_t n_classes = std::min<std::size_t>(samples.size(), 4);
  std::vector<int> labels(samples.size());
  std::vector<std::string> names;
  for (std::size_t c = 0; c < n_classes; ++c) {
    names.push_back("class" + std::to_string(c));
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    labels[i] = static_cast<int>(i % n_classes);
  }

  const fhc::core::TrainIndex index(samples, labels, names);
  const std::size_t row_width = index.n_channels() * n_classes;
  std::vector<float> indexed(row_width);
  std::vector<float> oracle(row_width);

  const fhc::ssdeep::EditMetric metrics[] = {
      fhc::ssdeep::EditMetric::kDamerauOsa,
      fhc::ssdeep::EditMetric::kWeightedLevenshtein};
  const std::size_t checked = std::min(samples.size(), kMaxChecked);
  for (std::size_t i = 0; i < checked; ++i) {
    for (const fhc::ssdeep::EditMetric metric : metrics) {
      for (const int exclude : {-1, static_cast<int>(i)}) {
        std::fill(indexed.begin(), indexed.end(), -1.0f);
        std::fill(oracle.begin(), oracle.end(), -2.0f);
        fhc::core::fill_feature_row(index, samples[i], metric, exclude,
                                    indexed);
        fhc::core::fill_feature_row_all_pairs(index, samples[i], metric,
                                              exclude, oracle);
        check_rows_equal(indexed, oracle);
      }
    }
  }
  return 0;
}
