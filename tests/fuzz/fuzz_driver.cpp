// Corpus-replay + deterministic-mutation driver for the fuzz targets.
//
// Under Clang the targets link libFuzzer (-fsanitize=fuzzer) and this
// file is not compiled. Everywhere else (the GCC CI matrix) this main
// replays the checked-in corpora as plain regression inputs, so the
// `fuzz` ctest label runs the exact same LLVMFuzzerTestOneInput bodies:
//
//   fuzz_x [libFuzzer-style -flags, ignored] FILE_OR_DIR...
//   fuzz_x --mutate N [--seed S] FILE_OR_DIR...
//
// --mutate N additionally runs N deterministic mutations of every corpus
// input through the target (bit flips, byte smashes, truncations,
// duplications, chunk splices — the classic dumb-fuzz operators, seeded
// by util::splitmix64 so a failure reproduces from the same command
// line). It is not coverage-guided, but under ASan/UBSan it reaches the
// same shallow crash classes libFuzzer finds first, which keeps local
// fuzzing useful on toolchains without libFuzzer.
//
// Unrecognized `-` arguments are skipped so the uniform ctest command
// `fuzz_x -runs=0 <corpus_dir>` works under both this driver and
// libFuzzer.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void run_one(const std::vector<std::uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

/// One dumb-fuzz mutation pass over `input` (in place).
void mutate(std::vector<std::uint8_t>& input, fhc::util::Rng& rng) {
  const std::uint64_t ops = 1 + rng.next_below(4);
  for (std::uint64_t op = 0; op < ops; ++op) {
    switch (rng.next_below(5)) {
      case 0:  // bit flip
        if (!input.empty()) {
          input[rng.next_below(input.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      case 1:  // byte smash
        if (!input.empty()) {
          input[rng.next_below(input.size())] =
              static_cast<std::uint8_t>(rng.next_below(256));
        }
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(rng.next_below(input.size() + 1));
        break;
      case 3: {  // insert a short run
        const std::size_t at = input.empty() ? 0 : rng.next_below(input.size());
        const std::size_t n = 1 + rng.next_below(8);
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(at), n,
                     static_cast<std::uint8_t>(rng.next_below(256)));
        break;
      }
      default:  // splice: copy one chunk over another
        if (input.size() >= 2) {
          const std::size_t from = rng.next_below(input.size());
          const std::size_t to = rng.next_below(input.size());
          const std::size_t n =
              1 + rng.next_below(std::min<std::size_t>(16, input.size() -
                                                               std::max(from, to)));
          std::memmove(input.data() + to, input.data() + from, n);
        }
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutations = 0;
  std::uint64_t seed = 0x5eedf00dULL;
  std::vector<std::filesystem::path> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      mutations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (argv[i][0] == '-') {
      // libFuzzer-style flag (-runs=0, -max_len=...): ignore for parity.
    } else {
      roots.emplace_back(argv[i]);
    }
  }

  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "fuzz driver: no such input: %s\n", root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());  // deterministic replay order

  run_one({});  // the empty input is always in the implicit corpus
  std::uint64_t mutated_runs = 0;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::vector<std::uint8_t> bytes = read_file(files[f]);
    run_one(bytes);
    fhc::util::Rng rng(seed + f);  // Rng seeds via splitmix64 internally
    for (std::uint64_t m = 0; m < mutations; ++m) {
      std::vector<std::uint8_t> variant = bytes;
      mutate(variant, rng);
      run_one(variant);
      ++mutated_runs;
    }
  }
  std::printf("fuzz driver: %zu corpus inputs replayed, %llu mutations run\n",
              files.size(), static_cast<unsigned long long>(mutated_runs));
  return 0;
}
