// Fuzz target: the framed wire protocol — FrameReader fed the input in
// torn chunks, every extracted payload run through both decoders, and
// every successfully decoded frame re-encoded and re-decoded.
//
// Contracts under test:
//  * FrameReader never crashes on arbitrary byte streams, never hands
//    out a frame after poisoning, and never buffers more than a frame's
//    worth past max_frame.
//  * decode_request / decode_response return a status — they never
//    throw and never read outside the payload span.
//  * Re-encode fidelity: a request/response that decodes kOk encodes
//    back to a payload that decodes kOk to the same logical value
//    (opcode + fields). Asymmetry here means client and server disagree
//    about the wire format.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace {

using fhc::net::DecodeStatus;
using fhc::net::Opcode;

void reencode_request(const fhc::net::Request& request, std::string& out) {
  switch (request.op) {
    case Opcode::kClassifyDigests:
      fhc::net::encode_classify_digests(out, request.digests);
      break;
    case Opcode::kClassifyPath:
      fhc::net::encode_classify_path(out, request.text);
      break;
    case Opcode::kStats:
      fhc::net::encode_stats(out);
      break;
    case Opcode::kReload:
      fhc::net::encode_reload(out, request.text);
      break;
    case Opcode::kPing:
      fhc::net::encode_ping(out);
      break;
    case Opcode::kQuit:
      fhc::net::encode_quit(out);
      break;
    default:
      break;
  }
}

void reencode_response(const fhc::net::Response& response, std::string& out) {
  switch (response.op) {
    case Opcode::kPrediction:
      fhc::net::encode_prediction(out, response.label, response.is_unknown,
                                  response.confidence, response.server_micros,
                                  response.text);
      break;
    case Opcode::kOk:
      fhc::net::encode_ok(out, response.text);
      break;
    case Opcode::kStatsText:
      fhc::net::encode_stats_text(out, response.text);
      break;
    case Opcode::kError:
      fhc::net::encode_error(out, response.text);
      break;
    case Opcode::kBusy:
      fhc::net::encode_busy(out, response.text);
      break;
    default:
      break;
  }
}

/// Strips the u32le length framing an encode_* helper prepends, leaving
/// the payload decode_* expects.
std::span<const std::uint8_t> payload_of(const std::string& frame) {
  if (frame.size() < 4) std::abort();  // encoders always frame
  return {reinterpret_cast<const std::uint8_t*>(frame.data()) + 4,
          frame.size() - 4};
}

void check_payload(std::span<const std::uint8_t> payload) {
  fhc::net::Request request;
  if (fhc::net::decode_request(payload, request) == DecodeStatus::kOk) {
    std::string wire;
    reencode_request(request, wire);
    fhc::net::Request again;
    if (fhc::net::decode_request(payload_of(wire), again) != DecodeStatus::kOk ||
        again.op != request.op || again.digests != request.digests ||
        again.text != request.text) {
      std::abort();
    }
  }
  fhc::net::Response response;
  if (fhc::net::decode_response(payload, response) == DecodeStatus::kOk) {
    std::string wire;
    reencode_response(response, wire);
    fhc::net::Response again;
    // confidence is compared bitwise, not with ==: a fuzzed payload can
    // carry a NaN, which re-encodes to the same bits but fails ==.
    std::uint64_t conf_bits = 0;
    std::uint64_t again_bits = 0;
    std::memcpy(&conf_bits, &response.confidence, sizeof conf_bits);
    if (fhc::net::decode_response(payload_of(wire), again) != DecodeStatus::kOk ||
        again.op != response.op || again.label != response.label ||
        again.is_unknown != response.is_unknown ||
        (std::memcpy(&again_bits, &again.confidence, sizeof again_bits),
         again_bits != conf_bits) ||
        again.server_micros != response.server_micros ||
        again.text != response.text) {
      std::abort();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // A small max_frame makes the poisoning path reachable with short
  // inputs; the chunk size is taken from the input so the fuzzer can
  // explore torn-read boundaries.
  fhc::net::FrameReader reader(/*max_frame=*/4096);
  const std::size_t chunk = size != 0 ? 1 + data[0] % 37 : 1;
  std::size_t offset = 0;
  while (offset < size) {
    const std::size_t n = std::min(chunk, size - offset);
    reader.feed(std::span<const std::uint8_t>(data + offset, n));
    offset += n;
    while (auto frame = reader.next()) {
      if (reader.error().has_value()) std::abort();  // poisoned readers stop
      check_payload(*frame);
    }
  }
  // The payload bytes themselves, unframed, are also attacker input.
  check_payload(std::span<const std::uint8_t>(data, size));
  return 0;
}
