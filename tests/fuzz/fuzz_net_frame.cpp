// Fuzz target: the framed wire protocol — FrameReader fed the input in
// torn chunks, every extracted payload run through both decoders, and
// every successfully decoded frame re-encoded and re-decoded.
//
// Contracts under test:
//  * FrameReader never crashes on arbitrary byte streams, never hands
//    out a frame after poisoning, and never buffers more than a frame's
//    worth past max_frame.
//  * decode_request / decode_response return a status — they never
//    throw and never read outside the payload span.
//  * Re-encode fidelity: a request/response that decodes kOk encodes
//    back to a payload that decodes kOk to the same logical value
//    (opcode + fields). Asymmetry here means client and server disagree
//    about the wire format.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace {

using fhc::net::DecodeStatus;
using fhc::net::Opcode;

void reencode_request(const fhc::net::Request& request, std::string& out) {
  switch (request.op) {
    case Opcode::kClassifyDigests:
      fhc::net::encode_classify_digests(out, request.digests);
      break;
    case Opcode::kClassifyPath:
      fhc::net::encode_classify_path(out, request.text);
      break;
    case Opcode::kStats:
      fhc::net::encode_stats(out);
      break;
    case Opcode::kReload:
      fhc::net::encode_reload(out, request.text);
      break;
    case Opcode::kPing:
      fhc::net::encode_ping(out);
      break;
    case Opcode::kQuit:
      fhc::net::encode_quit(out);
      break;
    default:
      break;
  }
}

void reencode_response(const fhc::net::Response& response, std::string& out) {
  switch (response.op) {
    case Opcode::kPrediction:
      fhc::net::encode_prediction(out, response.label, response.is_unknown,
                                  response.confidence, response.server_micros,
                                  response.text);
      break;
    case Opcode::kOk:
      fhc::net::encode_ok(out, response.text);
      break;
    case Opcode::kStatsText:
      fhc::net::encode_stats_text(out, response.text);
      break;
    case Opcode::kError:
      fhc::net::encode_error(out, response.text);
      break;
    case Opcode::kBusy:
      fhc::net::encode_busy(out, response.text);
      break;
    default:
      break;
  }
}

/// Strips the u32le length framing an encode_* helper prepends, leaving
/// the payload decode_* expects.
std::span<const std::uint8_t> payload_of(const std::string& frame) {
  if (frame.size() < 4) std::abort();  // encoders always frame
  return {reinterpret_cast<const std::uint8_t*>(frame.data()) + 4,
          frame.size() - 4};
}

void check_payload(std::span<const std::uint8_t> payload) {
  fhc::net::Request request;
  if (fhc::net::decode_request(payload, request) == DecodeStatus::kOk) {
    std::string wire;
    reencode_request(request, wire);
    fhc::net::Request again;
    if (fhc::net::decode_request(payload_of(wire), again) != DecodeStatus::kOk ||
        again.op != request.op || again.digests != request.digests ||
        again.text != request.text) {
      std::abort();
    }
  }
  fhc::net::Response response;
  if (fhc::net::decode_response(payload, response) == DecodeStatus::kOk) {
    std::string wire;
    reencode_response(response, wire);
    fhc::net::Response again;
    // confidence is compared bitwise, not with ==: a fuzzed payload can
    // carry a NaN, which re-encodes to the same bits but fails ==.
    std::uint64_t conf_bits = 0;
    std::uint64_t again_bits = 0;
    std::memcpy(&conf_bits, &response.confidence, sizeof conf_bits);
    if (fhc::net::decode_response(payload_of(wire), again) != DecodeStatus::kOk ||
        again.op != response.op || again.label != response.label ||
        again.is_unknown != response.is_unknown ||
        (std::memcpy(&again_bits, &again.confidence, sizeof again_bits),
         again_bits != conf_bits) ||
        again.server_micros != response.server_micros ||
        again.text != response.text) {
      std::abort();
    }
  }
}

}  // namespace

#if defined(FHC_LIBFUZZER)
// Structure-aware mutation: random byte flips almost never produce a
// frame that clears the length prefix + opcode + per-field bounds
// checks, so coverage stalls at the decoder's front door. The custom
// mutator speaks the frame grammar — it emits well-formed frames, tweaks
// decoded fields and re-encodes, and re-frames blind mutations under a
// correct length prefix — landing inputs deep in the codec where the
// interesting bugs live. A slice of the budget still goes to raw
// LLVMFuzzerMutate so pure framing violations stay covered.
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

namespace {

std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A plausible ssdeep-ish digest: "<blocksize>:<b64ish>:<b64ish>".
std::string random_digest(std::uint64_t& state) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out = std::to_string(3u << (mix(state) % 8));
  out += ':';
  for (int half = 0; half < 2; ++half) {
    const std::size_t len = mix(state) % 24;
    for (std::size_t i = 0; i < len; ++i) {
      out += kAlphabet[mix(state) % (sizeof kAlphabet - 1)];
    }
    if (half == 0) out += ':';
  }
  return out;
}

/// Appends one well-formed random frame (request or response) to `out`.
void random_frame(std::uint64_t& state, std::string& out) {
  const std::optional<std::uint32_t> deadline =
      (mix(state) % 2) != 0
          ? std::optional<std::uint32_t>(
                static_cast<std::uint32_t>(mix(state) % 5000))
          : std::nullopt;
  switch (mix(state) % 10) {
    case 0: {
      std::vector<std::string> digests;
      const std::size_t count = mix(state) % 5;
      for (std::size_t i = 0; i < count; ++i) {
        digests.push_back(random_digest(state));
      }
      fhc::net::encode_classify_digests(out, digests, deadline);
      break;
    }
    case 1:
      fhc::net::encode_classify_path(out, "/bin/app@/tmp/trace", deadline);
      break;
    case 2:
      fhc::net::encode_stats(out);
      break;
    case 3:
      fhc::net::encode_reload(out, "/models/prod.fhcb");
      break;
    case 4:
      fhc::net::encode_ping(out);
      break;
    case 5: {
      std::uint64_t conf_bits = mix(state);
      double confidence;
      std::memcpy(&confidence, &conf_bits, sizeof confidence);
      fhc::net::encode_prediction(out, static_cast<std::int32_t>(mix(state) % 7) - 1,
                                  (mix(state) % 2) != 0, confidence, mix(state),
                                  random_digest(state));
      break;
    }
    case 6:
      fhc::net::encode_deadline_exceeded(out, "deadline expired");
      break;
    case 7:
      fhc::net::encode_busy(out, "queue full");
      break;
    case 8:
      fhc::net::encode_error(out, random_digest(state));
      break;
    default:
      fhc::net::encode_quit(out);
      break;
  }
}

std::size_t emit(const std::string& bytes, std::uint8_t* data,
                 std::size_t max_size) {
  const std::size_t n = std::min(bytes.size(), max_size);
  std::memcpy(data, bytes.data(), n);
  return n;
}

}  // namespace

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  std::uint64_t state = seed;
  switch (mix(state) % 5) {
    case 0: {
      // Fresh well-formed pipeline of 1..3 frames.
      std::string wire;
      const std::size_t frames = 1 + mix(state) % 3;
      for (std::size_t i = 0; i < frames; ++i) random_frame(state, wire);
      return emit(wire, data, max_size);
    }
    case 1: {
      // Decode the leading frame, mutate a decoded field, re-encode —
      // stays inside the grammar while moving through field space.
      fhc::net::FrameReader reader(/*max_frame=*/1 << 20);
      reader.feed(std::span<const std::uint8_t>(data, size));
      const auto payload = reader.next();
      fhc::net::Request request;
      if (!payload.has_value() ||
          fhc::net::decode_request(*payload, request) != DecodeStatus::kOk) {
        break;  // nothing decodable: fall through to blind mutation
      }
      std::string wire;
      if (request.op == Opcode::kClassifyDigests) {
        if (!request.digests.empty() && (mix(state) % 2) != 0) {
          request.digests[mix(state) % request.digests.size()] =
              random_digest(state);
        } else {
          request.digests.push_back(random_digest(state));
        }
        const std::optional<std::uint32_t> deadline =
            (mix(state) % 2) != 0
                ? std::optional<std::uint32_t>(
                      static_cast<std::uint32_t>(mix(state)))
                : std::nullopt;
        fhc::net::encode_classify_digests(wire, request.digests, deadline);
      } else {
        reencode_request(request, wire);
        random_frame(state, wire);  // and pipeline something behind it
      }
      return emit(wire, data, max_size);
    }
    case 2: {
      // Re-frame: blind-mutate the payload, keep the length prefix
      // honest so the mutation reaches the decoder instead of dying at
      // the framing check.
      if (max_size < 5) break;
      std::vector<std::uint8_t> payload;
      if (size > 4) payload.assign(data + 4, data + size);
      payload.resize(std::max<std::size_t>(payload.size(), 1));
      payload.resize(max_size - 4);
      const std::size_t payload_size = LLVMFuzzerMutate(
          payload.data(), std::min<std::size_t>(payload.size(), size > 4 ? size - 4 : 1),
          payload.size());
      if (payload_size == 0) break;
      const auto len = static_cast<std::uint32_t>(payload_size);
      std::memcpy(data, &len, 4);
      std::memcpy(data + 4, payload.data(), payload_size);
      return 4 + payload_size;
    }
    case 3: {
      // Frame-boundary probe: nudge the length prefix off by a little —
      // torn/overlong declarations are exactly the poisoning paths.
      if (size < 4) break;
      std::uint32_t len = 0;
      std::memcpy(&len, data, 4);
      len += static_cast<std::uint32_t>(mix(state) % 7) - 3;
      std::memcpy(data, &len, 4);
      return size;
    }
    default:
      break;
  }
  return LLVMFuzzerMutate(data, size, max_size);
}
#endif  // FHC_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // A small max_frame makes the poisoning path reachable with short
  // inputs; the chunk size is taken from the input so the fuzzer can
  // explore torn-read boundaries.
  fhc::net::FrameReader reader(/*max_frame=*/4096);
  const std::size_t chunk = size != 0 ? 1 + data[0] % 37 : 1;
  std::size_t offset = 0;
  while (offset < size) {
    const std::size_t n = std::min(chunk, size - offset);
    reader.feed(std::span<const std::uint8_t>(data + offset, n));
    offset += n;
    while (auto frame = reader.next()) {
      if (reader.error().has_value()) std::abort();  // poisoned readers stop
      check_payload(*frame);
    }
  }
  // The payload bytes themselves, unframed, are also attacker input.
  check_payload(std::span<const std::uint8_t>(data, size));
  return 0;
}
