// Fuzz target: ssdeep::parse_digest on arbitrary text.
//
// Contract under test: parse_digest never crashes or reads out of
// bounds, and every digest it accepts round-trips — to_string() of the
// parsed value re-parses to an equal value. A round-trip failure means
// the parser and printer disagree about the canonical form, which would
// corrupt models (digests are stored as text rows in the preamble).
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "ssdeep/digest.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const std::optional<fhc::ssdeep::FuzzyDigest> digest =
      fhc::ssdeep::parse_digest(text);
  if (digest.has_value()) {
    if (!fhc::ssdeep::valid_blocksize(digest->blocksize)) std::abort();
    const std::optional<fhc::ssdeep::FuzzyDigest> again =
        fhc::ssdeep::parse_digest(digest->to_string());
    if (!again.has_value() || *again != *digest) std::abort();
  }
  return 0;
}
