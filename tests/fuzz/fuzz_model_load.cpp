// Fuzz target: model loading on arbitrary bytes — the three formats a
// daemon will mmap or stream from disk (text "FHCMODEL", binary v1
// "FHCMDLB1", binary v2 "FHCMDLB2") plus the raw SectionedView
// container walk underneath v2.
//
// Contract under test: every loader either succeeds or throws a
// std::exception subclass — no crashes, no OOM from attacker-chosen
// counts (the kMaxModelClasses / kMaxModelTrainRows caps exist because
// this target found "classes 2000000000" pre-allocating gigabytes), no
// out-of-bounds reads from forged section tables. A model that loads
// successfully must also re-save without throwing.
#include <cstdint>
#include <cstring>
#include <exception>
#include <span>
#include <sstream>
#include <string>

#include "core/classifier.hpp"
#include "util/sectioned.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);

  // Raw container walk (what fhc_inspect does before any model logic).
  try {
    const fhc::util::SectionedView view =
        fhc::util::SectionedView::attach(bytes, fhc::core::kBinaryModelMagicV2);
    view.verify_checksums();
    for (const auto& entry : view.entries()) {
      (void)view.section(entry.tag_view());
    }
  } catch (const std::exception&) {
  }

  // Binary loaders (v1/v2 sniffed by magic). keepalive nullptr is fine:
  // `bytes` outlives the model inside this call.
  if (fhc::core::FuzzyHashClassifier::is_binary_model(bytes)) {
    try {
      fhc::core::FuzzyHashClassifier model;
      model.load_binary(bytes, nullptr);
      std::ostringstream resaved;
      model.save(resaved);  // a loaded model must serialize cleanly
    } catch (const std::exception&) {
    }
  }

  // Text loader on the same bytes.
  try {
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(data), size));
    fhc::core::FuzzyHashClassifier model;
    model.load(in);
    std::ostringstream resaved;
    model.save(resaved);
  } catch (const std::exception&) {
  }
  return 0;
}
