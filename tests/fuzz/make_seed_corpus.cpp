// Seed-corpus generator: writes one minimized, structure-bearing seed
// set per fuzz target under OUTDIR/<target>/.
//
//   make_seed_corpus OUTDIR
//
// The seeds are produced by the *real* producers — ssdeep::fuzzy_hash,
// elf::write_elf, FuzzyHashClassifier::save/save_binary/save_binary_v1,
// the net encode_* helpers — so every seed starts deep inside the
// parsers' accept states and mutation explores the interesting
// boundaries instead of bouncing off the magic check. Deterministic:
// re-running regenerates byte-identical corpora (the corpora are
// checked in; this tool exists to regenerate them when formats evolve).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "elf/elf_writer.hpp"
#include "net/protocol.hpp"
#include "runtime/fingerprint.hpp"
#include "ssdeep/fuzzy_hash.hpp"
#include "util/rng.hpp"

using namespace fhc;

namespace {

std::filesystem::path g_outdir;

void write_seed(const std::string& target, const std::string& name,
                std::string_view bytes) {
  const std::filesystem::path dir = g_outdir / target;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_seed_corpus: cannot write %s/%s\n",
                 target.c_str(), name.c_str());
    std::exit(1);
  }
}

void write_seed(const std::string& target, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  write_seed(target, name,
             std::string_view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size()));
}

/// Deterministic pseudo-text with enough repetition to drive ssdeep's
/// rolling hash through several chunk boundaries.
std::string synth_text(std::uint64_t seed, std::size_t length) {
  util::Rng rng(seed);
  std::string text;
  text.reserve(length);
  static constexpr std::string_view kWords[] = {
      "mpi_allreduce", "dgemm",  "halo",  "exchange", "solver",
      "miner",         "sha256", "nonce", "stratum",  "checkpoint"};
  while (text.size() < length) {
    text += kWords[rng.next_below(std::size(kWords))];
    text += rng.next_below(8) == 0 ? '\n' : '_';
  }
  return text;
}

std::vector<std::uint8_t> synth_bytes(std::uint64_t seed, std::size_t length) {
  const std::string text = synth_text(seed, length);
  return {text.begin(), text.end()};
}

/// A tiny fitted classifier shared by the model seeds.
core::FuzzyHashClassifier make_model(bool calibrated) {
  std::vector<core::FeatureHashes> hashes;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < (calibrated ? 6 : 3); ++i) {
      core::FeatureHashes sample;
      const std::uint64_t seed =
          static_cast<std::uint64_t>(c) * 100 + static_cast<std::uint64_t>(i);
      sample.file = ssdeep::fuzzy_hash(synth_text(seed, 2048));
      sample.strings = ssdeep::fuzzy_hash(synth_text(seed + 31, 1024));
      sample.symbols = ssdeep::fuzzy_hash(synth_text(seed + 67, 512));
      hashes.push_back(std::move(sample));
      labels.push_back(c);
    }
  }
  core::ClassifierConfig config;
  config.forest.n_estimators = 8;
  config.forest.seed = 7;
  if (calibrated) {
    config.calibrate_rejection = true;
    config.calibration_target_fpr = 0.1;
  }
  core::FuzzyHashClassifier model;
  model.fit(hashes, labels, {"lammps", "gromacs", "miner"}, config);
  return model;
}

void seed_parse_digest() {
  const std::string target = "fuzz_parse_digest";
  int n = 0;
  for (const std::size_t length : {16, 256, 4096, 65536}) {
    const auto digest =
        ssdeep::fuzzy_hash(synth_text(static_cast<std::uint64_t>(length), length));
    write_seed(target, "digest" + std::to_string(n++), digest.to_string());
  }
  write_seed(target, "minimal", "3::");
  write_seed(target, "no_part2", "6:abc:");
  write_seed(target, "bad_blocksize", "7:abc:def");
  write_seed(target, "overlong",
             "3:" + std::string(ssdeep::kSpamsumLength + 1, 'A') + ":x");
}

void seed_elf_reader() {
  const std::string target = "fuzz_elf_reader";
  elf::ElfSpec spec;
  spec.text = synth_bytes(1, 512);
  spec.rodata = synth_bytes(2, 256);
  spec.comment = "GCC: (GNU) 12.2.0";
  spec.symbols = {{.name = "mpi_init_"},
                  {.name = "solve_step", .value = 16},
                  {.name = "checkpoint_write", .value = 128, .size = 64}};
  write_seed(target, "full", elf::write_elf(spec));
  elf::ElfSpec stripped = spec;
  stripped.stripped = true;
  stripped.symbols.clear();
  write_seed(target, "stripped", elf::write_elf(stripped));
  elf::ElfSpec tiny;
  tiny.text = {0xc3};
  write_seed(target, "tiny", elf::write_elf(tiny));
  write_seed(target, "not_elf", synth_text(3, 128));
  write_seed(target, "magic_only", std::string_view("\x7f"
                                                    "ELF",
                                                    4));
}

void seed_model_load() {
  const std::string target = "fuzz_model_load";
  const core::FuzzyHashClassifier plain = make_model(false);
  const core::FuzzyHashClassifier calibrated = make_model(true);
  std::ostringstream text;
  plain.save(text);
  write_seed(target, "text_model", text.str());
  std::ostringstream text_cal;
  calibrated.save(text_cal);
  write_seed(target, "text_model_calibrated", text_cal.str());
  std::ostringstream v1;
  plain.save_binary_v1(v1);
  write_seed(target, "binary_v1", v1.str());
  std::ostringstream v2;
  plain.save_binary(v2);
  write_seed(target, "binary_v2", v2.str());
  std::ostringstream v2_cal;
  calibrated.save_binary(v2_cal);
  write_seed(target, "binary_v2_calibrated", v2_cal.str());
  write_seed(target, "magic_only_v2", core::kBinaryModelMagicV2);
  // Hand-rolled preamble with a calibration line and huge declared
  // counts: the ancestor of the kMaxModelClasses / kMaxModelTrainRows
  // findings. Mutations of the count fields probe the caps directly.
  write_seed(target, "header_counts",
             "fhc-fuzzy-hash-classifier-v1\nmetric 0\nthreshold 0.5\n"
             "balanced 1\ncalibration 0.25 0.05 12\nchannels 1 1 1\n"
             "classes 2\nalpha\nbeta\ntrain 0\n");
}

void seed_net_frame() {
  const std::string target = "fuzz_net_frame";
  std::string frame;
  const std::vector<std::string> digests = {
      ssdeep::fuzzy_hash(synth_text(10, 2048)).to_string(),
      ssdeep::fuzzy_hash(synth_text(11, 1024)).to_string(),
      ssdeep::fuzzy_hash(synth_text(12, 512)).to_string()};
  net::encode_classify_digests(frame, digests);
  write_seed(target, "classify_digests", frame);
  frame.clear();
  net::encode_classify_path(frame, "/opt/apps/solver@run.trace.csv");
  write_seed(target, "classify_path", frame);
  frame.clear();
  net::encode_stats(frame);
  net::encode_ping(frame);
  net::encode_quit(frame);
  write_seed(target, "control_pipeline", frame);
  frame.clear();
  net::encode_reload(frame, "/var/lib/fhc/model.fhcb");
  write_seed(target, "reload", frame);
  frame.clear();
  net::encode_prediction(frame, 2, false, 0.875, 1234, "gromacs");
  write_seed(target, "prediction_known", frame);
  frame.clear();
  net::encode_prediction(frame, -1, true, 0.31, 99, "");
  write_seed(target, "prediction_unknown", frame);
  frame.clear();
  net::encode_ok(frame, "model.fhcb");
  net::encode_stats_text(frame, "requests=4 unknown_flagged=1");
  net::encode_error(frame, "bad digest");
  net::encode_busy(frame, "queue full");
  write_seed(target, "response_pipeline", frame);
}

void seed_trace() {
  const std::string target = "fuzz_trace";
  std::string csv;
  for (int interval = 1; interval <= 8; ++interval) {
    for (const char* event : {"cycles", "instructions", "cache-misses"}) {
      csv += std::to_string(interval) + ".000501,"
             + std::to_string(1000000 * interval) + ",,"
             + event + ",1000000,100.00,,\n";
    }
  }
  write_seed(target, "perf_csv", csv);
  std::string json;
  for (int interval = 1; interval <= 4; ++interval) {
    json += "{\"interval\" : " + std::to_string(interval) +
            ".000501, \"counter-value\" : \"" +
            std::to_string(500000 * interval) +
            ".000000\", \"event\" : \"cycles\"}\n";
  }
  write_seed(target, "perf_json", json);
  write_seed(target, "not_counted",
             "1.0,<not counted>,,cycles,0,0.00,,\n2.0,123,,cycles,1,50.0,,\n");
  write_seed(target, "single_sample", "1.0,42,,cycles,1,100.0,,\n");
  write_seed(target, "zero_variance",
             "1.0,100,,cycles,1,100.0,,\n2.0,100,,cycles,1,100.0,,\n"
             "3.0,100,,cycles,1,100.0,,\n");
}

void seed_row_differential() {
  const std::string target = "fuzz_row_differential";
  // Digest lists: blocksize ladders are where index pruning must agree
  // with the exhaustive scan (comparable blocksizes differ by one step).
  std::string ladder;
  for (const std::size_t length : {64, 512, 2048, 8192, 32768, 131072}) {
    ladder += ssdeep::fuzzy_hash(
                  synth_text(static_cast<std::uint64_t>(length) + 5, length))
                  .to_string() +
              "\n";
  }
  write_seed(target, "blocksize_ladder", ladder);
  std::string similar;
  for (int i = 0; i < 8; ++i) {
    std::string text = synth_text(77, 4096);
    text.insert(static_cast<std::size_t>(i) * 100, "variant");
    similar += ssdeep::fuzzy_hash(text).to_string() + "\n";
  }
  write_seed(target, "near_duplicates", similar);
  write_seed(target, "short_parts", "3:AAAA:AA\n3:BBBB:BB\n6:CCCC:CC\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_seed_corpus OUTDIR\n");
    return 2;
  }
  g_outdir = argv[1];
  seed_parse_digest();
  seed_elf_reader();
  seed_model_load();
  seed_net_frame();
  seed_trace();
  seed_row_differential();
  std::printf("make_seed_corpus: corpora written under %s\n", argv[1]);
  return 0;
}
