// Fuzz target: runtime trace ingestion (perf CSV / line-JSON sniffing)
// and the fingerprint pipeline behind it.
//
// Contracts under test:
//  * parse_trace either returns a trace or throws std::runtime_error —
//    never crashes on arbitrary text (this is the `exe@trace` side door
//    into fhc_classify / fhc_serve, fed by whatever file the operator
//    names).
//  * Every trace that parses must fingerprint and attach: the
//    normalization (rates, z-scores, quantization) has to tolerate
//    pathological series — one sample, identical timestamps, zero
//    variance, infinities from tiny intervals — without UB or throwing.
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "core/features.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  fhc::runtime::CounterTrace trace;
  try {
    trace = fhc::runtime::parse_trace(text);
  } catch (const std::runtime_error&) {
    return 0;  // malformed trace: the only acceptable failure mode
  }
  // Parsed traces must survive the whole runtime-channel pipeline.
  (void)fhc::runtime::fingerprint_bytes(trace);
  fhc::core::FeatureHashes sample;
  fhc::runtime::attach_trace(sample, trace);
  return 0;
}
