// Fuzz target: elf::ElfReader + core::extract_feature_hashes on
// arbitrary bytes.
//
// Contracts under test:
//  * ElfReader either constructs or throws ElfError — never crashes,
//    never throws anything else, and a constructed reader's accessors
//    are safe to walk.
//  * extract_feature_hashes NEVER throws on arbitrary bytes: the
//    strings/symbols extractors degrade gracefully on non-ELF input
//    (that is the classifier's front door for untrusted executables, so
//    an escape here would kill fhc_classify / the daemon's CLASSIFY
//    path). An unexpected exception escapes to terminate() and the
//    fuzzer records the input.
#include <cstdint>
#include <cstdlib>
#include <span>

#include "core/features.hpp"
#include "elf/elf_reader.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  try {
    const fhc::elf::ElfReader reader(bytes);
    for (const auto& section : reader.sections()) {
      (void)section.name.size();
      (void)section.content.size();
    }
    if (reader.has_symtab()) {
      for (const auto& symbol : reader.symbols()) (void)symbol.name.size();
    }
    (void)reader.section_by_name(".text");
    (void)reader.section_by_name(".comment");
  } catch (const fhc::elf::ElfError&) {
    // Malformed ELF: the only acceptable failure mode.
  }
  (void)fhc::elf::ElfReader::looks_like_elf(bytes);
  (void)fhc::core::extract_feature_hashes(bytes);  // must not throw
  return 0;
}
