// Trace ingestion + execution fingerprinting: the parsers must accept
// what perf actually emits (comments, torn intervals, not-counted
// samples), and the fingerprint must be deterministic, machine-scale
// invariant, and carry application identity through the ssdeep layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "runtime/fingerprint.hpp"
#include "runtime/synthetic.hpp"
#include "runtime/trace.hpp"
#include "ssdeep/compare.hpp"

namespace fhc::runtime {
namespace {

constexpr std::string_view kCsv =
    "# started on Fri Aug  8 2026\n"
    "\n"
    "1.000139894,1234567,,cycles,1000139894,100.00,,\n"
    "1.000139894,654321,,instructions,1000139894,100.00,,\n"
    "2.000231111,1333333,,cycles,1000091217,100.00,,\n"
    "2.000231111,<not counted>,,instructions,0,0.00,,\n";

constexpr std::string_view kJson =
    "{\"interval\" : 1.000139894, \"counter-value\" : \"1234567.000000\", "
    "\"unit\" : \"\", \"event\" : \"cycles\"}\n"
    "{\"interval\" : 1.000139894, \"counter-value\" : \"654321.000000\", "
    "\"event\" : \"instructions\"}\n"
    "{\"interval\" : 2.000231111, \"counter-value\" : \"<not counted>\", "
    "\"event\" : \"instructions\"}\n"
    "{\"interval\" : 2.000231111, \"counter-value\" : \"1333333.000000\", "
    "\"event\" : \"cycles\"}\n";

TEST(ParsePerfCsv, ReadsIntervalLinesSkipsCommentsAndNotCounted) {
  const CounterTrace trace = parse_perf_csv(kCsv);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.samples[0].time, 1.000139894);
  EXPECT_DOUBLE_EQ(trace.samples[0].value, 1234567.0);
  EXPECT_EQ(trace.samples[0].event, "cycles");
  EXPECT_EQ(trace.samples[1].event, "instructions");
  // The <not counted> instructions sample is dropped, the cycles one kept.
  EXPECT_EQ(trace.samples[2].event, "cycles");
  EXPECT_DOUBLE_EQ(trace.samples[2].value, 1333333.0);
}

TEST(ParsePerfCsv, ThrowsWhenNothingParses) {
  EXPECT_THROW(parse_perf_csv("# only a comment\n"), std::runtime_error);
  EXPECT_THROW(parse_perf_csv("not,a,perf,file but,text\n"), std::runtime_error);
  EXPECT_THROW(parse_perf_csv(""), std::runtime_error);
}

TEST(ParsePerfJson, ReadsObjectsSkipsNotCounted) {
  const CounterTrace trace = parse_perf_json_lines(kJson);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.samples[0].time, 1.000139894);
  EXPECT_DOUBLE_EQ(trace.samples[0].value, 1234567.0);
  EXPECT_EQ(trace.samples[0].event, "cycles");
  EXPECT_EQ(trace.samples[2].event, "cycles");
}

TEST(ParsePerfJson, ThrowsWhenNothingParses) {
  EXPECT_THROW(parse_perf_json_lines("{\"no\":\"interval\"}\n"),
               std::runtime_error);
}

TEST(ParseTrace, SniffsFormatByFirstNonBlankLine) {
  EXPECT_EQ(parse_trace(kCsv).size(), 3u);
  EXPECT_EQ(parse_trace(kJson).size(), 3u);
  EXPECT_EQ(parse_trace("\n\n" + std::string(kJson)).size(), 3u);
  EXPECT_THROW(parse_trace("\n \n"), std::runtime_error);
}

TEST(ParseTrace, CsvAndJsonOfTheSameRunAgree) {
  EXPECT_EQ(parse_perf_csv(kCsv).samples, parse_perf_json_lines(kJson).samples);
}

TEST(LoadTraceFile, ReadsAndParses) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_trace_" + std::to_string(::getpid()) + ".csv");
  {
    std::ofstream out(path);
    out << kCsv;
  }
  EXPECT_EQ(load_trace_file(path.string()).size(), 3u);
  std::filesystem::remove(path);
  EXPECT_THROW(load_trace_file(path.string()), std::runtime_error);
}

TEST(Fingerprint, DeterministicAndShapedLikeTheTrace) {
  const TraceSpec spec = hpc_trace_spec(0);
  const CounterTrace trace = synthesize_trace(spec, 1);
  const std::string bytes = fingerprint_bytes(trace);
  EXPECT_EQ(bytes, fingerprint_bytes(trace));
  // One "event:LETTERS\n" block per distinct event, in sorted order.
  std::size_t blocks = 0;
  std::string previous;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const std::string line = bytes.substr(pos, nl - pos);
    const std::size_t colon = line.find(':');
    ASSERT_NE(colon, std::string::npos);
    const std::string event = line.substr(0, colon);
    EXPECT_LT(previous, event);  // canonical sorted event order
    previous = event;
    for (const char c : line.substr(colon + 1)) {
      EXPECT_GE(c, 'A');
      EXPECT_LT(c, 'A' + 16);  // default levels
    }
    ++blocks;
    pos = nl + 1;
  }
  EXPECT_EQ(blocks, spec.events.size());
}

TEST(Fingerprint, EmptyTraceYieldsEmptyBytes) {
  EXPECT_TRUE(fingerprint_bytes(CounterTrace{}).empty());
}

TEST(Fingerprint, InvariantUnderUniformCounterScaling) {
  CounterTrace trace = synthesize_trace(hpc_trace_spec(1), 7);
  const std::string original = fingerprint_bytes(trace);
  // A machine twice as fast (or twice the cores) doubles every count of
  // an event; the z-score absorbs the scale.
  for (CounterSample& sample : trace.samples) {
    if (sample.event == "cycles") sample.value *= 2.0;
  }
  EXPECT_EQ(fingerprint_bytes(trace), original);
}

TEST(Fingerprint, RejectsMalformedConfig) {
  const CounterTrace trace = synthesize_trace(hpc_trace_spec(0), 1);
  FingerprintConfig config;
  config.levels = 1;
  EXPECT_THROW(fingerprint_bytes(trace, config), std::invalid_argument);
  config.levels = 27;
  EXPECT_THROW(fingerprint_bytes(trace, config), std::invalid_argument);
  config = FingerprintConfig{};
  config.clamp_sigma = 0.0;
  EXPECT_THROW(fingerprint_bytes(trace, config), std::invalid_argument);
}

TEST(HashTrace, IsTheFuzzyHashOfTheFingerprintBytes) {
  const CounterTrace trace = synthesize_trace(miner_trace_spec(0), 3);
  const ssdeep::FuzzyDigest direct =
      ssdeep::fuzzy_hash(std::string_view(fingerprint_bytes(trace)));
  EXPECT_EQ(hash_trace(trace).to_string(), direct.to_string());
}

TEST(Synthetic, SameSpecSameSeedIsByteStable) {
  const TraceSpec spec = hpc_trace_spec(2);
  EXPECT_EQ(synthesize_trace(spec, 9).samples, synthesize_trace(spec, 9).samples);
}

TEST(Synthetic, SameApplicationRunsFingerprintSimilar) {
  for (int variant = 0; variant < 3; ++variant) {
    const TraceSpec spec = hpc_trace_spec(variant);
    const auto a = hash_trace(synthesize_trace(spec, 1));
    const auto b = hash_trace(synthesize_trace(spec, 2));
    EXPECT_GT(ssdeep::compare_digests(a, b), 40)
        << "hpc variant " << variant << " runs should match";
  }
  const auto a = hash_trace(synthesize_trace(miner_trace_spec(0), 1));
  const auto b = hash_trace(synthesize_trace(miner_trace_spec(0), 2));
  EXPECT_GT(ssdeep::compare_digests(a, b), 40) << "miner runs should match";
}

TEST(Synthetic, DifferentApplicationsFingerprintDissimilar) {
  const auto miner = hash_trace(synthesize_trace(miner_trace_spec(0), 1));
  for (int variant = 0; variant < 3; ++variant) {
    const auto hpc = hash_trace(synthesize_trace(hpc_trace_spec(variant), 1));
    EXPECT_LT(ssdeep::compare_digests(miner, hpc), 40)
        << "miner vs hpc variant " << variant;
  }
  const auto hpc0 = hash_trace(synthesize_trace(hpc_trace_spec(0), 1));
  const auto hpc1 = hash_trace(synthesize_trace(hpc_trace_spec(1), 1));
  EXPECT_LT(ssdeep::compare_digests(hpc0, hpc1), 40) << "distinct hpc apps";
}

TEST(AttachTrace, FillsChannelThree) {
  core::FeatureHashes sample;
  EXPECT_EQ(sample.channel_count(), 3u);
  const CounterTrace trace = synthesize_trace(miner_trace_spec(0), 5);
  attach_trace(sample, trace);
  ASSERT_EQ(sample.channel_count(), 4u);
  EXPECT_EQ(sample.channel(3).to_string(), hash_trace(trace).to_string());
}

TEST(RuntimeChannelSet, ExtendsTheStaticTriple) {
  const core::ChannelSet channels = runtime_channel_set();
  ASSERT_EQ(channels.size(), 4u);
  EXPECT_FALSE(channels.is_static_triple());
  EXPECT_EQ(channels[3].name, kRuntimeChannelName);
  EXPECT_EQ(channels[3].kind, core::ChannelKind::kRuntime);
  EXPECT_EQ(channels.index_of(std::string(kRuntimeChannelName)), 3);
}

}  // namespace
}  // namespace fhc::runtime
