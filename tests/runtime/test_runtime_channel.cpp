// The runtime channel through the whole stack: a four-channel model must
// round-trip text -> v2 binary -> zero-copy attach with bit-identical
// rows and predictions, legacy three-channel models must keep loading
// into the synthesized static triple, and the batch service path must
// match serial predict bit for bit.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/feature_matrix.hpp"
#include "core/features.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/synthetic.hpp"
#include "service/service.hpp"
#include "support/synthetic_hashes.hpp"
#include "util/sectioned.hpp"

namespace fhc::runtime {
namespace {

using core::ChannelDesc;
using core::ChannelKind;
using core::ChannelMask;
using core::ChannelSet;
using core::FeatureHashes;
using core::FuzzyHashClassifier;
using core::Prediction;
using core::TrainIndex;

TEST(ChannelSet, DefaultIsTheStaticTriple) {
  const ChannelSet channels;
  ASSERT_EQ(channels.size(), 3u);
  EXPECT_TRUE(channels.is_static_triple());
  EXPECT_EQ(channels[0].name, "ssdeep-file");
  EXPECT_EQ(channels[1].name, "ssdeep-strings");
  EXPECT_EQ(channels[2].name, "ssdeep-symbols");
  for (const ChannelDesc& channel : channels) {
    EXPECT_EQ(channel.kind, ChannelKind::kStatic);
  }
}

TEST(ChannelSet, ValidatesItsRoster) {
  EXPECT_THROW(ChannelSet(std::vector<ChannelDesc>{}), std::invalid_argument);
  EXPECT_THROW(ChannelSet({{"", ChannelKind::kStatic}}), std::invalid_argument);
  EXPECT_THROW(ChannelSet({{"has space", ChannelKind::kStatic}}),
               std::invalid_argument);
  EXPECT_THROW(ChannelSet({{"dup", ChannelKind::kStatic},
                           {"dup", ChannelKind::kRuntime}}),
               std::invalid_argument);
  std::vector<ChannelDesc> too_many;
  for (std::size_t i = 0; i <= core::kMaxChannels; ++i) {
    too_many.push_back({"ch" + std::to_string(i), ChannelKind::kStatic});
  }
  EXPECT_THROW(ChannelSet(std::move(too_many)), std::invalid_argument);
}

TEST(ChannelSet, RoundTripsThroughText) {
  const ChannelSet channels = runtime_channel_set();
  const ChannelSet reparsed =
      core::channel_set_from_text(core::channel_set_to_text(channels));
  EXPECT_EQ(channels, reparsed);
  EXPECT_EQ(ChannelSet(), core::channel_set_from_text(
                              core::channel_set_to_text(ChannelSet())));
}

/// Four-channel corpus: the shared synthetic static triple plus a
/// per-class synthetic workload trace (run seed varies per sample).
struct RuntimeCorpus {
  std::vector<FeatureHashes> train;
  std::vector<int> labels;
  std::vector<FeatureHashes> queries;
};

RuntimeCorpus make_runtime_corpus() {
  testsupport::SyntheticHashesParams params;
  params.classes = 3;
  params.per_class = 8;
  params.queries = 9;
  testsupport::SyntheticHashes base = testsupport::make_synthetic_hashes(params);
  RuntimeCorpus out;
  out.train = std::move(base.train);
  out.labels = std::move(base.labels);
  out.queries = std::move(base.queries);
  for (std::size_t i = 0; i < out.train.size(); ++i) {
    const int cls = out.labels[i];
    attach_trace(out.train[i],
                 synthesize_trace(hpc_trace_spec(cls), 100 + i));
  }
  for (std::size_t q = 0; q < out.queries.size(); ++q) {
    const int cls = static_cast<int>(q) % params.classes;
    attach_trace(out.queries[q],
                 synthesize_trace(hpc_trace_spec(cls), 900 + q));
  }
  return out;
}

struct FittedModel {
  FuzzyHashClassifier clf;
  RuntimeCorpus corpus;
};

const FittedModel& model() {
  static const FittedModel fitted = [] {
    FittedModel out;
    out.corpus = make_runtime_corpus();
    core::ClassifierConfig config;
    config.forest.n_estimators = 20;
    config.confidence_threshold = 0.2;
    config.channel_set = runtime_channel_set();
    std::vector<std::string> names{"alpha", "beta", "gamma"};
    out.clf.fit(out.corpus.train, out.corpus.labels, names, config);
    return out;
  }();
  return fitted;
}

void expect_same_predictions(const FuzzyHashClassifier& a,
                             const FuzzyHashClassifier& b) {
  for (const FeatureHashes& query : model().corpus.queries) {
    const Prediction pa = a.predict(query);
    const Prediction pb = b.predict(query);
    EXPECT_EQ(pa.label, pb.label);
    ASSERT_EQ(pa.proba.size(), pb.proba.size());
    for (std::size_t c = 0; c < pa.proba.size(); ++c) {
      EXPECT_EQ(pa.proba[c], pb.proba[c]);  // bit-identical, not NEAR
    }
  }
}

TEST(RuntimeChannel, FitCarriesTheFourChannelSet) {
  const TrainIndex& index = model().clf.index();
  EXPECT_EQ(index.n_channels(), 4u);
  EXPECT_EQ(index.channels(), runtime_channel_set());
  EXPECT_EQ(model().clf.row_width(), 4u * 3u);
  EXPECT_EQ(model().clf.channel_importance().size(), 4u);
}

TEST(RuntimeChannel, RuntimeChannelCarriesSignal) {
  // With per-class workloads the runtime channel must matter: a non-zero
  // share of forest splits land on its columns.
  EXPECT_GT(model().clf.channel_importance()[3], 0.0);
}

TEST(RuntimeChannel, IndexedFillMatchesAllPairsOracle) {
  const TrainIndex& index = model().clf.index();
  const auto metric = model().clf.config().metric;
  std::vector<float> indexed(model().clf.row_width());
  std::vector<float> oracle(model().clf.row_width());
  for (const FeatureHashes& query : model().corpus.queries) {
    core::fill_feature_row(index, query, metric, -1, indexed);
    core::fill_feature_row_all_pairs(index, query, metric, -1, oracle);
    EXPECT_EQ(indexed, oracle);
  }
}

TEST(RuntimeChannel, TextRoundTripIsExactAndRestable) {
  std::stringstream buffer;
  model().clf.save(buffer);
  const std::string first = buffer.str();
  EXPECT_NE(first.find("channelset 4"), std::string::npos);
  EXPECT_NE(first.find("ssdeep-runtime 1"), std::string::npos);

  FuzzyHashClassifier restored;
  restored.load(buffer);
  EXPECT_EQ(restored.index().channels(), runtime_channel_set());
  expect_same_predictions(model().clf, restored);

  std::stringstream again;
  restored.save(again);
  EXPECT_EQ(again.str(), first);
}

TEST(RuntimeChannel, BinaryV2AttachIsBitIdentical) {
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string bytes = stream.str();

  std::vector<std::byte> aligned(bytes.size());
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  FuzzyHashClassifier attached;
  attached.load_binary(std::span<const std::byte>(aligned), nullptr);

  EXPECT_EQ(attached.index().channels(), runtime_channel_set());
  expect_same_predictions(model().clf, attached);

  // attach == rebuild: the attached model re-serializes byte-identically.
  std::ostringstream second(std::ios::binary);
  attached.save_binary(second);
  EXPECT_EQ(second.str(), bytes);

  // Rows, not just predictions: same feature row from both indexes.
  std::vector<float> a(model().clf.row_width());
  std::vector<float> b(model().clf.row_width());
  const auto metric = model().clf.config().metric;
  for (const FeatureHashes& query : model().corpus.queries) {
    core::fill_feature_row(model().clf.index(), query, metric, -1, a);
    core::fill_feature_row(attached.index(), query, metric, -1, b);
    EXPECT_EQ(a, b);
  }
}

TEST(RuntimeChannel, V2ContainerCarriesTheChannelRoster) {
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string bytes = stream.str();
  std::vector<std::byte> aligned(bytes.size());
  std::memcpy(aligned.data(), bytes.data(), bytes.size());

  const auto view = util::SectionedView::attach(
      std::span<const std::byte>(aligned), core::kBinaryModelMagicV2);
  const auto roster = view.section(core::model_section::kChannels);
  const ChannelSet parsed = core::channel_set_from_text(std::string_view(
      reinterpret_cast<const char*>(roster.data()), roster.size()));
  EXPECT_EQ(parsed, runtime_channel_set());
  const auto meta = TrainIndex::parse_meta(view.section(core::model_section::kMeta));
  EXPECT_EQ(meta.version, 2u);
  EXPECT_EQ(meta.entry_counts.size(), 4u);
}

TEST(RuntimeChannel, QueriesWithoutATraceScoreZeroOnTheRuntimeChannel) {
  // A trace-less query (plain static triple) against the four-channel
  // model: runtime columns must be exactly 0, like a stripped binary on
  // the symbols channel, in both fill paths.
  const TrainIndex& index = model().clf.index();
  const auto metric = model().clf.config().metric;
  FeatureHashes bare = model().corpus.queries[0];
  bare.extra.clear();
  std::vector<float> indexed(model().clf.row_width());
  std::vector<float> oracle(model().clf.row_width());
  core::fill_feature_row(index, bare, metric, -1, indexed);
  core::fill_feature_row_all_pairs(index, bare, metric, -1, oracle);
  EXPECT_EQ(indexed, oracle);
  for (int c = 0; c < index.n_classes(); ++c) {
    EXPECT_EQ(indexed[3u * static_cast<std::size_t>(index.n_classes()) +
                      static_cast<std::size_t>(c)],
              0.0f);
  }
}

TEST(RuntimeChannel, MaskAblationPinsChannels) {
  // Static-only ablation of the four-channel model: runtime columns are
  // masked to zero while static columns are untouched.
  const TrainIndex& index = model().clf.index();
  const auto metric = model().clf.config().metric;
  const ChannelMask static_only{true, true, true};
  const std::size_t k = static_cast<std::size_t>(index.n_classes());
  std::vector<float> all(model().clf.row_width());
  std::vector<float> masked(model().clf.row_width());
  core::fill_feature_row(index, model().corpus.queries[0], metric, -1, all);
  core::fill_feature_row(index, model().corpus.queries[0], metric, -1, masked,
                         static_only);
  for (std::size_t f = 0; f < 4; ++f) {
    for (std::size_t c = 0; c < k; ++c) {
      EXPECT_EQ(masked[f * k + c], f < 3 ? all[f * k + c] : 0.0f);
    }
  }
}

TEST(RuntimeChannel, ServiceBatchMatchesSerialPredict) {
  service::ServiceConfig config;
  config.max_batch = 4;
  // The classifier is move-only; serve a binary-round-tripped clone (the
  // attach path a daemon would take), which the attach test proved
  // bit-identical to the original.
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string bytes = stream.str();
  std::vector<std::byte> aligned(bytes.size());
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  FuzzyHashClassifier copy;
  copy.load_binary(std::span<const std::byte>(aligned), nullptr);
  service::ClassificationService svc(std::move(copy), config);
  const std::vector<Prediction> batched =
      svc.classify_batch(model().corpus.queries);
  ASSERT_EQ(batched.size(), model().corpus.queries.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    const Prediction serial = model().clf.predict(model().corpus.queries[i]);
    EXPECT_EQ(batched[i].label, serial.label);
    ASSERT_EQ(batched[i].proba.size(), serial.proba.size());
    for (std::size_t c = 0; c < serial.proba.size(); ++c) {
      EXPECT_EQ(batched[i].proba[c], serial.proba[c]);
    }
  }
}

TEST(LegacyModels, StaticTripleTextHasNoChannelsetBlockAndReloads) {
  testsupport::SyntheticHashesParams params;
  params.classes = 2;
  params.per_class = 6;
  params.queries = 4;
  const testsupport::SyntheticHashes data =
      testsupport::make_synthetic_hashes(params);
  core::ClassifierConfig config;
  config.forest.n_estimators = 10;
  FuzzyHashClassifier clf;
  clf.fit(data.train, data.labels, {"a", "b"}, config);

  std::stringstream text;
  clf.save(text);
  // The legacy preamble shape: no channelset block, the mask line still
  // carries exactly three flags.
  EXPECT_EQ(text.str().find("channelset"), std::string::npos);
  EXPECT_NE(text.str().find("channels 1 1 1\n"), std::string::npos);

  FuzzyHashClassifier restored;
  restored.load(text);
  EXPECT_TRUE(restored.index().channels().is_static_triple());

  std::ostringstream binary(std::ios::binary);
  clf.save_binary(binary);
  const std::string bytes = binary.str();
  std::vector<std::byte> aligned(bytes.size());
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  // Static triple serializes the legacy version-1 counts header and no
  // roster section at all.
  const auto view = util::SectionedView::attach(
      std::span<const std::byte>(aligned), core::kBinaryModelMagicV2);
  std::span<const std::byte> roster;
  EXPECT_FALSE(view.find(core::model_section::kChannels, roster));
  const auto meta = TrainIndex::parse_meta(view.section(core::model_section::kMeta));
  EXPECT_EQ(meta.version, 1u);

  FuzzyHashClassifier attached;
  attached.load_binary(std::span<const std::byte>(aligned), nullptr);
  EXPECT_TRUE(attached.index().channels().is_static_triple());
  for (const FeatureHashes& query : data.queries) {
    EXPECT_EQ(attached.predict(query).label, clf.predict(query).label);
  }
}

TEST(LegacyModels, V1BlobLoadsIntoTheStaticTriple) {
  testsupport::SyntheticHashesParams params;
  params.classes = 2;
  params.per_class = 6;
  params.queries = 2;
  const testsupport::SyntheticHashes data =
      testsupport::make_synthetic_hashes(params);
  core::ClassifierConfig config;
  config.forest.n_estimators = 10;
  FuzzyHashClassifier clf;
  clf.fit(data.train, data.labels, {"a", "b"}, config);

  std::ostringstream v1(std::ios::binary);
  clf.save_binary_v1(v1);
  const std::string bytes = v1.str();
  std::vector<std::byte> aligned(bytes.size());
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  FuzzyHashClassifier restored;
  restored.load_binary(std::span<const std::byte>(aligned), nullptr);
  EXPECT_TRUE(restored.index().channels().is_static_triple());
  for (const FeatureHashes& query : data.queries) {
    EXPECT_EQ(restored.predict(query).label, clf.predict(query).label);
  }
}

TEST(ParseMeta, RejectsMalformedHeaders) {
  EXPECT_THROW(TrainIndex::parse_meta({}), std::runtime_error);
  std::vector<std::byte> garbage(48);
  std::uint32_t version = 7;
  std::memcpy(garbage.data(), &version, sizeof version);
  EXPECT_THROW(TrainIndex::parse_meta(garbage), std::runtime_error);
  // Version 2 with a channel count the payload size contradicts.
  std::vector<std::byte> v2(24 + 8 * 4);
  version = 2;
  std::memcpy(v2.data(), &version, sizeof version);
  std::uint32_t n_channels = 5;
  std::memcpy(v2.data() + 16, &n_channels, sizeof n_channels);
  EXPECT_THROW(TrainIndex::parse_meta(v2), std::runtime_error);
}

}  // namespace
}  // namespace fhc::runtime
