// PreparedDigest: one-time normalization, and the property that matters —
// compare_prepared is score-identical to compare_digests on every pair,
// for both edit metrics.
#include "ssdeep/prepared.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ssdeep/fuzzy_hash.hpp"
#include "util/rng.hpp"

namespace fhc::ssdeep {
namespace {

void expect_equivalent(const FuzzyDigest& a, const FuzzyDigest& b) {
  const PreparedDigest pa(a);
  const PreparedDigest pb(b);
  for (const auto metric :
       {EditMetric::kDamerauOsa, EditMetric::kWeightedLevenshtein}) {
    EXPECT_EQ(compare_prepared(pa, pb, metric), compare_digests(a, b, metric))
        << a.to_string() << " vs " << b.to_string();
    EXPECT_EQ(compare_prepared(pb, pa, metric), compare_digests(b, a, metric))
        << b.to_string() << " vs " << a.to_string();
  }
}

std::string random_text(fhc::util::Rng& rng, std::size_t n) {
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.next_below(256)));
  }
  return out;
}

TEST(PreparedDigest, HoldsNormalizedParts) {
  const auto raw = parse_digest("48:aaaaaaabcdefghij:zzzzzkkkkk");
  ASSERT_TRUE(raw.has_value());
  const PreparedDigest prepared(*raw);
  EXPECT_EQ(prepared.blocksize(), 48u);
  EXPECT_EQ(prepared.part1().text, eliminate_long_runs(raw->part1));
  EXPECT_EQ(prepared.part2().text, eliminate_long_runs(raw->part2));
  EXPECT_TRUE(std::is_sorted(prepared.part1().grams.begin(),
                             prepared.part1().grams.end()));
  // "zzzzzkkkkk" normalizes to "zzzkkk" (6 chars) — below the 7-gram window.
  EXPECT_TRUE(prepared.part2().grams.empty());
}

TEST(PackedGrams, GateMatchesHasCommonSubstring) {
  static constexpr char kAlpha[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  fhc::util::Rng rng(21);
  for (int round = 0; round < 200; ++round) {
    std::string a;
    std::string b;
    for (std::size_t i = 0, n = rng.next_below(20); i < n; ++i) {
      a.push_back(kAlpha[rng.next_below(64)]);
    }
    for (std::size_t i = 0, n = rng.next_below(20); i < n; ++i) {
      b.push_back(kAlpha[rng.next_below(16)]);  // narrow alphabet: collisions
    }
    if (rng.next_below(2) == 0 && a.size() >= 8 && b.size() >= 8) {
      b.replace(0, 8, a.substr(0, 8));  // force a shared window sometimes
    }
    EXPECT_EQ(sorted_grams_intersect(packed_sorted_grams(a), packed_sorted_grams(b)),
              has_common_substring(a, b))
        << a << " vs " << b;
  }
}

TEST(ComparePrepared, EquivalentOnRealCorpus) {
  // Random and related inputs across sizes, so blocksizes span equal,
  // adjacent and incompatible pairings and both gate outcomes occur.
  fhc::util::Rng rng(22);
  std::vector<FuzzyDigest> digests;
  for (const std::size_t size : {120u, 700u, 3000u, 12000u, 50000u}) {
    const std::string base = random_text(rng, size);
    digests.push_back(fuzzy_hash(base));

    std::string mutated = base;  // contiguous 10% block rewritten
    for (std::size_t i = size / 4; i < size / 4 + size / 10; ++i) {
      mutated[i] = static_cast<char>(rng.next_below(256));
    }
    digests.push_back(fuzzy_hash(mutated));

    // ~2x growth lands on the adjacent blocksize for most seeds.
    digests.push_back(fuzzy_hash(base + random_text(rng, size)));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i; j < digests.size(); ++j) {
      expect_equivalent(digests[i], digests[j]);
    }
  }
}

TEST(ComparePrepared, EquivalentOnEdgeDigests) {
  const std::string max1(kSpamsumLength, 'a');
  const std::string alt = [] {
    std::string s;
    for (std::size_t i = 0; i < kSpamsumLength; ++i) {
      s.push_back(static_cast<char>('A' + (i * 7) % 26));
    }
    return s;
  }();
  std::vector<FuzzyDigest> digests;
  for (const char* text : {
           "3::",                                       // both parts empty
           "3:abc:",                                    // sub-window part
           "3::UVWXYZabcdefg",                          // part1 empty only
           "48:aaaaaaaaaaaaaaaabbbbbbbbcdefghij:zzzzzzzzyyyyyyyyxxxxxxxx",
           "48:ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnop:ABCDEFGHIJKLMNOP",
           "96:ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnop:qrstuv",  // adjacent bs
           "96:qqqqqqqqqqqqqqqqqqqqqqqqqqqqqqwww:ABCDEFGHIJKLMNOP",
           "192:ABCDEFGHIJKLMNOP:ponmlkjihgfedcba",     // two steps up
       }) {
    const auto digest = parse_digest(text);
    ASSERT_TRUE(digest.has_value()) << text;
    digests.push_back(*digest);
  }
  // Max-length parts and the top blocksize (hand-built: parse_digest
  // cannot produce part1 == part2 views this large at 3 << 30 cheaply).
  digests.push_back(FuzzyDigest{3, max1, std::string(kSpamsumLength / 2, 'a')});
  digests.push_back(FuzzyDigest{3, alt, alt.substr(0, kSpamsumLength / 2)});
  digests.push_back(FuzzyDigest{3u << 30, alt, alt.substr(0, 32)});
  digests.push_back(FuzzyDigest{3u << 29, alt.substr(16), alt});
  // Overlong run-free part1 (hand-built only): must score 0 everywhere —
  // including against an identical digest, where the == 100 fast path is
  // excluded so that "shares a 7-gram" stays necessary for score > 0
  // (the GramIndex invariant; overlong parts pack no grams).
  digests.push_back(FuzzyDigest{6, alt + "0", alt.substr(0, 16)});

  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i; j < digests.size(); ++j) {
      expect_equivalent(digests[i], digests[j]);
    }
  }
  // Self-compare of the overlong digest: part1 is excluded from the
  // == 100 fast path (and scores 0 as overlong); with no part2 the whole
  // compare is 0 — identically in the raw and prepared paths.
  const FuzzyDigest overlong{6, alt + "0", ""};
  EXPECT_EQ(compare_digests(overlong, overlong), 0);
  EXPECT_EQ(compare_prepared(PreparedDigest(overlong), PreparedDigest(overlong)), 0);
}

TEST(ComparePrepared, KnownScores) {
  const auto digest = parse_digest("96:abcdefghijklmnop:qrstuvwx");
  ASSERT_TRUE(digest.has_value());
  const PreparedDigest prepared(*digest);
  EXPECT_EQ(compare_prepared(prepared, prepared), 100);

  const auto far = parse_digest("3:abcdefghijklmnop:abcdefghijklmnop");
  ASSERT_TRUE(far.has_value());
  EXPECT_EQ(compare_prepared(prepared, PreparedDigest(*far)), 0);  // 32x apart
}

}  // namespace
}  // namespace fhc::ssdeep
