// Property sweeps over the whole hash-compare stack (TEST_P across seeds):
// invariants that must hold for arbitrary inputs.
#include <gtest/gtest.h>

#include <string>

#include "ssdeep/compare.hpp"
#include "ssdeep/fuzzy_hash.hpp"
#include "util/rng.hpp"

namespace fhc::ssdeep {
namespace {

std::string random_blob(fhc::util::Rng& rng, std::size_t max_len) {
  const auto len = static_cast<std::size_t>(rng.next_below(max_len)) + 1;
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng() & 0xff));
  }
  return out;
}

class SpamsumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpamsumProperty, DigestAlwaysParsesBack) {
  fhc::util::Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const std::string blob = random_blob(rng, 200000);
    const FuzzyDigest digest = fuzzy_hash(blob);
    const auto reparsed = parse_digest(digest.to_string());
    ASSERT_TRUE(reparsed.has_value()) << digest.to_string();
    EXPECT_EQ(*reparsed, digest);
  }
}

TEST_P(SpamsumProperty, BlocksizeIsConsistentWithLength) {
  fhc::util::Rng rng(GetParam() ^ 0xb10c);
  for (int round = 0; round < 15; ++round) {
    const std::string blob = random_blob(rng, 500000);
    const FuzzyDigest digest = fuzzy_hash(blob);
    EXPECT_TRUE(valid_blocksize(digest.blocksize));
    // The engine only selects blocksizes whose expected digest length is
    // in range: bs*64 must reach the input size within one halving step
    // of the ideal guess (the walk-down rule can go lower when digests
    // are short, but never by more than the fidelity bound below).
    if (blob.size() > 4096) {
      const double ideal = static_cast<double>(blob.size()) / kSpamsumLength;
      EXPECT_LE(static_cast<double>(digest.blocksize), ideal * 8)
          << "blocksize too large for input of " << blob.size();
    }
  }
}

TEST_P(SpamsumProperty, SelfSimilarityIsMaximal) {
  fhc::util::Rng rng(GetParam() ^ 0x5e1f);
  for (int round = 0; round < 10; ++round) {
    const std::string blob = random_blob(rng, 100000);
    const FuzzyDigest digest = fuzzy_hash(blob);
    if (digest.part1.size() > kRollingWindow) {
      EXPECT_EQ(compare_digests(digest, digest), 100);
      EXPECT_EQ(compare_digests(digest, digest, EditMetric::kWeightedLevenshtein),
                100);
    }
  }
}

TEST_P(SpamsumProperty, ScoresBoundedAndSymmetric) {
  fhc::util::Rng rng(GetParam() ^ 0xb0d9);
  for (int round = 0; round < 10; ++round) {
    std::string a = random_blob(rng, 60000);
    std::string b = a;
    // Relate them partially so both gate outcomes occur across rounds.
    const auto cut = b.size() / 2;
    for (std::size_t i = 0; i < cut; ++i) b[i] = static_cast<char>(rng() & 0xff);
    const FuzzyDigest da = fuzzy_hash(a);
    const FuzzyDigest db = fuzzy_hash(b);
    for (const auto metric :
         {EditMetric::kDamerauOsa, EditMetric::kWeightedLevenshtein}) {
      const int ab = compare_digests(da, db, metric);
      const int ba = compare_digests(db, da, metric);
      EXPECT_EQ(ab, ba);
      EXPECT_GE(ab, 0);
      EXPECT_LE(ab, 100);
    }
  }
}

TEST_P(SpamsumProperty, AppendOnlyGrowthDegradesGracefully) {
  // Appending data (log-style growth) must not zero the similarity until
  // the appended part dominates.
  fhc::util::Rng rng(GetParam() ^ 0xa99e);
  const std::string base = random_blob(rng, 50000) + std::string(30000, '\0');
  const std::string grown = base + random_blob(rng, 5000);
  const int score = compare_digests(fuzzy_hash(base), fuzzy_hash(grown));
  EXPECT_GE(score, 40);
}

TEST_P(SpamsumProperty, DisjointInputsRarelyExceedNoiseFloor) {
  fhc::util::Rng rng(GetParam() ^ 0xd15c);
  int high_scores = 0;
  for (int round = 0; round < 20; ++round) {
    const FuzzyDigest a = fuzzy_hash(random_blob(rng, 40000));
    const FuzzyDigest b = fuzzy_hash(random_blob(rng, 40000));
    if (compare_digests(a, b) > 40) ++high_scores;
  }
  EXPECT_LE(high_scores, 1) << "unrelated inputs scoring high is a bug";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpamsumProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace fhc::ssdeep
