// The CTPH context trigger: spamsum's rolling hash.
#include "ssdeep/rolling_hash.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fhc::ssdeep {
namespace {

std::uint32_t hash_of(const std::string& data) {
  RollingHash roll;
  std::uint32_t h = 0;
  for (const char c : data) h = roll.update(static_cast<std::uint8_t>(c));
  return h;
}

TEST(RollingHash, FreshHashIsZero) {
  RollingHash roll;
  EXPECT_EQ(roll.sum(), 0u);
}

TEST(RollingHash, DeterministicForSameInput) {
  EXPECT_EQ(hash_of("abcdefg"), hash_of("abcdefg"));
  EXPECT_NE(hash_of("abcdefg"), hash_of("abcdefh"));
}

TEST(RollingHash, DependsOnlyOnTrailingWindow) {
  // After absorbing >= 7 bytes, two streams that share the last 7 bytes
  // must agree: h1/h2 see only the window and h3's shift-xor has pushed
  // all older bits out of the 32-bit accumulator (7 * 5 = 35 > 32).
  const std::string tail = "0123456";
  EXPECT_EQ(hash_of("aaaaaaaaaa" + tail), hash_of("zzzz" + tail));
  EXPECT_EQ(hash_of("completely different prefix " + tail), hash_of(tail));
}

TEST(RollingHash, UpdateReturnsSum) {
  RollingHash roll;
  const auto returned = roll.update('x');
  EXPECT_EQ(returned, roll.sum());
}

TEST(RollingHash, ResetClearsState) {
  RollingHash roll;
  for (const char c : std::string("some data")) roll.update(static_cast<std::uint8_t>(c));
  roll.reset();
  EXPECT_EQ(roll.sum(), 0u);
  // After reset the stream behaves like a fresh hash.
  RollingHash fresh;
  for (const char c : std::string("xyzxyzx")) {
    EXPECT_EQ(roll.update(static_cast<std::uint8_t>(c)),
              fresh.update(static_cast<std::uint8_t>(c)));
  }
}

TEST(RollingHash, WindowSlideChangesValue) {
  RollingHash roll;
  std::vector<std::uint32_t> values;
  for (const char c : std::string("abcdefghij")) {
    values.push_back(roll.update(static_cast<std::uint8_t>(c)));
  }
  // Distinct sliding windows of distinct content should (generically) give
  // distinct hashes.
  EXPECT_NE(values[7], values[8]);
  EXPECT_NE(values[8], values[9]);
}

}  // namespace
}  // namespace fhc::ssdeep
