// Digest parsing and the comparison pipeline's building blocks.
#include "ssdeep/compare.hpp"

#include <gtest/gtest.h>

#include "ssdeep/fuzzy_hash.hpp"
#include "util/rng.hpp"

namespace fhc::ssdeep {
namespace {

TEST(ParseDigest, AcceptsCanonicalForm) {
  const auto digest = parse_digest("48:abcdefg:hijk");
  ASSERT_TRUE(digest.has_value());
  EXPECT_EQ(digest->blocksize, 48u);
  EXPECT_EQ(digest->part1, "abcdefg");
  EXPECT_EQ(digest->part2, "hijk");
}

TEST(ParseDigest, AcceptsEmptyParts) {
  ASSERT_TRUE(parse_digest("3::").has_value());
  ASSERT_TRUE(parse_digest("3:abc:").has_value());
}

TEST(ParseDigest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_digest("").has_value());
  EXPECT_FALSE(parse_digest("48").has_value());
  EXPECT_FALSE(parse_digest("48:onlyonecolon").has_value());
  EXPECT_FALSE(parse_digest("notanumber:a:b").has_value());
  EXPECT_FALSE(parse_digest(":a:b").has_value());
  EXPECT_FALSE(parse_digest("-3:a:b").has_value());
}

TEST(ParseDigest, RejectsInvalidBlocksize) {
  EXPECT_FALSE(parse_digest("5:abc:def").has_value());   // not 3*2^i
  EXPECT_FALSE(parse_digest("0:abc:def").has_value());
  EXPECT_FALSE(parse_digest("7:abc:def").has_value());
  EXPECT_TRUE(parse_digest("6:abc:def").has_value());
  EXPECT_TRUE(parse_digest("12:abc:def").has_value());
  EXPECT_TRUE(parse_digest("1536:abc:def").has_value());
}

TEST(ParseDigest, RejectsOverlongParts) {
  const std::string long1(kSpamsumLength + 1, 'a');
  const std::string long2(kSpamsumLength / 2 + 1, 'a');
  EXPECT_FALSE(parse_digest("3:" + long1 + ":ab").has_value());
  EXPECT_FALSE(parse_digest("3:ab:" + long2).has_value());
}

TEST(ParseDigest, RejectsNonBase64Characters) {
  EXPECT_FALSE(parse_digest("3:ab!c:d").has_value());
  EXPECT_FALSE(parse_digest("3:ab c:d").has_value());
}

TEST(ValidBlocksize, PowersOfTwoTimesThree) {
  EXPECT_TRUE(valid_blocksize(3));
  EXPECT_TRUE(valid_blocksize(6));
  EXPECT_TRUE(valid_blocksize(96));
  EXPECT_FALSE(valid_blocksize(4));
  EXPECT_FALSE(valid_blocksize(0));
  EXPECT_FALSE(valid_blocksize(9));
}

TEST(EliminateLongRuns, CollapsesToThree) {
  EXPECT_EQ(eliminate_long_runs("aaaaaa"), "aaa");
  EXPECT_EQ(eliminate_long_runs("aaabbbb"), "aaabbb");
  EXPECT_EQ(eliminate_long_runs("abc"), "abc");
  EXPECT_EQ(eliminate_long_runs(""), "");
  EXPECT_EQ(eliminate_long_runs("aabbaabb"), "aabbaabb");
  EXPECT_EQ(eliminate_long_runs("xaaaaay"), "xaaay");
}

TEST(HasCommonSubstring, RequiresSevenSharedChars) {
  EXPECT_TRUE(has_common_substring("abcdefghij", "zzabcdefgzz"));
  EXPECT_FALSE(has_common_substring("abcdefghij", "abcdef"));  // too short
  EXPECT_FALSE(has_common_substring("abcdefg", "gfedcba"));
  EXPECT_TRUE(has_common_substring("abcdefg", "abcdefg"));
}

TEST(HasCommonSubstring, PackingIsInjectiveOnAlphabet) {
  // 'p' and '0' collide under the naive (c & 0x3f) packing; the proper
  // 6-bit index must keep them distinct.
  EXPECT_FALSE(has_common_substring("ppppppp", "0000000"));
  EXPECT_FALSE(has_common_substring("AAAAAAA", "aaaaaaa"));
}

TEST(HasCommonSubstring, OverlongInputsAreRejectedNotOverflowed) {
  // The packed-gram scratch array holds kSpamsumLength entries; longer
  // inputs must be rejected up front, matching score_strings' contract.
  const std::string overlong(kSpamsumLength + 8, 'x');
  EXPECT_FALSE(has_common_substring(overlong, overlong));
  EXPECT_FALSE(has_common_substring(overlong, "abcdefgh"));
  EXPECT_FALSE(has_common_substring("abcdefgh", overlong));
}

TEST(ScoreStrings, ZeroWithoutCommonSubstring) {
  EXPECT_EQ(score_strings("abcdefghijkl", "mnopqrstuvwx", 96,
                          EditMetric::kDamerauOsa),
            0);
}

TEST(ScoreStrings, ZeroForEmptyOrOverlong) {
  EXPECT_EQ(score_strings("", "abcdefg", 96, EditMetric::kDamerauOsa), 0);
  const std::string overlong(kSpamsumLength + 1, 'a');
  EXPECT_EQ(score_strings(overlong, overlong, 96, EditMetric::kDamerauOsa), 0);
}

TEST(ScoreStrings, SmallBlocksizeCapsScore) {
  // Identical short strings at tiny blocksizes must be capped:
  // cap = bs / 3 * min(len) = 3 / 3 * 8 = 8 at bs = 3.
  const std::string s = "abcdefgh";
  const int capped = score_strings(s, s, 3, EditMetric::kDamerauOsa);
  EXPECT_LE(capped, 8);
  const int uncapped = score_strings(s, s, 192, EditMetric::kDamerauOsa);
  EXPECT_GT(uncapped, capped);
}

TEST(BlocksizesCanPair, DoublingComputedIn64Bits) {
  EXPECT_TRUE(blocksizes_can_pair(48, 48));
  EXPECT_TRUE(blocksizes_can_pair(48, 96));
  EXPECT_TRUE(blocksizes_can_pair(96, 48));
  EXPECT_FALSE(blocksizes_can_pair(48, 192));
  const std::uint32_t top = 3u << 30;
  EXPECT_TRUE(blocksizes_can_pair(top, top));
  EXPECT_TRUE(blocksizes_can_pair(top, 3u << 29));
  EXPECT_TRUE(blocksizes_can_pair(3u << 29, top));
  // 0x80000000 == top * 2 mod 2^32 — 32-bit doubling used to pair these.
  EXPECT_FALSE(blocksizes_can_pair(0x80000000u, top));
  EXPECT_FALSE(blocksizes_can_pair(top, 0x80000000u));
}

TEST(CompareDigests, TopBlocksizePairingDoesNotWrap) {
  FuzzyDigest top;
  top.blocksize = 3u << 30;  // largest valid blocksize
  top.part1 = "abcdefghijklmnop";
  top.part2 = "qrstuvwxyz012345";

  // blocksize * 2 wraps to exactly this crafted value in 32 bits; with the
  // old arithmetic it paired as top's neighbour and scored via part2.
  FuzzyDigest crafted;
  crafted.blocksize = 0x80000000u;
  crafted.part1 = top.part2;
  crafted.part2 = "AAAABBBBCCCCDDDD";
  EXPECT_EQ(compare_digests(crafted, top), 0);
  EXPECT_EQ(compare_digests(top, crafted), 0);

  // Legitimate comparisons at the top blocksize keep working: identical
  // digests (part2's blocksize saturates instead of wrapping) and the
  // true adjacent blocksize below.
  EXPECT_EQ(compare_digests(top, top), 100);
  FuzzyDigest half;
  half.blocksize = 3u << 29;
  half.part1 = "000000111111";
  half.part2 = top.part1;  // lives at 2 * (3 << 29) == top's blocksize
  EXPECT_GT(compare_digests(half, top), 0);
  EXPECT_EQ(compare_digests(half, top), compare_digests(top, half));
}

TEST(CompareDigests, IdenticalDigestsScoreHundred) {
  const auto digest = parse_digest("96:abcdefghijklmnop:qrstuvwx");
  ASSERT_TRUE(digest.has_value());
  EXPECT_EQ(compare_digests(*digest, *digest), 100);
}

TEST(CompareDigests, IncompatibleBlocksizesScoreZero) {
  const auto a = parse_digest("3:abcdefghijklmnop:abcdefghijklmnop");
  const auto b = parse_digest("48:abcdefghijklmnop:abcdefghijklmnop");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(compare_digests(*a, *b), 0);  // 16x apart
}

TEST(CompareDigests, NeighbouringBlocksizesUseCrossParts) {
  // a at bs, b at 2*bs: a.part2 (2*bs) must be compared with b.part1.
  const auto a = parse_digest("48:AAAAbbbbCCCCdddd:sharedpiecehere1");
  const auto b = parse_digest("96:sharedpiecehere1:zzzzzzzz");
  ASSERT_TRUE(a && b);
  EXPECT_GT(compare_digests(*a, *b), 0);
  EXPECT_EQ(compare_digests(*a, *b), compare_digests(*b, *a)) << "symmetry";
}

TEST(CompareDigests, SymmetryOnRealDigests) {
  fhc::util::Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    std::string x;
    std::string y;
    for (int i = 0; i < 8000; ++i) {
      x.push_back(static_cast<char>('a' + rng.next_below(26)));
      y.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    // Make them partially related.
    y.replace(0, 3000, x.substr(0, 3000));
    const auto da = fuzzy_hash(x);
    const auto db = fuzzy_hash(y);
    EXPECT_EQ(compare_digests(da, db), compare_digests(db, da));
    EXPECT_EQ(compare_digests(da, db, EditMetric::kWeightedLevenshtein),
              compare_digests(db, da, EditMetric::kWeightedLevenshtein));
  }
}

TEST(CompareDigests, ScoresStayInRange) {
  fhc::util::Rng rng(6);
  for (int round = 0; round < 20; ++round) {
    std::string x;
    std::string y;
    const auto n = 1000 + rng.next_below(20000);
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<char>(rng.next_below(256)));
      y.push_back(static_cast<char>(rng.next_below(256)));
    }
    for (const auto metric :
         {EditMetric::kDamerauOsa, EditMetric::kWeightedLevenshtein}) {
      const int score = compare_digests(fuzzy_hash(x), fuzzy_hash(y), metric);
      EXPECT_GE(score, 0);
      EXPECT_LE(score, 100);
    }
  }
}

TEST(CompareDigestStrings, ParsesThenCompares) {
  EXPECT_EQ(compare_digest_strings("3:abc:def", "not a digest"), -1);
  EXPECT_EQ(compare_digest_strings("bad", "3:abc:def"), -1);
  EXPECT_EQ(compare_digest_strings("96:abcdefghijklmnop:qrst",
                                   "96:abcdefghijklmnop:qrst"),
            100);
}

TEST(CompareDigests, BothMetricsDetectBlockLevelSimilarity) {
  // Replace one contiguous 15% block (the realistic binary-diff pattern);
  // both metrics must detect the remaining similarity.
  std::string text;
  fhc::util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) text.push_back(static_cast<char>(rng.next_below(256)));
  std::string variant = text;
  for (std::size_t i = 5000; i < 8000; ++i) {
    variant[i] = static_cast<char>(rng.next_below(256));
  }
  const auto a = fuzzy_hash(text);
  const auto b = fuzzy_hash(variant);
  EXPECT_GT(compare_digests(a, b, EditMetric::kDamerauOsa), 30);
  EXPECT_GT(compare_digests(a, b, EditMetric::kWeightedLevenshtein), 30);
}

}  // namespace
}  // namespace fhc::ssdeep
