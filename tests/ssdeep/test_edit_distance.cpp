// Edit-distance variants: known values, metric relationships, properties.
#include "ssdeep/edit_distance.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace fhc::ssdeep {
namespace {

TEST(Levenshtein, KnownValues) {
  EXPECT_EQ(levenshtein("", ""), 0u);
  EXPECT_EQ(levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(levenshtein("abc", ""), 3u);
  EXPECT_EQ(levenshtein("", "abc"), 3u);
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(levenshtein("abc", "abd"), 1u);
}

TEST(WeightedLevenshtein, SubstitutionCostsTwoByDefault) {
  // ssdeep's edit_distn: replace = delete + insert.
  EXPECT_EQ(weighted_levenshtein("abc", "abd"), 2u);
  EXPECT_EQ(weighted_levenshtein("abc", "abcd"), 1u);
  EXPECT_EQ(weighted_levenshtein("abcd", "abc"), 1u);
  EXPECT_EQ(weighted_levenshtein("abc", "xyz"), 6u);
}

TEST(WeightedLevenshtein, CustomCosts) {
  EXPECT_EQ(weighted_levenshtein("abc", "abd", 1, 1, 1), 1u);  // = Levenshtein
  EXPECT_EQ(weighted_levenshtein("a", "", 1, 5, 2), 5u);       // deletion cost
  EXPECT_EQ(weighted_levenshtein("", "a", 5, 1, 2), 5u);       // insertion cost
}

TEST(WeightedLevenshtein, WorstCaseIsCombinedLength) {
  // With substitution = 2, completely unrelated equal-length strings cost
  // len(a) + len(b) (the denominator of the ssdeep score scaling).
  EXPECT_EQ(weighted_levenshtein("aaaa", "bbbb"), 8u);
}

TEST(DamerauOsa, TranspositionCostsOne) {
  EXPECT_EQ(damerau_levenshtein_osa("ab", "ba"), 1u);
  EXPECT_EQ(levenshtein("ab", "ba"), 2u);  // plain LV pays 2
  EXPECT_EQ(damerau_levenshtein_osa("abcdef", "abdcef"), 1u);
}

TEST(DamerauOsa, PaperEquationCases) {
  // The four edit operations of the paper's Equation (1).
  EXPECT_EQ(damerau_levenshtein_osa("abc", "ab"), 1u);    // deletion
  EXPECT_EQ(damerau_levenshtein_osa("ab", "abc"), 1u);    // insertion
  EXPECT_EQ(damerau_levenshtein_osa("abc", "adc"), 1u);   // substitution
  EXPECT_EQ(damerau_levenshtein_osa("abcd", "acbd"), 1u); // transposition
  EXPECT_EQ(damerau_levenshtein_osa("", ""), 0u);
}

TEST(DamerauOsa, RestrictedVsUnrestricted) {
  // The classic distinguishing case: OSA cannot edit a transposed pair
  // again, the unrestricted (Lowrance-Wagner) distance can.
  EXPECT_EQ(damerau_levenshtein_osa("CA", "ABC"), 3u);
  EXPECT_EQ(damerau_levenshtein_full("CA", "ABC"), 2u);
}

TEST(DamerauFull, MatchesOsaOnSimpleCases) {
  EXPECT_EQ(damerau_levenshtein_full("kitten", "sitting"), 3u);
  EXPECT_EQ(damerau_levenshtein_full("ab", "ba"), 1u);
  EXPECT_EQ(damerau_levenshtein_full("", "xyz"), 3u);
  EXPECT_EQ(damerau_levenshtein_full("same", "same"), 0u);
}

// --- property sweeps over random base64-ish strings ----------------------

std::string random_digest_string(fhc::util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlpha[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  const auto len = static_cast<std::size_t>(rng.next_below(max_len + 1));
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlpha[rng.next_below(64)]);
  }
  return out;
}

class EditDistanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EditDistanceProperty, MetricRelationsHold) {
  fhc::util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const std::string a = random_digest_string(rng, 64);
    const std::string b = random_digest_string(rng, 64);
    const auto lev = levenshtein(a, b);
    const auto osa = damerau_levenshtein_osa(a, b);
    const auto full = damerau_levenshtein_full(a, b);
    const auto weighted = weighted_levenshtein(a, b);

    // Adding operations can only help: full <= osa <= lev <= weighted.
    EXPECT_LE(full, osa);
    EXPECT_LE(osa, lev);
    EXPECT_LE(lev, weighted);
    // Bounds.
    EXPECT_LE(osa, std::max(a.size(), b.size()));
    EXPECT_LE(weighted, a.size() + b.size());
    EXPECT_GE(lev, a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  }
}

TEST_P(EditDistanceProperty, SymmetryAndIdentity) {
  fhc::util::Rng rng(GetParam() ^ 0xabcd);
  for (int round = 0; round < 50; ++round) {
    const std::string a = random_digest_string(rng, 48);
    const std::string b = random_digest_string(rng, 48);
    EXPECT_EQ(levenshtein(a, b), levenshtein(b, a));
    EXPECT_EQ(damerau_levenshtein_osa(a, b), damerau_levenshtein_osa(b, a));
    EXPECT_EQ(damerau_levenshtein_full(a, b), damerau_levenshtein_full(b, a));
    EXPECT_EQ(levenshtein(a, a), 0u);
    EXPECT_EQ(damerau_levenshtein_osa(a, a), 0u);
    EXPECT_EQ(damerau_levenshtein_full(a, a), 0u);
  }
}

TEST_P(EditDistanceProperty, TriangleInequalityForLevenshtein) {
  fhc::util::Rng rng(GetParam() ^ 0x7777);
  for (int round = 0; round < 30; ++round) {
    const std::string a = random_digest_string(rng, 32);
    const std::string b = random_digest_string(rng, 32);
    const std::string c = random_digest_string(rng, 32);
    EXPECT_LE(levenshtein(a, c), levenshtein(a, b) + levenshtein(b, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace fhc::ssdeep
