// GramIndex / CandidateSet: the inverted 7-gram candidate index must
// return exactly the ids whose indexed gram array intersects the query's
// — the invertibility of the merge-scan gate that the candidate-driven
// feature-row fill rests on.
#include "ssdeep/gram_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ssdeep/compare.hpp"
#include "util/rng.hpp"

namespace fhc::ssdeep {
namespace {

std::string random_digest_chars(std::uint64_t seed, std::size_t n) {
  static constexpr char kAlpha[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  util::Rng rng(seed);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(kAlpha[rng.next_below(64)]);
  return out;
}

std::vector<std::uint32_t> sorted_ids(const CandidateSet& set) {
  std::vector<std::uint32_t> ids(set.ids().begin(), set.ids().end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(CandidateSet, DedupsAndResets) {
  CandidateSet set;
  set.reset(8);
  set.insert(3);
  set.insert(5);
  set.insert(3);
  EXPECT_EQ(sorted_ids(set), (std::vector<std::uint32_t>{3, 5}));

  set.reset(8);
  EXPECT_TRUE(set.empty());
  set.insert(3);  // a stale stamp from the previous epoch must not block this
  EXPECT_EQ(sorted_ids(set), (std::vector<std::uint32_t>{3}));
}

TEST(CandidateSet, GrowsUniverseAcrossResets) {
  CandidateSet set;
  set.reset(2);
  set.insert(1);
  set.reset(64);
  set.insert(63);
  set.insert(1);
  EXPECT_EQ(sorted_ids(set), (std::vector<std::uint32_t>{1, 63}));
}

TEST(CandidateSet, SortOrdersInsertionOrder) {
  CandidateSet set;
  set.reset(16);
  set.insert(9);
  set.insert(2);
  set.insert(14);
  set.sort();
  ASSERT_EQ(set.ids().size(), 3u);
  EXPECT_EQ(set.ids()[0], 2u);
  EXPECT_EQ(set.ids()[1], 9u);
  EXPECT_EQ(set.ids()[2], 14u);
}

TEST(GramIndex, CollectMatchesBruteForceIntersection) {
  // 40 random digest-part strings; probe with 20 more (some sharing a
  // prefix with an indexed one so real intersections occur).
  std::vector<std::string> parts;
  for (std::uint64_t i = 0; i < 40; ++i) {
    parts.push_back(random_digest_chars(100 + i, 24 + (i % 40)));
  }
  std::vector<std::vector<std::uint64_t>> grams;
  GramIndex index;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    grams.push_back(packed_sorted_grams(parts[i]));
    index.add(static_cast<std::uint32_t>(i), grams.back());
  }
  index.finalize();

  for (std::uint64_t q = 0; q < 20; ++q) {
    std::string probe = q % 2 == 0
                            ? random_digest_chars(500 + q, 30)
                            : parts[q * 2].substr(0, 12) +
                                  random_digest_chars(700 + q, 18);
    const auto probe_grams = packed_sorted_grams(probe);
    CandidateSet set;
    set.reset(parts.size());
    index.collect(probe_grams, set);

    std::set<std::uint32_t> expected;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (sorted_grams_intersect(probe_grams, grams[i])) {
        expected.insert(static_cast<std::uint32_t>(i));
      }
    }
    const auto got = sorted_ids(set);
    EXPECT_EQ(std::vector<std::uint32_t>(expected.begin(), expected.end()), got)
        << "probe " << q;
  }
}

TEST(GramIndex, EmptyQueryGramsYieldNoCandidates) {
  GramIndex index;
  const auto grams = packed_sorted_grams(random_digest_chars(1, 32));
  index.add(0, grams);
  index.finalize();
  CandidateSet set;
  set.reset(1);
  index.collect({}, set);  // a part shorter than the window packs no grams
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(packed_sorted_grams("abcdef").empty());  // 6 chars < window
}

TEST(GramIndex, ShortPartsAreNeverIndexed) {
  GramIndex index;
  index.add(0, packed_sorted_grams("abc"));  // empty gram array
  index.add(1, packed_sorted_grams("ABCDEFGH"));
  index.finalize();
  CandidateSet set;
  set.reset(2);
  index.collect(packed_sorted_grams("ABCDEFGH"), set);
  EXPECT_EQ(sorted_ids(set), (std::vector<std::uint32_t>{1}));
}

TEST(GramIndex, DuplicateGramsProduceOnePosting) {
  // "abcabcabcabcabc..." repeats its 7-grams with period 3.
  std::string repeated;
  for (int i = 0; i < 10; ++i) repeated += "abc";
  const auto grams = packed_sorted_grams(repeated);
  GramIndex index;
  index.add(7, grams);
  index.finalize();
  EXPECT_EQ(index.gram_count(), 3u);     // only 3 distinct 7-grams
  EXPECT_EQ(index.posting_count(), 3u);  // one posting each, not 24

  CandidateSet set;
  set.reset(8);
  index.collect(grams, set);  // duplicated query grams must not re-insert
  EXPECT_EQ(sorted_ids(set), (std::vector<std::uint32_t>{7}));
}

TEST(GramIndex, LifecycleIsEnforced) {
  GramIndex index;
  const auto grams = packed_sorted_grams(random_digest_chars(2, 20));
  CandidateSet set;
  set.reset(1);
  EXPECT_THROW(index.collect(grams, set), std::logic_error);
  index.add(0, grams);
  index.finalize();
  EXPECT_THROW(index.add(1, grams), std::logic_error);
  index.finalize();  // idempotent
  EXPECT_NO_THROW(index.collect(grams, set));
}

TEST(GramIndex, EmptyIndexCollectsNothing) {
  GramIndex index;
  index.finalize();
  EXPECT_EQ(index.gram_count(), 0u);
  CandidateSet set;
  set.reset(0);
  index.collect(packed_sorted_grams(random_digest_chars(3, 40)), set);
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace fhc::ssdeep
