// CTPH engine: digest structure, determinism, streaming, and the
// similarity-preservation property the whole system rests on.
#include "ssdeep/fuzzy_hash.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ssdeep/compare.hpp"
#include "util/rng.hpp"

namespace fhc::ssdeep {
namespace {

std::string random_text(std::uint64_t seed, std::size_t length) {
  fhc::util::Rng rng(seed);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + rng.next_below(26)));
  }
  return out;
}

TEST(FuzzyHash, EmptyInputYieldsMinimalDigest) {
  const FuzzyDigest digest = fuzzy_hash(std::string_view{});
  EXPECT_EQ(digest.blocksize, kMinBlocksize);
  EXPECT_TRUE(digest.part1.empty());
  EXPECT_TRUE(digest.part2.empty());
  EXPECT_EQ(digest.to_string(), "3::");
}

TEST(FuzzyHash, DeterministicAcrossCalls) {
  const std::string text = random_text(1, 10000);
  EXPECT_EQ(fuzzy_hash(text).to_string(), fuzzy_hash(text).to_string());
}

TEST(FuzzyHash, StreamingEqualsOneShot) {
  const std::string text = random_text(2, 9123);
  for (const std::size_t cut : {std::size_t{1}, std::size_t{100}, std::size_t{9122}}) {
    FuzzyHasher hasher;
    hasher.update(std::string_view(text).substr(0, cut));
    hasher.update(std::string_view(text).substr(cut));
    EXPECT_EQ(hasher.digest().to_string(), fuzzy_hash(text).to_string())
        << "cut at " << cut;
  }
}

TEST(FuzzyHash, ByteAtATimeEqualsOneShot) {
  const std::string text = random_text(3, 2048);
  FuzzyHasher hasher;
  for (const char c : text) hasher.update(std::string_view(&c, 1));
  EXPECT_EQ(hasher.digest().to_string(), fuzzy_hash(text).to_string());
}

TEST(FuzzyHash, DigestIsNonDestructive) {
  const std::string text = random_text(4, 4096);
  FuzzyHasher hasher;
  hasher.update(std::string_view(text).substr(0, 2048));
  (void)hasher.digest();  // mid-stream digest must not disturb state
  hasher.update(std::string_view(text).substr(2048));
  EXPECT_EQ(hasher.digest().to_string(), fuzzy_hash(text).to_string());
}

TEST(FuzzyHash, ResetClearsState) {
  FuzzyHasher hasher;
  hasher.update(random_text(5, 5000));
  hasher.reset();
  EXPECT_EQ(hasher.total_size(), 0u);
  hasher.update("abc");
  EXPECT_EQ(hasher.digest().to_string(), fuzzy_hash(std::string("abc")).to_string());
}

TEST(FuzzyHash, PartLengthsWithinSpec) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto digest = fuzzy_hash(random_text(seed, 1000 << seed));
    EXPECT_LE(digest.part1.size(), kSpamsumLength);
    EXPECT_LE(digest.part2.size(), kSpamsumLength / 2);
    EXPECT_TRUE(valid_blocksize(digest.blocksize));
  }
}

TEST(FuzzyHash, BlocksizeGrowsWithInput) {
  const auto small = fuzzy_hash(random_text(7, 1000));
  const auto large = fuzzy_hash(random_text(7, 400000));
  EXPECT_LT(small.blocksize, large.blocksize);
}

TEST(FuzzyHash, DigestParsesBack) {
  const auto digest = fuzzy_hash(random_text(9, 30000));
  const auto reparsed = parse_digest(digest.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, digest);
}

TEST(FuzzyHash, TotalSizeTracksInput) {
  FuzzyHasher hasher;
  hasher.update("12345");
  hasher.update("678");
  EXPECT_EQ(hasher.total_size(), 8u);
}

// --- similarity preservation (the CTPH promise) --------------------------

TEST(FuzzySimilarity, IdenticalInputsScoreHundred) {
  const std::string text = random_text(11, 20000);
  EXPECT_EQ(compare_digests(fuzzy_hash(text), fuzzy_hash(text)), 100);
}

TEST(FuzzySimilarity, SmallEditKeepsHighScore) {
  std::string text = random_text(12, 20000);
  auto original = fuzzy_hash(text);
  text.insert(10000, "INSERTED CHUNK");
  text[500] = 'X';
  const int score = compare_digests(original, fuzzy_hash(text));
  EXPECT_GE(score, 60) << "local edits must keep most chunks intact";
}

TEST(FuzzySimilarity, PrependShiftsButPreservesChunks) {
  // The signature property of *context-triggered* chunking: content-defined
  // boundaries realign after an insertion at the very front.
  const std::string text = random_text(13, 30000);
  const std::string shifted = "a prefix that offsets everything" + text;
  EXPECT_GE(compare_digests(fuzzy_hash(text), fuzzy_hash(shifted)), 55);
}

TEST(FuzzySimilarity, UnrelatedInputsScoreLow) {
  const auto a = fuzzy_hash(random_text(14, 20000));
  const auto b = fuzzy_hash(random_text(15, 20000));
  EXPECT_LE(compare_digests(a, b), 30);
}

TEST(FuzzySimilarity, HalfSharedContentScoresBetween) {
  const std::string shared = random_text(16, 10000);
  const std::string a = shared + random_text(17, 10000);
  const std::string b = shared + random_text(18, 10000);
  const int score = compare_digests(fuzzy_hash(a), fuzzy_hash(b));
  EXPECT_GT(score, 15);
  EXPECT_LT(score, 90);
}

// Parameterized sweep: replacing a progressively larger *contiguous* block
// degrades the score monotonically. (Scattered point mutations are the
// adversarial case for CTPH — one flip per chunk zeroes the score — which
// is why the sweep uses block replacement, the pattern real binaries show:
// a recompiled function here, a new string there.)
class MutationSweep : public ::testing::TestWithParam<double> {};

TEST_P(MutationSweep, BiggerReplacedBlockLowerScore) {
  const double fraction = GetParam();
  const std::string base = random_text(21, 30000);
  std::string mutated = base;
  const auto block = static_cast<std::size_t>(fraction * 30000);
  mutated.replace(4000, block, random_text(99, block));
  const int score = compare_digests(fuzzy_hash(base), fuzzy_hash(mutated));
  if (fraction <= 0.02) {
    EXPECT_GE(score, 60);
  } else if (fraction >= 0.7) {
    EXPECT_LE(score, 45);
  } else {
    EXPECT_GT(score, 10);
    EXPECT_LT(score, 100);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, MutationSweep,
                         ::testing::Values(0.01, 0.1, 0.3, 0.8));

}  // namespace
}  // namespace fhc::ssdeep
