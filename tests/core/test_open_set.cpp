// Open-set rejection end to end: the paper's Table-3 scenario — a model
// trained on known HPC applications must flag applications from classes
// it never saw — driven through fit-time calibration instead of a
// hand-picked confidence threshold.
//
// The fixture trains on a known-class subset of the synthetic corpus
// and holds three whole classes out as the "foreign" pool (never
// trained, never calibrated on). The load-bearing properties:
//
//  * calibration picks a data-driven threshold and records how it was
//    chosen (target FPR, holdout size);
//  * at that threshold the foreign pool is mostly rejected while
//    known-class test samples keep their labels — and every sample the
//    calibrated model does NOT reject gets the identical label the
//    uncalibrated model assigns (rejection only ever abstains, it never
//    relabels);
//  * the calibration block survives text and binary round-trips, and a
//    deployment override (set_unknown_threshold) behaves like a
//    calibrated floor;
//  * fuzz-found loader hardening stays fixed (FuzzRegression tests with
//    their reproducers under tests/fuzz/corpus/fuzz_model_load/).
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "corpus/corpus.hpp"
#include "ml/dataset.hpp"

namespace fhc::core {
namespace {

struct Fixture {
  std::vector<FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<FeatureHashes> test_hashes;
  std::vector<int> test_labels;
  std::vector<std::string> names;
  std::vector<FeatureHashes> foreign_hashes;  // classes never trained on
};

Fixture make_fixture() {
  auto specs = corpus::scaled_app_classes(0.12);
  const std::set<std::string> known_names{
      "Velvet", "HMMER",  "BLAT",   "Exonerate", "Trinity",  "Stacks",
      "canu",   "Subread", "RSEM",  "MUMmer",    "ViennaRNA", "OpenBabel"};
  const std::set<std::string> foreign_names{"MCL", "Gurobi", "METIS"};
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (known_names.count(spec.name) || foreign_names.count(spec.name)) {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  Fixture fx;
  int next_label = 0;
  std::vector<int> label_of_class(static_cast<std::size_t>(corpus.class_count()),
                                  -1);
  for (int c = 0; c < corpus.class_count(); ++c) {
    const auto& name = corpus.specs()[static_cast<std::size_t>(c)].name;
    if (foreign_names.count(name)) continue;  // held out entirely
    label_of_class[static_cast<std::size_t>(c)] = next_label++;
    fx.names.push_back(name);
  }
  for (const auto& ref : corpus.samples()) {
    const FeatureHashes hashes = extract_feature_hashes(corpus.sample_bytes(ref));
    const int label = label_of_class[static_cast<std::size_t>(ref.class_idx)];
    if (label < 0) {
      fx.foreign_hashes.push_back(hashes);
    } else if (ref.version_idx == 0) {
      fx.test_hashes.push_back(hashes);  // hold out the oldest version
      fx.test_labels.push_back(label);
    } else {
      fx.train_hashes.push_back(hashes);
      fx.train_labels.push_back(label);
    }
  }
  return fx;
}

const Fixture& fixture() {
  static const Fixture fx = make_fixture();
  return fx;
}

/// confidence_threshold 0 so every rejection below is the calibration's
/// doing — the legacy knob contributes nothing.
ClassifierConfig calibrated_config() {
  ClassifierConfig config;
  config.forest.n_estimators = 40;
  config.forest.seed = 3;
  config.confidence_threshold = 0.0;
  config.calibrate_rejection = true;
  config.calibration_target_fpr = 0.10;
  return config;
}

const FuzzyHashClassifier& calibrated_model() {
  static const FuzzyHashClassifier clf = [] {
    FuzzyHashClassifier model;
    const Fixture& fx = fixture();
    model.fit(fx.train_hashes, fx.train_labels, fx.names, calibrated_config());
    return model;
  }();
  return clf;
}

TEST(OpenSetCalibration, FitRecordsDataDrivenThreshold) {
  const RejectionCalibration& cal = calibrated_model().calibration();
  EXPECT_TRUE(cal.enabled);
  EXPECT_GT(cal.threshold, 0.0);
  EXPECT_LE(cal.threshold, 1.0);
  EXPECT_DOUBLE_EQ(cal.target_fpr, 0.10);
  EXPECT_GT(cal.holdout_count, 0u);
  // Stratified holdout never eats more than half the training set.
  EXPECT_LE(cal.holdout_count, fixture().train_hashes.size() / 2 + 1);
  EXPECT_DOUBLE_EQ(calibrated_model().effective_reject_threshold(),
                   cal.threshold);
}

TEST(OpenSetCalibration, CalibrationIsDeterministic) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier again;
  again.fit(fx.train_hashes, fx.train_labels, fx.names, calibrated_config());
  EXPECT_DOUBLE_EQ(again.calibration().threshold,
                   calibrated_model().calibration().threshold);
  EXPECT_EQ(again.calibration().holdout_count,
            calibrated_model().calibration().holdout_count);
}

TEST(OpenSetCalibration, ForeignClassesAreMostlyRejected) {
  // Table-3 scenario: the unknown pool must trip the calibrated floor.
  const Fixture& fx = fixture();
  std::size_t rejected = 0;
  for (const FeatureHashes& hashes : fx.foreign_hashes) {
    const Prediction pred = calibrated_model().predict(hashes);
    if (pred.is_unknown) {
      ++rejected;
      EXPECT_EQ(pred.label, ml::kUnknownLabel);
    }
  }
  ASSERT_FALSE(fx.foreign_hashes.empty());
  EXPECT_GE(static_cast<double>(rejected) / fx.foreign_hashes.size(), 0.5)
      << rejected << " of " << fx.foreign_hashes.size() << " foreign rejected";
}

TEST(OpenSetCalibration, KnownClassRejectionStaysNearTargetFpr) {
  // The threshold was chosen for <=10% FPR on held-out known samples;
  // the (disjoint, same-generator) test split must land in the same
  // regime. The slack absorbs split-to-split variance, not a broken
  // calibrator: uncalibrated rejection here is 0%.
  const Fixture& fx = fixture();
  std::size_t rejected = 0;
  for (const FeatureHashes& hashes : fx.test_hashes) {
    if (calibrated_model().predict(hashes).is_unknown) ++rejected;
  }
  ASSERT_FALSE(fx.test_hashes.empty());
  EXPECT_LE(static_cast<double>(rejected) / fx.test_hashes.size(), 0.35)
      << rejected << " of " << fx.test_hashes.size() << " known rejected";
}

TEST(OpenSetCalibration, RejectionOnlyAbstainsNeverRelabels) {
  // Zero known-class accuracy regression: every non-rejected prediction
  // must match what the identically-seeded uncalibrated model says.
  const Fixture& fx = fixture();
  ClassifierConfig plain = calibrated_config();
  plain.calibrate_rejection = false;
  FuzzyHashClassifier uncalibrated;
  uncalibrated.fit(fx.train_hashes, fx.train_labels, fx.names, plain);
  for (const FeatureHashes& hashes : fx.test_hashes) {
    const Prediction cal = calibrated_model().predict(hashes);
    const Prediction ref = uncalibrated.predict(hashes);
    if (!cal.is_unknown) {
      EXPECT_EQ(cal.label, ref.label);
      EXPECT_DOUBLE_EQ(cal.confidence, ref.confidence);
    }
  }
}

TEST(OpenSetCalibration, BatchAndSerialPredictionsAgree) {
  const Fixture& fx = fixture();
  const std::vector<int> batch = calibrated_model().predict_batch(fx.test_hashes);
  ASSERT_EQ(batch.size(), fx.test_hashes.size());
  for (std::size_t i = 0; i < fx.test_hashes.size(); ++i) {
    const Prediction serial = calibrated_model().predict(fx.test_hashes[i]);
    // predict_batch thresholds at float precision (documented in
    // fhc_classify); on this fixture no score sits within float epsilon
    // of the threshold, so the decisions must agree exactly.
    EXPECT_EQ(batch[i] == ml::kUnknownLabel, serial.is_unknown) << "sample " << i;
    if (batch[i] != ml::kUnknownLabel) {
      EXPECT_EQ(batch[i], serial.label);
    }
  }
}

TEST(OpenSetCalibration, CalibrationSurvivesTextRoundTrip) {
  std::ostringstream saved;
  calibrated_model().save(saved);
  std::istringstream in(saved.str());
  FuzzyHashClassifier loaded;
  loaded.load(in);
  EXPECT_TRUE(loaded.calibration().enabled);
  EXPECT_DOUBLE_EQ(loaded.calibration().threshold,
                   calibrated_model().calibration().threshold);
  EXPECT_DOUBLE_EQ(loaded.calibration().target_fpr,
                   calibrated_model().calibration().target_fpr);
  EXPECT_EQ(loaded.calibration().holdout_count,
            calibrated_model().calibration().holdout_count);
  // And the reloaded model still prints the identical bytes.
  std::ostringstream again;
  loaded.save(again);
  EXPECT_EQ(again.str(), saved.str());
}

TEST(OpenSetCalibration, CalibrationSurvivesBinaryRoundTrips) {
  for (const bool v2 : {false, true}) {
    std::ostringstream saved;
    if (v2) {
      calibrated_model().save_binary(saved);
    } else {
      calibrated_model().save_binary_v1(saved);
    }
    const std::string bytes = saved.str();
    FuzzyHashClassifier loaded;
    loaded.load_binary(
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(bytes.data()),
                                   bytes.size()),
        nullptr);
    EXPECT_TRUE(loaded.calibration().enabled) << (v2 ? "v2" : "v1");
    EXPECT_DOUBLE_EQ(loaded.calibration().threshold,
                     calibrated_model().calibration().threshold);
    EXPECT_EQ(loaded.calibration().holdout_count,
              calibrated_model().calibration().holdout_count);
  }
}

TEST(OpenSetCalibration, UncalibratedModelsKeepLegacyByteLayout) {
  // A model without calibration must serialize without any calibration
  // line — static-triple models stay byte-identical to the pre-open-set
  // format, and legacy parsers never see an unknown tag.
  const Fixture& fx = fixture();
  ClassifierConfig plain = calibrated_config();
  plain.calibrate_rejection = false;
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, plain);
  std::ostringstream saved;
  clf.save(saved);
  EXPECT_EQ(saved.str().find("calibration"), std::string::npos);
  EXPECT_FALSE(clf.calibration().enabled);
  // Legacy loads synthesize "never reject beyond the threshold".
  std::istringstream in(saved.str());
  FuzzyHashClassifier loaded;
  loaded.load(in);
  EXPECT_FALSE(loaded.calibration().enabled);
  EXPECT_DOUBLE_EQ(loaded.effective_reject_threshold(), 0.0);
}

TEST(OpenSetCalibration, ManualOverrideActsAsFloor) {
  const Fixture& fx = fixture();
  ClassifierConfig plain = calibrated_config();
  plain.calibrate_rejection = false;
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, plain);
  clf.set_unknown_threshold(1.0);  // rejection is `confidence < T`
  EXPECT_TRUE(clf.calibration().enabled);
  EXPECT_EQ(clf.calibration().holdout_count, 0u);  // marks a manual override
  for (std::size_t i = 0; i < fx.test_hashes.size(); i += 5) {
    const Prediction pred = clf.predict(fx.test_hashes[i]);
    // Everything below certainty rejects under a floor of 1.0.
    EXPECT_TRUE(pred.is_unknown || pred.confidence >= 1.0);
  }
  // The override serializes like a calibration and survives a reload.
  std::ostringstream saved;
  clf.save(saved);
  EXPECT_NE(saved.str().find("calibration"), std::string::npos);
  std::istringstream in(saved.str());
  FuzzyHashClassifier loaded;
  loaded.load(in);
  EXPECT_TRUE(loaded.calibration().enabled);
  EXPECT_DOUBLE_EQ(loaded.calibration().threshold, 1.0);
  EXPECT_EQ(loaded.calibration().holdout_count, 0u);
}

TEST(OpenSetCalibration, CalibrationRequiresEnoughSamples) {
  // One sample per class leaves nothing to hold out: fit must say so
  // instead of silently calibrating on nothing.
  const Fixture& fx = fixture();
  std::vector<FeatureHashes> tiny;
  std::vector<int> labels;
  std::vector<bool> seen(fx.names.size(), false);
  for (std::size_t i = 0; i < fx.train_hashes.size(); ++i) {
    const auto label = static_cast<std::size_t>(fx.train_labels[i]);
    if (seen[label]) continue;
    seen[label] = true;
    tiny.push_back(fx.train_hashes[i]);
    labels.push_back(fx.train_labels[i]);
  }
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.fit(tiny, labels, fx.names, calibrated_config()),
               std::invalid_argument);
}

// ---- fuzz-found loader hardening --------------------------------------
//
// Reproducers for these live under tests/fuzz/corpus/fuzz_model_load/
// (repro_huge_classes, repro_huge_train); the tests pin the fix so the
// caps cannot regress even when the fuzz targets are not built.

std::string preamble_with(const std::string& classes_line,
                          const std::string& train_line) {
  return "fhc-fuzzy-hash-classifier-v1\nmetric 0\nthreshold 0.5\nbalanced 1\n" +
         std::string("channels 1 1 1\n") + classes_line + "\n" + train_line +
         "\n";
}

TEST(FuzzRegression, HugeDeclaredClassCountIsRejectedNotAllocated) {
  // fuzz_model_load: "classes 2000000000" used to reserve gigabytes
  // before the first class name failed to parse — an OOM DoS from a
  // 100-byte file. The loader now caps the declared count.
  std::istringstream in(preamble_with("classes 2000000000", "train 0"));
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(in), std::runtime_error);
}

TEST(FuzzRegression, HugeDeclaredTrainCountIsRejectedNotAllocated) {
  std::istringstream in(
      preamble_with("classes 1\nsolo", "train 99999999999"));
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(in), std::runtime_error);
}

TEST(FuzzRegression, MalformedCalibrationLineIsRejected) {
  // A calibration line with an out-of-range threshold (or junk fields)
  // must fail the load, not clamp silently: the daemon would otherwise
  // serve with a rejection policy nobody chose.
  for (const std::string line :
       {"calibration 1.5 0.05 3", "calibration nope 0.05 3",
        "calibration 0.5 -0.1 3"}) {
    std::istringstream in(
        "fhc-fuzzy-hash-classifier-v1\nmetric 0\nthreshold 0.5\nbalanced 1\n" +
        line + "\nchannels 1 1 1\nclasses 1\nsolo\ntrain 0\n");
    FuzzyHashClassifier clf;
    EXPECT_THROW(clf.load(in), std::runtime_error) << line;
  }
}

}  // namespace
}  // namespace fhc::core
