// Feature extraction: three channels per executable.
#include "core/features.hpp"

#include <gtest/gtest.h>

#include "corpus/app_spec.hpp"
#include "corpus/synth_app.hpp"
#include "ssdeep/compare.hpp"

namespace fhc::core {
namespace {

corpus::SampleSynthesizer make_synth(const char* name, std::uint64_t seed = 42) {
  const corpus::AppClassSpec* spec =
      corpus::find_class(corpus::paper_app_classes(), name);
  EXPECT_NE(spec, nullptr);
  return corpus::SampleSynthesizer(*spec, seed);
}

TEST(FeatureTypeName, MatchesPaperTableFive) {
  EXPECT_EQ(feature_type_name(FeatureType::kFile), "ssdeep-file");
  EXPECT_EQ(feature_type_name(FeatureType::kStrings), "ssdeep-strings");
  EXPECT_EQ(feature_type_name(FeatureType::kSymbols), "ssdeep-symbols");
}

TEST(ExtractFeatureHashes, ProducesThreeDistinctChannels) {
  const auto synth = make_synth("HMMER");
  const auto image = synth.build(0, 0);
  const FeatureHashes hashes = extract_feature_hashes(image);

  EXPECT_TRUE(hashes.has_symbols);
  EXPECT_FALSE(hashes.file.part1.empty());
  EXPECT_FALSE(hashes.strings.part1.empty());
  EXPECT_FALSE(hashes.symbols.part1.empty());
  // The channels hash different texts -> different digests.
  EXPECT_NE(hashes.file.to_string(), hashes.strings.to_string());
  EXPECT_NE(hashes.strings.to_string(), hashes.symbols.to_string());
}

TEST(ExtractFeatureHashes, DeterministicForSameImage) {
  const auto synth = make_synth("HMMER");
  const auto image = synth.build(0, 0);
  const FeatureHashes a = extract_feature_hashes(image);
  const FeatureHashes b = extract_feature_hashes(image);
  EXPECT_EQ(a.file, b.file);
  EXPECT_EQ(a.strings, b.strings);
  EXPECT_EQ(a.symbols, b.symbols);
}

TEST(ExtractFeatureHashes, StrippedBinaryLosesSymbolsChannel) {
  const auto synth = make_synth("HMMER");
  const auto image = synth.build(0, 0, /*stripped=*/true);
  const FeatureHashes hashes = extract_feature_hashes(image);
  EXPECT_FALSE(hashes.has_symbols);
  EXPECT_TRUE(hashes.symbols.part1.empty());  // digest of empty text
  // The other two channels survive.
  EXPECT_FALSE(hashes.file.part1.empty());
  EXPECT_FALSE(hashes.strings.part1.empty());
}

TEST(ExtractFeatureHashes, StrippedSymbolsCompareAsZero) {
  const auto synth = make_synth("HMMER");
  const FeatureHashes regular = extract_feature_hashes(synth.build(0, 0));
  const FeatureHashes stripped = extract_feature_hashes(synth.build(0, 0, true));
  EXPECT_EQ(ssdeep::compare_digests(regular.symbols, stripped.symbols), 0);
}

TEST(ExtractFeatureHashes, NonElfInputHandledGracefully) {
  const std::vector<std::uint8_t> text_file{'j', 'u', 's', 't', ' ', 't', 'e',
                                            'x', 't', ' ', 'd', 'a', 't', 'a'};
  const FeatureHashes hashes = extract_feature_hashes(text_file);
  EXPECT_FALSE(hashes.has_symbols);
  EXPECT_FALSE(hashes.strings.part1.empty());  // strings still extracts text
}

TEST(FeatureHashesOf, IndexesChannels) {
  const auto synth = make_synth("Velvet");
  const FeatureHashes hashes = extract_feature_hashes(synth.build(0, 0));
  EXPECT_EQ(hashes.of(FeatureType::kFile), hashes.file);
  EXPECT_EQ(hashes.of(FeatureType::kStrings), hashes.strings);
  EXPECT_EQ(hashes.of(FeatureType::kSymbols), hashes.symbols);
}

TEST(ExtractFeatureHashes, SymbolsChannelMostStableAcrossVersions) {
  const auto synth = make_synth("Exonerate");
  const FeatureHashes v0 = extract_feature_hashes(synth.build(0, 0));
  const FeatureHashes v1 = extract_feature_hashes(synth.build(1, 0));
  const int sym = ssdeep::compare_digests(v0.symbols, v1.symbols);
  const int file = ssdeep::compare_digests(v0.file, v1.file);
  EXPECT_GT(sym, file) << "Table 5's stability ordering";
}

}  // namespace
}  // namespace fhc::core
