// Smoke test for the build contract itself: the CMake-configured version
// header exists on the include path, the macro and the symbol compiled into
// libfhc agree, and linking against the library works at all.
#include "core/version.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(Version, MacroIsNonEmptySemver) {
  const std::string v = FHC_VERSION;
  ASSERT_FALSE(v.empty());
  // major.minor.patch: exactly two dots, digits everywhere else.
  int dots = 0;
  for (char c : v) {
    if (c == '.') {
      ++dots;
    } else {
      EXPECT_TRUE(c >= '0' && c <= '9') << "unexpected character in " << v;
    }
  }
  EXPECT_EQ(dots, 2) << "not major.minor.patch: " << v;
}

TEST(Version, LibrarySymbolMatchesHeaderMacro) {
  EXPECT_STREQ(fhc::core::version(), FHC_VERSION);
  EXPECT_EQ(fhc::core::version_major(), FHC_VERSION_MAJOR);
  EXPECT_EQ(fhc::core::version_minor(), FHC_VERSION_MINOR);
  EXPECT_EQ(fhc::core::version_patch(), FHC_VERSION_PATCH);
}

TEST(Version, ComponentsComposeTheString) {
  const std::string composed = std::to_string(fhc::core::version_major()) + "." +
                               std::to_string(fhc::core::version_minor()) + "." +
                               std::to_string(fhc::core::version_patch());
  EXPECT_EQ(composed, fhc::core::version());
}

}  // namespace
