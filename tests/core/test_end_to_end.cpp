// Integration: the full paper protocol at reduced scale must reproduce the
// qualitative results (shape, not exact numbers).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"

namespace fhc::core {
namespace {

/// One shared medium-scale run (expensive: built once for the suite).
/// 20% scale is the smallest corpus at which the paper-shape properties
/// (symbols-dominant importance, unknown P > R) are stable; below that,
/// 3-sample classes dominate and the operating point shifts.
const ExperimentResult& shared_result() {
  static const ExperimentResult result = [] {
    ExperimentConfig config;
    config.scale = 0.2;  // ~1200 samples
    config.seed = 42;
    config.classifier.forest.n_estimators = 100;
    config.tune_threshold = true;
    return run_experiment(config);
  }();
  return result;
}

TEST(EndToEnd, HeadlineScoresInPaperBand) {
  const ExperimentResult& result = shared_result();
  // Paper: micro 0.89, macro 0.90, weighted 0.90. At reduced scale we
  // accept a generous band, but all three must clear 0.6 and stay <= 1.
  EXPECT_GE(result.report.micro.f1, 0.6);
  EXPECT_GE(result.report.macro.f1, 0.6);
  EXPECT_GE(result.report.weighted.f1, 0.6);
  EXPECT_LE(result.report.micro.f1, 1.0);
}

TEST(EndToEnd, SymbolsAreTheDominantFeature) {
  const ExperimentResult& result = shared_result();
  // Paper Table 5: symbols 0.79 >> strings 0.14 > file 0.07.
  EXPECT_GT(result.importance[2], result.importance[1]);
  EXPECT_GT(result.importance[2], result.importance[0]);
  EXPECT_GT(result.importance[2], 0.33) << "symbols must dominate";
  EXPECT_LT(result.importance[0], 0.25) << "raw file content least informative";
}

TEST(EndToEnd, UnknownClassPrecisionExceedsRecall) {
  // Paper Section 5: "A precision value higher than recall shows that our
  // model confidently labels a sample as unknown and is usually correct."
  const ExperimentResult& result = shared_result();
  for (const auto& m : result.report.per_class) {
    if (m.label == ml::kUnknownLabel) {
      EXPECT_GT(m.precision, 0.6);
      EXPECT_GE(m.precision, m.recall - 0.05);
      return;
    }
  }
  FAIL() << "report must contain the -1 class";
}

TEST(EndToEnd, MacroF1DegradesAtExtremeThresholds) {
  // Paper Figure 3: as the confidence threshold grows, macro f1 falls.
  const ExperimentResult& result = shared_result();
  ASSERT_GE(result.threshold_curve.size(), 10u);
  const auto& low = result.threshold_curve[4];    // threshold 0.20
  const auto& high = result.threshold_curve.back();  // threshold 0.95
  EXPECT_GT(low.macro_f1, high.macro_f1);
}

TEST(EndToEnd, SplitCountsScaleWithPaperProtocol) {
  const ExperimentResult& result = shared_result();
  // ~20% of classes (19/92) contribute all their samples as unknown.
  const double unknown_share = static_cast<double>(result.n_unknown_test) /
                               static_cast<double>(result.n_test);
  EXPECT_GT(unknown_share, 0.15);
  EXPECT_LT(unknown_share, 0.5);
  EXPECT_EQ(result.n_known_classes, 73);
  EXPECT_EQ(result.n_classes, 92);
  EXPECT_EQ(result.n_train + result.n_test, result.n_samples);
}

TEST(EndToEnd, ReportContainsPaperClasses) {
  const ExperimentResult& result = shared_result();
  const std::string text = result.report.to_string();
  EXPECT_NE(text.find("-1"), std::string::npos);
  EXPECT_NE(text.find("Velvet"), std::string::npos);
  EXPECT_NE(text.find("kentUtils"), std::string::npos);
  EXPECT_NE(text.find("micro avg"), std::string::npos);
}

TEST(EndToEnd, RenderersProduceAllTables) {
  // Smoke-render every paper artifact from a tiny corpus.
  ExperimentConfig config;
  config.scale = 0.02;
  config.classifier.forest.n_estimators = 20;
  config.tune_threshold = false;
  ExperimentData data = prepare_experiment(config);

  // Table 1 needs the full-scale Velvet class (2 executables per version);
  // at 2% corpus scale the class shrinks to one sample per version.
  {
    std::vector<corpus::AppClassSpec> velvet_only{
        *corpus::find_class(corpus::paper_app_classes(), "Velvet")};
    corpus::Corpus velvet_corpus(velvet_only, config.seed);
    const std::string table1 = render_class_inventory(velvet_corpus, "Velvet");
    EXPECT_NE(table1.find("velveth, velvetg"), std::string::npos);
    EXPECT_NE(table1.find("1.2.10-goolf-1.4.10"), std::string::npos);
  }

  const auto example = make_similarity_example(data.corpus, "OpenMalaria",
                                               FeatureType::kSymbols,
                                               ssdeep::EditMetric::kDamerauOsa);
  EXPECT_GT(example.similarity, 0) << "two OpenMalaria versions must be similar";
  const std::string table2 = render_similarity_example(example);
  EXPECT_NE(table2.find("OpenMalaria"), std::string::npos);
  EXPECT_NE(table2.find("Similarity:"), std::string::npos);

  const std::string table3 = render_unknown_classes(data);
  EXPECT_NE(table3.find("Schrodinger"), std::string::npos);
  EXPECT_NE(table3.find("CHARMM"), std::string::npos);

  const std::string fig2 = render_class_sizes(data.corpus.specs());
  EXPECT_NE(fig2.find("FSL"), std::string::npos);

  const std::string table5 = render_feature_importance({0.07, 0.14, 0.79});
  EXPECT_NE(table5.find("ssdeep-symbols"), std::string::npos);
  EXPECT_NE(table5.find("0.7900"), std::string::npos);

  const std::string fig3 = render_threshold_curve(
      {{0.0, 0.9, 0.9, 0.9}, {0.5, 0.8, 0.7, 0.8}}, 0.0);
  EXPECT_NE(fig3.find("<- chosen"), std::string::npos);
}

}  // namespace
}  // namespace fhc::core
