// Hyperparameter grid search (paper Section 3's tuning protocol).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"

namespace fhc::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.scale = 0.02;
  config.seed = 42;
  config.classifier.forest.n_estimators = 20;
  config.tune_threshold = false;
  config.threshold_grid = {0.1, 0.3, 0.5};
  return config;
}

TEST(GridSearch, EvaluatesEveryCombination) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  RfGrid grid;
  grid.n_estimators = {10, 20};
  grid.criteria = {ml::Criterion::kGini, ml::Criterion::kEntropy};
  grid.max_depths = {0, 8};
  ASSERT_EQ(grid.combination_count(), 8u);

  const GridSearchResult result = grid_search_hyperparameters(config, data, grid);
  EXPECT_EQ(result.combinations_evaluated, 8u);
  EXPECT_GT(result.best_score, 0.0);
  EXPECT_LE(result.best_score, 3.0);  // micro+macro+weighted each <= 1
}

TEST(GridSearch, BestParamsComeFromTheGrid) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  RfGrid grid;
  grid.n_estimators = {15, 25};
  grid.min_samples_leafs = {1, 3};

  const GridSearchResult result = grid_search_hyperparameters(config, data, grid);
  EXPECT_TRUE(result.best_params.n_estimators == 15 ||
              result.best_params.n_estimators == 25);
  EXPECT_TRUE(result.best_params.tree.min_samples_leaf == 1 ||
              result.best_params.tree.min_samples_leaf == 3);
  const auto& thresholds = config.threshold_grid;
  EXPECT_NE(std::find(thresholds.begin(), thresholds.end(), result.best_threshold),
            thresholds.end());
}

TEST(GridSearch, DeterministicAcrossRuns) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  RfGrid grid;
  grid.n_estimators = {12, 18};

  const GridSearchResult a = grid_search_hyperparameters(config, data, grid);
  const GridSearchResult b = grid_search_hyperparameters(config, data, grid);
  EXPECT_EQ(a.best_params.n_estimators, b.best_params.n_estimators);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_DOUBLE_EQ(a.best_threshold, b.best_threshold);
}

TEST(GridSearch, DefaultGridIsSmallButNonTrivial) {
  const RfGrid grid;
  EXPECT_GE(grid.combination_count(), 2u);
  EXPECT_LE(grid.combination_count(), 64u);
}

TEST(GridSearch, TunedParamsImproveOrMatchUntuned) {
  // The winning configuration cannot score worse on the inner split than
  // an arbitrary single grid point (it was selected as the max).
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  RfGrid wide;
  wide.n_estimators = {5, 30};
  wide.max_depths = {2, 0};
  const GridSearchResult best = grid_search_hyperparameters(config, data, wide);

  RfGrid narrow;
  narrow.n_estimators = {5};
  narrow.max_depths = {2};
  const GridSearchResult single = grid_search_hyperparameters(config, data, narrow);
  EXPECT_GE(best.best_score, single.best_score);
}

}  // namespace
}  // namespace fhc::core
