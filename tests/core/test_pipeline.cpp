// Experiment pipeline: split protocol, threshold tuning, ablations.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fhc::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.scale = 0.02;  // ~280 samples
  config.seed = 42;
  config.classifier.forest.n_estimators = 30;
  config.tune_threshold = false;
  config.classifier.confidence_threshold = 0.25;
  return config;
}

const ExperimentData& tiny_data() {
  static ExperimentData data = prepare_experiment(tiny_config());
  return data;
}

TEST(PrepareExperiment, HashesEverySample) {
  const ExperimentData& data = tiny_data();
  EXPECT_EQ(data.hashes.size(), data.corpus.samples().size());
  EXPECT_EQ(data.corpus.class_count(), 92);
}

TEST(PrepareExperiment, PinnedUnknownsMatchTableThree) {
  const ExperimentData& data = tiny_data();
  int unknown_classes = 0;
  for (int c = 0; c < data.corpus.class_count(); ++c) {
    const bool is_unknown = data.split.class_is_unknown[static_cast<std::size_t>(c)];
    EXPECT_EQ(is_unknown, data.corpus.specs()[static_cast<std::size_t>(c)].paper_unknown)
        << data.corpus.specs()[static_cast<std::size_t>(c)].name;
    unknown_classes += is_unknown ? 1 : 0;
  }
  EXPECT_EQ(unknown_classes, 19);
  EXPECT_EQ(data.model_class_names.size(), 73u);
}

TEST(PrepareExperiment, TrainTestPartition) {
  const ExperimentData& data = tiny_data();
  std::set<std::size_t> seen(data.train_indices.begin(), data.train_indices.end());
  for (const std::size_t i : data.test_indices) {
    EXPECT_EQ(seen.count(i), 0u) << "index in both sides";
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), data.hashes.size());
}

TEST(PrepareExperiment, TrainLabelsAreDenseKnownLabels) {
  const ExperimentData& data = tiny_data();
  ASSERT_EQ(data.train_labels.size(), data.train_indices.size());
  for (const int label : data.train_labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(data.model_class_names.size()));
  }
}

TEST(PrepareExperiment, TestTruthMarksUnknownPool) {
  const ExperimentData& data = tiny_data();
  std::size_t unknown = 0;
  for (const int label : data.test_truth) unknown += label == ml::kUnknownLabel ? 1 : 0;
  EXPECT_EQ(unknown, data.split.unknown_test_count);
  EXPECT_GT(unknown, 0u);
}

TEST(PrepareExperiment, RandomSplitModeDiffersFromPinned) {
  ExperimentConfig config = tiny_config();
  config.pin_paper_unknowns = false;
  const ExperimentData data = prepare_experiment(config);
  int mismatches = 0;
  for (int c = 0; c < data.corpus.class_count(); ++c) {
    if (data.split.class_is_unknown[static_cast<std::size_t>(c)] !=
        data.corpus.specs()[static_cast<std::size_t>(c)].paper_unknown) {
      ++mismatches;
    }
  }
  EXPECT_GT(mismatches, 0) << "random mode should not replicate Table 3 exactly";
}

TEST(RunExperiment, ProducesPlausibleReport) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  const ExperimentResult result = run_experiment(config, data);

  EXPECT_EQ(result.n_samples, data.hashes.size());
  EXPECT_EQ(result.n_known_classes, 73);
  EXPECT_EQ(result.report.total_support, data.test_indices.size());
  // At 2% scale most classes have 3 samples (2 train / 1 test); this is a
  // smoke bound — the calibrated band is asserted in test_end_to_end.cpp.
  EXPECT_GT(result.report.micro.f1, 0.5);
  EXPECT_GT(result.report.macro.f1, 0.25);
  // Importances are a distribution over the three channels.
  EXPECT_NEAR(result.importance[0] + result.importance[1] + result.importance[2],
              1.0, 1e-9);
}

TEST(RunExperiment, ThresholdTuningProducesCurve) {
  ExperimentConfig config = tiny_config();
  config.tune_threshold = true;
  config.threshold_grid = {0.0, 0.2, 0.4, 0.6};
  ExperimentData data = prepare_experiment(config);
  const ExperimentResult result = run_experiment(config, data);
  ASSERT_EQ(result.threshold_curve.size(), 4u);
  for (std::size_t i = 0; i < result.threshold_curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.threshold_curve[i].threshold, config.threshold_grid[i]);
    EXPECT_GE(result.threshold_curve[i].macro_f1, 0.0);
    EXPECT_LE(result.threshold_curve[i].macro_f1, 1.0);
  }
  // Chosen threshold must be one of the grid points.
  bool on_grid = false;
  for (const double t : config.threshold_grid) {
    on_grid |= t == result.chosen_threshold;
  }
  EXPECT_TRUE(on_grid);
}

TEST(RunExperiment, DeterministicAcrossRuns) {
  ExperimentConfig config = tiny_config();
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_DOUBLE_EQ(a.report.micro.f1, b.report.micro.f1);
  EXPECT_DOUBLE_EQ(a.report.macro.f1, b.report.macro.f1);
  EXPECT_DOUBLE_EQ(a.importance[2], b.importance[2]);
}

TEST(SweepThresholds, HigherThresholdMeansMoreUnknownPredictions) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  FuzzyHashClassifier clf;
  clf.fit(data.gather_hashes(data.train_indices), data.train_labels,
          data.model_class_names, config.classifier);
  ml::Matrix proba;
  clf.predict_batch(data.gather_hashes(data.test_indices), &proba);

  const auto count_unknown = [&](double threshold) {
    int unknown = 0;
    for (const int label : clf.labels_from_proba(proba, threshold)) {
      unknown += label == ml::kUnknownLabel ? 1 : 0;
    }
    return unknown;
  };
  EXPECT_LE(count_unknown(0.1), count_unknown(0.5));
  EXPECT_LE(count_unknown(0.5), count_unknown(0.9));
}

TEST(ModelAblation, RunsAllFourModels) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  const auto rows = run_model_ablation(
      config, data,
      {ModelKind::kRandomForest, ModelKind::kKnn, ModelKind::kLinearSvm,
       ModelKind::kCryptoExact});
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_GE(row.micro_f1, 0.0);
    EXPECT_LE(row.micro_f1, 1.0);
  }
}

TEST(ModelAblation, CryptoExactOnlyMatchesDuplicates) {
  // Every sample is a distinct binary, so exact SHA-256 matching cannot
  // label any known-class test sample; the micro score equals the share of
  // unknown-pool samples (all predicted "-1" and all unknowns truly "-1").
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  const auto rows = run_model_ablation(config, data, {ModelKind::kCryptoExact});
  ASSERT_EQ(rows.size(), 1u);
  const double unknown_share = static_cast<double>(data.split.unknown_test_count) /
                               static_cast<double>(data.test_indices.size());
  EXPECT_NEAR(rows[0].micro_f1, unknown_share, 1e-9);
}

TEST(ModelAblation, FuzzyModelsBeatCryptoBaseline) {
  ExperimentConfig config = tiny_config();
  ExperimentData data = prepare_experiment(config);
  const auto rows = run_model_ablation(
      config, data, {ModelKind::kRandomForest, ModelKind::kCryptoExact});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0].macro_f1, rows[1].macro_f1)
      << "the paper's core claim: fuzzy similarity >> exact matching";
}

TEST(ModelKindName, AllNamed) {
  EXPECT_FALSE(std::string(model_kind_name(ModelKind::kRandomForest)).empty());
  EXPECT_FALSE(std::string(model_kind_name(ModelKind::kKnn)).empty());
  EXPECT_FALSE(std::string(model_kind_name(ModelKind::kLinearSvm)).empty());
  EXPECT_FALSE(std::string(model_kind_name(ModelKind::kCryptoExact)).empty());
}

TEST(DefaultThresholdGrid, CoversOperatingRange) {
  const auto grid = ExperimentConfig::default_threshold_grid();
  ASSERT_GE(grid.size(), 10u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_NEAR(grid.back(), 0.95, 1e-9);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

}  // namespace
}  // namespace fhc::core
