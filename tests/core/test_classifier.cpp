// The Fuzzy Hash Classifier: fit/predict, thresholds, importances.
#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "corpus/corpus.hpp"

namespace fhc::core {
namespace {

struct Fixture {
  std::vector<FeatureHashes> train_hashes;
  std::vector<int> train_labels;
  std::vector<FeatureHashes> test_hashes;
  std::vector<int> test_labels;
  std::vector<std::string> names;
  std::vector<FeatureHashes> foreign_hashes;  // class never trained on
};

Fixture make_fixture() {
  auto specs = corpus::scaled_app_classes(0.12);
  // Enough known classes that out-of-distribution samples cannot land in a
  // confidently wrong leaf (with very few classes a random forest assigns
  // high probability even to all-zero feature rows).
  const std::set<std::string> known_names{
      "Velvet", "HMMER",  "BLAT",   "Exonerate", "Trinity",  "Stacks",
      "canu",   "Subread", "RSEM",  "MUMmer",    "ViennaRNA", "OpenBabel"};
  const std::set<std::string> foreign_names{"MCL", "Gurobi", "METIS"};
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (known_names.count(spec.name) || foreign_names.count(spec.name)) {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  Fixture fx;
  int next_label = 0;
  std::vector<int> label_of_class(static_cast<std::size_t>(corpus.class_count()), -1);
  for (int c = 0; c < corpus.class_count(); ++c) {
    const auto& name = corpus.specs()[static_cast<std::size_t>(c)].name;
    if (foreign_names.count(name)) continue;  // held out entirely
    label_of_class[static_cast<std::size_t>(c)] = next_label++;
    fx.names.push_back(name);
  }
  for (const auto& ref : corpus.samples()) {
    const FeatureHashes hashes = extract_feature_hashes(corpus.sample_bytes(ref));
    const int label = label_of_class[static_cast<std::size_t>(ref.class_idx)];
    if (label < 0) {
      fx.foreign_hashes.push_back(hashes);
    } else if (ref.version_idx == 0) {
      fx.test_hashes.push_back(hashes);  // hold out the oldest version
      fx.test_labels.push_back(label);
    } else {
      fx.train_hashes.push_back(hashes);
      fx.train_labels.push_back(label);
    }
  }
  return fx;
}

const Fixture& fixture() {
  static const Fixture fx = make_fixture();
  return fx;
}

ClassifierConfig quick_config() {
  ClassifierConfig config;
  config.forest.n_estimators = 40;
  config.forest.seed = 3;
  config.confidence_threshold = 0.25;
  return config;
}

TEST(FuzzyHashClassifier, FitAndPredictKnownClasses) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  ASSERT_TRUE(clf.fitted());

  int correct = 0;
  for (std::size_t i = 0; i < fx.test_hashes.size(); ++i) {
    const Prediction pred = clf.predict(fx.test_hashes[i]);
    correct += pred.label == fx.test_labels[i] ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(correct) / fx.test_hashes.size(), 0.6);
}

TEST(FuzzyHashClassifier, PredictionCarriesCalibratedEvidence) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  const Prediction pred = clf.predict(fx.test_hashes[0]);
  ASSERT_EQ(pred.proba.size(), fx.names.size());
  // Leaf distributions are stored as floats: tolerance is float-level.
  EXPECT_NEAR(std::accumulate(pred.proba.begin(), pred.proba.end(), 0.0), 1.0, 1e-5);
  EXPECT_GE(pred.confidence, 0.0);
  EXPECT_LE(pred.confidence, 1.0);
  if (pred.label != ml::kUnknownLabel) {
    EXPECT_DOUBLE_EQ(pred.confidence,
                     *std::max_element(pred.proba.begin(), pred.proba.end()));
  }
}

TEST(FuzzyHashClassifier, ForeignClassFallsBelowThreshold) {
  const Fixture& fx = fixture();
  ClassifierConfig config = quick_config();
  config.confidence_threshold = 0.5;
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, config);
  int unknown = 0;
  for (const FeatureHashes& hashes : fx.foreign_hashes) {
    unknown += clf.predict(hashes).label == ml::kUnknownLabel ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(unknown) / fx.foreign_hashes.size(), 0.5)
      << "most never-seen-class samples must be flagged unknown";
}

TEST(FuzzyHashClassifier, ImpossibleThresholdFlagsEverythingUnknown) {
  const Fixture& fx = fixture();
  ClassifierConfig config = quick_config();
  config.confidence_threshold = 1.01;  // confidence can never reach this
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, config);
  for (std::size_t i = 0; i < fx.test_hashes.size(); i += 3) {
    EXPECT_EQ(clf.predict(fx.test_hashes[i]).label, ml::kUnknownLabel);
  }
}

TEST(FuzzyHashClassifier, ZeroThresholdNeverFlagsUnknown) {
  const Fixture& fx = fixture();
  ClassifierConfig config = quick_config();
  config.confidence_threshold = 0.0;
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, config);
  for (const FeatureHashes& hashes : fx.foreign_hashes) {
    EXPECT_NE(clf.predict(hashes).label, ml::kUnknownLabel);
  }
}

TEST(FuzzyHashClassifier, BatchMatchesSinglePredictions) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  ml::Matrix proba;
  const std::vector<int> batch = clf.predict_batch(fx.test_hashes, &proba);
  ASSERT_EQ(batch.size(), fx.test_hashes.size());
  ASSERT_EQ(proba.rows(), fx.test_hashes.size());
  for (std::size_t i = 0; i < fx.test_hashes.size(); i += 2) {
    EXPECT_EQ(batch[i], clf.predict(fx.test_hashes[i]).label);
  }
}

TEST(FuzzyHashClassifier, LabelsFromProbaRespectsThreshold) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  ml::Matrix proba;
  clf.predict_batch(fx.test_hashes, &proba);

  const auto strict = clf.labels_from_proba(proba, 0.99);
  const auto lax = clf.labels_from_proba(proba, 0.0);
  int strict_unknown = 0;
  for (const int label : strict) strict_unknown += label == ml::kUnknownLabel ? 1 : 0;
  int lax_unknown = 0;
  for (const int label : lax) lax_unknown += label == ml::kUnknownLabel ? 1 : 0;
  EXPECT_GE(strict_unknown, lax_unknown);
  EXPECT_EQ(lax_unknown, 0);
}

TEST(FuzzyHashClassifier, FeatureTypeImportanceNormalized) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  const auto importance = clf.channel_importance();
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
  for (const double imp : importance) {
    EXPECT_GE(imp, 0.0);
    EXPECT_LE(imp, 1.0);
  }
}

TEST(FuzzyHashClassifier, ColumnImportancesMatchIndexWidth) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  EXPECT_EQ(clf.column_importances().size(),
            static_cast<std::size_t>(3 * clf.index().n_classes()));
}

TEST(FuzzyHashClassifier, ChannelMaskRestrictsEvidence) {
  const Fixture& fx = fixture();
  ClassifierConfig config = quick_config();
  config.channels = {false, false, true};  // symbols only
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, config);
  const auto importance = clf.channel_importance();
  EXPECT_DOUBLE_EQ(importance[0], 0.0);
  EXPECT_DOUBLE_EQ(importance[1], 0.0);
  EXPECT_NEAR(importance[2], 1.0, 1e-9);
}

TEST(FuzzyHashClassifier, SetThresholdWithoutRefit) {
  const Fixture& fx = fixture();
  FuzzyHashClassifier clf;
  clf.fit(fx.train_hashes, fx.train_labels, fx.names, quick_config());
  clf.set_confidence_threshold(1.01);
  EXPECT_EQ(clf.predict(fx.test_hashes[0]).label, ml::kUnknownLabel);
  clf.set_confidence_threshold(0.0);
  EXPECT_NE(clf.predict(fx.test_hashes[0]).label, ml::kUnknownLabel);
}

TEST(FuzzyHashClassifier, UnfittedThrows) {
  FuzzyHashClassifier clf;
  EXPECT_FALSE(clf.fitted());
  FeatureHashes hashes;
  EXPECT_THROW(clf.predict(hashes), std::logic_error);
  EXPECT_THROW(clf.class_names(), std::logic_error);
}

TEST(FuzzyHashClassifier, RejectsEmptyOrMismatchedTraining) {
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.fit({}, {}, {}, quick_config()), std::invalid_argument);
  const Fixture& fx = fixture();
  std::vector<int> bad_labels(fx.train_hashes.size() - 1, 0);
  EXPECT_THROW(clf.fit(fx.train_hashes, bad_labels, fx.names, quick_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace fhc::core
