// Model persistence: save/load roundtrip must preserve predictions exactly
// (the train-once / classify-in-prolog deployment path).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "core/classifier.hpp"
#include "corpus/corpus.hpp"
#include "ssdeep/gram_index.hpp"
#include "ssdeep/prepared.hpp"
#include "util/sectioned.hpp"

namespace fhc::core {
namespace {

struct TrainedModel {
  FuzzyHashClassifier clf;
  std::vector<FeatureHashes> probes;
};

TrainedModel make_model() {
  auto specs = corpus::scaled_app_classes(0.03);
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (spec.name == "Velvet" || spec.name == "HMMER" ||
        spec.name == "Celera Assembler" || spec.name == "BLAT") {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
  std::vector<std::string> names;
  for (int c = 0; c < corpus.class_count(); ++c) {
    names.push_back(corpus.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const auto& ref : corpus.samples()) {
    hashes.push_back(extract_feature_hashes(corpus.sample_bytes(ref)));
    labels.push_back(ref.class_idx);
  }
  ClassifierConfig config;
  config.forest.n_estimators = 25;
  config.confidence_threshold = 0.2;
  TrainedModel model;
  model.clf.fit(hashes, labels, names, config);
  model.probes.assign(hashes.begin(), hashes.begin() + 8);
  return model;
}

const TrainedModel& model() {
  static const TrainedModel m = make_model();
  return m;
}

TEST(Serialization, RoundTripPreservesPredictions) {
  std::stringstream buffer;
  model().clf.save(buffer);

  FuzzyHashClassifier restored;
  restored.load(buffer);
  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());

  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = model().clf.predict(probe);
    const Prediction b = restored.predict(probe);
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      EXPECT_NEAR(a.proba[c], b.proba[c], 1e-6);
    }
  }
}

TEST(Serialization, RoundTripPreservesImportances) {
  std::stringstream buffer;
  model().clf.save(buffer);
  FuzzyHashClassifier restored;
  restored.load(buffer);
  const auto original = model().clf.channel_importance();
  const auto loaded = restored.channel_importance();
  for (std::size_t f = 0; f < original.size(); ++f) {
    EXPECT_NEAR(original[f], loaded[f], 1e-9);
  }
}

TEST(Serialization, SaveIsDeterministic) {
  std::stringstream a;
  std::stringstream b;
  model().clf.save(a);
  model().clf.save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Serialization, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_model_" + std::to_string(::getpid()) + ".fhc");
  model().clf.save_file(path.string());
  const FuzzyHashClassifier restored = FuzzyHashClassifier::load_file(path.string());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());
  const Prediction a = model().clf.predict(model().probes[0]);
  const Prediction b = restored.predict(model().probes[0]);
  EXPECT_EQ(a.label, b.label);
  std::filesystem::remove(path);
}

TEST(SerializationBinary, SaveLoadSaveIsByteIdentical) {
  std::ostringstream first_stream(std::ios::binary);
  model().clf.save_binary(first_stream);
  const std::string first = first_stream.str();

  // Copy into an aligned buffer (spans into a std::string are not
  // guaranteed 8-byte aligned; the vector's heap block is).
  std::vector<std::byte> bytes(first.size());
  std::memcpy(bytes.data(), first.data(), first.size());
  FuzzyHashClassifier restored;
  restored.load_binary({bytes.data(), bytes.size()}, nullptr);

  std::ostringstream second_stream(std::ios::binary);
  restored.save_binary(second_stream);
  EXPECT_EQ(first, second_stream.str());
}

TEST(SerializationBinary, PredictionsAreBitIdentical) {
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string image = stream.str();
  std::vector<std::byte> bytes(image.size());
  std::memcpy(bytes.data(), image.data(), image.size());
  FuzzyHashClassifier restored;
  restored.load_binary({bytes.data(), bytes.size()}, nullptr);

  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());
  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = model().clf.predict(probe);
    const Prediction b = restored.predict(probe);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.confidence, b.confidence);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      // Binary carries raw IEEE bits — exact equality, not closeness.
      EXPECT_EQ(a.proba[c], b.proba[c]);
    }
  }
  const auto imp_a = model().clf.channel_importance();
  const auto imp_b = restored.channel_importance();
  for (std::size_t f = 0; f < imp_a.size(); ++f) {
    EXPECT_EQ(imp_a[f], imp_b[f]);
  }
}

TEST(SerializationBinary, LoadFileSniffsAllThreeFormats) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto text_path =
      dir / ("fhc_model_text_" + std::to_string(::getpid()) + ".fhc");
  const auto v1_path =
      dir / ("fhc_model_v1_" + std::to_string(::getpid()) + ".fhcb");
  const auto v2_path =
      dir / ("fhc_model_v2_" + std::to_string(::getpid()) + ".fhcb");
  model().clf.save_file(text_path.string());
  {
    std::ofstream out(v1_path, std::ios::trunc | std::ios::binary);
    model().clf.save_binary_v1(out);
  }
  model().clf.save_binary_file(v2_path.string());  // v2 is the default

  // The v2 file mmaps and attaches forest AND index zero-copy; v1 mmaps
  // the forest but rebuilds the index; the text file goes through the
  // parser — all three must agree exactly.
  const FuzzyHashClassifier from_text =
      FuzzyHashClassifier::load_file(text_path.string());
  const FuzzyHashClassifier from_v1 =
      FuzzyHashClassifier::load_file(v1_path.string());
  const FuzzyHashClassifier from_v2 =
      FuzzyHashClassifier::load_file(v2_path.string());
  EXPECT_FALSE(from_v1.index().attached());
  EXPECT_TRUE(from_v2.index().attached());
  EXPECT_EQ(from_text.class_names(), from_v2.class_names());
  EXPECT_EQ(from_v1.class_names(), from_v2.class_names());
  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = from_text.predict(probe);
    const Prediction b = from_v2.predict(probe);
    const Prediction c = from_v1.predict(probe);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(c.label, b.label);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t k = 0; k < a.proba.size(); ++k) {
      EXPECT_EQ(a.proba[k], b.proba[k]);
      EXPECT_EQ(c.proba[k], b.proba[k]);
    }
  }
  std::filesystem::remove(text_path);
  std::filesystem::remove(v1_path);
  std::filesystem::remove(v2_path);
}

TEST(SerializationBinary, GramIndexLiveFromBothLoaders) {
  // Both load paths must come up with a working inverted 7-gram candidate
  // index: the text parser rebuilds it from digest text, the v2 binary
  // path attaches the serialized CSR pools zero-copy. Either way the
  // indexed fill must still agree with the all-pairs oracle bit for bit.
  const auto dir = std::filesystem::temp_directory_path();
  const auto text_path =
      dir / ("fhc_model_gram_text_" + std::to_string(::getpid()) + ".fhc");
  const auto binary_path =
      dir / ("fhc_model_gram_bin_" + std::to_string(::getpid()) + ".fhcb");
  model().clf.save_file(text_path.string());
  model().clf.save_binary_file(binary_path.string());

  for (const auto& path : {text_path, binary_path}) {
    const FuzzyHashClassifier restored =
        FuzzyHashClassifier::load_file(path.string());
    const TrainIndex& index = restored.index();
    for (int f = 0; f < kFeatureTypeCount; ++f) {
      const auto& channel = index.gram_index(static_cast<FeatureType>(f));
      EXPECT_EQ(channel.entries.size(), index.train_size()) << path;
      for (const auto& bsi : channel.by_blocksize) {
        EXPECT_GT(bsi.part1.posting_count() + bsi.part2.posting_count(), 0u)
            << path;
      }
    }
    const auto width = restored.row_width();
    for (const FeatureHashes& probe : model().probes) {
      std::vector<float> indexed(width);
      std::vector<float> reference(width);
      fill_feature_row(index, probe, restored.config().metric, -1, indexed);
      fill_feature_row_all_pairs(index, probe, restored.config().metric, -1,
                                 reference);
      EXPECT_EQ(indexed, reference) << path;
    }
  }
  std::filesystem::remove(text_path);
  std::filesystem::remove(binary_path);
}

std::vector<std::byte> aligned_image(const std::string& image) {
  std::vector<std::byte> bytes(image.size());
  if (!image.empty()) std::memcpy(bytes.data(), image.data(), image.size());
  return bytes;
}

std::string binary_image_v2(const FuzzyHashClassifier& clf) {
  std::ostringstream stream(std::ios::binary);
  clf.save_binary(stream);
  return stream.str();
}

std::string binary_image_v1(const FuzzyHashClassifier& clf) {
  std::ostringstream stream(std::ios::binary);
  clf.save_binary_v1(stream);
  return stream.str();
}

TEST(SerializationBinary, V2AttachPreparesNoDigestAndBuildsNoIndex) {
  // The acceptance property of the v2 format: loading must not touch the
  // digest-preparation or gram-index construction paths at all — the
  // pools attach in place. The v1 blob, by contrast, rebuilds everything.
  const std::vector<std::byte> v2 = aligned_image(binary_image_v2(model().clf));
  const std::vector<std::byte> v1 = aligned_image(binary_image_v1(model().clf));

  FuzzyHashClassifier from_v2;
  const std::uint64_t prepared_before = ssdeep::prepared_digest_count();
  const std::uint64_t built_before = ssdeep::gram_index_build_count();
  from_v2.load_binary({v2.data(), v2.size()}, nullptr);
  EXPECT_EQ(ssdeep::prepared_digest_count(), prepared_before);
  EXPECT_EQ(ssdeep::gram_index_build_count(), built_before);
  EXPECT_TRUE(from_v2.index().attached());

  FuzzyHashClassifier from_v1;
  from_v1.load_binary({v1.data(), v1.size()}, nullptr);
  EXPECT_GT(ssdeep::prepared_digest_count(), prepared_before);
  EXPECT_GT(ssdeep::gram_index_build_count(), built_before);
  EXPECT_FALSE(from_v1.index().attached());
}

TEST(SerializationBinary, AttachEqualsRebuildRowsAndGateStats) {
  // Attach (v2) and rebuild (v1) must be indistinguishable to the row
  // fill: identical similarity rows AND identical gate counters — the
  // attached CSR index prunes exactly what the rebuilt one prunes.
  const std::vector<std::byte> v2 = aligned_image(binary_image_v2(model().clf));
  const std::vector<std::byte> v1 = aligned_image(binary_image_v1(model().clf));
  FuzzyHashClassifier from_v2;
  from_v2.load_binary({v2.data(), v2.size()}, nullptr);
  FuzzyHashClassifier from_v1;
  from_v1.load_binary({v1.data(), v1.size()}, nullptr);

  const auto metric = model().clf.config().metric;
  const auto width = model().clf.row_width();
  for (const FeatureHashes& probe : model().probes) {
    std::vector<float> attached_row(width);
    std::vector<float> rebuilt_row(width);
    RowFillStats attached_stats;
    RowFillStats rebuilt_stats;
    fill_feature_row(from_v2.index(), probe, metric, -1, attached_row,
                     kAllChannels, &attached_stats);
    fill_feature_row(from_v1.index(), probe, metric, -1, rebuilt_row,
                     kAllChannels, &rebuilt_stats);
    EXPECT_EQ(attached_row, rebuilt_row);
    EXPECT_EQ(attached_stats.candidates_scored, rebuilt_stats.candidates_scored);
    EXPECT_EQ(attached_stats.index_skipped, rebuilt_stats.index_skipped);
  }
}

TEST(SerializationBinary, V1CompatLoadPredictsIdentically) {
  const std::vector<std::byte> v1 = aligned_image(binary_image_v1(model().clf));
  FuzzyHashClassifier restored;
  restored.load_binary({v1.data(), v1.size()}, nullptr);
  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());
  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = model().clf.predict(probe);
    const Prediction b = restored.predict(probe);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.confidence, b.confidence);
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      EXPECT_EQ(a.proba[c], b.proba[c]);
    }
  }
}

TEST(SerializationBinary, AttachedModelSavesIdenticalText) {
  // Text save from an attached model forces the lazy raw-digest loader
  // (the pools carry no digest text in parseable form); the output must
  // still be byte-identical to the fitted model's save.
  const std::vector<std::byte> v2 = aligned_image(binary_image_v2(model().clf));
  FuzzyHashClassifier restored;
  restored.load_binary({v2.data(), v2.size()}, nullptr);
  ASSERT_TRUE(restored.index().attached());
  std::stringstream original_text;
  std::stringstream restored_text;
  model().clf.save(original_text);
  restored.save(restored_text);
  EXPECT_EQ(original_text.str(), restored_text.str());
}

TEST(SerializationBinary, TrainIndexAttachRoundTripsAdversarialDigests) {
  // The edge digests from the gram-gate tests: an overlong part (beyond
  // kSpamsumLength, never gram-indexable), unpairable blocksize islands,
  // and empty parts. serialize -> attach must reproduce the owned index
  // bit for bit on fills, and re-serialize byte-identically.
  const auto uniform = [](std::uint32_t bs, std::string p1, std::string p2) {
    FeatureHashes h;
    h.file = h.strings = h.symbols =
        ssdeep::FuzzyDigest{bs, std::move(p1), std::move(p2)};
    h.has_symbols = true;
    return h;
  };
  std::string overlong_part;
  for (int i = 0; i < 65; ++i) {
    overlong_part.push_back(static_cast<char>('A' + (i * 11) % 26));
  }
  const std::vector<FeatureHashes> train = {
      uniform(3, "abc", "xy"),
      uniform(3, "abc", "xy"),
      uniform(6, "ABCDEFGHIJKLMNOP", "QRSTUVWXYZabcdef"),
      uniform(6, overlong_part, ""),                        // overlong part1
      uniform(96, "GGGGHHHHIIIIJJJJ", "KKKKLLLLMMMMNNNN"),  // unpairable island
      uniform(96, "OOOOPPPPQQQQRRRR", ""),                  // island, empty part2
  };
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  const TrainIndex owned(train, labels, {"a", "b", "c"});

  util::SectionedWriter writer("FHCTEST2");
  owned.serialize(writer);
  std::ostringstream image_stream(std::ios::binary);
  writer.write_to(image_stream);
  const std::string image = image_stream.str();
  const auto buffer = aligned_image(image);
  const auto view = util::SectionedView::attach(buffer, "FHCTEST2");

  const auto loader = [&train, &labels] { return std::make_pair(train, labels); };
  const auto attached =
      TrainIndex::attach(view, {"a", "b", "c"}, ChannelSet(), train.size(),
                         loader, nullptr);
  ASSERT_TRUE(attached->attached());

  const auto width = static_cast<std::size_t>(kFeatureTypeCount * 3);
  const auto metric = ssdeep::EditMetric::kDamerauOsa;
  const std::vector<FeatureHashes> queries = {
      train[0], train[3], train[4],
      uniform(12, "QRSTUVWXYZabcdef", "ponmlkjihgfedcba"),
      uniform(192, "KKKKLLLLMMMMNNNN", "GGGGHHHHIIIIJJJJ"),
  };
  for (const FeatureHashes& query : queries) {
    for (const int exclude : {-1, 0, 3, 5}) {
      std::vector<float> owned_row(width);
      std::vector<float> attached_row(width);
      RowFillStats owned_stats;
      RowFillStats attached_stats;
      fill_feature_row(owned, query, metric, exclude, owned_row, kAllChannels,
                       &owned_stats);
      fill_feature_row(*attached, query, metric, exclude, attached_row,
                       kAllChannels, &attached_stats);
      EXPECT_EQ(owned_row, attached_row);
      EXPECT_EQ(owned_stats.candidates_scored, attached_stats.candidates_scored);
      EXPECT_EQ(owned_stats.index_skipped, attached_stats.index_skipped);
    }
  }

  // The attached index re-serializes to the exact same container, and its
  // lazily materialized raw digests match the originals.
  util::SectionedWriter second_writer("FHCTEST2");
  attached->serialize(second_writer);
  std::ostringstream second_stream(std::ios::binary);
  second_writer.write_to(second_stream);
  EXPECT_EQ(image, second_stream.str());
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(attached->digests(FeatureType::kFile, c),
              owned.digests(FeatureType::kFile, c));
  }
}

TEST(SerializationBinary, V2RejectsFlippedSectionBytes) {
  // A flipped byte inside any section payload must fail the load's
  // checksum pass — the daemon never serves from a silently corrupt map.
  const std::string image = binary_image_v2(model().clf);
  const auto good = aligned_image(image);
  const auto view = util::SectionedView::attach(good, kBinaryModelMagicV2);
  for (const util::SectionEntry& entry : view.entries()) {
    if (entry.size == 0) continue;
    std::string corrupt = image;
    const auto pos = static_cast<std::size_t>(entry.offset + entry.size / 2);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    const auto bytes = aligned_image(corrupt);
    FuzzyHashClassifier clf;
    EXPECT_THROW(clf.load_binary({bytes.data(), bytes.size()}, nullptr),
                 std::runtime_error)
        << "flip in section '" << entry.tag_view() << "' slipped through";
  }
}

TEST(SerializationBinary, RejectsCorruptImages) {
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string image = stream.str();
  const auto load_image = [](const std::string& data) {
    std::vector<std::byte> bytes(data.size());
    if (!data.empty()) std::memcpy(bytes.data(), data.data(), data.size());
    FuzzyHashClassifier clf;
    clf.load_binary({bytes.data(), bytes.size()}, nullptr);
  };
  // Bad magic.
  std::string bad = image;
  bad[0] = 'x';
  EXPECT_THROW(load_image(bad), std::runtime_error);
  // Truncation at several depths: header, preamble, forest header,
  // forest payload.
  for (const double fraction : {0.0001, 0.01, 0.5, 0.98}) {
    EXPECT_THROW(load_image(image.substr(
                     0, static_cast<std::size_t>(image.size() * fraction))),
                 std::runtime_error)
        << "fraction " << fraction;
  }
}

TEST(Serialization, RejectsForestRowWidthMismatch) {
  // A crafted model whose forest claims 5 features under a 1-class
  // preamble (row width 3). The forest passes its own internal checks
  // (leaf-only tree, 5 importances), so without the classifier-level
  // width check predict would walk rows narrower than the forest expects.
  const std::string model_text =
      "fhc-fuzzy-hash-classifier-v1\n"
      "metric 0\n"
      "threshold 0.5\n"
      "balanced 1\n"
      "channels 1 1 1\n"
      "classes 1\n"
      "OnlyClass\n"
      "train 1\n"
      "0 3:: 3:: 3::\n"
      "forest 1 5 1\n"
      "tree 1 0 1 1 5\n"
      "-1 0 -1 -1 0\n"
      "1\n"
      "0 0 0 0 0\n";
  std::stringstream in(model_text);
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(in), std::runtime_error);
}

TEST(Serialization, RejectsBadMagic) {
  std::stringstream buffer("not-a-model\nmetric 0\n");
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(buffer), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedModel) {
  std::stringstream buffer;
  model().clf.save(buffer);
  const std::string full = buffer.str();
  // Cut at several depths: header, class names, digests, forest.
  for (const double fraction : {0.1, 0.4, 0.7, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<std::size_t>(
                                             full.size() * fraction)));
    FuzzyHashClassifier clf;
    EXPECT_THROW(clf.load(cut), std::runtime_error) << "fraction " << fraction;
  }
}

TEST(Serialization, RejectsUnfittedSave) {
  FuzzyHashClassifier clf;
  std::stringstream buffer;
  EXPECT_THROW(clf.save(buffer), std::logic_error);
}

TEST(Serialization, LoadedModelThresholdIsAdjustable) {
  std::stringstream buffer;
  model().clf.save(buffer);
  FuzzyHashClassifier restored;
  restored.load(buffer);
  restored.set_confidence_threshold(1.01);
  EXPECT_EQ(restored.predict(model().probes[0]).label, ml::kUnknownLabel);
}

}  // namespace
}  // namespace fhc::core
