// Model persistence: save/load roundtrip must preserve predictions exactly
// (the train-once / classify-in-prolog deployment path).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include <unistd.h>

#include "core/classifier.hpp"
#include "corpus/corpus.hpp"

namespace fhc::core {
namespace {

struct TrainedModel {
  FuzzyHashClassifier clf;
  std::vector<FeatureHashes> probes;
};

TrainedModel make_model() {
  auto specs = corpus::scaled_app_classes(0.03);
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (spec.name == "Velvet" || spec.name == "HMMER" ||
        spec.name == "Celera Assembler" || spec.name == "BLAT") {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
  std::vector<std::string> names;
  for (int c = 0; c < corpus.class_count(); ++c) {
    names.push_back(corpus.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const auto& ref : corpus.samples()) {
    hashes.push_back(extract_feature_hashes(corpus.sample_bytes(ref)));
    labels.push_back(ref.class_idx);
  }
  ClassifierConfig config;
  config.forest.n_estimators = 25;
  config.confidence_threshold = 0.2;
  TrainedModel model;
  model.clf.fit(hashes, labels, names, config);
  model.probes.assign(hashes.begin(), hashes.begin() + 8);
  return model;
}

const TrainedModel& model() {
  static const TrainedModel m = make_model();
  return m;
}

TEST(Serialization, RoundTripPreservesPredictions) {
  std::stringstream buffer;
  model().clf.save(buffer);

  FuzzyHashClassifier restored;
  restored.load(buffer);
  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());

  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = model().clf.predict(probe);
    const Prediction b = restored.predict(probe);
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      EXPECT_NEAR(a.proba[c], b.proba[c], 1e-6);
    }
  }
}

TEST(Serialization, RoundTripPreservesImportances) {
  std::stringstream buffer;
  model().clf.save(buffer);
  FuzzyHashClassifier restored;
  restored.load(buffer);
  const auto original = model().clf.feature_type_importance();
  const auto loaded = restored.feature_type_importance();
  for (std::size_t f = 0; f < original.size(); ++f) {
    EXPECT_NEAR(original[f], loaded[f], 1e-9);
  }
}

TEST(Serialization, SaveIsDeterministic) {
  std::stringstream a;
  std::stringstream b;
  model().clf.save(a);
  model().clf.save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Serialization, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_model_" + std::to_string(::getpid()) + ".fhc");
  model().clf.save_file(path.string());
  const FuzzyHashClassifier restored = FuzzyHashClassifier::load_file(path.string());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());
  const Prediction a = model().clf.predict(model().probes[0]);
  const Prediction b = restored.predict(model().probes[0]);
  EXPECT_EQ(a.label, b.label);
  std::filesystem::remove(path);
}

TEST(Serialization, RejectsBadMagic) {
  std::stringstream buffer("not-a-model\nmetric 0\n");
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(buffer), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedModel) {
  std::stringstream buffer;
  model().clf.save(buffer);
  const std::string full = buffer.str();
  // Cut at several depths: header, class names, digests, forest.
  for (const double fraction : {0.1, 0.4, 0.7, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<std::size_t>(
                                             full.size() * fraction)));
    FuzzyHashClassifier clf;
    EXPECT_THROW(clf.load(cut), std::runtime_error) << "fraction " << fraction;
  }
}

TEST(Serialization, RejectsUnfittedSave) {
  FuzzyHashClassifier clf;
  std::stringstream buffer;
  EXPECT_THROW(clf.save(buffer), std::logic_error);
}

TEST(Serialization, LoadedModelThresholdIsAdjustable) {
  std::stringstream buffer;
  model().clf.save(buffer);
  FuzzyHashClassifier restored;
  restored.load(buffer);
  restored.set_confidence_threshold(1.01);
  EXPECT_EQ(restored.predict(model().probes[0]).label, ml::kUnknownLabel);
}

}  // namespace
}  // namespace fhc::core
