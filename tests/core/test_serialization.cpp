// Model persistence: save/load roundtrip must preserve predictions exactly
// (the train-once / classify-in-prolog deployment path).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "core/classifier.hpp"
#include "corpus/corpus.hpp"

namespace fhc::core {
namespace {

struct TrainedModel {
  FuzzyHashClassifier clf;
  std::vector<FeatureHashes> probes;
};

TrainedModel make_model() {
  auto specs = corpus::scaled_app_classes(0.03);
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (spec.name == "Velvet" || spec.name == "HMMER" ||
        spec.name == "Celera Assembler" || spec.name == "BLAT") {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
  std::vector<std::string> names;
  for (int c = 0; c < corpus.class_count(); ++c) {
    names.push_back(corpus.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const auto& ref : corpus.samples()) {
    hashes.push_back(extract_feature_hashes(corpus.sample_bytes(ref)));
    labels.push_back(ref.class_idx);
  }
  ClassifierConfig config;
  config.forest.n_estimators = 25;
  config.confidence_threshold = 0.2;
  TrainedModel model;
  model.clf.fit(hashes, labels, names, config);
  model.probes.assign(hashes.begin(), hashes.begin() + 8);
  return model;
}

const TrainedModel& model() {
  static const TrainedModel m = make_model();
  return m;
}

TEST(Serialization, RoundTripPreservesPredictions) {
  std::stringstream buffer;
  model().clf.save(buffer);

  FuzzyHashClassifier restored;
  restored.load(buffer);
  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());

  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = model().clf.predict(probe);
    const Prediction b = restored.predict(probe);
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      EXPECT_NEAR(a.proba[c], b.proba[c], 1e-6);
    }
  }
}

TEST(Serialization, RoundTripPreservesImportances) {
  std::stringstream buffer;
  model().clf.save(buffer);
  FuzzyHashClassifier restored;
  restored.load(buffer);
  const auto original = model().clf.feature_type_importance();
  const auto loaded = restored.feature_type_importance();
  for (std::size_t f = 0; f < original.size(); ++f) {
    EXPECT_NEAR(original[f], loaded[f], 1e-9);
  }
}

TEST(Serialization, SaveIsDeterministic) {
  std::stringstream a;
  std::stringstream b;
  model().clf.save(a);
  model().clf.save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Serialization, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_model_" + std::to_string(::getpid()) + ".fhc");
  model().clf.save_file(path.string());
  const FuzzyHashClassifier restored = FuzzyHashClassifier::load_file(path.string());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());
  const Prediction a = model().clf.predict(model().probes[0]);
  const Prediction b = restored.predict(model().probes[0]);
  EXPECT_EQ(a.label, b.label);
  std::filesystem::remove(path);
}

TEST(SerializationBinary, SaveLoadSaveIsByteIdentical) {
  std::ostringstream first_stream(std::ios::binary);
  model().clf.save_binary(first_stream);
  const std::string first = first_stream.str();

  // Copy into an aligned buffer (spans into a std::string are not
  // guaranteed 8-byte aligned; the vector's heap block is).
  std::vector<std::byte> bytes(first.size());
  std::memcpy(bytes.data(), first.data(), first.size());
  FuzzyHashClassifier restored;
  restored.load_binary({bytes.data(), bytes.size()}, nullptr);

  std::ostringstream second_stream(std::ios::binary);
  restored.save_binary(second_stream);
  EXPECT_EQ(first, second_stream.str());
}

TEST(SerializationBinary, PredictionsAreBitIdentical) {
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string image = stream.str();
  std::vector<std::byte> bytes(image.size());
  std::memcpy(bytes.data(), image.data(), image.size());
  FuzzyHashClassifier restored;
  restored.load_binary({bytes.data(), bytes.size()}, nullptr);

  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.class_names(), model().clf.class_names());
  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = model().clf.predict(probe);
    const Prediction b = restored.predict(probe);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.confidence, b.confidence);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      // Binary carries raw IEEE bits — exact equality, not closeness.
      EXPECT_EQ(a.proba[c], b.proba[c]);
    }
  }
  const auto imp_a = model().clf.feature_type_importance();
  const auto imp_b = restored.feature_type_importance();
  for (std::size_t f = 0; f < imp_a.size(); ++f) {
    EXPECT_EQ(imp_a[f], imp_b[f]);
  }
}

TEST(SerializationBinary, LoadFileSniffsBothFormats) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto text_path =
      dir / ("fhc_model_text_" + std::to_string(::getpid()) + ".fhc");
  const auto binary_path =
      dir / ("fhc_model_bin_" + std::to_string(::getpid()) + ".fhcb");
  model().clf.save_file(text_path.string());
  model().clf.save_binary_file(binary_path.string());

  // The binary file mmaps and attaches the forest zero-copy; the text
  // file goes through the parser — both must agree exactly.
  const FuzzyHashClassifier from_text =
      FuzzyHashClassifier::load_file(text_path.string());
  const FuzzyHashClassifier from_binary =
      FuzzyHashClassifier::load_file(binary_path.string());
  EXPECT_EQ(from_text.class_names(), from_binary.class_names());
  for (const FeatureHashes& probe : model().probes) {
    const Prediction a = from_text.predict(probe);
    const Prediction b = from_binary.predict(probe);
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.proba.size(), b.proba.size());
    for (std::size_t c = 0; c < a.proba.size(); ++c) {
      EXPECT_EQ(a.proba[c], b.proba[c]);
    }
  }
  std::filesystem::remove(text_path);
  std::filesystem::remove(binary_path);
}

TEST(SerializationBinary, GramIndexRebuiltByBothLoaders) {
  // Model files carry raw digest text only; loading re-prepares the
  // TrainIndex, which must include the inverted 7-gram candidate index —
  // for the text parser and the mmap'd binary path alike. The restored
  // indexed fill must still agree with the all-pairs oracle bit for bit.
  const auto dir = std::filesystem::temp_directory_path();
  const auto text_path =
      dir / ("fhc_model_gram_text_" + std::to_string(::getpid()) + ".fhc");
  const auto binary_path =
      dir / ("fhc_model_gram_bin_" + std::to_string(::getpid()) + ".fhcb");
  model().clf.save_file(text_path.string());
  model().clf.save_binary_file(binary_path.string());

  for (const auto& path : {text_path, binary_path}) {
    const FuzzyHashClassifier restored =
        FuzzyHashClassifier::load_file(path.string());
    const TrainIndex& index = restored.index();
    for (int f = 0; f < kFeatureTypeCount; ++f) {
      const auto& channel = index.gram_index(static_cast<FeatureType>(f));
      EXPECT_EQ(channel.entries.size(), index.train_size()) << path;
      for (const auto& bsi : channel.by_blocksize) {
        EXPECT_TRUE(bsi.part1.finalized()) << path;
        EXPECT_TRUE(bsi.part2.finalized()) << path;
      }
    }
    const auto width = restored.row_width();
    for (const FeatureHashes& probe : model().probes) {
      std::vector<float> indexed(width);
      std::vector<float> reference(width);
      fill_feature_row(index, probe, restored.config().metric, -1, indexed);
      fill_feature_row_all_pairs(index, probe, restored.config().metric, -1,
                                 reference);
      EXPECT_EQ(indexed, reference) << path;
    }
  }
  std::filesystem::remove(text_path);
  std::filesystem::remove(binary_path);
}

TEST(SerializationBinary, RejectsCorruptImages) {
  std::ostringstream stream(std::ios::binary);
  model().clf.save_binary(stream);
  const std::string image = stream.str();
  const auto load_image = [](const std::string& data) {
    std::vector<std::byte> bytes(data.size());
    if (!data.empty()) std::memcpy(bytes.data(), data.data(), data.size());
    FuzzyHashClassifier clf;
    clf.load_binary({bytes.data(), bytes.size()}, nullptr);
  };
  // Bad magic.
  std::string bad = image;
  bad[0] = 'x';
  EXPECT_THROW(load_image(bad), std::runtime_error);
  // Truncation at several depths: header, preamble, forest header,
  // forest payload.
  for (const double fraction : {0.0001, 0.01, 0.5, 0.98}) {
    EXPECT_THROW(load_image(image.substr(
                     0, static_cast<std::size_t>(image.size() * fraction))),
                 std::runtime_error)
        << "fraction " << fraction;
  }
}

TEST(Serialization, RejectsForestRowWidthMismatch) {
  // A crafted model whose forest claims 5 features under a 1-class
  // preamble (row width 3). The forest passes its own internal checks
  // (leaf-only tree, 5 importances), so without the classifier-level
  // width check predict would walk rows narrower than the forest expects.
  const std::string model_text =
      "fhc-fuzzy-hash-classifier-v1\n"
      "metric 0\n"
      "threshold 0.5\n"
      "balanced 1\n"
      "channels 1 1 1\n"
      "classes 1\n"
      "OnlyClass\n"
      "train 1\n"
      "0 3:: 3:: 3::\n"
      "forest 1 5 1\n"
      "tree 1 0 1 1 5\n"
      "-1 0 -1 -1 0\n"
      "1\n"
      "0 0 0 0 0\n";
  std::stringstream in(model_text);
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(in), std::runtime_error);
}

TEST(Serialization, RejectsBadMagic) {
  std::stringstream buffer("not-a-model\nmetric 0\n");
  FuzzyHashClassifier clf;
  EXPECT_THROW(clf.load(buffer), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedModel) {
  std::stringstream buffer;
  model().clf.save(buffer);
  const std::string full = buffer.str();
  // Cut at several depths: header, class names, digests, forest.
  for (const double fraction : {0.1, 0.4, 0.7, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<std::size_t>(
                                             full.size() * fraction)));
    FuzzyHashClassifier clf;
    EXPECT_THROW(clf.load(cut), std::runtime_error) << "fraction " << fraction;
  }
}

TEST(Serialization, RejectsUnfittedSave) {
  FuzzyHashClassifier clf;
  std::stringstream buffer;
  EXPECT_THROW(clf.save(buffer), std::logic_error);
}

TEST(Serialization, LoadedModelThresholdIsAdjustable) {
  std::stringstream buffer;
  model().clf.save(buffer);
  FuzzyHashClassifier restored;
  restored.load(buffer);
  restored.set_confidence_threshold(1.01);
  EXPECT_EQ(restored.predict(model().probes[0]).label, ml::kUnknownLabel);
}

}  // namespace
}  // namespace fhc::core
