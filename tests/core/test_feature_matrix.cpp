// Similarity feature matrix: layout, exclude-self, channel masks.
#include "core/feature_matrix.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"

namespace fhc::core {
namespace {

struct SmallData {
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
  std::vector<std::string> names;
};

SmallData make_small_data() {
  // Three classes, all samples hashed.
  auto specs = corpus::scaled_app_classes(0.02);
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (spec.name == "Velvet" || spec.name == "HMMER" || spec.name == "BLAT") {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  SmallData data;
  for (int c = 0; c < corpus.class_count(); ++c) {
    data.names.push_back(corpus.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const auto& ref : corpus.samples()) {
    data.hashes.push_back(extract_feature_hashes(corpus.sample_bytes(ref)));
    data.labels.push_back(ref.class_idx);
  }
  return data;
}

const SmallData& small_data() {
  static const SmallData data = make_small_data();
  return data;
}

TEST(TrainIndex, OrganizesDigestsByClassAndChannel) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  EXPECT_EQ(index.n_classes(), 3);
  EXPECT_EQ(index.train_size(), data.hashes.size());

  std::size_t total = 0;
  for (int c = 0; c < 3; ++c) {
    const auto& digests = index.digests(FeatureType::kSymbols, c);
    EXPECT_EQ(digests.size(), index.train_ids(c).size());
    total += digests.size();
  }
  EXPECT_EQ(total, data.hashes.size());
}

TEST(TrainIndex, FeatureNamesCoverChannelsTimesClasses) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const auto names = index.feature_names();
  ASSERT_EQ(names.size(), 9u);  // 3 channels x 3 classes
  EXPECT_EQ(names[0], "ssdeep-file:" + data.names[0]);
  EXPECT_EQ(names[3], "ssdeep-strings:" + data.names[0]);
  EXPECT_EQ(names[6], "ssdeep-symbols:" + data.names[0]);
}

TEST(TrainIndex, RejectsBadLabels) {
  const auto& data = small_data();
  auto bad_labels = data.labels;
  bad_labels[0] = 99;
  EXPECT_THROW(TrainIndex(data.hashes, bad_labels, data.names),
               std::invalid_argument);
}

TEST(FeatureMatrix, OwnClassColumnDominates) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ml::Matrix x = build_feature_matrix(index, data.hashes,
                                            ssdeep::EditMetric::kDamerauOsa);
  ASSERT_EQ(x.rows(), data.hashes.size());
  ASSERT_EQ(x.cols(), 9u);
  const int k = 3;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int own = data.labels[i];
    // Without exclude-self the own-class symbols column must be 100.
    EXPECT_EQ(x.at(i, static_cast<std::size_t>(2 * k + own)), 100.0f);
  }
}

TEST(FeatureMatrix, ExcludeSelfRemovesThePerfectMatch) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  std::vector<int> exclude(data.hashes.size());
  for (std::size_t i = 0; i < exclude.size(); ++i) exclude[i] = static_cast<int>(i);
  const ml::Matrix with_self = build_feature_matrix(index, data.hashes,
                                                    ssdeep::EditMetric::kDamerauOsa);
  const ml::Matrix without_self = build_feature_matrix(
      index, data.hashes, ssdeep::EditMetric::kDamerauOsa, exclude);
  const int k = 3;
  bool any_lower = false;
  for (std::size_t i = 0; i < with_self.rows(); ++i) {
    const auto own = static_cast<std::size_t>(2 * k + data.labels[i]);
    EXPECT_LE(without_self.at(i, own), with_self.at(i, own));
    any_lower |= without_self.at(i, own) < with_self.at(i, own);
  }
  EXPECT_TRUE(any_lower) << "exclude-self must change at least some rows";
}

TEST(FeatureMatrix, ChannelMaskZeroesDisabledGroups) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ChannelMask symbols_only{false, false, true};
  const ml::Matrix x = build_feature_matrix(index, data.hashes,
                                            ssdeep::EditMetric::kDamerauOsa, {},
                                            symbols_only);
  const int k = 3;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(2 * k); ++c) {
      EXPECT_EQ(x.at(i, c), 0.0f);  // file+strings groups zeroed
    }
  }
  // Symbols group still informative.
  float max_sym = 0.0f;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = static_cast<std::size_t>(2 * k); c < x.cols(); ++c) {
      max_sym = std::max(max_sym, x.at(i, c));
    }
  }
  EXPECT_GT(max_sym, 0.0f);
}

TEST(FeatureMatrix, ValuesAreBoundedScores) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ml::Matrix x = build_feature_matrix(index, data.hashes,
                                            ssdeep::EditMetric::kDamerauOsa);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_GE(x.at(i, c), 0.0f);
      EXPECT_LE(x.at(i, c), 100.0f);
    }
  }
}

TEST(FeatureMatrix, RejectsMismatchedExcludeIds) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  EXPECT_THROW(build_feature_matrix(index, data.hashes,
                                    ssdeep::EditMetric::kDamerauOsa, {1, 2}),
               std::invalid_argument);
}

TEST(FeatureMatrix, SlicesComposeToFullRow) {
  // The service computes one row as parallel class slices; any partition
  // of [0, K) must reproduce fill_feature_row bit-for-bit.
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const int k = index.n_classes();
  const auto width = static_cast<std::size_t>(kFeatureTypeCount * k);
  for (std::size_t i = 0; i < data.hashes.size(); i += 5) {
    std::vector<float> full(width);
    fill_feature_row(index, data.hashes[i], ssdeep::EditMetric::kDamerauOsa,
                     /*exclude_id=*/-1, full);
    const PreparedQuery query(data.hashes[i]);
    for (int shards = 1; shards <= k + 1; ++shards) {
      std::vector<float> sliced(width, -1.0f);
      for (int s = 0; s < shards; ++s) {
        fill_feature_row_slice(index, query, ssdeep::EditMetric::kDamerauOsa,
                               /*exclude_id=*/-1, s * k / shards,
                               (s + 1) * k / shards, sliced);
      }
      EXPECT_EQ(full, sliced) << "shards=" << shards << " sample=" << i;
    }
  }
}

TEST(FeatureMatrix, SliceRejectsBadRanges) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const int k = index.n_classes();
  const PreparedQuery query(data.hashes[0]);
  std::vector<float> row(static_cast<std::size_t>(kFeatureTypeCount * k));
  const auto metric = ssdeep::EditMetric::kDamerauOsa;
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, -1, k, row),
               std::invalid_argument);
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, 0, k + 1, row),
               std::invalid_argument);
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, 2, 1, row),
               std::invalid_argument);
  std::vector<float> narrow(row.size() - 1);
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, 0, k, narrow),
               std::invalid_argument);
}

}  // namespace
}  // namespace fhc::core
