// Similarity feature matrix: layout, exclude-self, channel masks, and the
// GramIndex bit-identity property — the candidate-driven fill must
// reproduce the all-pairs reference scan bit for bit.
#include "core/feature_matrix.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "ssdeep/digest.hpp"

namespace fhc::core {
namespace {

struct SmallData {
  std::vector<FeatureHashes> hashes;
  std::vector<int> labels;
  std::vector<std::string> names;
};

SmallData make_small_data() {
  // Three classes, all samples hashed.
  auto specs = corpus::scaled_app_classes(0.02);
  std::vector<corpus::AppClassSpec> keep;
  for (const auto& spec : specs) {
    if (spec.name == "Velvet" || spec.name == "HMMER" || spec.name == "BLAT") {
      keep.push_back(spec);
    }
  }
  corpus::Corpus corpus(keep, 42);
  SmallData data;
  for (int c = 0; c < corpus.class_count(); ++c) {
    data.names.push_back(corpus.specs()[static_cast<std::size_t>(c)].name);
  }
  for (const auto& ref : corpus.samples()) {
    data.hashes.push_back(extract_feature_hashes(corpus.sample_bytes(ref)));
    data.labels.push_back(ref.class_idx);
  }
  return data;
}

const SmallData& small_data() {
  static const SmallData data = make_small_data();
  return data;
}

TEST(TrainIndex, OrganizesDigestsByClassAndChannel) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  EXPECT_EQ(index.n_classes(), 3);
  EXPECT_EQ(index.train_size(), data.hashes.size());

  std::size_t total = 0;
  for (int c = 0; c < 3; ++c) {
    const auto& digests = index.digests(FeatureType::kSymbols, c);
    EXPECT_EQ(digests.size(), index.train_ids(c).size());
    total += digests.size();
  }
  EXPECT_EQ(total, data.hashes.size());
}

TEST(TrainIndex, FeatureNamesCoverChannelsTimesClasses) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const auto names = index.feature_names();
  ASSERT_EQ(names.size(), 9u);  // 3 channels x 3 classes
  EXPECT_EQ(names[0], "ssdeep-file:" + data.names[0]);
  EXPECT_EQ(names[3], "ssdeep-strings:" + data.names[0]);
  EXPECT_EQ(names[6], "ssdeep-symbols:" + data.names[0]);
}

TEST(TrainIndex, RejectsBadLabels) {
  const auto& data = small_data();
  auto bad_labels = data.labels;
  bad_labels[0] = 99;
  EXPECT_THROW(TrainIndex(data.hashes, bad_labels, data.names),
               std::invalid_argument);
}

TEST(FeatureMatrix, OwnClassColumnDominates) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ml::Matrix x = build_feature_matrix(index, data.hashes,
                                            ssdeep::EditMetric::kDamerauOsa);
  ASSERT_EQ(x.rows(), data.hashes.size());
  ASSERT_EQ(x.cols(), 9u);
  const int k = 3;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int own = data.labels[i];
    // Without exclude-self the own-class symbols column must be 100.
    EXPECT_EQ(x.at(i, static_cast<std::size_t>(2 * k + own)), 100.0f);
  }
}

TEST(FeatureMatrix, ExcludeSelfRemovesThePerfectMatch) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  std::vector<int> exclude(data.hashes.size());
  for (std::size_t i = 0; i < exclude.size(); ++i) exclude[i] = static_cast<int>(i);
  const ml::Matrix with_self = build_feature_matrix(index, data.hashes,
                                                    ssdeep::EditMetric::kDamerauOsa);
  const ml::Matrix without_self = build_feature_matrix(
      index, data.hashes, ssdeep::EditMetric::kDamerauOsa, exclude);
  const int k = 3;
  bool any_lower = false;
  for (std::size_t i = 0; i < with_self.rows(); ++i) {
    const auto own = static_cast<std::size_t>(2 * k + data.labels[i]);
    EXPECT_LE(without_self.at(i, own), with_self.at(i, own));
    any_lower |= without_self.at(i, own) < with_self.at(i, own);
  }
  EXPECT_TRUE(any_lower) << "exclude-self must change at least some rows";
}

TEST(FeatureMatrix, ChannelMaskZeroesDisabledGroups) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ChannelMask symbols_only{false, false, true};
  const ml::Matrix x = build_feature_matrix(index, data.hashes,
                                            ssdeep::EditMetric::kDamerauOsa, {},
                                            symbols_only);
  const int k = 3;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(2 * k); ++c) {
      EXPECT_EQ(x.at(i, c), 0.0f);  // file+strings groups zeroed
    }
  }
  // Symbols group still informative.
  float max_sym = 0.0f;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = static_cast<std::size_t>(2 * k); c < x.cols(); ++c) {
      max_sym = std::max(max_sym, x.at(i, c));
    }
  }
  EXPECT_GT(max_sym, 0.0f);
}

TEST(FeatureMatrix, ValuesAreBoundedScores) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ml::Matrix x = build_feature_matrix(index, data.hashes,
                                            ssdeep::EditMetric::kDamerauOsa);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_GE(x.at(i, c), 0.0f);
      EXPECT_LE(x.at(i, c), 100.0f);
    }
  }
}

TEST(FeatureMatrix, RejectsMismatchedExcludeIds) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  EXPECT_THROW(build_feature_matrix(index, data.hashes,
                                    ssdeep::EditMetric::kDamerauOsa, {1, 2}),
               std::invalid_argument);
}

TEST(FeatureMatrix, SlicesComposeToFullRow) {
  // The service computes one row as parallel class slices; any partition
  // of [0, K) must reproduce fill_feature_row bit-for-bit.
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const int k = index.n_classes();
  const auto width = static_cast<std::size_t>(kFeatureTypeCount * k);
  for (std::size_t i = 0; i < data.hashes.size(); i += 5) {
    std::vector<float> full(width);
    fill_feature_row(index, data.hashes[i], ssdeep::EditMetric::kDamerauOsa,
                     /*exclude_id=*/-1, full);
    const PreparedQuery query(data.hashes[i]);
    for (int shards = 1; shards <= k + 1; ++shards) {
      std::vector<float> sliced(width, -1.0f);
      for (int s = 0; s < shards; ++s) {
        fill_feature_row_slice(index, query, ssdeep::EditMetric::kDamerauOsa,
                               /*exclude_id=*/-1, s * k / shards,
                               (s + 1) * k / shards, sliced);
      }
      EXPECT_EQ(full, sliced) << "shards=" << shards << " sample=" << i;
    }
  }
}

// --- GramIndex candidate-driven fill vs. the all-pairs oracle ----------

/// One FeatureHashes whose three channels all carry `digest` (digest-level
/// adversarial cases don't need distinct channels).
FeatureHashes uniform_hashes(const std::string& digest_text) {
  const auto digest = ssdeep::parse_digest(digest_text);
  EXPECT_TRUE(digest.has_value()) << digest_text;
  FeatureHashes hashes;
  hashes.file = *digest;
  hashes.strings = *digest;
  hashes.symbols = *digest;
  return hashes;
}

/// Asserts the indexed fill equals the all-pairs reference for `sample`
/// under every combination that matters: both metrics, the given exclude
/// id, and every slice partition of the class range.
void expect_indexed_matches_all_pairs(const TrainIndex& index,
                                      const FeatureHashes& sample,
                                      int exclude_id,
                                      const ChannelMask& channels = kAllChannels) {
  const int k = index.n_classes();
  const auto width = static_cast<std::size_t>(kFeatureTypeCount * k);
  for (const auto metric : {ssdeep::EditMetric::kDamerauOsa,
                            ssdeep::EditMetric::kWeightedLevenshtein}) {
    std::vector<float> reference(width);
    fill_feature_row_all_pairs(index, sample, metric, exclude_id, reference,
                               channels);
    std::vector<float> indexed(width);
    fill_feature_row(index, sample, metric, exclude_id, indexed, channels);
    ASSERT_EQ(reference, indexed) << "full row, metric "
                                  << static_cast<int>(metric);

    const PreparedQuery query(sample, channels);
    const QueryCandidates candidates(index, query, channels);
    for (int shards = 1; shards <= std::min(k, 3) + 1; ++shards) {
      std::vector<float> sliced(width, -1.0f);
      std::vector<float> shared(width, -1.0f);
      for (int s = 0; s < shards; ++s) {
        fill_feature_row_slice(index, query, metric, exclude_id,
                               s * k / shards, (s + 1) * k / shards, sliced,
                               channels);
        // The service path: one probe shared across every slice.
        fill_feature_row_slice(index, query, candidates, metric, exclude_id,
                               s * k / shards, (s + 1) * k / shards, shared,
                               channels);
      }
      // Disabled channels' columns are written by every partition member;
      // enabled ones by exactly one. Either way the composed row must be
      // the reference row.
      ASSERT_EQ(reference, sliced) << "shards=" << shards;
      ASSERT_EQ(reference, shared) << "shards=" << shards;
    }
  }
}

TEST(GramIndexFill, MatchesAllPairsOnRealCorpus) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  for (std::size_t i = 0; i < data.hashes.size(); i += 3) {
    expect_indexed_matches_all_pairs(index, data.hashes[i], /*exclude_id=*/-1);
    expect_indexed_matches_all_pairs(index, data.hashes[i],
                                     static_cast<int>(i));  // leave-self-out
  }
}

TEST(GramIndexFill, MatchesAllPairsWithDisabledChannels) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const ChannelMask masks[] = {{false, false, true},
                               {true, false, false},
                               {false, false, false}};
  for (const auto& mask : masks) {
    expect_indexed_matches_all_pairs(index, data.hashes[1], -1, mask);
  }
}

TEST(GramIndexFill, AdversarialShortPartsAndMixedBlocksizes) {
  // A hand-built corpus hitting the index's edge cases: parts shorter
  // than the 7-char window (empty gram arrays on both the train and the
  // query side), single-bucket single-sample classes, duplicate digests
  // (score-100 early exit), blocksize-double/half pairings where the
  // crosswise part probe is the only correct one, and an overlong part1
  // (> kSpamsumLength, constructible only by hand — parse_digest caps
  // lengths) that packs no grams and must score 0 even against itself.
  std::string overlong_part;
  for (std::size_t i = 0; i <= ssdeep::kSpamsumLength; ++i) {
    overlong_part.push_back(static_cast<char>('A' + (i * 11) % 26));
  }
  FeatureHashes overlong;
  overlong.file = overlong.strings = overlong.symbols =
      ssdeep::FuzzyDigest{6, overlong_part, ""};
  const std::vector<FeatureHashes> train = {
      uniform_hashes("3:abc:xy"),                              // short parts
      uniform_hashes("3:abc:xy"),                              // duplicate
      uniform_hashes("6:ABCDEFGHIJKLMNOP:QRSTUVWXYZabcdef"),   // normal, bs 6
      uniform_hashes("12:QRSTUVWXYZabcdef:ABCDEFGHIJKLMNOP"),  // bs 12, crosswise
      uniform_hashes("24:zzzzyyyyxxxxwwww:vvvvuuuuttttssss"),  // unpairable island
      overlong,
  };
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  TrainIndex index(train, labels, {"short", "normal", "far"});

  const std::vector<FeatureHashes> queries = {
      uniform_hashes("3:abc:xy"),                             // short query
      uniform_hashes("3:ab:c"),                               // even shorter
      uniform_hashes("6:ABCDEFGHIJKLMNOP:QRSTUVWXYZabcdef"),  // exact dup of id 2
      uniform_hashes("6:ZYXWVUTSRQPONMLK:QRSTUVWXYZabcdef"),  // part2 matches bs-12 part1
      uniform_hashes("12:QRSTUVWXYZabcdef:ponmlkjihgfedcba"), // part1 matches bs-6 part2
      uniform_hashes("48:vvvvuuuuttttssss:zzzzyyyyxxxxwwww"), // pairs only with bs 24
      uniform_hashes("96:GGGGHHHHIIIIJJJJ:KKKKLLLLMMMMNNNN"), // pairs with nothing
      overlong,                                               // self-match must stay 0
  };
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const int exclude : {-1, 0, 2, 3, 5}) {
      expect_indexed_matches_all_pairs(index, queries[q], exclude);
    }
  }
}

TEST(GramIndexFill, TrainIndexExposesChannelGramIndexes) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    const auto& channel = index.gram_index(static_cast<FeatureType>(f));
    // Every training digest of the channel is an entry exactly once.
    EXPECT_EQ(channel.entries.size(), data.hashes.size());
    ASSERT_FALSE(channel.by_blocksize.empty());
    for (const auto& bsi : channel.by_blocksize) {
      // Every bucketed view must cover at least one posting across its two
      // part channels — an all-empty blocksize bucket would never be built.
      EXPECT_GT(bsi.part1.posting_count() + bsi.part2.posting_count(), 0u);
    }
    // Entry ids ascend in class order — the grouping invariant the
    // candidate walk relies on.
    for (std::size_t e = 1; e < channel.entries.size(); ++e) {
      EXPECT_LE(channel.entries[e - 1].cls, channel.entries[e].cls);
    }
  }
}

TEST(GramIndexFill, GateStatsPartitionAcrossSlices) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const int k = index.n_classes();
  const auto width = static_cast<std::size_t>(kFeatureTypeCount * k);
  const auto metric = ssdeep::EditMetric::kDamerauOsa;

  std::vector<float> row(width);
  RowFillStats full;
  fill_feature_row(index, data.hashes[0], metric, -1, row, kAllChannels, &full);
  // The corpus has same-class relatives (scored) and the index must prune
  // at least something for the counters to mean anything.
  EXPECT_GT(full.candidates_scored, 0u);

  // Any slice partition must report the same totals as the full fill —
  // the accounting identity the service relies on when it sums per-slice
  // stats into its batch counters.
  const PreparedQuery query(data.hashes[0]);
  for (const int shards : {2, 3}) {
    RowFillStats sum;
    std::vector<float> sliced(width);
    for (int s = 0; s < shards; ++s) {
      fill_feature_row_slice(index, query, metric, -1, s * k / shards,
                             (s + 1) * k / shards, sliced, kAllChannels, &sum);
    }
    EXPECT_EQ(sum.candidates_scored, full.candidates_scored) << shards;
    EXPECT_EQ(sum.index_skipped, full.index_skipped) << shards;
  }

  // scored + skipped covers exactly the digests an all-pairs scan would
  // visit: those in blocksize-pairable buckets, over all three channels.
  std::uint64_t pairable = 0;
  for (int f = 0; f < kFeatureTypeCount; ++f) {
    const auto type = static_cast<FeatureType>(f);
    const auto bs = query.channels[static_cast<std::size_t>(f)].blocksize();
    for (int c = 0; c < k; ++c) {
      for (const auto& bucket : index.prepared(type, c)) {
        if (ssdeep::blocksizes_can_pair(bs, bucket.blocksize)) {
          pairable += bucket.size();
        }
      }
    }
  }
  EXPECT_EQ(full.candidates_scored + full.index_skipped, pairable);
}

TEST(FeatureMatrix, SliceRejectsBadRanges) {
  const auto& data = small_data();
  TrainIndex index(data.hashes, data.labels, data.names);
  const int k = index.n_classes();
  const PreparedQuery query(data.hashes[0]);
  std::vector<float> row(static_cast<std::size_t>(kFeatureTypeCount * k));
  const auto metric = ssdeep::EditMetric::kDamerauOsa;
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, -1, k, row),
               std::invalid_argument);
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, 0, k + 1, row),
               std::invalid_argument);
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, 2, 1, row),
               std::invalid_argument);
  std::vector<float> narrow(row.size() - 1);
  EXPECT_THROW(fill_feature_row_slice(index, query, metric, -1, 0, k, narrow),
               std::invalid_argument);
}

}  // namespace
}  // namespace fhc::core
