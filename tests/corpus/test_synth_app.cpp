// The sample synthesizer: determinism, structure, and the mutation model's
// channel-stability contract.
#include "corpus/synth_app.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "corpus/app_spec.hpp"
#include "elf/elf_reader.hpp"
#include "elf/strings_extract.hpp"
#include "elf/symbols_extract.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/fuzzy_hash.hpp"

namespace fhc::corpus {
namespace {

const AppClassSpec& spec_of(const std::string& name) {
  const AppClassSpec* spec = find_class(paper_app_classes(), name);
  EXPECT_NE(spec, nullptr) << name;
  return *spec;
}

TEST(SampleSynthesizer, DeterministicBytes) {
  SampleSynthesizer a(spec_of("Velvet"), 42);
  SampleSynthesizer b(spec_of("Velvet"), 42);
  EXPECT_EQ(a.build(0, 0), b.build(0, 0));
  EXPECT_EQ(a.build(2, 1), b.build(2, 1));
}

TEST(SampleSynthesizer, DifferentSeedsDifferentBytes) {
  SampleSynthesizer a(spec_of("Velvet"), 42);
  SampleSynthesizer b(spec_of("Velvet"), 43);
  EXPECT_NE(a.build(0, 0), b.build(0, 0));
}

TEST(SampleSynthesizer, SamplesPerVersionSumToTotal) {
  for (const char* name : {"Velvet", "FSL", "OpenMalaria", "CapnProto", "Rosetta"}) {
    SampleSynthesizer synth(spec_of(name), 7);
    const auto& per_version = synth.samples_per_version();
    EXPECT_EQ(std::accumulate(per_version.begin(), per_version.end(), 0),
              spec_of(name).total_samples)
        << name;
    EXPECT_EQ(per_version.size(), synth.versions().size());
  }
}

TEST(SampleSynthesizer, AtLeastThreeVersionsUnlessPinned) {
  for (const char* name : {"FSL", "CapnProto", "JAGS", "kentUtils"}) {
    SampleSynthesizer synth(spec_of(name), 7);
    EXPECT_GE(synth.versions().size(), 3u) << name;
  }
}

TEST(SampleSynthesizer, VelvetUsesPinnedVersionsAndExecs) {
  SampleSynthesizer synth(spec_of("Velvet"), 1);
  ASSERT_EQ(synth.versions().size(), 3u);
  EXPECT_EQ(synth.versions()[0].dir_name, "1.2.10-GCC-10.3.0-mt-kmer_191");
  EXPECT_EQ(synth.exec_name(0), "velveth");
  EXPECT_EQ(synth.exec_name(1), "velvetg");
  // 2 execs per version.
  for (const int count : synth.samples_per_version()) EXPECT_EQ(count, 2);
}

TEST(SampleSynthesizer, ExecNamesAreUniqueWithinClass) {
  SampleSynthesizer synth(spec_of("FSL"), 7);
  const int execs = *std::max_element(synth.samples_per_version().begin(),
                                      synth.samples_per_version().end());
  std::set<std::string> names;
  for (int e = 0; e < execs; ++e) names.insert(synth.exec_name(e));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(execs));
}

TEST(SampleSynthesizer, BuildsParseableElf) {
  SampleSynthesizer synth(spec_of("OpenMalaria"), 7);
  const auto image = synth.build(0, 0);
  const elf::ElfReader reader(image);
  EXPECT_TRUE(reader.has_symtab());
  EXPECT_TRUE(reader.section_by_name(".text").has_value());
  EXPECT_TRUE(reader.section_by_name(".rodata").has_value());
  EXPECT_TRUE(reader.section_by_name(".comment").has_value());
  EXPECT_FALSE(elf::global_text_symbols_text(image).empty());
}

TEST(SampleSynthesizer, StrippedVariantHasNoSymtab) {
  SampleSynthesizer synth(spec_of("OpenMalaria"), 7);
  const auto image = synth.build(0, 0, /*stripped=*/true);
  EXPECT_FALSE(elf::has_symbol_table(image));
}

TEST(SampleSynthesizer, VersionBannerEmbedsVersionAndToolchain) {
  SampleSynthesizer synth(spec_of("OpenMalaria"), 7);
  const auto image = synth.build(0, 0);
  const std::string strings = elf::strings_text(image);
  EXPECT_NE(strings.find("OpenMalaria version 46.0"), std::string::npos);
  EXPECT_NE(strings.find("iomkl-2019.01"), std::string::npos);
  EXPECT_NE(strings.find("/scicore/soft/apps/OpenMalaria/"), std::string::npos);
}

// --- the mutation model's channel contract -------------------------------

struct ChannelSims {
  int file = 0;
  int strings = 0;
  int symbols = 0;
};

ChannelSims sims_between(const std::vector<std::uint8_t>& a,
                         const std::vector<std::uint8_t>& b) {
  const auto hash3 = [](const std::vector<std::uint8_t>& image) {
    return std::tuple{ssdeep::fuzzy_hash(std::span<const std::uint8_t>(image)),
                      ssdeep::fuzzy_hash(elf::strings_text(image)),
                      ssdeep::fuzzy_hash(elf::global_text_symbols_text(image))};
  };
  const auto [fa, sa, ya] = hash3(a);
  const auto [fb, sb, yb] = hash3(b);
  return {ssdeep::compare_digests(fa, fb), ssdeep::compare_digests(sa, sb),
          ssdeep::compare_digests(ya, yb)};
}

TEST(MutationModel, SymbolsAreTheMostStableChannelAcrossVersions) {
  // Average over several classes to avoid volatile-class flukes.
  double file_total = 0.0;
  double strings_total = 0.0;
  double symbols_total = 0.0;
  int count = 0;
  for (const char* name : {"OpenMalaria", "HMMER", "Exonerate", "Trinity"}) {
    SampleSynthesizer synth(spec_of(name), 42);
    const auto sims = sims_between(synth.build(0, 0), synth.build(1, 0));
    file_total += sims.file;
    strings_total += sims.strings;
    symbols_total += sims.symbols;
    ++count;
  }
  EXPECT_GT(symbols_total / count, strings_total / count);
  EXPECT_GT(strings_total / count, file_total / count);
  EXPECT_GE(symbols_total / count, 50.0);
}

TEST(MutationModel, SameClassBeatsCrossClassOnSymbols) {
  SampleSynthesizer om(spec_of("OpenMalaria"), 42);
  SampleSynthesizer hmmer(spec_of("HMMER"), 42);
  const auto same = sims_between(om.build(0, 0), om.build(1, 0));
  const auto cross = sims_between(om.build(0, 0), hmmer.build(0, 0));
  EXPECT_GT(same.symbols, cross.symbols);
  EXPECT_LE(cross.symbols, 30);
}

TEST(MutationModel, LineagePairsShareSymbolVocabulary) {
  SampleSynthesizer newer(spec_of("CellRanger"), 42);
  SampleSynthesizer older(spec_of("Cell-Ranger"), 42);
  const auto sims = sims_between(newer.build(0, 0), older.build(0, 0));
  EXPECT_GE(sims.symbols, 40) << "same lineage must stay recognizable";
}

TEST(MutationModel, AugustusPairSharesLineage) {
  SampleSynthesizer known(spec_of("Augustus"), 42);
  SampleSynthesizer unknown(spec_of("AUGUSTUS"), 42);
  const auto sims = sims_between(known.build(0, 0), unknown.build(0, 0));
  EXPECT_GE(sims.symbols, 40);
}

TEST(MutationModel, SameVersionDifferentExecsShareCore) {
  SampleSynthesizer velvet(spec_of("Velvet"), 42);
  const auto sims = sims_between(velvet.build(0, 0), velvet.build(0, 1));
  // velveth and velvetg share the class core but have distinct tool code.
  EXPECT_GT(sims.symbols, 20);
  EXPECT_LT(sims.symbols, 95);
}

TEST(ClassPrefix, NormalizesNames) {
  EXPECT_EQ(class_prefix("celera assembler"), "celeraassemb");  // 12-char cap
  EXPECT_EQ(class_prefix("cad-score"), "cadscore");
  EXPECT_EQ(class_prefix("velvet"), "velvet");
  EXPECT_EQ(class_prefix(""), "app");
  EXPECT_EQ(class_prefix("---"), "app");
}

}  // namespace
}  // namespace fhc::corpus
