// Corpus enumeration, regeneration and on-disk materialization.
#include "corpus/corpus.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "elf/elf_reader.hpp"
#include "util/io_util.hpp"

namespace fhc::corpus {
namespace {

std::vector<AppClassSpec> tiny_specs() {
  // Three small classes for fast tests.
  auto specs = scaled_app_classes(0.01);
  std::vector<AppClassSpec> out;
  for (const auto& spec : specs) {
    if (spec.name == "Velvet" || spec.name == "OpenMalaria" || spec.name == "HMMER") {
      out.push_back(spec);
    }
  }
  return out;
}

TEST(Corpus, EnumeratesDeclaredSampleCounts) {
  Corpus corpus(tiny_specs(), 42);
  int expected = 0;
  for (const auto& spec : corpus.specs()) expected += spec.total_samples;
  EXPECT_EQ(corpus.samples().size(), static_cast<std::size_t>(expected));
}

TEST(Corpus, FullScaleEnumerates5333) {
  Corpus corpus(paper_app_classes(), 42);
  EXPECT_EQ(corpus.samples().size(), 5333u);
  EXPECT_EQ(corpus.class_count(), 92);
}

TEST(Corpus, SampleIndicesAreSequential) {
  Corpus corpus(tiny_specs(), 42);
  for (std::size_t i = 0; i < corpus.samples().size(); ++i) {
    EXPECT_EQ(corpus.samples()[i].sample_idx, static_cast<int>(i));
  }
}

TEST(Corpus, RelPathsAreUnique) {
  Corpus corpus(tiny_specs(), 42);
  std::set<std::string> paths;
  for (const SampleRef& ref : corpus.samples()) paths.insert(ref.rel_path());
  EXPECT_EQ(paths.size(), corpus.samples().size());
}

TEST(Corpus, RelPathHasSciCoreLayout) {
  Corpus corpus(tiny_specs(), 42);
  bool found = false;
  for (const SampleRef& ref : corpus.samples()) {
    if (ref.class_name == "Velvet" && ref.exec_name == "velveth") {
      EXPECT_EQ(ref.rel_path().find("Velvet/"), 0u);
      EXPECT_NE(ref.rel_path().find("/velveth"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Corpus, BytesAreDeterministicAcrossInstances) {
  Corpus a(tiny_specs(), 42);
  Corpus b(tiny_specs(), 42);
  for (std::size_t i = 0; i < a.samples().size(); i += 2) {
    EXPECT_EQ(a.sample_bytes(a.samples()[i]), b.sample_bytes(b.samples()[i]));
  }
}

TEST(Corpus, SamplesOfClassPartitionTheCorpus) {
  Corpus corpus(tiny_specs(), 42);
  std::size_t total = 0;
  for (int c = 0; c < corpus.class_count(); ++c) {
    const auto ids = corpus.samples_of_class(c);
    total += ids.size();
    for (const int id : ids) {
      EXPECT_EQ(corpus.samples()[static_cast<std::size_t>(id)].class_idx, c);
    }
  }
  EXPECT_EQ(total, corpus.samples().size());
}

TEST(Corpus, MaterializeWritesAllFiles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fhc_corpus_test_" + std::to_string(::getpid()));
  Corpus corpus(tiny_specs(), 42);
  const std::size_t written = corpus.materialize(dir);
  EXPECT_EQ(written, corpus.samples().size());

  const auto files = fhc::util::list_files(dir);
  EXPECT_EQ(files.size(), corpus.samples().size());

  // Every materialized file parses as ELF and matches in-memory bytes.
  const SampleRef& first = corpus.samples()[0];
  const auto on_disk = fhc::util::read_file(dir / first.rel_path());
  EXPECT_EQ(on_disk, corpus.sample_bytes(first));
  EXPECT_TRUE(elf::ElfReader::looks_like_elf(on_disk));

  std::filesystem::remove_all(dir);
}

TEST(Corpus, StrippedBytesDifferFromRegular) {
  Corpus corpus(tiny_specs(), 42);
  const SampleRef& ref = corpus.samples()[0];
  EXPECT_NE(corpus.sample_bytes(ref, /*stripped=*/true),
            corpus.sample_bytes(ref, /*stripped=*/false));
}

}  // namespace
}  // namespace fhc::corpus
