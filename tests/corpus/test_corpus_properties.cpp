// Property sweeps over the corpus generator (TEST_P across seeds):
// determinism, structural invariants, and channel-contract stability that
// the classifier's correctness rests on.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "corpus/corpus.hpp"
#include "elf/elf_reader.hpp"
#include "elf/symbols_extract.hpp"
#include "util/sha256.hpp"

namespace fhc::corpus {
namespace {

std::vector<AppClassSpec> small_specs() {
  std::vector<AppClassSpec> out;
  for (const auto& spec : scaled_app_classes(0.02)) {
    if (spec.name == "HMMER" || spec.name == "Velvet" || spec.name == "XDS" ||
        spec.name == "MCL" || spec.name == "Kraken2") {
      out.push_back(spec);
    }
  }
  return out;
}

class CorpusSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusSeedSweep, RegenerationIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  Corpus a(small_specs(), seed);
  Corpus b(small_specs(), seed);
  for (const SampleRef& ref : a.samples()) {
    const auto bytes_a = a.sample_bytes(ref);
    const auto bytes_b = b.sample_bytes(b.samples()[static_cast<std::size_t>(
        ref.sample_idx)]);
    EXPECT_EQ(fhc::util::Sha256::hex_digest(bytes_a),
              fhc::util::Sha256::hex_digest(bytes_b))
        << ref.rel_path();
  }
}

TEST_P(CorpusSeedSweep, AllSamplesAreValidElfWithSymbols) {
  Corpus corpus(small_specs(), GetParam());
  for (const SampleRef& ref : corpus.samples()) {
    const auto image = corpus.sample_bytes(ref);
    ASSERT_TRUE(elf::ElfReader::looks_like_elf(image)) << ref.rel_path();
    const elf::ElfReader reader(image);
    EXPECT_TRUE(reader.has_symtab()) << ref.rel_path();
    EXPECT_FALSE(elf::global_text_symbols_text(image).empty()) << ref.rel_path();
  }
}

TEST_P(CorpusSeedSweep, SamplesAreUniqueBinaries) {
  // No two samples may be byte-identical — the premise of the SHA-256
  // baseline comparison (crypto hashing finds nothing to match).
  Corpus corpus(small_specs(), GetParam());
  std::set<std::string> digests;
  for (const SampleRef& ref : corpus.samples()) {
    digests.insert(fhc::util::Sha256::hex_digest(corpus.sample_bytes(ref)));
  }
  EXPECT_EQ(digests.size(), corpus.samples().size());
}

TEST_P(CorpusSeedSweep, DifferentSeedsProduceDifferentCorpora) {
  Corpus a(small_specs(), GetParam());
  Corpus b(small_specs(), GetParam() + 1);
  const auto& ref = a.samples()[0];
  EXPECT_NE(a.sample_bytes(ref), b.sample_bytes(b.samples()[0]));
}

TEST_P(CorpusSeedSweep, VersionDirectoriesAreUniquePerClass) {
  Corpus corpus(small_specs(), GetParam());
  for (int c = 0; c < corpus.class_count(); ++c) {
    const auto& versions = corpus.synthesizer(c).versions();
    std::set<std::string> names;
    for (const auto& version : versions) names.insert(version.dir_name);
    EXPECT_EQ(names.size(), versions.size())
        << corpus.specs()[static_cast<std::size_t>(c)].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeedSweep, ::testing::Values(1, 7, 42, 1234));

TEST(CorpusStructure, SampleCountsAreSeedIndependent) {
  // The *structure* (classes, versions, counts) depends only on the spec;
  // seeds change content and version naming, never counts.
  Corpus a(small_specs(), 5);
  Corpus b(small_specs(), 50);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].class_name, b.samples()[i].class_name);
    EXPECT_EQ(a.samples()[i].exec_idx, b.samples()[i].exec_idx);
  }
}

TEST(CorpusStructure, CommentSectionNamesToolchain) {
  Corpus corpus(small_specs(), 3);
  const auto& ref = corpus.samples()[0];
  const auto image = corpus.sample_bytes(ref);
  const elf::ElfReader reader(image);
  const auto comment = reader.section_by_name(".comment");
  ASSERT_TRUE(comment.has_value());
  const std::string text(comment->content.begin(), comment->content.end());
  EXPECT_TRUE(text.find("GCC") != std::string::npos ||
              text.find("Intel") != std::string::npos)
      << text;
}

}  // namespace
}  // namespace fhc::corpus
