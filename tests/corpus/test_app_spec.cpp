// The reconstructed dataset composition must match the paper exactly.
#include "corpus/app_spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fhc::corpus {
namespace {

TEST(PaperAppClasses, HasNinetyTwoClasses) {
  EXPECT_EQ(paper_app_classes().size(), 92u);
}

TEST(PaperAppClasses, TotalsMatchPaper) {
  // 5333 samples overall (paper Abstract / Section 3).
  EXPECT_EQ(total_sample_count(paper_app_classes()), 5333);
}

TEST(PaperAppClasses, UnknownPoolMatchesTableThree) {
  int unknown_classes = 0;
  int unknown_samples = 0;
  for (const AppClassSpec& spec : paper_app_classes()) {
    if (spec.paper_unknown) {
      ++unknown_classes;
      unknown_samples += spec.total_samples;
    }
  }
  EXPECT_EQ(unknown_classes, 19);   // Table 3 rows
  EXPECT_EQ(unknown_samples, 852);  // Table 3 sum
}

TEST(PaperAppClasses, KnownSupportMatchesTableFour) {
  int known_classes = 0;
  int support_sum = 0;
  for (const AppClassSpec& spec : paper_app_classes()) {
    if (!spec.paper_unknown) {
      ++known_classes;
      support_sum += spec.paper_test_support;
    }
  }
  EXPECT_EQ(known_classes, 73);
  EXPECT_EQ(support_sum, 1793);  // 2645 test - 852 unknown
}

TEST(PaperAppClasses, StratifiedSplitReconstructionIsConsistent) {
  // For every known class, round-half-up of 40% of the total must equal
  // the paper's reported test support.
  for (const AppClassSpec& spec : paper_app_classes()) {
    if (spec.paper_unknown) continue;
    const int predicted_test =
        static_cast<int>(0.4 * spec.total_samples + 0.5);
    EXPECT_EQ(predicted_test, spec.paper_test_support) << spec.name;
  }
}

TEST(PaperAppClasses, EveryClassHasAtLeastThreeSamples) {
  for (const AppClassSpec& spec : paper_app_classes()) {
    EXPECT_GE(spec.total_samples, 3) << spec.name;
  }
}

TEST(PaperAppClasses, NamesAreUnique) {
  std::set<std::string> names;
  for (const AppClassSpec& spec : paper_app_classes()) names.insert(spec.name);
  EXPECT_EQ(names.size(), 92u);
}

TEST(PaperAppClasses, LineagePairsShareLineage) {
  const auto& specs = paper_app_classes();
  const AppClassSpec* cell1 = find_class(specs, "CellRanger");
  const AppClassSpec* cell2 = find_class(specs, "Cell-Ranger");
  ASSERT_NE(cell1, nullptr);
  ASSERT_NE(cell2, nullptr);
  EXPECT_EQ(cell1->lineage, cell2->lineage);

  const AppClassSpec* aug1 = find_class(specs, "Augustus");
  const AppClassSpec* aug2 = find_class(specs, "AUGUSTUS");
  ASSERT_NE(aug1, nullptr);
  ASSERT_NE(aug2, nullptr);
  EXPECT_EQ(aug1->lineage, aug2->lineage);
  EXPECT_FALSE(aug1->paper_unknown);
  EXPECT_TRUE(aug2->paper_unknown);
}

TEST(PaperAppClasses, CellRangerVersionRangesAreDisjoint) {
  const auto& specs = paper_app_classes();
  const AppClassSpec* newer = find_class(specs, "CellRanger");
  const AppClassSpec* older = find_class(specs, "Cell-Ranger");
  ASSERT_TRUE(newer && older);
  for (const auto& v_new : newer->version_names) {
    for (const auto& v_old : older->version_names) EXPECT_NE(v_new, v_old);
  }
}

TEST(PaperAppClasses, VelvetMatchesTableOne) {
  const AppClassSpec* velvet = find_class(paper_app_classes(), "Velvet");
  ASSERT_NE(velvet, nullptr);
  EXPECT_EQ(velvet->total_samples, 6);  // 3 versions x 2 executables
  ASSERT_EQ(velvet->version_names.size(), 3u);
  ASSERT_EQ(velvet->exec_names.size(), 2u);
  EXPECT_EQ(velvet->exec_names[0], "velveth");
  EXPECT_EQ(velvet->exec_names[1], "velvetg");
}

TEST(PaperAppClasses, OpenMalariaHasTableTwoVersions) {
  const AppClassSpec* om = find_class(paper_app_classes(), "OpenMalaria");
  ASSERT_NE(om, nullptr);
  EXPECT_TRUE(om->paper_unknown);  // Table 3 row
  ASSERT_GE(om->version_names.size(), 2u);
  EXPECT_EQ(om->version_names[0], "46.0-iomkl-2019.01");
  EXPECT_EQ(om->version_names[1], "43.1-foss-2021a");
}

TEST(PaperAppClasses, FamiliesCoverRelatedProjects) {
  const auto& specs = paper_app_classes();
  EXPECT_EQ(find_class(specs, "HTSlib")->family, "htslib");
  EXPECT_EQ(find_class(specs, "SAMtools")->family, "htslib");
  EXPECT_EQ(find_class(specs, "TopHat")->family, "tuxedo");
  EXPECT_EQ(find_class(specs, "Kraken")->family, find_class(specs, "Kraken2")->family);
  EXPECT_TRUE(find_class(specs, "FSL")->family.empty());
}

TEST(ScaledAppClasses, ScalesWithFloorOfThree) {
  const auto scaled = scaled_app_classes(0.1);
  EXPECT_EQ(scaled.size(), 92u);
  for (const AppClassSpec& spec : scaled) {
    EXPECT_GE(spec.total_samples, 3) << spec.name;
  }
  const AppClassSpec* fsl = find_class(scaled, "FSL");
  ASSERT_NE(fsl, nullptr);
  EXPECT_EQ(fsl->total_samples, 87);  // floor(878 * 0.1)
}

TEST(ScaledAppClasses, ScaleOneIsIdentity) {
  EXPECT_EQ(total_sample_count(scaled_app_classes(1.0)), 5333);
  EXPECT_EQ(total_sample_count(scaled_app_classes(2.0)), 5333);  // clamped
}

TEST(FindClass, ReturnsNullForMissing) {
  EXPECT_EQ(find_class(paper_app_classes(), "NotARealApp"), nullptr);
}

}  // namespace
}  // namespace fhc::corpus
