// util::FaultInjector: the deterministic fault-injection core the chaos
// harness stands on.
//
// The load-bearing properties: disarmed wrappers are pure passthrough,
// an armed nth-call schedule fires on exactly the Nth intercepted call,
// probability schedules replay bit-identically under the same seed, the
// spec parser accepts the documented grammar and rejects junk, and the
// injectable write path (fsync/rename) leaves a previously-written file
// intact when the save is failed mid-flight.
#include "util/fault_inject.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/sectioned.hpp"

namespace fhc::util {
namespace {

/// Every test leaves the process-wide injector disarmed.
struct Disarmer {
  ~Disarmer() { FaultInjector::instance().disarm(); }
};

TEST(FaultInjector, DisarmedIsPassthrough) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.disarm();
  EXPECT_FALSE(injector.armed());
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    EXPECT_EQ(injector.check(static_cast<FaultSite>(i)), 0);
  }
}

TEST(FaultInjector, NthCallFiresExactlyOnce) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kRead;
  rule.nth = 3;
  plan.rules.push_back(rule);
  injector.arm(std::move(plan));

  std::vector<int> results;
  for (int i = 0; i < 6; ++i) results.push_back(injector.check(FaultSite::kRead));
  EXPECT_EQ(results, (std::vector<int>{0, 0, ECONNRESET, 0, 0, 0}));

  const auto counters = injector.counters();
  EXPECT_EQ(counters[static_cast<std::size_t>(FaultSite::kRead)].calls, 6u);
  EXPECT_EQ(counters[static_cast<std::size_t>(FaultSite::kRead)].injected, 1u);
  EXPECT_EQ(injector.total_injected(), 1u);
}

TEST(FaultInjector, SitesAreIndependent) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kWrite;
  rule.nth = 1;
  plan.rules.push_back(rule);
  injector.arm(std::move(plan));

  // Calls at other sites neither fire nor advance kWrite's counter.
  EXPECT_EQ(injector.check(FaultSite::kRead), 0);
  EXPECT_EQ(injector.check(FaultSite::kAccept), 0);
  EXPECT_EQ(injector.check(FaultSite::kWrite), EPIPE);
  EXPECT_EQ(injector.check(FaultSite::kWrite), 0);
}

TEST(FaultInjector, ExplicitErrnoAndMaxFailures) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kAccept;
  rule.probability = 1.0;
  rule.error_code = EMFILE;
  rule.max_failures = 2;
  plan.rules.push_back(rule);
  injector.arm(std::move(plan));

  EXPECT_EQ(injector.check(FaultSite::kAccept), EMFILE);
  EXPECT_EQ(injector.check(FaultSite::kAccept), EMFILE);
  EXPECT_EQ(injector.check(FaultSite::kAccept), 0);  // budget spent
}

TEST(FaultInjector, ProbabilityScheduleIsSeedDeterministic) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  const auto run = [&](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    FaultRule rule;
    rule.site = FaultSite::kRead;
    rule.probability = 0.5;
    rule.max_failures = 1000;
    plan.rules.push_back(rule);
    injector.arm(std::move(plan));
    std::vector<int> outcomes;
    for (int i = 0; i < 64; ++i) outcomes.push_back(injector.check(FaultSite::kRead));
    return outcomes;
  };
  const std::vector<int> first = run(42);
  const std::vector<int> second = run(42);
  const std::vector<int> other = run(43);
  EXPECT_EQ(first, second);  // same seed -> same schedule
  EXPECT_NE(first, other);   // different seed -> different draws
  // p=0.5 over 64 draws: both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), 0), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), ECONNRESET), 0);
}

TEST(FaultInjector, DefaultErrnosMatchTheSite) {
  EXPECT_EQ(fault_default_errno(FaultSite::kRead), ECONNRESET);
  EXPECT_EQ(fault_default_errno(FaultSite::kWrite), EPIPE);
  EXPECT_EQ(fault_default_errno(FaultSite::kAccept), ECONNABORTED);
  EXPECT_EQ(fault_default_errno(FaultSite::kEpollWait), EINTR);
  EXPECT_EQ(fault_default_errno(FaultSite::kMmap), ENOMEM);
  EXPECT_EQ(fault_default_errno(FaultSite::kFsync), EIO);
  EXPECT_EQ(fault_default_errno(FaultSite::kRename), EIO);
  EXPECT_EQ(fault_default_errno(FaultSite::kAlloc), ENOMEM);
}

TEST(FaultInjector, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultInjector::parse_spec(fault_site_name(site), plan, error))
        << error;
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.rules[0].site, site);
  }
}

TEST(FaultInjector, ParseSpecGrammar) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultInjector::parse_spec(
      "read:nth=3;accept:p=0.25:errno=EMFILE:max=5; write : nth=1 ", plan,
      error))
      << error;
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].site, FaultSite::kRead);
  EXPECT_EQ(plan.rules[0].nth, 3u);
  EXPECT_EQ(plan.rules[1].site, FaultSite::kAccept);
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.25);
  EXPECT_EQ(plan.rules[1].error_code, EMFILE);
  EXPECT_EQ(plan.rules[1].max_failures, 5u);
  EXPECT_EQ(plan.rules[2].site, FaultSite::kWrite);
  EXPECT_EQ(plan.rules[2].nth, 1u);

  // Numeric errno accepted too.
  ASSERT_TRUE(FaultInjector::parse_spec("fsync:errno=5", plan, error)) << error;

  EXPECT_FALSE(FaultInjector::parse_spec("bogus_site", plan, error));
  EXPECT_FALSE(FaultInjector::parse_spec("read:nth", plan, error));
  EXPECT_FALSE(FaultInjector::parse_spec("read:nth=abc", plan, error));
  EXPECT_FALSE(FaultInjector::parse_spec("read:p=2.5", plan, error));
  EXPECT_FALSE(FaultInjector::parse_spec("read:errno=ENOSUCH", plan, error));
  EXPECT_FALSE(FaultInjector::parse_spec("", plan, error));
}

TEST(FaultInjector, ArmFromEnvironment) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  ::setenv("FHC_FAULT", "eventfd:nth=2", 1);
  ::setenv("FHC_FAULT_SEED", "99", 1);
  std::string error;
  EXPECT_TRUE(injector.arm_from_env(error)) << error;
  EXPECT_TRUE(injector.armed());
  EXPECT_EQ(injector.check(FaultSite::kEventfd), 0);
  EXPECT_EQ(injector.check(FaultSite::kEventfd), EAGAIN);
  injector.disarm();

  ::setenv("FHC_FAULT", "not-a-site", 1);
  EXPECT_FALSE(injector.arm_from_env(error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(injector.armed());

  ::unsetenv("FHC_FAULT");
  ::unsetenv("FHC_FAULT_SEED");
  error.clear();
  EXPECT_FALSE(injector.arm_from_env(error));
  EXPECT_TRUE(error.empty());  // unset is not an error
}

TEST(FaultInjector, AllocGuardThrowsBadAlloc) {
  Disarmer guard;
  FaultInjector& injector = FaultInjector::instance();
  fi::alloc_guard();  // disarmed: no-op
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kAlloc;
  rule.nth = 2;
  plan.rules.push_back(rule);
  injector.arm(std::move(plan));
  fi::alloc_guard();  // first call passes
  EXPECT_THROW(fi::alloc_guard(), std::bad_alloc);
  fi::alloc_guard();  // budget spent: passes again
}

/// A failed fsync or rename mid-save must leave the previous file intact
/// — the atomic-replace contract under injected I/O faults.
TEST(FaultInjector, FailedSaveLeavesExistingFileIntact) {
  Disarmer guard;
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_fault_save_" + std::to_string(::getpid()) + ".bin");
  const std::string original = "ORIGINAL";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << original;
  }

  const std::vector<std::byte> payload = {std::byte{1}, std::byte{2},
                                          std::byte{3}};
  for (const char* spec : {"fsync:nth=1", "rename:nth=1"}) {
    FaultPlan plan;
    std::string parse_error;
    ASSERT_TRUE(FaultInjector::parse_spec(spec, plan, parse_error))
        << parse_error;
    FaultInjector::instance().arm(std::move(plan));
    SectionedWriter writer("FHCTEST1");
    writer.add("data", payload);
    EXPECT_THROW(writer.write_file(path.string()), std::runtime_error) << spec;
    FaultInjector::instance().disarm();

    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, original) << spec;  // old file untouched
    EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp")) << spec;
  }

  // Faults spent: the same save now succeeds and replaces the file.
  SectionedWriter writer("FHCTEST1");
  writer.add("data", payload);
  writer.write_file(path.string());
  EXPECT_GT(std::filesystem::file_size(path), original.size());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fhc::util
