// Deadline-aware request lifecycle: expired work is provably never
// scored.
//
// The load-bearing properties: a request whose deadline passes while it
// waits in the dispatcher queue resolves with DeadlineExceeded and a
// zero candidates_scored delta (shedding costs no scoring work), live
// requests sharing a batch with shed ones still answer bit-identically
// to serial predict, the queue-age bound (max_queue_delay) sheds the
// same way, and the DEADLINE_EXCEEDED wire opcode reaches socket
// clients.
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/command_handler.hpp"
#include "service/service.hpp"
#include "support/synthetic_hashes.hpp"

namespace fhc::service {
namespace {

struct Fixture {
  core::FuzzyHashClassifier model;
  std::vector<core::FeatureHashes> queries;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    testsupport::SyntheticHashes data =
        testsupport::make_synthetic_hashes(testsupport::SyntheticHashesParams{});
    Fixture out;
    out.queries = std::move(data.queries);
    core::ClassifierConfig config;
    config.forest.n_estimators = 20;
    config.forest.seed = 11;
    config.confidence_threshold = 0.3;
    out.model.fit(data.train, data.labels, {"A", "B", "C", "D"}, config);
    return out;
  }();
  return fx;
}

core::FuzzyHashClassifier clone_model() {
  std::stringstream buffer;
  fixture().model.save(buffer);
  core::FuzzyHashClassifier copy;
  copy.load(buffer);
  return copy;
}

/// A service whose dispatcher is parked (enormous max_delay, huge
/// max_batch): nothing flushes until flush() is called, so tests control
/// exactly when the deadline check runs relative to the deadline.
ServiceConfig parked_config() {
  ServiceConfig config;
  config.max_batch = 64;
  config.max_delay = std::chrono::milliseconds(60000);
  config.cache_capacity = 0;  // a hit would answer without queueing
  return config;
}

TEST(DeadlineLifecycle, ExpiredRequestIsNeverScored) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone_model(), parked_config());
  const ServiceStats before = svc.stats();

  std::future<core::Prediction> future =
      svc.submit(fx.queries[0], std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  svc.flush();
  EXPECT_THROW(future.get(), DeadlineExceeded);

  const ServiceStats after = svc.stats();
  EXPECT_EQ(after.deadline_expired - before.deadline_expired, 1u);
  EXPECT_EQ(after.completed - before.completed, 1u);
  // The proof the request never reached scoring: no rows scored, no
  // candidates visited, not even a batch flushed for it.
  EXPECT_EQ(after.scored, before.scored);
  EXPECT_EQ(after.candidates_scored, before.candidates_scored);
  EXPECT_EQ(after.batches, before.batches);
}

TEST(DeadlineLifecycle, LiveRequestsInAMixedBatchStayBitIdentical) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone_model(), parked_config());

  // One generous deadline, one already-hopeless deadline, one without —
  // flushed as a single batch.
  std::future<core::Prediction> live =
      svc.submit(fx.queries[0], std::chrono::milliseconds(60000));
  std::future<core::Prediction> doomed =
      svc.submit(fx.queries[1], std::chrono::milliseconds(1));
  std::future<core::Prediction> unbounded = svc.submit(fx.queries[2]);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  svc.flush();

  EXPECT_THROW(doomed.get(), DeadlineExceeded);
  const core::Prediction live_pred = live.get();
  const core::Prediction unbounded_pred = unbounded.get();
  const core::Prediction expected0 = fixture().model.predict(fx.queries[0]);
  const core::Prediction expected2 = fixture().model.predict(fx.queries[2]);
  EXPECT_EQ(live_pred.label, expected0.label);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(live_pred.confidence),
            std::bit_cast<std::uint64_t>(expected0.confidence));
  EXPECT_EQ(unbounded_pred.label, expected2.label);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(unbounded_pred.confidence),
            std::bit_cast<std::uint64_t>(expected2.confidence));

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.scored, 2u);
}

TEST(DeadlineLifecycle, QueueAgeBoundShedsWithoutPerRequestDeadline) {
  const Fixture& fx = fixture();
  ServiceConfig config = parked_config();
  config.max_queue_delay = std::chrono::milliseconds(5);
  ClassificationService svc(clone_model(), config);

  std::future<core::Prediction> future = svc.submit(fx.queries[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  svc.flush();
  EXPECT_THROW(future.get(), DeadlineExceeded);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
  EXPECT_EQ(svc.stats().scored, 0u);

  // Fresh work flushed promptly still scores.
  std::future<core::Prediction> quick = svc.submit(fx.queries[1]);
  svc.flush();
  EXPECT_NO_THROW(quick.get());
}

TEST(DeadlineLifecycle, GenerousDeadlineDoesNotShed) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone_model(), parked_config());
  std::future<core::Prediction> future =
      svc.submit(fx.queries[0], std::chrono::milliseconds(60000));
  svc.flush();
  EXPECT_NO_THROW(future.get());
  EXPECT_EQ(svc.stats().deadline_expired, 0u);
}

TEST(DeadlineLifecycle, DeadlineExceededReachesTheWire) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone_model(), parked_config());
  service::CommandHandler handler(svc);
  net::ServerConfig server_config;
  server_config.unix_path = "/tmp/fhc_chaos_ddl_" +
                            std::to_string(::getpid()) + ".sock";
  net::SocketServer server(handler, server_config);
  server.start();

  net::BlockingClient client;
  net::Endpoint endpoint;
  endpoint.unix_path = server.unix_socket_path();
  ASSERT_EQ(client.connect(endpoint, /*retries=*/100), "");

  // Frame 1: 1 ms deadline (doomed while the dispatcher is parked).
  // Frame 2: no deadline (must still answer bit-identically).
  std::vector<std::string> digests;
  for (std::size_t i = 0; i < fx.queries[0].channel_count(); ++i) {
    digests.push_back(fx.queries[0].channel(i).to_string());
  }
  std::string wire;
  net::encode_classify_digests(wire, digests, std::uint32_t{1});
  net::encode_classify_digests(wire, digests);
  ASSERT_TRUE(client.send_bytes(wire));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  svc.flush();

  net::Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, net::Opcode::kDeadlineExceeded);
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  ASSERT_EQ(response.op, net::Opcode::kPrediction);
  const core::Prediction expected = fixture().model.predict(fx.queries[0]);
  EXPECT_EQ(response.label, expected.label);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(response.confidence),
            std::bit_cast<std::uint64_t>(expected.confidence));

  // The shed request shows up in the daemon's own accounting.
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
  server.stop();
  server.join();
}

}  // namespace
}  // namespace fhc::service
